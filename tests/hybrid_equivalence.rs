//! Equivalence and simulation-consistency tests for the hybrid drivers:
//! the simulated platform must change *when* things run, never *what* is
//! computed.

use ft_hess_repro::prelude::*;

fn full_ctx() -> HybridCtx {
    HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2)
}

#[test]
fn hybrid_matches_cpu_blocked_across_configs() {
    for &(n, nb) in &[(48usize, 8usize), (64, 16), (70, 32), (61, 13)] {
        let a = ft_hess_repro::matrix::random::uniform(n, n, (n * nb) as u64);
        let hybrid = gehrd_hybrid(
            &a,
            &HybridConfig { nb },
            &mut full_ctx(),
            &mut FaultPlan::none(),
        )
        .result
        .unwrap();
        let mut cpu = a.clone();
        let cpu_tau = gehrd(
            &mut cpu,
            &GehrdConfig {
                nb,
                nx: 1,
                lookahead: false,
            },
        );
        let diff = ft_hess_repro::matrix::max_abs_diff(&hybrid.packed, &cpu);
        assert!(diff < 1e-11, "n={n} nb={nb}: packed diff {diff}");
        for (x, y) in hybrid.tau.iter().zip(&cpu_tau) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}

#[test]
fn ft_timing_mode_equals_full_mode_across_configs() {
    for &(n, nb) in &[(64usize, 8usize), (96, 32), (80, 20)] {
        let a = ft_hess_repro::matrix::random::uniform(n, n, n as u64);
        let full = ft_gehrd_hybrid(
            &a,
            &FtConfig::with_nb(nb),
            &mut full_ctx(),
            &mut FaultPlan::none(),
        );
        let mut tctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::TimingOnly, 2);
        let timing = ft_gehrd_hybrid(
            &a,
            &FtConfig::with_nb(nb),
            &mut tctx,
            &mut FaultPlan::none(),
        );
        let d = (full.report.sim_seconds - timing.report.sim_seconds).abs();
        assert!(d < 1e-12, "n={n} nb={nb}: simulated time differs by {d}");
    }
}

#[test]
fn recovery_cost_visible_in_simulated_time() {
    // A recovered fault must cost simulated time (reverse + redo), and an
    // early fault must cost at least as much as a late one (larger panel).
    let n = 256;
    let nb = 32;
    let a = ft_hess_repro::matrix::Matrix::zeros(n, n);
    let mk = || HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::TimingOnly, 2);

    let clean = ft_gehrd_hybrid(
        &a,
        &FtConfig::with_nb(nb),
        &mut mk(),
        &mut FaultPlan::none(),
    )
    .report
    .sim_seconds;
    let early = {
        let mut plan = FaultPlan::one(1, Fault::add(100, 200, 1.0));
        ft_gehrd_hybrid(&a, &FtConfig::with_nb(nb), &mut mk(), &mut plan)
            .report
            .sim_seconds
    };
    let late = {
        let mut plan = FaultPlan::one(6, Fault::add(230, 240, 1.0));
        ft_gehrd_hybrid(&a, &FtConfig::with_nb(nb), &mut mk(), &mut plan)
            .report
            .sim_seconds
    };
    assert!(early > clean, "recovery must cost time: {early} vs {clean}");
    assert!(late > clean);
    assert!(
        early > late,
        "early faults redo more work: {early} vs {late}"
    );
}

#[test]
fn q_checksum_placement_ablation_timing() {
    // The paper overlaps the Q-checksum GEMVs with device work on the idle
    // host; serializing them on the device stream must cost at least as
    // much simulated time.
    let n = 2048;
    let a = ft_hess_repro::matrix::Matrix::zeros(n, n);
    let mk = || HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::TimingOnly, 2);
    let host = ft_gehrd_hybrid(
        &a,
        &FtConfig::with_nb(32),
        &mut mk(),
        &mut FaultPlan::none(),
    )
    .report
    .sim_seconds;
    let dev_cfg = FtConfig {
        q_checksums_on_host: false,
        ..FtConfig::with_nb(32)
    };
    let device = ft_gehrd_hybrid(&a, &dev_cfg, &mut mk(), &mut FaultPlan::none())
        .report
        .sim_seconds;
    assert!(
        device >= host,
        "device placement cannot be faster: host={host} device={device}"
    );
}

#[test]
fn baseline_overhead_headline_claim() {
    // The abstract's claim at paper scale: < 2% overhead vs the fault-
    // prone hybrid baseline (no faults) for N = 10110.
    let n = 10110;
    let nb = 32;
    let a = ft_hess_repro::matrix::Matrix::zeros(n, n);
    let mk = || HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::TimingOnly, 2);
    let base =
        gehrd_hybrid(&a, &HybridConfig { nb }, &mut mk(), &mut FaultPlan::none()).sim_seconds;
    let ft = ft_gehrd_hybrid(
        &a,
        &FtConfig::with_nb(nb),
        &mut mk(),
        &mut FaultPlan::none(),
    )
    .report
    .sim_seconds;
    let overhead = (ft - base) / base;
    assert!(
        overhead < 0.02,
        "headline claim: overhead {overhead:.4} must be < 2% at N = {n}"
    );
    assert!(overhead > 0.0, "FT cannot be free");
}

#[test]
fn more_streams_never_slower() {
    let n = 512;
    let a = ft_hess_repro::matrix::Matrix::zeros(n, n);
    let mut one = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::TimingOnly, 2);
    let t2 = gehrd_hybrid(
        &a,
        &HybridConfig { nb: 32 },
        &mut one,
        &mut FaultPlan::none(),
    )
    .sim_seconds;
    let mut four = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::TimingOnly, 4);
    let t4 = gehrd_hybrid(
        &a,
        &HybridConfig { nb: 32 },
        &mut four,
        &mut FaultPlan::none(),
    )
    .sim_seconds;
    assert!(t4 <= t2 + 1e-12);
}
