//! Tiny flag parser shared by the experiment binaries (avoids a CLI
//! dependency for five flags).

/// Parsed command-line options.
#[derive(Clone, Debug)]
pub struct Args {
    /// `--full`: run the paper's full size sweep (slow in real mode).
    pub full: bool,
    /// `--real`: force real-arithmetic execution where the default is the
    /// timing-only simulator.
    pub real: bool,
    /// `--nb <width>`: panel width override.
    pub nb: Option<usize>,
    /// `--sizes a,b,c`: explicit size list override.
    pub sizes: Option<Vec<usize>>,
    /// `--seed <u64>`: RNG seed override.
    pub seed: u64,
    /// `--trials <k>`: trials per experimental cell.
    pub trials: Option<usize>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            full: false,
            real: false,
            nb: None,
            sizes: None,
            seed: 42,
            trials: None,
        }
    }
}

impl Args {
    /// Parses `std::env::args()`-style input (first element ignored).
    pub fn parse<I: IntoIterator<Item = String>>(input: I) -> Result<Args, String> {
        let mut args = Args::default();
        let mut it = input.into_iter().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--full" => args.full = true,
                "--real" => args.real = true,
                "--nb" => {
                    let v = it.next().ok_or("--nb needs a value")?;
                    args.nb = Some(v.parse().map_err(|_| format!("bad --nb value: {v}"))?);
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    args.seed = v.parse().map_err(|_| format!("bad --seed value: {v}"))?;
                }
                "--trials" => {
                    let v = it.next().ok_or("--trials needs a value")?;
                    args.trials = Some(v.parse().map_err(|_| format!("bad --trials value: {v}"))?);
                }
                "--sizes" => {
                    let v = it.next().ok_or("--sizes needs a value")?;
                    let parsed: Result<Vec<usize>, _> =
                        v.split(',').map(|s| s.trim().parse::<usize>()).collect();
                    args.sizes = Some(parsed.map_err(|_| format!("bad --sizes list: {v}"))?);
                }
                "--help" | "-h" => {
                    return Err(
                        "flags: --full | --real | --nb <w> | --sizes a,b,c | --seed <u64> | --trials <k>"
                            .into(),
                    )
                }
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        Ok(args)
    }

    /// Parses the process arguments, exiting with usage on error.
    pub fn from_env() -> Args {
        match Args::parse(std::env::args()) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<Args, String> {
        let mut full = vec!["bin".to_string()];
        full.extend(v.iter().map(|s| s.to_string()));
        Args::parse(full)
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert!(!a.full);
        assert!(!a.real);
        assert_eq!(a.seed, 42);
        assert!(a.sizes.is_none());
    }

    #[test]
    fn all_flags() {
        let a = parse(&[
            "--full", "--real", "--nb", "64", "--sizes", "100,200", "--seed", "7", "--trials", "3",
        ])
        .unwrap();
        assert!(a.full && a.real);
        assert_eq!(a.nb, Some(64));
        assert_eq!(a.sizes, Some(vec![100, 200]));
        assert_eq!(a.seed, 7);
        assert_eq!(a.trials, Some(3));
    }

    #[test]
    fn errors() {
        assert!(parse(&["--nb"]).is_err());
        assert!(parse(&["--nb", "abc"]).is_err());
        assert!(parse(&["--what"]).is_err());
        assert!(parse(&["--sizes", "1,x"]).is_err());
    }
}
