//! Edge cases of the fault-tolerant drivers: degenerate sizes, extreme
//! configurations, and unusual threshold policies — the inputs a
//! downstream user will eventually throw at the library.

use ft_fault::{Fault, FaultPlan};
use ft_hessenberg::tridiag::{ft_sytd2, FtTridiagConfig};
use ft_hessenberg::{ft_gehrd_hybrid, gehrd_hybrid, FtConfig, HybridConfig, ThresholdPolicy};
use ft_hybrid::{CostModel, ExecMode, HybridCtx};
use ft_matrix::Matrix;

fn ctx() -> HybridCtx {
    HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2)
}

fn residual(a0: &Matrix, f: &ft_lapack::HessFactorization) -> f64 {
    ft_lapack::gehrd::factorization_residual(a0, &f.q(), &f.h())
}

#[test]
fn tiny_matrices_all_sizes() {
    for n in 0..8usize {
        let a = ft_matrix::random::uniform(n, n, 100 + n as u64);
        let out = ft_gehrd_hybrid(
            &a,
            &FtConfig::with_nb(4),
            &mut ctx(),
            &mut FaultPlan::none(),
        );
        let f = out.result.unwrap();
        assert_eq!(f.packed.rows(), n);
        if n >= 1 {
            assert!(f.h().is_upper_hessenberg());
        }
        if n >= 3 {
            assert!(residual(&a, &f) < 1e-13, "n={n}");
        } else {
            // No reduction work: output equals input.
            assert_eq!(f.packed, a);
        }
    }
}

#[test]
fn nb_larger_than_matrix() {
    let n = 20;
    let a = ft_matrix::random::uniform(n, n, 5);
    let out = ft_gehrd_hybrid(
        &a,
        &FtConfig::with_nb(256),
        &mut ctx(),
        &mut FaultPlan::none(),
    );
    let f = out.result.unwrap();
    assert!(residual(&a, &f) < 1e-13);
}

#[test]
fn nb_one() {
    let n = 24;
    let a = ft_matrix::random::uniform(n, n, 6);
    let mut plan = FaultPlan::one(5, Fault::add(15, 18, 0.4));
    let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(1), &mut ctx(), &mut plan);
    assert!(!out.report.recoveries.is_empty());
    let f = out.result.unwrap();
    assert!(residual(&a, &f) < 1e-12);
}

#[test]
fn absolute_threshold_policy() {
    let n = 48;
    let a = ft_matrix::random::uniform(n, n, 7);
    let cfg = FtConfig {
        threshold: ThresholdPolicy::Absolute(1e-8),
        ..FtConfig::with_nb(16)
    };
    // Clean run: no false positives at a sane absolute threshold.
    let out = ft_gehrd_hybrid(&a, &cfg, &mut ctx(), &mut FaultPlan::none());
    assert!(out.report.recoveries.is_empty());
    // Fault above the threshold: detected.
    let mut plan = FaultPlan::one(1, Fault::add(30, 40, 1e-4));
    let out = ft_gehrd_hybrid(&a, &cfg, &mut ctx(), &mut plan);
    assert!(!out.report.recoveries.is_empty());
}

#[test]
fn zero_recovery_attempts_reencodes_and_flags() {
    // max_recovery_attempts = 0 means detection can only fall back to a
    // checksum re-encode; the run must still terminate and flag itself.
    let n = 64;
    let a = ft_matrix::random::uniform(n, n, 8);
    let cfg = FtConfig {
        max_recovery_attempts: 0,
        ..FtConfig::with_nb(16)
    };
    let mut plan = FaultPlan::one(1, Fault::add(40, 50, 0.5));
    let out = ft_gehrd_hybrid(&a, &cfg, &mut ctx(), &mut plan);
    assert!(
        out.report.recoveries.iter().any(|r| !r.resolved),
        "must record the unhandled detection"
    );
}

#[test]
fn zero_matrix_input() {
    let n = 32;
    let a = Matrix::zeros(n, n);
    let out = ft_gehrd_hybrid(
        &a,
        &FtConfig::with_nb(8),
        &mut ctx(),
        &mut FaultPlan::none(),
    );
    let f = out.result.unwrap();
    assert_eq!(f.h().max_abs(), 0.0);
    assert!(
        out.report.recoveries.is_empty(),
        "zero matrix must not false-positive"
    );
}

#[test]
fn identity_matrix_input() {
    let n = 32;
    let a = Matrix::identity(n);
    let out = ft_gehrd_hybrid(
        &a,
        &FtConfig::with_nb(8),
        &mut ctx(),
        &mut FaultPlan::none(),
    );
    let f = out.result.unwrap();
    assert!(residual(&a, &f) < 1e-14);
    assert!(out.report.recoveries.is_empty());
}

#[test]
fn large_magnitude_data() {
    // Data at 1e9 scale: the scaled threshold must track the magnitude
    // (no false positives), and a proportionally large fault is caught.
    let n = 48;
    let mut a = ft_matrix::random::uniform(n, n, 9);
    a.scale(1e9);
    let out = ft_gehrd_hybrid(
        &a,
        &FtConfig::with_nb(16),
        &mut ctx(),
        &mut FaultPlan::none(),
    );
    assert!(
        out.report.recoveries.is_empty(),
        "{:?}",
        out.report.recoveries.len()
    );
    let mut plan = FaultPlan::one(1, Fault::add(30, 40, 1e6));
    let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(16), &mut ctx(), &mut plan);
    assert!(!out.report.recoveries.is_empty());
    let f = out.result.unwrap();
    assert!(residual(&a, &f) < 1e-12);
}

#[test]
fn tiny_magnitude_data() {
    let n = 48;
    let mut a = ft_matrix::random::uniform(n, n, 10);
    a.scale(1e-9);
    let mut plan = FaultPlan::one(1, Fault::add(30, 40, 1e-11));
    let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(16), &mut ctx(), &mut plan);
    assert!(
        !out.report.recoveries.is_empty(),
        "relative fault must be caught"
    );
    let f = out.result.unwrap();
    assert!(residual(&a, &f) < 1e-12);
}

#[test]
fn baseline_hybrid_tiny_sizes() {
    for n in 0..6usize {
        let a = ft_matrix::random::uniform(n, n, 200 + n as u64);
        let out = gehrd_hybrid(
            &a,
            &HybridConfig { nb: 4 },
            &mut ctx(),
            &mut FaultPlan::none(),
        );
        assert_eq!(out.result.unwrap().packed.rows(), n);
    }
}

#[test]
fn ft_tridiag_tiny_sizes() {
    for n in 0..6usize {
        let base = ft_matrix::random::symmetric(n.max(1), 300 + n as u64);
        let a = base.sub_matrix(0, 0, n, n);
        let out = ft_sytd2(&a, &FtTridiagConfig::default(), &mut FaultPlan::none());
        assert_eq!(out.result.d.len(), n);
        assert!(out.report.recoveries.is_empty());
    }
}

#[test]
fn multiple_streams_full_mode() {
    // More streams must not change the numerics.
    let n = 48;
    let a = ft_matrix::random::uniform(n, n, 11);
    let mut c1 = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
    let mut c4 = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 4);
    let f1 = ft_gehrd_hybrid(&a, &FtConfig::with_nb(16), &mut c1, &mut FaultPlan::none())
        .result
        .unwrap();
    let f4 = ft_gehrd_hybrid(&a, &FtConfig::with_nb(16), &mut c4, &mut FaultPlan::none())
        .result
        .unwrap();
    assert_eq!(
        f1.packed, f4.packed,
        "numerics must be stream-count independent"
    );
}
