//! Criterion bench: GEMM kernel variants (the device workhorse of the
//! trailing-matrix updates), plus the serial-vs-threaded backend
//! comparison behind the `FT_BLAS_BACKEND` knob.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ft_blas::{gemm, gemm_with_algo, with_backend, Backend, GemmAlgo, Trans};
use ft_matrix::Matrix;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("FT_BENCH_SMOKE")
        .map(|v| v != "0")
        .unwrap_or(false)
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let a = ft_matrix::random::uniform(n, n, 1);
        let b = ft_matrix::random::uniform(n, n, 2);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        for algo in [GemmAlgo::Reference, GemmAlgo::Blocked, GemmAlgo::Parallel] {
            group.bench_with_input(BenchmarkId::new(format!("{algo:?}"), n), &n, |bench, _| {
                let mut cmat = Matrix::zeros(n, n);
                bench.iter(|| {
                    gemm_with_algo(
                        algo,
                        Trans::No,
                        Trans::No,
                        1.0,
                        &a.as_view(),
                        &b.as_view(),
                        0.0,
                        &mut cmat.as_view_mut(),
                    );
                    std::hint::black_box(cmat.as_slice()[0]);
                });
            });
        }
    }
    group.finish();
}

/// Serial vs threaded backend on the default `gemm` entry point. The
/// threaded backend only engages above
/// `ft_blas::backend::PARALLEL_MIN_VOLUME`, so the sizes here are chosen
/// past the gate (the smoke run stays small and fast).
fn bench_gemm_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_backend");
    group.sample_size(10);
    let sizes: &[usize] = if smoke() { &[256] } else { &[512, 1024] };
    for &n in sizes {
        let a = ft_matrix::random::uniform(n, n, 1);
        let b = ft_matrix::random::uniform(n, n, 2);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        for backend in [Backend::Serial, Backend::Threaded(2), Backend::Threaded(4)] {
            let label = match backend {
                Backend::Serial => "serial".to_string(),
                Backend::Threaded(t) => format!("threaded{t}"),
            };
            group.bench_with_input(BenchmarkId::new(label, n), &n, |bench, _| {
                let mut cmat = Matrix::zeros(n, n);
                bench.iter(|| {
                    with_backend(backend, || {
                        gemm(
                            Trans::No,
                            Trans::No,
                            1.0,
                            &a.as_view(),
                            &b.as_view(),
                            0.0,
                            &mut cmat.as_view_mut(),
                        );
                    });
                    std::hint::black_box(cmat.as_slice()[0]);
                });
            });
        }
        // Headline number: direct wall-clock speedup of Threaded(4) over
        // Serial at this size.
        let iters = if smoke() { 1 } else { 3 };
        let time = |backend: Backend| {
            let mut cmat = Matrix::zeros(n, n);
            let t0 = Instant::now();
            for _ in 0..iters {
                with_backend(backend, || {
                    gemm(
                        Trans::No,
                        Trans::No,
                        1.0,
                        &a.as_view(),
                        &b.as_view(),
                        0.0,
                        &mut cmat.as_view_mut(),
                    );
                });
                std::hint::black_box(cmat.as_slice()[0]);
            }
            t0.elapsed().as_secs_f64() / iters as f64
        };
        let ts = time(Backend::Serial);
        let tt = time(Backend::Threaded(4));
        println!(
            "gemm backend speedup @ n={n}: serial {:.1} ms, threaded(4) {:.1} ms -> {:.2}x",
            ts * 1e3,
            tt * 1e3,
            ts / tt
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_gemm_backends);
criterion_main!(benches);
