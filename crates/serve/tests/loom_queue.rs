//! Loom models of [`ft_serve::BoundedQueue`]: racing producers/consumers
//! with close, FIFO-within-priority, and the timed-push windows. Run with
//! `RUSTFLAGS="--cfg loom" cargo test -p ft-serve --test loom_queue`.

#![cfg(loom)]

use ft_serve::queue::SubmitError;
use ft_serve::{BoundedQueue, Priority};
use loom::sync::Arc;
use std::time::Duration;

#[test]
fn racing_producers_lose_and_duplicate_nothing() {
    loom::model(|| {
        let q = Arc::new(BoundedQueue::new(4));
        let q1 = Arc::clone(&q);
        let q2 = Arc::clone(&q);
        let p1 = loom::thread::spawn(move || q1.try_push(Priority::High, 1).unwrap());
        let p2 = loom::thread::spawn(move || q2.try_push(Priority::Low, 2).unwrap());
        let qc = Arc::clone(&q);
        let c = loom::thread::spawn(move || (qc.pop().unwrap(), qc.pop().unwrap()));
        p1.join().unwrap();
        p2.join().unwrap();
        let (a, b) = c.join().unwrap();
        assert!(
            matches!((a, b), (1, 2) | (2, 1)),
            "lost or duplicated an item: popped ({a}, {b})"
        );
        q.close();
        assert_eq!(q.pop(), None, "closed+drained queue must report None");
    });
}

#[test]
fn fifo_within_a_priority_lane() {
    loom::model(|| {
        let q = Arc::new(BoundedQueue::new(4));
        let qp = Arc::clone(&q);
        let p = loom::thread::spawn(move || {
            qp.try_push(Priority::Normal, 1).unwrap();
            qp.try_push(Priority::Normal, 2).unwrap();
        });
        let qc = Arc::clone(&q);
        let c = loom::thread::spawn(move || (qc.pop().unwrap(), qc.pop().unwrap()));
        p.join().unwrap();
        assert_eq!(c.join().unwrap(), (1, 2), "FIFO within a lane violated");
    });
}

#[test]
fn close_racing_a_push_loses_nothing() {
    loom::model(|| {
        let q = Arc::new(BoundedQueue::new(2));
        let qp = Arc::clone(&q);
        let p = loom::thread::spawn(move || qp.try_push(Priority::Normal, 7).is_ok());
        q.close();
        let pushed = p.join().unwrap();
        let mut drained = 0;
        while let Some(v) = q.pop() {
            assert_eq!(v, 7);
            drained += 1;
        }
        assert_eq!(
            drained,
            usize::from(pushed),
            "push acceptance and drain count disagree"
        );
    });
}

#[test]
fn timed_push_against_a_consumer_succeeds_or_times_out() {
    loom::model(|| {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(Priority::Normal, 1).unwrap();
        let qp = Arc::clone(&q);
        let p = loom::thread::spawn(move || {
            qp.push_timeout(Priority::Normal, 2, Duration::from_millis(5))
                .map_err(|(e, _)| e)
        });
        let qc = Arc::clone(&q);
        let c = loom::thread::spawn(move || qc.pop().unwrap());
        assert_eq!(c.join().unwrap(), 1, "FIFO: the pre-queued item pops first");
        let res = p.join().unwrap();
        q.close();
        match res {
            Ok(()) => assert_eq!(q.pop(), Some(2), "accepted push must be poppable"),
            Err(SubmitError::Timeout) => {}
            Err(e) => panic!("unexpected submit error: {e:?}"),
        }
        assert_eq!(q.pop(), None);
    });
}

#[test]
fn close_releases_a_blocked_pusher() {
    loom::model(|| {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(Priority::Normal, 1).unwrap();
        let qp = Arc::clone(&q);
        let p = loom::thread::spawn(move || {
            qp.push_timeout(Priority::Normal, 2, Duration::from_secs(1))
                .map_err(|(e, _)| e)
        });
        q.close();
        // The queue stays full, so the push can only fail: Closed once the
        // close lands, Timeout if the timed wait expires first. Blocking
        // forever (a missed close wakeup) would be a deadlock here.
        let res = p.join().unwrap();
        assert!(
            matches!(res, Err(SubmitError::Closed) | Err(SubmitError::Timeout)),
            "blocked push must fail after close: {res:?}"
        );
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    });
}
