//! Property-based tests of the BLAS kernels' algebraic laws. The unit
//! tests check known answers; these check the *relationships* that the
//! factorization algorithms silently rely on, across random shapes.

use ft_blas::{
    axpy, dot, gemm, gemm_ref, gemm_with_algo, nrm2, scal, trmm, trsm, Diag, GemmAlgo, Side, Trans,
    Uplo,
};
use ft_matrix::{max_abs_diff, Matrix};
use proptest::prelude::*;

fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    ft_matrix::random::uniform(rows, cols, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All GEMM implementations agree on arbitrary shapes.
    #[test]
    fn gemm_implementations_agree(
        m in 1usize..48,
        n in 1usize..48,
        k in 1usize..48,
        seed in any::<u64>(),
        ta in prop::bool::ANY,
        tb in prop::bool::ANY,
    ) {
        let ta = if ta { Trans::Yes } else { Trans::No };
        let tb = if tb { Trans::Yes } else { Trans::No };
        let a = match ta { Trans::No => mat(m, k, seed), Trans::Yes => mat(k, m, seed) };
        let b = match tb { Trans::No => mat(k, n, seed ^ 1), Trans::Yes => mat(n, k, seed ^ 1) };
        let mut c1 = mat(m, n, seed ^ 2);
        let mut c2 = c1.clone();
        gemm_ref(ta, tb, 1.3, &a.as_view(), &b.as_view(), 0.7, &mut c1.as_view_mut());
        gemm_with_algo(GemmAlgo::Blocked, ta, tb, 1.3, &a.as_view(), &b.as_view(), 0.7, &mut c2.as_view_mut());
        prop_assert!(max_abs_diff(&c1, &c2) < 1e-11);
    }

    /// (A·B)·C = A·(B·C) up to roundoff.
    #[test]
    fn gemm_associativity(
        m in 1usize..16,
        n in 1usize..16,
        k in 1usize..16,
        l in 1usize..16,
        seed in any::<u64>(),
    ) {
        let a = mat(m, k, seed);
        let b = mat(k, l, seed ^ 1);
        let c = mat(l, n, seed ^ 2);
        let mut ab = Matrix::zeros(m, l);
        gemm(Trans::No, Trans::No, 1.0, &a.as_view(), &b.as_view(), 0.0, &mut ab.as_view_mut());
        let mut abc1 = Matrix::zeros(m, n);
        gemm(Trans::No, Trans::No, 1.0, &ab.as_view(), &c.as_view(), 0.0, &mut abc1.as_view_mut());
        let mut bc = Matrix::zeros(k, n);
        gemm(Trans::No, Trans::No, 1.0, &b.as_view(), &c.as_view(), 0.0, &mut bc.as_view_mut());
        let mut abc2 = Matrix::zeros(m, n);
        gemm(Trans::No, Trans::No, 1.0, &a.as_view(), &bc.as_view(), 0.0, &mut abc2.as_view_mut());
        prop_assert!(max_abs_diff(&abc1, &abc2) < 1e-10 * (k * l) as f64);
    }

    /// Transpose identity: (A·B)ᵀ = Bᵀ·Aᵀ, expressed through the trans flags.
    #[test]
    fn gemm_transpose_identity(m in 1usize..20, n in 1usize..20, k in 1usize..20, seed in any::<u64>()) {
        let a = mat(m, k, seed);
        let b = mat(k, n, seed ^ 5);
        let mut ab = Matrix::zeros(m, n);
        gemm(Trans::No, Trans::No, 1.0, &a.as_view(), &b.as_view(), 0.0, &mut ab.as_view_mut());
        // (AB)ᵀ computed as Bᵀ·Aᵀ via flags on the original operands.
        let mut btat = Matrix::zeros(n, m);
        gemm(Trans::Yes, Trans::Yes, 1.0, &b.as_view(), &a.as_view(), 0.0, &mut btat.as_view_mut());
        prop_assert!(max_abs_diff(&ab.transpose(), &btat) < 1e-12);
    }

    /// trsm undoes trmm for every flag combination.
    #[test]
    fn trsm_inverts_trmm(
        m in 1usize..12,
        n in 1usize..12,
        seed in any::<u64>(),
        left in prop::bool::ANY,
        upper in prop::bool::ANY,
        trans in prop::bool::ANY,
        unit in prop::bool::ANY,
    ) {
        let side = if left { Side::Left } else { Side::Right };
        let uplo = if upper { Uplo::Upper } else { Uplo::Lower };
        let tr = if trans { Trans::Yes } else { Trans::No };
        let di = if unit { Diag::Unit } else { Diag::NonUnit };
        let order = if left { m } else { n };
        let mut t = mat(order, order, seed);
        for i in 0..order {
            t[(i, i)] = 2.0 + t[(i, i)].abs(); // well conditioned
        }
        let b0 = mat(m, n, seed ^ 9);
        let mut b = b0.clone();
        trmm(side, uplo, tr, di, 1.0, &t.as_view(), &mut b.as_view_mut());
        trsm(side, uplo, tr, di, 1.0, &t.as_view(), &mut b.as_view_mut());
        prop_assert!(max_abs_diff(&b, &b0) < 1e-10);
    }

    /// dot is bilinear; nrm2 is absolutely homogeneous.
    #[test]
    fn level1_laws(len in 0usize..64, alpha in -10.0f64..10.0, seed in any::<u64>()) {
        let xsrc = mat(len.max(1), 1, seed);
        let ysrc = mat(len.max(1), 1, seed ^ 3);
        let x = &xsrc.as_slice()[..len];
        let y = &ysrc.as_slice()[..len];
        // dot(αx, y) = α·dot(x, y)
        let mut ax = x.to_vec();
        scal(alpha, &mut ax);
        prop_assert!((dot(&ax, y) - alpha * dot(x, y)).abs() < 1e-10 * (1.0 + alpha.abs()) * len.max(1) as f64);
        // ‖αx‖ = |α|·‖x‖
        prop_assert!((nrm2(&ax) - alpha.abs() * nrm2(x)).abs() < 1e-11 * (1.0 + alpha.abs()) * len.max(1) as f64);
        // axpy then axpy with −α is identity
        let mut z = y.to_vec();
        axpy(alpha, x, &mut z);
        axpy(-alpha, x, &mut z);
        for (a, b) in z.iter().zip(y) {
            prop_assert!((a - b).abs() < 1e-11 * (1.0 + alpha.abs()));
        }
    }

    /// Matrix 1-norm and ∞-norm are transpose twins.
    #[test]
    fn norm_duality(m in 1usize..24, n in 1usize..24, seed in any::<u64>()) {
        let a = mat(m, n, seed);
        prop_assert!((a.one_norm() - a.transpose().inf_norm()).abs() < 1e-12);
        prop_assert!((a.inf_norm() - a.transpose().one_norm()).abs() < 1e-12);
    }
}
