//! Cost model: converts operation descriptors into simulated seconds.
//!
//! Rates are calibrated to the paper's testbed (Table I): a Tesla K40c
//! (1.43 Tflop/s DP peak, ~288 GB/s GDDR5) over PCIe gen-3 (~6 GB/s
//! effective, ~10 µs per transfer), driven by a Sandy Bridge Xeon core
//! (10.4 Gflop/s per-core peak, as Table I lists).

/// What kind of operation is being charged; selects which rate applies and
/// which statistics bucket the time lands in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Host panel factorization work (level-2-heavy, latency-bound).
    HostPanel,
    /// Host BLAS-1/2 work (e.g. the overlapped Q-checksum GEMVs).
    HostVector,
    /// Host BLAS-3 work.
    HostGemm,
    /// Device GEMM (compute-bound).
    DeviceGemm,
    /// Device GEMV / checksum encodings (memory-bandwidth-bound).
    DeviceGemv,
    /// Device element-wise / reduction work (bandwidth-bound).
    DeviceVector,
    /// Host→device or device→host copy over the link.
    Transfer,
}

impl OpClass {
    /// `true` if this class runs on a device stream.
    pub fn is_device(self) -> bool {
        matches!(
            self,
            OpClass::DeviceGemm | OpClass::DeviceGemv | OpClass::DeviceVector
        )
    }

    /// `true` if this class runs on the host.
    pub fn is_host(self) -> bool {
        matches!(
            self,
            OpClass::HostPanel | OpClass::HostVector | OpClass::HostGemm
        )
    }

    /// The variant name as a static string — the stable label used by
    /// [`crate::stats::ExecStats::summary`] columns and the simulated-clock
    /// trace events (`ft_trace::record_sim` needs `&'static str`).
    pub const fn name(self) -> &'static str {
        match self {
            OpClass::HostPanel => "HostPanel",
            OpClass::HostVector => "HostVector",
            OpClass::HostGemm => "HostGemm",
            OpClass::DeviceGemm => "DeviceGemm",
            OpClass::DeviceGemv => "DeviceGemv",
            OpClass::DeviceVector => "DeviceVector",
            OpClass::Transfer => "Transfer",
        }
    }

    /// All classes, for statistics iteration.
    pub const ALL: [OpClass; 7] = [
        OpClass::HostPanel,
        OpClass::HostVector,
        OpClass::HostGemm,
        OpClass::DeviceGemm,
        OpClass::DeviceGemv,
        OpClass::DeviceVector,
        OpClass::Transfer,
    ];
}

/// The size of an operation: floating-point operations for compute
/// classes, bytes moved for transfers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Work {
    /// Floating-point operation count.
    Flops(f64),
    /// Bytes moved (transfers and explicitly bandwidth-priced work).
    Bytes(f64),
}

impl Work {
    /// Flop count helper for `m × n × k` GEMM.
    pub fn gemm(m: usize, n: usize, k: usize) -> Work {
        Work::Flops(2.0 * m as f64 * n as f64 * k as f64)
    }

    /// Flop count helper for `m × n` GEMV.
    pub fn gemv(m: usize, n: usize) -> Work {
        Work::Flops(2.0 * m as f64 * n as f64)
    }

    /// Bytes for `count` f64 elements.
    pub fn f64s(count: usize) -> Work {
        Work::Bytes(8.0 * count as f64)
    }
}

/// Simulated platform rates.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Human-readable platform name (Table I row).
    pub name: &'static str,
    /// Host throughput for panel factorizations, Gflop/s.
    pub host_panel_gflops: f64,
    /// Host throughput for level-1/2 vector work, Gflop/s.
    pub host_vector_gflops: f64,
    /// Host throughput for GEMM, Gflop/s.
    pub host_gemm_gflops: f64,
    /// Device sustained DGEMM throughput, Gflop/s.
    pub device_gemm_gflops: f64,
    /// Device memory bandwidth, GB/s (prices GEMV-class kernels at
    /// 4 bytes per flop — one f64 read per multiply-add).
    pub device_bandwidth_gbs: f64,
    /// Link (PCIe) bandwidth, GB/s.
    pub link_bandwidth_gbs: f64,
    /// Fixed latency per transfer, seconds.
    pub link_latency_s: f64,
    /// Fixed latency per device kernel launch, seconds.
    pub kernel_latency_s: f64,
    /// Effective host-core speedup for throughput-bound host work
    /// ([`OpClass::HostGemm`] and [`OpClass::HostVector`]): the simulated
    /// counterpart of running the host BLAS on a threaded backend.
    /// `1.0` (the default) is the historical single-core model; values
    /// below `1.0` are clamped. [`OpClass::HostPanel`] is deliberately
    /// *not* scaled — the panel factorization is latency-bound (DLAHR2's
    /// chained GEMVs), which is exactly why the paper offloads its GEMVs
    /// to the device instead of adding host cores.
    pub host_parallelism: f64,
}

impl CostModel {
    /// The paper's testbed (Table I): Xeon E5-2670 + Tesla K40c, MKL 11.2 +
    /// CUBLAS 7.0. Device GEMM is derated to ~75 % of the 1.43 Tflop/s
    /// peak; the host panel rate reflects a latency-bound DLAHR2 on a few
    /// Sandy Bridge cores.
    pub fn k40c_sandy_bridge() -> Self {
        CostModel {
            name: "Intel Xeon E5-2670 (2.6 GHz) + NVIDIA Tesla K40c (745 MHz)",
            host_panel_gflops: 9.0,
            host_vector_gflops: 6.0,
            host_gemm_gflops: 20.0,
            device_gemm_gflops: 1070.0,
            device_bandwidth_gbs: 288.0 * 0.75,
            link_bandwidth_gbs: 6.0,
            link_latency_s: 10e-6,
            kernel_latency_s: 5e-6,
            host_parallelism: 1.0,
        }
    }

    /// A deliberately slow, latency-free model where every operation costs
    /// `flops` (or `bytes`) seconds exactly — used by unit tests to make
    /// timeline arithmetic predictable.
    pub fn unit_test_model() -> Self {
        CostModel {
            name: "unit-test (1 flop = 1 s, 1 byte = 1 s)",
            host_panel_gflops: 1e-9,
            host_vector_gflops: 1e-9,
            host_gemm_gflops: 1e-9,
            device_gemm_gflops: 1e-9,
            device_bandwidth_gbs: 4e-9, // 4 bytes/flop pricing ⇒ 1 flop = 1 s
            link_bandwidth_gbs: 1e-9,
            link_latency_s: 0.0,
            kernel_latency_s: 0.0,
            host_parallelism: 1.0,
        }
    }

    /// Returns the model with the host-parallelism factor set (builder
    /// form; see [`CostModel::host_parallelism`]).
    pub fn with_host_parallelism(mut self, factor: f64) -> Self {
        self.host_parallelism = factor;
        self
    }

    /// Simulated seconds for `work` of class `class`.
    pub fn seconds(&self, class: OpClass, work: Work) -> f64 {
        let hp = self.host_parallelism.max(1.0);
        let base = match (class, work) {
            (OpClass::HostPanel, Work::Flops(f)) => f / (self.host_panel_gflops * 1e9),
            (OpClass::HostVector, Work::Flops(f)) => f / (self.host_vector_gflops * 1e9 * hp),
            (OpClass::HostGemm, Work::Flops(f)) => f / (self.host_gemm_gflops * 1e9 * hp),
            (OpClass::DeviceGemm, Work::Flops(f)) => {
                self.kernel_latency_s + f / (self.device_gemm_gflops * 1e9)
            }
            (OpClass::DeviceGemv, Work::Flops(f)) | (OpClass::DeviceVector, Work::Flops(f)) => {
                // Memory-bound: ~4 bytes of traffic per flop.
                self.kernel_latency_s + 4.0 * f / (self.device_bandwidth_gbs * 1e9)
            }
            (OpClass::DeviceGemm, Work::Bytes(b))
            | (OpClass::DeviceGemv, Work::Bytes(b))
            | (OpClass::DeviceVector, Work::Bytes(b)) => {
                self.kernel_latency_s + b / (self.device_bandwidth_gbs * 1e9)
            }
            (OpClass::Transfer, Work::Bytes(b)) => {
                self.link_latency_s + b / (self.link_bandwidth_gbs * 1e9)
            }
            (OpClass::Transfer, Work::Flops(f)) => {
                // Interpreting flops as f64 elements would be a caller bug;
                // price it as bytes to stay monotone but flag in debug.
                debug_assert!(false, "Transfer charged in flops");
                self.link_latency_s + f / (self.link_bandwidth_gbs * 1e9)
            }
            (c, Work::Bytes(b)) => {
                // Host classes priced in bytes: use link-class bandwidth of
                // the host memory system (~20 GB/s).
                let _ = c;
                b / 20e9
            }
        };
        base.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40c_preset_orders_of_magnitude() {
        let m = CostModel::k40c_sandy_bridge();
        // A 1024³ DGEMM ≈ 2·10⁹ flops ⇒ ~2 ms on the device.
        let t = m.seconds(OpClass::DeviceGemm, Work::gemm(1024, 1024, 1024));
        assert!(t > 1e-3 && t < 5e-3, "device gemm time {t}");
        // The same GEMM on the host is ~100 ms.
        let th = m.seconds(OpClass::HostGemm, Work::gemm(1024, 1024, 1024));
        assert!(th > 50.0 * t, "host should be much slower: {th} vs {t}");
        // An 8 MB transfer ≈ 1.3 ms.
        let tx = m.seconds(OpClass::Transfer, Work::f64s(1024 * 1024));
        assert!(tx > 1e-3 && tx < 3e-3, "transfer time {tx}");
    }

    #[test]
    fn unit_model_is_identity() {
        let m = CostModel::unit_test_model();
        assert_eq!(m.seconds(OpClass::HostPanel, Work::Flops(7.0)), 7.0);
        assert_eq!(m.seconds(OpClass::DeviceGemm, Work::Flops(3.0)), 3.0);
        assert_eq!(m.seconds(OpClass::DeviceGemv, Work::Flops(2.0)), 2.0);
        assert_eq!(m.seconds(OpClass::Transfer, Work::Bytes(5.0)), 5.0);
    }

    #[test]
    fn gemv_is_bandwidth_bound() {
        let m = CostModel::k40c_sandy_bridge();
        let flops = Work::gemv(4096, 4096);
        let tv = m.seconds(OpClass::DeviceGemv, flops);
        let tm = m.seconds(OpClass::DeviceGemm, flops);
        assert!(
            tv > 3.0 * tm,
            "gemv {tv} should be much slower than gemm {tm} at equal flops"
        );
    }

    #[test]
    fn host_parallelism_scales_throughput_classes_only() {
        let base = CostModel::unit_test_model();
        let par = CostModel::unit_test_model().with_host_parallelism(4.0);
        let w = Work::Flops(8.0);
        assert_eq!(par.seconds(OpClass::HostGemm, w), 2.0);
        assert_eq!(par.seconds(OpClass::HostVector, w), 2.0);
        // Latency-bound panel work and all device work are unaffected.
        assert_eq!(
            par.seconds(OpClass::HostPanel, w),
            base.seconds(OpClass::HostPanel, w)
        );
        assert_eq!(
            par.seconds(OpClass::DeviceGemm, w),
            base.seconds(OpClass::DeviceGemm, w)
        );
        // Sub-unit factors clamp to the serial model.
        let slow = CostModel::unit_test_model().with_host_parallelism(0.25);
        assert_eq!(slow.seconds(OpClass::HostGemm, w), 8.0);
    }

    #[test]
    fn work_helpers() {
        assert_eq!(Work::gemm(2, 3, 4), Work::Flops(48.0));
        assert_eq!(Work::gemv(3, 5), Work::Flops(30.0));
        assert_eq!(Work::f64s(10), Work::Bytes(80.0));
    }
}
