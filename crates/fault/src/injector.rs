//! Scheduled fault plans: deterministic injection hooks for the
//! factorization drivers.

use crate::bitflip::flip_bit;
use ft_matrix::Matrix;

/// How the element is corrupted.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Flip one bit of the IEEE-754 representation.
    BitFlip(u8),
    /// Add a fixed perturbation (controlled-magnitude experiments).
    Add(f64),
    /// Overwrite with a fixed value.
    Set(f64),
}

impl FaultKind {
    /// The corrupted value.
    pub fn apply(self, v: f64) -> f64 {
        match self {
            FaultKind::BitFlip(bit) => flip_bit(v, bit),
            FaultKind::Add(delta) => v + delta,
            FaultKind::Set(x) => x,
        }
    }
}

/// Instrumentation points inside one panel iteration, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Before the panel is sent to the host (iteration boundary — where
    /// the paper's Figure 2 faults strike).
    IterationStart,
    /// After the panel factorization, before the trailing updates.
    AfterPanel,
    /// After the trailing updates, before detection runs.
    BeforeDetection,
}

/// One fault: a location plus a corruption.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fault {
    /// Target row.
    pub row: usize,
    /// Target column.
    pub col: usize,
    /// Corruption applied to the element.
    pub kind: FaultKind,
}

impl Fault {
    /// Additive fault of magnitude `delta` at `(row, col)` — the
    /// controlled corruption used by most experiments.
    pub fn add(row: usize, col: usize, delta: f64) -> Self {
        Fault {
            row,
            col,
            kind: FaultKind::Add(delta),
        }
    }

    /// Bit-flip fault.
    pub fn bitflip(row: usize, col: usize, bit: u8) -> Self {
        Fault {
            row,
            col,
            kind: FaultKind::BitFlip(bit),
        }
    }
}

/// A fault pinned to an iteration and phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduledFault {
    /// Panel iteration at which to fire.
    pub iteration: usize,
    /// Instrumentation point within the iteration.
    pub phase: Phase,
    /// The fault itself.
    pub fault: Fault,
}

/// A record of an injection that actually happened.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AppliedFault {
    /// Iteration at which the injection happened.
    pub iteration: usize,
    /// Instrumentation point.
    pub phase: Phase,
    /// Corrupted row.
    pub row: usize,
    /// Corrupted column.
    pub col: usize,
    /// Value before corruption.
    pub old: f64,
    /// Value after corruption.
    pub new: f64,
}

/// An ordered plan of scheduled faults. Drivers call
/// [`FaultPlan::apply_due`] at each instrumentation point; the plan
/// injects everything due and records what it did.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    pending: Vec<ScheduledFault>,
    applied: Vec<AppliedFault>,
}

impl FaultPlan {
    /// The empty plan (fault-free execution).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Plan with a single fault at the end of `iteration`.
    pub fn one(iteration: usize, fault: Fault) -> Self {
        FaultPlan::new(vec![ScheduledFault {
            iteration,
            phase: Phase::IterationStart,
            fault,
        }])
    }

    /// Plan from explicit scheduled faults.
    pub fn new(faults: Vec<ScheduledFault>) -> Self {
        FaultPlan {
            pending: faults,
            applied: vec![],
        }
    }

    /// Adds another scheduled fault.
    pub fn push(&mut self, f: ScheduledFault) {
        self.pending.push(f);
    }

    /// `true` if no faults remain to inject.
    pub fn is_exhausted(&self) -> bool {
        self.pending.is_empty()
    }

    /// Faults injected so far.
    pub fn applied(&self) -> &[AppliedFault] {
        &self.applied
    }

    /// Faults due at `(iteration, phase)` without applying them (used by
    /// timing-only simulations that never touch real data).
    pub fn peek_due(&self, iteration: usize, phase: Phase) -> Vec<ScheduledFault> {
        self.pending
            .iter()
            .filter(|f| f.iteration == iteration && f.phase == phase)
            .copied()
            .collect()
    }

    /// Marks all faults due at `(iteration, phase)` as handled without
    /// touching data (timing-only mode).
    pub fn consume_due(&mut self, iteration: usize, phase: Phase) -> usize {
        let before = self.pending.len();
        self.pending
            .retain(|f| !(f.iteration == iteration && f.phase == phase));
        before - self.pending.len()
    }

    /// Injects every fault due at `(iteration, phase)` into `m`, returning
    /// the applied records. Out-of-bounds faults panic (a plan bug).
    pub fn apply_due(
        &mut self,
        iteration: usize,
        phase: Phase,
        m: &mut Matrix,
    ) -> Vec<AppliedFault> {
        let mut done = vec![];
        let mut rest = Vec::with_capacity(self.pending.len());
        for sf in self.pending.drain(..) {
            if sf.iteration == iteration && sf.phase == phase {
                let old = m[(sf.fault.row, sf.fault.col)];
                let new = sf.fault.kind.apply(old);
                m[(sf.fault.row, sf.fault.col)] = new;
                let rec = AppliedFault {
                    iteration,
                    phase,
                    row: sf.fault.row,
                    col: sf.fault.col,
                    old,
                    new,
                };
                done.push(rec);
            } else {
                rest.push(sf);
            }
        }
        self.pending = rest;
        self.applied.extend_from_slice(&done);
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_apply() {
        assert_eq!(FaultKind::Add(0.5).apply(1.0), 1.5);
        assert_eq!(FaultKind::Set(-3.0).apply(1.0), -3.0);
        assert_eq!(FaultKind::BitFlip(63).apply(2.0), -2.0);
    }

    #[test]
    fn plan_applies_at_the_right_point() {
        let mut m = Matrix::zeros(4, 4);
        m[(1, 2)] = 10.0;
        let mut plan = FaultPlan::one(3, Fault::add(1, 2, 1.0));

        assert!(plan.apply_due(2, Phase::IterationStart, &mut m).is_empty());
        assert!(plan.apply_due(3, Phase::AfterPanel, &mut m).is_empty());
        assert_eq!(m[(1, 2)], 10.0);

        let done = plan.apply_due(3, Phase::IterationStart, &mut m);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].old, 10.0);
        assert_eq!(done[0].new, 11.0);
        assert_eq!(m[(1, 2)], 11.0);
        assert!(plan.is_exhausted());
        assert_eq!(plan.applied().len(), 1);
    }

    #[test]
    fn multiple_simultaneous_faults() {
        let mut m = Matrix::zeros(5, 5);
        let mut plan = FaultPlan::new(vec![
            ScheduledFault {
                iteration: 1,
                phase: Phase::IterationStart,
                fault: Fault::add(0, 0, 1.0),
            },
            ScheduledFault {
                iteration: 1,
                phase: Phase::IterationStart,
                fault: Fault::add(2, 3, 2.0),
            },
            ScheduledFault {
                iteration: 2,
                phase: Phase::IterationStart,
                fault: Fault::add(4, 4, 3.0),
            },
        ]);
        let done = plan.apply_due(1, Phase::IterationStart, &mut m);
        assert_eq!(done.len(), 2);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(2, 3)], 2.0);
        assert_eq!(m[(4, 4)], 0.0);
        assert!(!plan.is_exhausted());
    }

    #[test]
    fn peek_and_consume_for_timing_mode() {
        let plan0 = FaultPlan::one(2, Fault::bitflip(1, 1, 10));
        let mut plan = plan0.clone();
        assert_eq!(plan.peek_due(2, Phase::IterationStart).len(), 1);
        assert_eq!(plan.peek_due(1, Phase::IterationStart).len(), 0);
        assert_eq!(plan.consume_due(2, Phase::IterationStart), 1);
        assert!(plan.is_exhausted());
        assert!(
            plan.applied().is_empty(),
            "consume does not fabricate records"
        );
    }
}
