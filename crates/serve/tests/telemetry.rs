//! End-to-end telemetry contract: one doubly-faulted job that needs an
//! escalated retry must leave a fully attributed trail across every
//! observability surface —
//!
//! * **spans**: `serve.run` (and the algorithm spans inside it) carry
//!   the ambient [`ft_trace::TraceCtx`], with the service-assigned job
//!   id and distinct 0-based attempt numbers for the two executions;
//! * **counters/histograms**: the retry is counted and every serve
//!   registry family resolves against the declared `names.rs` registry
//!   through a live Prometheus scrape;
//! * **fault journal**: detection/recovery records exist for both
//!   attempts, tagged with the same job id and distinct attempts;
//! * **flight recorder**: a forced dump parses back into events that
//!   replay into the chrome-trace sink.
//!
//! Trace state is process-global, so the whole contract is pinned by one
//! test function.

use ft_fault::{Fault, FaultPlan, Phase, ScheduledFault};
use ft_hessenberg::FtConfig;
use ft_serve::{FaultSpec, JobSpec, JobStatus, Service, ServiceConfig, Shutdown};
use ft_trace::TraceMode;
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::TcpStream;

/// A job that fails its first run (zero in-run recovery budget, two
/// injected faults) and is rescued by the escalated retry.
fn doubly_faulted_spec(n: usize, seed: u64) -> JobSpec {
    let mut s = JobSpec::new(ft_matrix::random::uniform(n, n, seed));
    s.cfg = FtConfig::with_nb(8);
    s.cfg.max_recovery_attempts = 0;
    s.faults = FaultSpec::Plan(FaultPlan::new(vec![
        ScheduledFault {
            iteration: 1,
            phase: Phase::IterationStart,
            fault: Fault::add(n / 2, n / 2 + 1, 0.41),
        },
        ScheduledFault {
            iteration: 2,
            phase: Phase::IterationStart,
            fault: Fault::add(n / 3, n / 3 + 2, 0.23),
        },
    ]));
    s
}

/// Every name family declared in `names.rs`, mangled the way the
/// Prometheus renderer does (`.` → `_`).
fn declared_prometheus_names() -> BTreeSet<String> {
    ft_trace::names::COUNTERS
        .iter()
        .chain(ft_trace::names::GAUGES)
        .chain(ft_trace::names::HISTOGRAMS)
        .map(|n| n.replace('.', "_"))
        .collect()
}

fn scrape(addr: std::net::SocketAddr) -> String {
    let mut s = TcpStream::connect(addr).expect("connect to metrics endpoint");
    s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("send");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read");
    out
}

#[test]
fn retried_job_is_attributed_across_spans_journal_recorder_and_scrape() {
    ft_trace::set_mode(TraceMode::Summary);
    ft_trace::recorder::configure(true, 4096, None);
    ft_trace::journal::clear();
    let mark = ft_trace::mark();

    let svc = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 16,
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServiceConfig::default()
    });
    let metrics_addr = svc.metrics_addr().expect("metrics endpoint must bind");

    let handle = svc.try_submit(doubly_faulted_spec(48, 17)).unwrap();
    let job_id = handle.id().0;
    let r = handle.wait();
    assert_eq!(r.status, JobStatus::Completed, "{:?}", r.report);
    assert!(r.attempts >= 2, "the weak first run must force a retry");

    // --- spans: both attempts appear, same job, distinct attempt ------
    let events = ft_trace::events_since(mark);
    let runs: Vec<_> = events.iter().filter(|e| e.name == "serve.run").collect();
    assert!(runs.len() >= 2, "one serve.run span per executed attempt");
    let attempts: BTreeSet<u32> = runs
        .iter()
        .map(|e| {
            let ctx = e.ctx.expect("serve.run must carry a trace context");
            assert_eq!(ctx.job_id, job_id, "span attributed to the wrong job");
            ctx.attempt
        })
        .collect();
    assert!(
        attempts.contains(&0) && attempts.contains(&1),
        "attempts must be distinct and 0-based: {attempts:?}"
    );
    // Algorithm spans inside the run inherit the context — including on
    // pool workers the executor dispatched to.
    assert!(
        events
            .iter()
            .any(|e| e.name != "serve.run" && e.ctx.is_some_and(|c| c.job_id == job_id)),
        "inner algorithm spans must inherit the job context"
    );

    // --- fault journal: both attempts, same job ----------------------
    let journal = ft_trace::journal::snapshot();
    let mine: Vec<_> = journal
        .iter()
        .filter(|rec| rec.job_id == Some(job_id))
        .collect();
    assert!(!mine.is_empty(), "the faulted job must journal its faults");
    let journal_attempts: BTreeSet<u32> = mine.iter().map(|rec| rec.attempt).collect();
    assert!(
        journal_attempts.contains(&0) && journal_attempts.contains(&1),
        "journal must cover both attempts: {journal_attempts:?}"
    );
    for rec in &mine {
        assert!(!rec.phase.is_empty());
        assert!(!rec.protection.is_empty());
        assert!(rec.ts_us.is_finite());
    }
    // The failed first attempt gave up; the escalated retry resolved.
    assert!(mine.iter().any(|rec| rec.attempt == 0 && !rec.resolved));
    assert!(mine.iter().any(|rec| rec.attempt == 1 && rec.resolved));
    let jsonl = ft_trace::journal::to_jsonl(&journal);
    assert!(jsonl.contains("\"journal\""));
    assert!(jsonl.contains(&format!("\"job\":{job_id}")));

    // --- flight recorder: dump parses and replays into chrome JSON ---
    let dump = ft_trace::recorder::dump_string("telemetry-test");
    assert!(dump.contains("telemetry-test"));
    let replayed = ft_trace::recorder::parse_dump(&dump);
    assert!(
        replayed.iter().any(|e| e.name == "serve.run"),
        "the recorder must have retained the run spans"
    );
    assert!(replayed
        .iter()
        .any(|e| e.ctx.is_some_and(|c| c.job_id == job_id && c.attempt == 1)));
    let chrome = ft_trace::to_chrome_json(&replayed);
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("serve.run"));

    // --- live scrape: every family resolves against names.rs ---------
    let body = scrape(metrics_addr);
    let declared = declared_prometheus_names();
    let mut families = 0;
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            assert!(
                declared.contains(name),
                "scraped family {name} is not declared in names.rs"
            );
            families += 1;
        }
    }
    assert!(families > 0, "the scrape must expose at least one family");
    assert!(body.contains("serve_retries"));
    assert!(body.contains("serve_completed"));
    // Lane histograms render as summaries with quantile labels.
    assert!(body.contains("serve_latency_normal{quantile=\"0.999\"}"));

    // --- service counters --------------------------------------------
    let stats = svc.shutdown(Shutdown::Drain);
    assert!(stats.retries >= 1);
    assert_eq!(stats.completed, 1);
    // The lane breakdown saw the queue wait, both executions, and the
    // backoff sleep.
    let lane = &stats.lanes[ft_serve::Priority::Normal.index()];
    assert_eq!(lane.queue_wait.count, 1);
    assert!(lane.exec.count >= 2);
    assert!(lane.backoff.count >= 1);

    ft_trace::set_mode(TraceMode::Off);
    ft_trace::recorder::configure(false, 4096, None);
    let _ = ft_trace::take_events();
}
