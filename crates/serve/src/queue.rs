//! The bounded, priority-laned MPMC queue at the service's front door.
//!
//! Admission control is the backpressure mechanism: [`BoundedQueue::try_push`]
//! fails fast with [`SubmitError::QueueFull`] when the queue is at
//! capacity, and [`BoundedQueue::push_timeout`] blocks the caller until a
//! slot frees (bounded by the timeout). Capacity counts *queued* jobs
//! only — jobs being executed have left the queue.
//!
//! Ordering contract (pinned by `tests/queue_properties.rs`):
//!
//! * strict priority across lanes: a pop always returns the oldest item of
//!   the highest non-empty lane;
//! * FIFO within a lane;
//! * close/drain: after [`BoundedQueue::close`], pushes fail with
//!   [`SubmitError::Closed`]; pops drain the remaining items and then
//!   return `None` — no item is lost or duplicated.

use crate::job::Priority;
use crate::sync::{Condvar, Instant, Mutex};
use std::collections::VecDeque;
use std::time::Duration;

/// Why a submission was not accepted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity (fast-fail backpressure; retry later or
    /// use the blocking submit).
    QueueFull,
    /// The blocking submit timed out waiting for a slot.
    Timeout,
    /// The service is shutting down and accepts no new work.
    Closed,
    /// The job spec failed validation (e.g. a non-square matrix); the
    /// reason says what.
    InvalidSpec(&'static str),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "queue at capacity"),
            SubmitError::Timeout => write!(f, "timed out waiting for a queue slot"),
            SubmitError::Closed => write!(f, "service is shutting down"),
            SubmitError::InvalidSpec(why) => write!(f, "invalid job spec: {why}"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct Inner<T> {
    lanes: [VecDeque<T>; 3],
    len: usize,
    closed: bool,
}

/// Bounded MPMC priority queue (three strict-priority lanes, FIFO within
/// each).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity ≥ 1` items.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                len: 0,
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Currently queued items per priority lane, indexed by
    /// [`Priority::index`] (the per-lane depth gauges' source).
    pub fn lane_lens(&self) -> [usize; 3] {
        let g = self.inner.lock().unwrap();
        [g.lanes[0].len(), g.lanes[1].len(), g.lanes[2].len()]
    }

    /// `true` once [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Non-blocking push: fails with [`SubmitError::QueueFull`] at
    /// capacity or [`SubmitError::Closed`] after close, handing the item
    /// back either way.
    pub fn try_push(&self, priority: Priority, item: T) -> Result<(), (SubmitError, T)> {
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            return Err((SubmitError::Closed, item));
        }
        if g.len >= self.capacity {
            return Err((SubmitError::QueueFull, item));
        }
        g.lanes[priority.index()].push_back(item);
        g.len += 1;
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: waits up to `timeout` for a slot, then fails with
    /// [`SubmitError::Timeout`]. Fails immediately with
    /// [`SubmitError::Closed`] if the queue closes while waiting.
    pub fn push_timeout(
        &self,
        priority: Priority,
        item: T,
        timeout: Duration,
    ) -> Result<(), (SubmitError, T)> {
        let deadline = Instant::now() + timeout;
        let mut g = self.inner.lock().unwrap();
        loop {
            if g.closed {
                return Err((SubmitError::Closed, item));
            }
            if g.len < self.capacity {
                g.lanes[priority.index()].push_back(item);
                g.len += 1;
                drop(g);
                self.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err((SubmitError::Timeout, item));
            }
            let (guard, _res) = self.not_full.wait_timeout(g, deadline - now).unwrap();
            g = guard;
        }
    }

    fn pop_locked(g: &mut Inner<T>) -> Option<T> {
        for lane in g.lanes.iter_mut() {
            if let Some(item) = lane.pop_front() {
                g.len -= 1;
                return Some(item);
            }
        }
        None
    }

    /// Blocking pop: returns the oldest item of the highest non-empty
    /// lane, or `None` once the queue is closed *and* drained (the worker
    /// exit signal).
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if let Some(item) = Self::pop_locked(&mut g) {
                drop(g);
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).unwrap();
        }
    }

    /// Closes the queue: subsequent pushes fail with
    /// [`SubmitError::Closed`]; queued items remain poppable (drain
    /// semantics). Idempotent.
    pub fn close(&self) {
        let mut g = self.inner.lock().unwrap();
        g.closed = true;
        drop(g);
        // Wake every waiter: blocked pushers must fail, blocked poppers
        // must re-check the drain condition.
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Closes the queue and removes everything still queued (abort
    /// semantics), returning the removed items in pop order.
    pub fn close_and_drain(&self) -> Vec<T> {
        let mut g = self.inner.lock().unwrap();
        g.closed = true;
        let mut out = Vec::with_capacity(g.len);
        while let Some(item) = Self::pop_locked(&mut g) {
            out.push(item);
        }
        drop(g);
        self.not_full.notify_all();
        self.not_empty.notify_all();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_priority_then_fifo() {
        let q = BoundedQueue::new(8);
        q.try_push(Priority::Low, "l1").unwrap();
        q.try_push(Priority::Normal, "n1").unwrap();
        q.try_push(Priority::High, "h1").unwrap();
        q.try_push(Priority::Normal, "n2").unwrap();
        q.try_push(Priority::High, "h2").unwrap();
        let order: Vec<_> = (0..5).map(|_| q.pop().unwrap()).collect();
        assert_eq!(order, ["h1", "h2", "n1", "n2", "l1"]);
    }

    #[test]
    fn full_then_closed() {
        let q = BoundedQueue::new(2);
        q.try_push(Priority::Normal, 1).unwrap();
        q.try_push(Priority::Normal, 2).unwrap();
        let (e, item) = q.try_push(Priority::Normal, 3).unwrap_err();
        assert_eq!((e, item), (SubmitError::QueueFull, 3));
        let (e, _) = q
            .push_timeout(Priority::Normal, 4, Duration::from_millis(5))
            .unwrap_err();
        assert_eq!(e, SubmitError::Timeout);
        q.close();
        let (e, _) = q.try_push(Priority::Normal, 5).unwrap_err();
        assert_eq!(e, SubmitError::Closed);
        // Drain semantics: both queued items still come out, then None.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_proceeds_when_slot_frees() {
        let q = std::sync::Arc::new(BoundedQueue::new(1));
        q.try_push(Priority::Normal, 1).unwrap();
        let q2 = std::sync::Arc::clone(&q);
        let t = std::thread::spawn(move || {
            q2.push_timeout(Priority::Normal, 2, Duration::from_secs(5))
                .map_err(|(e, _)| e)
        });
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(q.pop(), Some(1));
        t.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_and_drain_returns_remainder() {
        let q = BoundedQueue::new(4);
        q.try_push(Priority::Low, 1).unwrap();
        q.try_push(Priority::High, 2).unwrap();
        assert_eq!(q.close_and_drain(), vec![2, 1]);
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }
}
