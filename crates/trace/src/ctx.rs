//! Trace-context propagation: which job (and which retry attempt) the
//! current thread is working for.
//!
//! `ft-serve` installs a [`TraceCtx`] around each executed attempt;
//! `ft-blas::pool` captures the caller's context at dispatch time and
//! re-installs it on the worker that runs each task. Every span event,
//! counter delta retained by the flight recorder, and fault-journal
//! record read the ambient context at record time, so the whole event
//! stream is attributable per job+attempt without threading a parameter
//! through every layer.
//!
//! The context is a thread-local `Cell` — reading it is two loads with
//! no synchronization, cheap enough to leave unconditional (it is not
//! gated on the `enabled` feature: a context with nothing recording is
//! simply never observed).

use std::cell::Cell;

/// The ambient trace context: one job, one attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// Service-assigned job id (`JobId.0` in `ft-serve`).
    pub job_id: u64,
    /// Zero-based attempt number (0 = first execution, 1 = first retry).
    pub attempt: u32,
}

thread_local! {
    // (job_id + 1, attempt); 0 in the first slot means "no context".
    static CTX: Cell<(u64, u32)> = const { Cell::new((0, 0)) };
}

/// The calling thread's current context, if one is installed.
#[inline]
pub fn current() -> Option<TraceCtx> {
    let (j, a) = CTX.with(Cell::get);
    if j == 0 {
        None
    } else {
        Some(TraceCtx {
            job_id: j - 1,
            attempt: a,
        })
    }
}

/// Installs `ctx` for the calling thread until the returned guard drops
/// (the previous context, if any, is restored — contexts nest).
#[must_use = "the context is uninstalled when the guard drops"]
pub fn push(ctx: TraceCtx) -> CtxGuard {
    let prev = CTX.with(|c| c.replace((ctx.job_id + 1, ctx.attempt)));
    CtxGuard { prev }
}

/// Re-installs `ctx` if it is `Some` (the captured-context shape used at
/// pool dispatch boundaries); a `None` leaves the ambient context alone.
#[must_use = "the context is uninstalled when the guard drops"]
pub fn push_opt(ctx: Option<TraceCtx>) -> Option<CtxGuard> {
    ctx.map(push)
}

/// RAII guard restoring the previously installed context on drop.
#[derive(Debug)]
pub struct CtxGuard {
    prev: (u64, u32),
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        CTX.with(|c| c.set(prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_by_default_and_restored_on_drop() {
        assert_eq!(current(), None);
        {
            let _g = push(TraceCtx {
                job_id: 7,
                attempt: 2,
            });
            assert_eq!(
                current(),
                Some(TraceCtx {
                    job_id: 7,
                    attempt: 2
                })
            );
            {
                let _inner = push(TraceCtx {
                    job_id: 8,
                    attempt: 0,
                });
                assert_eq!(current().map(|c| c.job_id), Some(8));
            }
            assert_eq!(current().map(|c| c.job_id), Some(7), "contexts nest");
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn not_inherited_across_threads_without_push() {
        let _g = push(TraceCtx {
            job_id: 1,
            attempt: 0,
        });
        let other = std::thread::spawn(current).join().unwrap();
        assert_eq!(other, None, "context is thread-local; pools re-install it");
    }
}
