//! `ft-check` binary: scans the workspace and exits non-zero on any
//! finding. Usage: `cargo run -p ft-check [workspace-root]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(default_root);
    match ft_check::scan_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!(
                "ft-check: clean ({} files scanned, rules FTC001-FTC006)",
                ft_check::count_scanned_files(&root)
            );
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!("ft-check: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("ft-check: error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root relative to this crate's manifest (stable under
/// `cargo run` from any directory).
fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}
