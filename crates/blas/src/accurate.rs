//! Accurate summation and dot products.
//!
//! The paper closes its numerical-stability discussion by pointing at
//! Castaldo, Whaley & Chronopoulos ("Reducing floating point error in dot
//! product using the superblock family of algorithms", SISC 2008 — the
//! paper's reference 27): every checksum in the ABFT scheme is a long sum
//! or dot product, so its rounding error determines how small a detection
//! threshold can be before false positives — and therefore how small a
//! corruption can be caught.
//!
//! Three accumulation schemes, in increasing accuracy (and cost):
//!
//! * **naive** — sequential accumulation, error `O(n·ε)`;
//! * **superblock/pairwise** — block the sum and combine partial sums in
//!   a tree, error `O(log n·ε)` at essentially streaming cost (this is
//!   the family reference 27 recommends);
//! * **compensated (Kahan/Neumaier)** — carries an explicit error term,
//!   error `O(ε)` independent of `n`, ~4× the flops.
//!
//! `ft-hessenberg`'s encoder can be switched between schemes
//! (`FtConfig::checksum_scheme`); the `ablations` harness quantifies what that
//! buys.

/// Neumaier's improved Kahan summation: error bounded by `O(ε)`
/// independent of the number of terms.
pub fn sum_compensated(x: &[f64]) -> f64 {
    let mut sum = 0.0f64;
    let mut comp = 0.0f64; // running compensation for lost low-order bits
    for &v in x {
        let t = sum + v;
        if sum.abs() >= v.abs() {
            comp += (sum - t) + v;
        } else {
            comp += (v - t) + sum;
        }
        sum = t;
    }
    sum + comp
}

/// Superblock width for [`sum_superblock`] (fits L1 and keeps the
/// combination tree shallow).
const SUPERBLOCK: usize = 64;

/// Superblock summation: accumulate blocks of [`SUPERBLOCK`] terms
/// naively (registers/L1), then combine the partial sums pairwise —
/// `O(ε·(B + log(n/B)))` error at streaming cost.
pub fn sum_superblock(x: &[f64]) -> f64 {
    if x.len() <= SUPERBLOCK {
        return x.iter().sum();
    }
    let mut partials: Vec<f64> = x.chunks(SUPERBLOCK).map(|c| c.iter().sum()).collect();
    // Pairwise tree over the partials.
    while partials.len() > 1 {
        let mut next = Vec::with_capacity(partials.len().div_ceil(2));
        for pair in partials.chunks(2) {
            next.push(pair.iter().sum());
        }
        partials = next;
    }
    partials[0]
}

/// Compensated dot product (Neumaier accumulation over the products).
pub fn dot_compensated(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot_compensated: length mismatch");
    let mut sum = 0.0f64;
    let mut comp = 0.0f64;
    for (&a, &b) in x.iter().zip(y) {
        let v = a * b;
        let t = sum + v;
        if sum.abs() >= v.abs() {
            comp += (sum - t) + v;
        } else {
            comp += (v - t) + sum;
        }
        sum = t;
    }
    sum + comp
}

/// Superblock dot product.
pub fn dot_superblock(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot_superblock: length mismatch");
    if x.len() <= SUPERBLOCK {
        return x.iter().zip(y).map(|(a, b)| a * b).sum();
    }
    let mut partials: Vec<f64> = x
        .chunks(SUPERBLOCK)
        .zip(y.chunks(SUPERBLOCK))
        .map(|(cx, cy)| cx.iter().zip(cy).map(|(a, b)| a * b).sum())
        .collect();
    while partials.len() > 1 {
        let mut next = Vec::with_capacity(partials.len().div_ceil(2));
        for pair in partials.chunks(2) {
            next.push(pair.iter().sum());
        }
        partials = next;
    }
    partials[0]
}

/// Which accumulation scheme a checksum producer should use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SumScheme {
    /// Sequential accumulation (what a plain BLAS GEMV does).
    #[default]
    Naive,
    /// Superblock/pairwise combination (reference 27's recommendation).
    Superblock,
    /// Neumaier-compensated.
    Compensated,
}

impl SumScheme {
    /// Sums `x` under this scheme.
    pub fn sum(self, x: &[f64]) -> f64 {
        match self {
            SumScheme::Naive => x.iter().sum(),
            SumScheme::Superblock => sum_superblock(x),
            SumScheme::Compensated => sum_compensated(x),
        }
    }

    /// Dot product under this scheme.
    pub fn dot(self, x: &[f64], y: &[f64]) -> f64 {
        match self {
            SumScheme::Naive => {
                assert_eq!(x.len(), y.len(), "dot: length mismatch");
                x.iter().zip(y).map(|(a, b)| a * b).sum()
            }
            SumScheme::Superblock => dot_superblock(x, y),
            SumScheme::Compensated => dot_compensated(x, y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An adversarial sum: many tiny values after one huge one, so naive
    /// accumulation loses them all.
    fn adversarial(n: usize) -> (Vec<f64>, f64) {
        let mut x = vec![1e8];
        x.extend(std::iter::repeat_n(1e-8, n));
        x.push(-1e8);
        let exact = 1e-8 * n as f64; // the tiny parts survive exactly
        (x, exact)
    }

    #[test]
    fn compensated_beats_naive_on_adversarial_input() {
        let (x, exact) = adversarial(100_000);
        let naive: f64 = x.iter().sum();
        let comp = sum_compensated(&x);
        let err_naive = (naive - exact).abs();
        let err_comp = (comp - exact).abs();
        assert!(
            err_comp < err_naive / 1e3,
            "comp {err_comp} vs naive {err_naive}"
        );
        assert!(err_comp < 1e-12, "compensated error {err_comp}");
    }

    #[test]
    fn superblock_beats_naive_on_random_input() {
        // Statistical error growth: naive O(n), superblock O(log n).
        let n = 1 << 18;
        let x = ft_matrix::random::uniform(n, 1, 7);
        let xs = x.as_slice();
        let exact = sum_compensated(xs); // reference
        let naive: f64 = xs.iter().sum();
        let sblock = sum_superblock(xs);
        assert!(
            (sblock - exact).abs() <= (naive - exact).abs() + 1e-15,
            "superblock {} vs naive {}",
            (sblock - exact).abs(),
            (naive - exact).abs()
        );
    }

    #[test]
    fn all_schemes_agree_on_easy_input() {
        let x: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let exact = 500500.0;
        for scheme in [
            SumScheme::Naive,
            SumScheme::Superblock,
            SumScheme::Compensated,
        ] {
            assert_eq!(scheme.sum(&x), exact, "{scheme:?}");
        }
    }

    #[test]
    fn dot_schemes_agree_and_compensated_is_best() {
        let n = 4096;
        let a = ft_matrix::random::uniform(n, 1, 3);
        let b = ft_matrix::random::uniform(n, 1, 4);
        let (x, y) = (a.as_slice(), b.as_slice());
        let reference = dot_compensated(x, y);
        for scheme in [
            SumScheme::Naive,
            SumScheme::Superblock,
            SumScheme::Compensated,
        ] {
            let v = scheme.dot(x, y);
            assert!(
                (v - reference).abs() < 1e-10,
                "{scheme:?}: {v} vs {reference}"
            );
        }
    }

    #[test]
    fn empty_and_single() {
        for scheme in [
            SumScheme::Naive,
            SumScheme::Superblock,
            SumScheme::Compensated,
        ] {
            assert_eq!(scheme.sum(&[]), 0.0);
            assert_eq!(scheme.sum(&[42.0]), 42.0);
            assert_eq!(scheme.dot(&[2.0], &[3.0]), 6.0);
        }
    }
}
