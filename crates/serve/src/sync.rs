//! Sync primitives behind a loom-switchable facade.
//!
//! The concurrency core of this crate ([`crate::queue`] and the oneshot
//! rendezvous) is model-checked: built with `RUSTFLAGS="--cfg loom"`,
//! these aliases resolve to the vendored `loom` model checker's types and
//! the loom suites under `tests/` explore every interleaving (see
//! DESIGN.md §11). Normal builds resolve to `std` with zero indirection.
//!
//! `Instant` is part of the facade because timed waits are modeled too:
//! under loom it is a deterministic virtual clock advanced by timed-wait
//! timeouts, so deadline rechecks behave identically in both worlds.

#[cfg(loom)]
pub(crate) use loom::sync::{Condvar, Mutex};
#[cfg(loom)]
pub(crate) use loom::time::Instant;

#[cfg(not(loom))]
pub(crate) use std::sync::{Condvar, Mutex};
#[cfg(not(loom))]
pub(crate) use std::time::Instant;
