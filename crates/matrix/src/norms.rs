//! Matrix norms and reductions used by the paper's residual metrics.
//!
//! The paper reports two normalized residuals, both built on the 1-norm:
//! `‖A − QHQᵀ‖₁ / (N·‖A‖₁)` (Table II) and `‖QQᵀ − I‖₁ / N` (Table III).

use crate::view::MatView;
use crate::Matrix;

/// 1-norm: the maximum absolute column sum.
pub fn one_norm(a: &MatView<'_>) -> f64 {
    let mut best = 0.0f64;
    for j in 0..a.cols() {
        let s: f64 = a.col(j).iter().map(|v| v.abs()).sum();
        best = best.max(s);
    }
    best
}

/// Infinity norm: the maximum absolute row sum.
pub fn inf_norm(a: &MatView<'_>) -> f64 {
    let mut sums = vec![0.0f64; a.rows()];
    for j in 0..a.cols() {
        for (i, v) in a.col(j).iter().enumerate() {
            sums[i] += v.abs();
        }
    }
    sums.into_iter().fold(0.0, f64::max)
}

/// Frobenius norm with overflow-safe scaling (LAPACK `dlange('F')` style).
pub fn fro_norm(a: &MatView<'_>) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for j in 0..a.cols() {
        for &v in a.col(j) {
            if v != 0.0 {
                let absv = v.abs();
                if scale < absv {
                    ssq = 1.0 + ssq * (scale / absv).powi(2);
                    scale = absv;
                } else {
                    ssq += (absv / scale).powi(2);
                }
            }
        }
    }
    scale * ssq.sqrt()
}

/// The largest absolute element.
pub fn max_abs(a: &MatView<'_>) -> f64 {
    let mut best = 0.0f64;
    for j in 0..a.cols() {
        for &v in a.col(j) {
            best = best.max(v.abs());
        }
    }
    best
}

/// The sum of all elements (not absolute values). This is the quantity the
/// checksum aggregates `Sre`/`Sce` of the paper both estimate.
pub fn grand_sum(a: &MatView<'_>) -> f64 {
    let mut s = 0.0f64;
    for j in 0..a.cols() {
        s += a.col(j).iter().sum::<f64>();
    }
    s
}

/// Convenience overloads on owned matrices.
impl Matrix {
    /// See [`one_norm`].
    pub fn one_norm(&self) -> f64 {
        one_norm(&self.as_view())
    }

    /// See [`inf_norm`].
    pub fn inf_norm(&self) -> f64 {
        inf_norm(&self.as_view())
    }

    /// See [`fro_norm`].
    pub fn fro_norm(&self) -> f64 {
        fro_norm(&self.as_view())
    }

    /// See [`max_abs`].
    pub fn max_abs(&self) -> f64 {
        max_abs(&self.as_view())
    }

    /// See [`grand_sum`].
    pub fn grand_sum(&self) -> f64 {
        grand_sum(&self.as_view())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_of_known_matrix() {
        // a = [1 -2; 3 4]
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(a.one_norm(), 6.0); // max(|1|+|3|, |2|+|4|)
        assert_eq!(a.inf_norm(), 7.0); // max(|1|+|2|, |3|+|4|)
        assert!((a.fro_norm() - 30.0f64.sqrt()).abs() < 1e-14);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.grand_sum(), 6.0);
    }

    #[test]
    fn norms_on_subviews() {
        let a = Matrix::from_rows(&[&[9.0, 9.0, 9.0], &[9.0, 1.0, -2.0], &[9.0, 3.0, 4.0]]);
        let v = a.view(1, 1, 2, 2);
        assert_eq!(one_norm(&v), 6.0);
        assert_eq!(inf_norm(&v), 7.0);
    }

    #[test]
    fn empty_matrix_norms_are_zero() {
        let a = Matrix::zeros(0, 0);
        assert_eq!(a.one_norm(), 0.0);
        assert_eq!(a.inf_norm(), 0.0);
        assert_eq!(a.fro_norm(), 0.0);
        assert_eq!(a.grand_sum(), 0.0);
    }

    #[test]
    fn fro_norm_scaling_is_overflow_safe() {
        let big = 1e200;
        let a = Matrix::filled(2, 2, big);
        let expected = big * 2.0; // sqrt(4 * big^2)
        assert!((a.fro_norm() - expected).abs() / expected < 1e-14);
    }

    #[test]
    fn identity_norms() {
        let i = Matrix::identity(5);
        assert_eq!(i.one_norm(), 1.0);
        assert_eq!(i.inf_norm(), 1.0);
        assert!((i.fro_norm() - 5.0f64.sqrt()).abs() < 1e-14);
        assert_eq!(i.grand_sum(), 5.0);
    }
}
