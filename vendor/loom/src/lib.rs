//! Offline stand-in for the [`loom`](https://docs.rs/loom) model checker.
//!
//! The registry mirror is unreachable from the build environment, so this
//! crate reimplements the loom API subset the workspace uses — enough to
//! model-check the `ft-serve` queue/oneshot and the `ft-blas` latch:
//!
//! * [`model`] — run a closure under every schedule (up to a preemption
//!   bound) of its threads;
//! * [`thread::spawn`] / [`thread::JoinHandle`];
//! * [`sync::Mutex`], [`sync::Condvar`] (with `wait_timeout`),
//!   [`sync::Arc`];
//! * [`time::Instant`] — a deterministic virtual clock advanced by
//!   timed-wait timeouts.
//!
//! # How it works
//!
//! Each call to the model closure is one *execution*. The runtime spawns a
//! real OS thread per model thread but serializes them cooperatively: a
//! scheduler allows exactly one thread to run at a time, and every visible
//! operation (mutex lock, condvar wait/notify, spawn, join) is a
//! *scheduling point* where the scheduler picks which thread runs next.
//! The sequence of picks is recorded; after an execution completes, the
//! runtime backtracks depth-first to the deepest pick with an untried
//! alternative and replays, exploring the full schedule tree.
//!
//! Exploration is bounded by a *preemption budget* (`LOOM_MAX_PREEMPTIONS`,
//! default 3): schedules that pause a runnable thread in favour of another
//! more than the budget allows are pruned. This is the CHESS result —
//! most concurrency bugs manifest within two or three preemptions — and it
//! keeps exhaustive runs tractable. An iteration cap
//! (`LOOM_MAX_ITERATIONS`, default 250 000 executions) turns runaway
//! models into loud failures rather than silent multi-hour runs.
//!
//! A blocked-thread configuration with no runnable thread is reported as a
//! deadlock (with a per-thread state dump); a panic on any model thread
//! aborts the execution and is re-raised from [`model`] on the caller.
//!
//! # Timed waits and virtual time
//!
//! [`sync::Condvar::wait_timeout`] is modeled as a genuine scheduling
//! branch: a timed waiter is always schedulable, and scheduling it before
//! any notify arrives takes the *timeout* branch, advancing the virtual
//! clock to the wait's deadline. [`time::Instant::now`] reads that clock,
//! so deadline rechecks (`Instant::now() >= deadline`) behave exactly as
//! they would after a real timeout — deterministically, per schedule.
//!
//! # Divergences from real loom
//!
//! * **Sequential consistency only.** [`sync::atomic`] provides the
//!   atomic types the shimmed crates model (the `ft-trace` recorder's
//!   seqlock ring), but every operation is explored under sequential
//!   consistency — there is no weak-memory modeling, and `Ordering`
//!   arguments are ignored. Protocols verified here are SC-correct;
//!   their Acquire/Release annotations must be argued separately.
//! * **FIFO condvar wakeup, no spurious wakeups.** `notify_one` wakes the
//!   longest-waiting thread. Code relying on *which* waiter wakes would be
//!   under-tested; the shimmed code never does (all waits sit in
//!   recheck loops).
//! * **No leak checking.**

mod rt;
pub mod sync;
pub mod thread;
pub mod time;

pub use rt::model;
