//! Criterion bench: GEMM kernel variants (the device workhorse of the
//! trailing-matrix updates), plus the serial-vs-threaded backend
//! comparison behind the `FT_BLAS_BACKEND` knob.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ft_bench::{write_bench_json, Record};
use ft_blas::{
    active_simd_path, gemm, gemm_ft, gemm_with_algo, pool, with_backend, AbftOptions, Backend,
    GemmAlgo, Trans,
};
use ft_matrix::Matrix;
use std::time::Instant;

use ft_bench::smoke;

fn cores() -> u64 {
    std::thread::available_parallelism()
        .map(|c| c.get() as u64)
        .unwrap_or(1)
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let a = ft_matrix::random::uniform(n, n, 1);
        let b = ft_matrix::random::uniform(n, n, 2);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        for algo in [GemmAlgo::Reference, GemmAlgo::Blocked, GemmAlgo::Parallel] {
            group.bench_with_input(BenchmarkId::new(format!("{algo:?}"), n), &n, |bench, _| {
                let mut cmat = Matrix::zeros(n, n);
                bench.iter(|| {
                    gemm_with_algo(
                        algo,
                        Trans::No,
                        Trans::No,
                        1.0,
                        &a.as_view(),
                        &b.as_view(),
                        0.0,
                        &mut cmat.as_view_mut(),
                    );
                    std::hint::black_box(cmat.as_slice()[0]);
                });
            });
        }
    }
    group.finish();
}

/// Serial vs threaded backend on the default `gemm` entry point. The
/// threaded backend only engages above
/// `ft_blas::backend::PARALLEL_MIN_VOLUME`, so the sizes here are chosen
/// past the gate (the smoke run stays small and fast).
fn bench_gemm_backends(c: &mut Criterion) {
    let mut records: Vec<Record> = Vec::new();
    let mut group = c.benchmark_group("gemm_backend");
    group.sample_size(10);
    let sizes: &[usize] = if smoke() { &[256] } else { &[512, 1024] };
    for &n in sizes {
        let a = ft_matrix::random::uniform(n, n, 1);
        let b = ft_matrix::random::uniform(n, n, 2);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        for backend in [Backend::Serial, Backend::Threaded(2), Backend::Threaded(4)] {
            let label = match backend {
                Backend::Serial => "serial".to_string(),
                Backend::Threaded(t) => format!("threaded{t}"),
            };
            group.bench_with_input(BenchmarkId::new(label, n), &n, |bench, _| {
                let mut cmat = Matrix::zeros(n, n);
                bench.iter(|| {
                    with_backend(backend, || {
                        gemm(
                            Trans::No,
                            Trans::No,
                            1.0,
                            &a.as_view(),
                            &b.as_view(),
                            0.0,
                            &mut cmat.as_view_mut(),
                        );
                    });
                    std::hint::black_box(cmat.as_slice()[0]);
                });
            });
        }
        // Headline number: direct wall-clock speedup of Threaded(4) over
        // Serial at this size.
        let iters = if smoke() { 1 } else { 3 };
        let time = |backend: Backend| {
            let mut cmat = Matrix::zeros(n, n);
            let t0 = Instant::now();
            for _ in 0..iters {
                with_backend(backend, || {
                    gemm(
                        Trans::No,
                        Trans::No,
                        1.0,
                        &a.as_view(),
                        &b.as_view(),
                        0.0,
                        &mut cmat.as_view_mut(),
                    );
                });
                std::hint::black_box(cmat.as_slice()[0]);
            }
            t0.elapsed().as_secs_f64() / iters as f64
        };
        let ts = time(Backend::Serial);
        let tt = time(Backend::Threaded(4));
        println!(
            "gemm backend speedup @ n={n}: serial {:.1} ms, threaded(4) {:.1} ms -> {:.2}x \
             (isa {}, {} cores)",
            ts * 1e3,
            tt * 1e3,
            ts / tt,
            active_simd_path(),
            cores(),
        );
        let gflops = |secs: f64| 2.0 * (n as f64).powi(3) / secs / 1e9;
        records.push(
            Record::new()
                .str("kind", "gemm_backend")
                .int("n", n as u64)
                .num("serial_ms", ts * 1e3)
                .num("threaded4_ms", tt * 1e3)
                .num("speedup", ts / tt)
                .num("serial_gflops", gflops(ts))
                .num("threaded4_gflops", gflops(tt))
                .str("isa", active_simd_path())
                .int("cores", cores())
                .bool("smoke", smoke()),
        );
        // Gate-consistency guard: every size benchmarked here is above
        // PARALLEL_MIN_VOLUME, so the threaded backend genuinely forks.
        // If forking at an admitted size costs more than 25% over serial,
        // the fork gate is miscalibrated for this machine — fail the
        // smoke run loudly instead of uploading a regression as data.
        // On a single hardware thread the comparison is structural, not
        // a calibration signal (four workers time-slice one core and the
        // per-worker pack duplication is pure overhead — DESIGN.md §8's
        // measurement envelope), so the guard only arms on ≥ 2 cores.
        if smoke() && n == *sizes.last().unwrap() {
            if cores() >= 2 {
                assert!(
                    tt <= ts * 1.25,
                    "fork gate admits n={n} but threaded(4) is slower than serial \
                     ({:.2} ms vs {:.2} ms): PARALLEL_MIN_VOLUME needs recalibration",
                    tt * 1e3,
                    ts * 1e3,
                );
            } else {
                println!(
                    "gate guard skipped: 1 hardware thread (threaded timing is \
                     structural on this box)"
                );
            }
        }
    }
    group.finish();

    let abft_sizes: &[(usize, usize)] = if smoke() {
        &[(256, 5)]
    } else {
        // More minima samples at 512 (cheap pairs); fewer at 1024,
        // where each pair costs ~130 ms.
        &[(512, 33), (1024, 17)]
    };
    for &(n, iters) in abft_sizes {
        records.push(abft_overhead_record(n, iters));
    }
    records.push(dispatch_overhead_record());
    write_bench_json("gemm", &records);
}

/// Measures the fused online-ABFT kernel against the plain path at the
/// trailing-update sizes the run covers: the checksum encode rides the
/// kernel's own passes and the verify re-reads each macro-tile once, so
/// the paper-style claim is overhead of a few percent, shrinking with
/// size (`O(n²)` fused work against `O(n³)` kernel work).
///
/// Methodology: the two paths are timed per call, strictly alternating
/// (plain, fused, plain, fused, …), and each keeps its minimum. Timing
/// noise on a shared box is one-sided — interruptions only ever add
/// time — so the per-call minimum estimates the undisturbed cost, and
/// alternation keeps slow drift (thermal, co-tenants) from landing on
/// one path only. Back-to-back block averages were seen to mis-state
/// this overhead by 3×.
fn abft_overhead_record(n: usize, iters: usize) -> Record {
    let a = ft_matrix::random::uniform(n, n, 5);
    let b = ft_matrix::random::uniform(n, n, 6);
    let mut cmat = Matrix::zeros(n, n);
    let plain = |cmat: &mut Matrix| {
        let t0 = Instant::now();
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            &a.as_view(),
            &b.as_view(),
            0.0,
            &mut cmat.as_view_mut(),
        );
        std::hint::black_box(cmat.as_slice()[0]);
        t0.elapsed().as_secs_f64()
    };
    let fused = |cmat: &mut Matrix| {
        let t0 = Instant::now();
        let r = gemm_ft(
            Trans::No,
            Trans::No,
            1.0,
            &a.as_view(),
            &b.as_view(),
            0.0,
            &mut cmat.as_view_mut(),
            AbftOptions::default(),
        );
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(r.detected, 0, "clean bench run must not flag errors");
        std::hint::black_box(cmat.as_slice()[0]);
        dt
    };
    // Warm the workspace arena (both paths), then measure.
    plain(&mut cmat);
    fused(&mut cmat);
    let (mut tp, mut tf) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..iters {
        tp = tp.min(plain(&mut cmat));
        tf = tf.min(fused(&mut cmat));
    }
    let overhead_pct = 100.0 * (tf - tp) / tp;
    println!(
        "gemm_ft overhead @ n={n}: plain {:.2} ms, fused-abft {:.2} ms -> {overhead_pct:.2}%",
        tp * 1e3,
        tf * 1e3,
    );
    Record::new()
        .str("kind", "abft_overhead")
        .int("n", n as u64)
        .num("plain_ms", tp * 1e3)
        .num("fused_abft_ms", tf * 1e3)
        .num("ft_overhead_pct", overhead_pct)
        .str("isa", active_simd_path())
        .int("cores", cores())
        .bool("smoke", smoke())
}

/// Measures the pool's per-kernel dispatch overhead against the per-call
/// `std::thread::scope` spawn/join cycle it replaced, driving the public
/// `ft_blas::parallel_map_into` fan-out (the same path the FT driver's
/// checksum refreshes take) rather than ad-hoc probes. Also proves pool
/// reuse: the spawned-thread count must not move across thousands of
/// dispatches — both counters now live in the `ft_trace` registry.
fn dispatch_overhead_record() -> Record {
    const TASKS: usize = 4;
    // `parallel_map_into` gates on the *square* of the output length
    // (checksum-sweep semantics); 384² = 147456 clears the recalibrated
    // memory-bound fork gate (`PARALLEL_MIN_ELEMS` = 128 Ki), so every
    // call genuinely dispatches onto the pool while the 384-element fill
    // itself stays too small to drown the dispatch cost being measured.
    // The `dispatched_tasks` assert below keeps this honest: a future
    // gate recalibration that silently demotes the probe to the inline
    // fallback fails the bench instead of recording fallback timings as
    // pool dispatch.
    const LEN: usize = 384;
    let reps: u32 = if smoke() { 2_000 } else { 20_000 };
    let mut buf = vec![0.0f64; LEN];
    // Warm the pool so the measurement excludes one-time thread creation.
    with_backend(Backend::Threaded(TASKS), || {
        ft_blas::parallel_map_into(&mut buf, |i| i as f64);
    });
    let spawned_before = pool::spawned_worker_count();
    let dispatches_before = pool::dispatch_count();

    let t0 = Instant::now();
    with_backend(Backend::Threaded(TASKS), || {
        for _ in 0..reps {
            ft_blas::parallel_map_into(&mut buf, |i| i as f64);
        }
    });
    let pool_ns = t0.elapsed().as_secs_f64() * 1e9 / reps as f64;
    std::hint::black_box(buf[LEN - 1]);

    // Baseline: the pre-pool implementation — a fresh spawn/join cycle
    // per call doing the identical chunked fill.
    let t0 = Instant::now();
    for _ in 0..reps {
        let chunk = LEN.div_ceil(TASKS);
        std::thread::scope(|s| {
            for (ci, block) in buf.chunks_mut(chunk).enumerate() {
                let base = ci * chunk;
                s.spawn(move || {
                    for (off, slot) in block.iter_mut().enumerate() {
                        *slot = (base + off) as f64;
                    }
                });
            }
        });
    }
    let spawn_ns = t0.elapsed().as_secs_f64() * 1e9 / reps as f64;
    std::hint::black_box(buf[LEN - 1]);

    let spawned_after = pool::spawned_worker_count();
    let dispatched = pool::dispatch_count() - dispatches_before;
    assert!(
        dispatched >= reps as u64,
        "dispatch probe fell below the fork gate (dispatched {dispatched} tasks over {reps} \
         calls): LEN² no longer clears PARALLEL_MIN_ELEMS"
    );
    println!(
        "pool dispatch ({TASKS} tasks): {pool_ns:.0} ns/call vs thread::scope spawn {spawn_ns:.0} \
         ns/call -> {:.1}x cheaper; {} worker threads total (unchanged across {reps} calls: {})",
        spawn_ns / pool_ns,
        spawned_after,
        spawned_after == spawned_before,
    );
    Record::new()
        .str("kind", "dispatch_overhead")
        .int("tasks_per_call", TASKS as u64)
        .int("reps", reps as u64)
        .num("pool_dispatch_ns_per_call", pool_ns)
        .num("thread_scope_spawn_ns_per_call", spawn_ns)
        .num("spawn_over_dispatch", spawn_ns / pool_ns)
        .int("pool_threads", spawned_after as u64)
        .bool(
            "no_spawn_during_measurement",
            spawned_after == spawned_before,
        )
        .int("dispatched_tasks", dispatched)
        .bool("smoke", smoke())
}

criterion_group!(benches, bench_gemm, bench_gemm_backends);
criterion_main!(benches);
