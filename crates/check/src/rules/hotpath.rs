//! FTC008 — no heap allocation reachable from `// ft-check: hot` fns.
//!
//! The microkernel tile loop, the GEMM packing routines, the level-2
//! inner loops, and the flight-recorder append run per-element or
//! per-event inside the latency-critical paths; an allocation there is
//! a performance regression the benchmarks only catch statistically.
//! Functions tagged `// ft-check: hot` (and everything reachable from
//! them through resolved call edges) must not contain `Vec::new`,
//! `Vec::with_capacity`, `vec!`, `Box::new`, `.to_vec()`, `.collect()`,
//! or `format!`.
//!
//! Reachability uses the conservative name-resolved call graph: an
//! ambiguous call contributes no edge, so the rule can under-report
//! through trait objects or common method names — it is a tripwire for
//! the obvious regression, not an escape analysis.

use super::Analysis;
use crate::callgraph::FnRef;
use crate::lexer::{Tok, TokKind};
use crate::Finding;

/// Runs FTC008.
pub fn run(a: &Analysis<'_>, findings: &mut Vec<Finding>) {
    let mut seen: std::collections::HashSet<(usize, u32, u32)> = std::collections::HashSet::new();
    for (fi, fm) in a.files.iter().enumerate() {
        for (ki, f) in fm.items.fns.iter().enumerate() {
            if !f.has_marker("hot") || a.fn_in_test(fi, ki) {
                continue;
            }
            let root = FnRef {
                file: fi,
                fn_idx: ki,
            };
            for (r, depth) in a.graph.reachable(root, usize::MAX) {
                let gm = &a.files[r.file];
                let g = &gm.items.fns[r.fn_idx];
                let Some((open, close)) = g.body else {
                    continue;
                };
                for (what, line, col) in alloc_sites(&gm.lexed.toks, open, close) {
                    if !seen.insert((r.file, line, col)) {
                        continue;
                    }
                    let via = if depth == 0 {
                        String::new()
                    } else {
                        format!(
                            " (reachable from hot fn `{}`, {depth} call{} away)",
                            f.qual_name(),
                            if depth == 1 { "" } else { "s" }
                        )
                    };
                    findings.push(Finding {
                        path: gm.rel.clone(),
                        line: line as usize + 1,
                        col: col as usize + 1,
                        rule: "FTC008",
                        message: format!("heap allocation `{what}` in a hot path{via}"),
                        hint: "hot paths must reuse caller-provided or pooled buffers; \
                               hoist the allocation out of the tagged fn's call tree \
                               (or drop the `// ft-check: hot` marker with a review)",
                    });
                }
            }
        }
    }
}

/// Allocation-shaped token patterns in a body range.
fn alloc_sites(toks: &[Tok], open: usize, close: usize) -> Vec<(String, u32, u32)> {
    let mut out = Vec::new();
    let mut k = open + 1;
    while k < close {
        let t = &toks[k];
        if t.kind != TokKind::Ident {
            k += 1;
            continue;
        }
        let next = toks.get(k + 1);
        let prev_dot = toks[k - 1].is_punct(".");
        match t.text.as_str() {
            "Vec" | "Box" | "String"
                if next.is_some_and(|n| n.is_punct("::"))
                    && toks.get(k + 2).is_some_and(|n| {
                        n.is_ident("new") || n.is_ident("with_capacity") || n.is_ident("from")
                    }) =>
            {
                out.push((format!("{}::{}", t.text, toks[k + 2].text), t.line, t.col));
                k += 3;
                continue;
            }
            "vec" | "format" if next.is_some_and(|n| n.is_punct("!")) => {
                out.push((format!("{}!", t.text), t.line, t.col));
            }
            // `.collect()` or `.collect::<…>()`.
            "to_vec" | "collect" | "to_owned"
                if prev_dot && next.is_some_and(|n| n.is_punct("(") || n.is_punct("::")) =>
            {
                out.push((format!(".{}()", t.text), t.line, t.col));
            }
            _ => {}
        }
        k += 1;
    }
    out
}
