//! FTC011 clean fixture: the panic sits three hops out — beyond the
//! rule's radius (FTC004 still owns it in real library paths; the
//! driving test scans this under a bench path to isolate FTC011).

// ft-check: worker-loop
pub fn run_job(x: Option<u64>) -> u64 {
    a(x)
}

fn a(x: Option<u64>) -> u64 {
    b(x)
}

fn b(x: Option<u64>) -> u64 {
    c(x)
}

fn c(x: Option<u64>) -> u64 {
    x.unwrap()
}
