//! Parity of the lookahead (pipelined) schedule with the sequential one
//! in the fault-tolerant driver: clean runs must be bitwise identical,
//! and fault campaigns that strike *inside the overlapped far-update
//! window* must produce the same detection, location, correction and
//! final output as the sequential schedule — the whole point of the
//! determinism contract (DESIGN.md §8.2).

use ft_fault::{Fault, FaultPlan, Phase, ScheduledFault};
use ft_hessenberg::ft_alg::{ft_gehrd_hybrid, FtConfig, FtOutcome};
use ft_hessenberg::verify::ResidualReport;
use ft_hybrid::{CostModel, ExecMode, HybridCtx};
use ft_matrix::Matrix;

fn full_ctx() -> HybridCtx {
    HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2)
}

fn cfg(nb: usize, lookahead: bool, backend: ft_blas::Backend) -> FtConfig {
    FtConfig {
        lookahead,
        backend,
        ..FtConfig::with_nb(nb)
    }
}

fn assert_bitwise_equal(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    for j in 0..a.cols() {
        for i in 0..a.rows() {
            assert_eq!(
                a[(i, j)].to_bits(),
                b[(i, j)].to_bits(),
                "{what}: ({i},{j}) differs: {} vs {}",
                a[(i, j)],
                b[(i, j)]
            );
        }
    }
}

/// Detection/recovery behavior must match event for event, not just "both
/// recovered": same iterations redone, same elements corrected, same
/// resolution status, same injected-fault records.
fn assert_report_parity(seq: &FtOutcome, la: &FtOutcome, what: &str) {
    assert_eq!(
        seq.report.redone_iterations, la.report.redone_iterations,
        "{what}: redone iteration counts differ"
    );
    assert_eq!(
        seq.report.recoveries.len(),
        la.report.recoveries.len(),
        "{what}: recovery event counts differ:\n  seq: {:?}\n  la:  {:?}",
        seq.report.recoveries,
        la.report.recoveries
    );
    for (s, l) in seq.report.recoveries.iter().zip(&la.report.recoveries) {
        assert_eq!(s.iteration, l.iteration, "{what}: recovery iteration");
        assert_eq!(s.resolved, l.resolved, "{what}: recovery resolution");
        assert_eq!(
            s.mismatch.to_bits(),
            l.mismatch.to_bits(),
            "{what}: Sre−Sce mismatch magnitude differs: {} vs {}",
            s.mismatch,
            l.mismatch
        );
        assert_eq!(s.corrected, l.corrected, "{what}: corrected elements");
    }
    assert_eq!(
        seq.report.injected, la.report.injected,
        "{what}: applied-fault records differ"
    );
    assert_eq!(
        seq.failure.is_some(),
        la.failure.is_some(),
        "{what}: terminal failure status differs"
    );
}

fn run_pair(
    a: &Matrix,
    nb: usize,
    backend: ft_blas::Backend,
    mk_plan: impl Fn() -> FaultPlan,
) -> (FtOutcome, FtOutcome) {
    let seq = ft_gehrd_hybrid(a, &cfg(nb, false, backend), &mut full_ctx(), &mut mk_plan());
    let la = ft_gehrd_hybrid(a, &cfg(nb, true, backend), &mut full_ctx(), &mut mk_plan());
    (seq, la)
}

#[test]
fn clean_runs_bit_identical_across_schedules_and_backends() {
    for &(n, nb) in &[(48usize, 8usize), (64, 16), (50, 7)] {
        let a = ft_matrix::random::uniform(n, n, n as u64 * 3 + 1);
        for backend in [ft_blas::Backend::Serial, ft_blas::Backend::Threaded(4)] {
            let (seq, la) = run_pair(&a, nb, backend, FaultPlan::none);
            assert!(
                la.report.recoveries.is_empty(),
                "false positive under lookahead ({backend:?}, n={n}): {:?}",
                la.report.recoveries
            );
            let fs = seq.result.unwrap();
            let fl = la.result.unwrap();
            assert_eq!(fs.tau, fl.tau, "taus differ ({backend:?}, n={n})");
            assert_bitwise_equal(&fs.packed, &fl.packed, "clean packed output");
        }
    }
}

/// Faults injected right after the trailing updates ran
/// (`Phase::BeforeDetection`) land while the sequential schedule has
/// finished the far update synchronously and the lookahead schedule has
/// just resolved its async token — the window the overlap machinery
/// actually changes. Detection and recovery must behave identically.
#[test]
fn fault_in_overlapped_far_window_detected_identically() {
    let n = 64;
    let nb = 16;
    let a = ft_matrix::random::uniform(n, n, 23);
    // Iteration 1 reduces columns 16..32; its far update covers columns
    // 48..64 (beyond the next panel). Strike the far region, the near
    // region, and the checksum column.
    let strikes: &[(usize, usize, usize)] = &[
        (1, 40, 55), // deep in the far-update window
        (1, 20, 33), // near region (next panel's columns)
        (2, 60, 62), // far window of a later iteration
    ];
    for &(iter, row, col) in strikes {
        let mk = || {
            FaultPlan::new(vec![ScheduledFault {
                iteration: iter,
                phase: Phase::BeforeDetection,
                fault: Fault::add(row, col, 0.31),
            }])
        };
        for backend in [ft_blas::Backend::Serial, ft_blas::Backend::Threaded(4)] {
            let (seq, la) = run_pair(&a, nb, backend, mk);
            let what = format!("strike iter {iter} at ({row},{col}) under {backend:?}");
            assert_report_parity(&seq, &la, &what);
            let fs = seq.result.unwrap();
            let fl = la.result.unwrap();
            assert_eq!(fs.tau, fl.tau, "{what}: taus differ");
            assert_bitwise_equal(&fs.packed, &fl.packed, &what);
            let r = ResidualReport::compute(&a, &fl.q(), &fl.h());
            assert!(r.acceptable(1e-12), "{what}: {r:?}");
        }
    }
}

/// Memory strikes present when an iteration starts (the paper's Figure 2
/// scenario) flow through the overlapped far update itself — the
/// corrupted trailing element is an *input* to the async GEMM chunks.
/// Rollback, location and correction must match the sequential schedule.
#[test]
fn fault_through_async_far_update_recovers_identically() {
    let n = 64;
    let nb = 16;
    let a = ft_matrix::random::uniform(n, n, 29);
    for &(iter, row, col) in &[(1usize, 40usize, 50usize), (2, 55, 60)] {
        let mk = || FaultPlan::one(iter, Fault::add(row, col, 0.37));
        for backend in [ft_blas::Backend::Serial, ft_blas::Backend::Threaded(4)] {
            let (seq, la) = run_pair(&a, nb, backend, mk);
            let what = format!("iteration-start strike at ({row},{col}) under {backend:?}");
            assert!(
                !la.report.recoveries.is_empty(),
                "{what}: fault must be detected under lookahead"
            );
            assert!(
                la.report.recoveries[0]
                    .corrected
                    .iter()
                    .any(|&(r, c, _)| r == row && c == col),
                "{what}: fault must be located and corrected: {:?}",
                la.report.recoveries[0]
            );
            assert_report_parity(&seq, &la, &what);
            let fs = seq.result.unwrap();
            let fl = la.result.unwrap();
            assert_eq!(fs.tau, fl.tau, "{what}: taus differ");
            assert_bitwise_equal(&fs.packed, &fl.packed, &what);
        }
    }
}

/// Timing-only mode never materializes the matrix; the lookahead flag
/// must not change the mirrored detection decisions.
#[test]
fn timing_only_detection_mirror_unchanged_by_lookahead() {
    let n = 64;
    let nb = 16;
    let a = ft_matrix::random::uniform(n, n, 31);
    let mk = || {
        FaultPlan::new(vec![ScheduledFault {
            iteration: 1,
            phase: Phase::BeforeDetection,
            fault: Fault::add(40, 55, 0.31),
        }])
    };
    let mut outs = vec![];
    for lookahead in [false, true] {
        let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::TimingOnly, 2);
        let c = FtConfig {
            lookahead,
            ..FtConfig::with_nb(nb)
        };
        let out = ft_gehrd_hybrid(&a, &c, &mut ctx, &mut mk());
        assert!(out.result.is_none(), "timing-only must not materialize");
        outs.push(out);
    }
    assert_eq!(
        outs[0].report.redone_iterations, outs[1].report.redone_iterations,
        "timing-only mirrored detections must not depend on the schedule"
    );
    assert_eq!(
        outs[0].report.recoveries.len(),
        outs[1].report.recoveries.len()
    );
}
