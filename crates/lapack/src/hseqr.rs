//! Eigenvalues of an upper Hessenberg matrix by the Francis implicit
//! double-shift QR iteration with deflation (the "Hessenberg QR algorithm"
//! the paper's introduction motivates: reduction to Hessenberg form is the
//! expensive first phase of the nonsymmetric eigenvalue problem).
//!
//! Eigenvalues-only variant (LAPACK `DHSEQR` job `'E'`), following the
//! classic EISPACK `hqr` organization: repeatedly deflate trailing 1×1 and
//! 2×2 blocks, with exceptional shifts every 10 stalled iterations.

use ft_matrix::Matrix;

/// One (possibly complex) eigenvalue of a real matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Eigenvalue {
    /// Real part.
    pub re: f64,
    /// Imaginary part (zero for a real eigenvalue).
    pub im: f64,
}

impl Eigenvalue {
    /// Real eigenvalue.
    pub fn real(re: f64) -> Self {
        Eigenvalue { re, im: 0.0 }
    }

    /// Modulus `|λ|`.
    pub fn abs(&self) -> f64 {
        self.re.hypot(self.im)
    }

    /// `true` if the imaginary part is exactly zero.
    pub fn is_real(&self) -> bool {
        self.im == 0.0
    }
}

/// Iteration failure: the QR iteration did not converge for some
/// eigenvalue within the iteration budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NoConvergence {
    /// Index of the eigenvalue that failed to deflate.
    pub index: usize,
}

impl std::fmt::Display for NoConvergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "QR iteration failed to converge at eigenvalue {}",
            self.index
        )
    }
}

impl std::error::Error for NoConvergence {}

#[inline]
fn sign(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

/// Computes all eigenvalues of the upper Hessenberg matrix `h`.
///
/// `h` must be square and upper Hessenberg (entries below the first
/// sub-diagonal are ignored). Eigenvalues are returned in deflation order
/// (trailing blocks first), complex pairs adjacent.
pub fn eigenvalues_hessenberg(h: &Matrix) -> Result<Vec<Eigenvalue>, NoConvergence> {
    assert!(
        h.is_square(),
        "eigenvalues_hessenberg: matrix must be square"
    );
    let n = h.rows();
    let mut wr = vec![0.0f64; n];
    let mut wi = vec![0.0f64; n];
    if n == 0 {
        return Ok(vec![]);
    }

    // Working copy; only the Hessenberg part is referenced.
    let mut a = h.clone();
    // Norm used in the negligibility tests.
    let mut anorm = 0.0f64;
    for i in 0..n {
        for j in i.saturating_sub(1)..n {
            anorm += a[(i, j)].abs();
        }
    }
    if anorm == 0.0 {
        return Ok(vec![Eigenvalue::real(0.0); n]);
    }

    let mut nn = n as isize - 1;
    let mut t = 0.0f64;
    while nn >= 0 {
        let mut its = 0;
        loop {
            let nnu = nn as usize;
            // Find l: the start of the active unreduced block.
            let mut l = 0usize;
            for ll in (1..=nnu).rev() {
                let mut s = a[(ll - 1, ll - 1)].abs() + a[(ll, ll)].abs();
                if s == 0.0 {
                    s = anorm;
                }
                if a[(ll, ll - 1)].abs() <= f64::EPSILON * s {
                    a[(ll, ll - 1)] = 0.0;
                    l = ll;
                    break;
                }
            }
            let x = a[(nnu, nnu)];
            if l == nnu {
                // One real root found.
                wr[nnu] = x + t;
                wi[nnu] = 0.0;
                nn -= 1;
                break;
            }
            let y = a[(nnu - 1, nnu - 1)];
            let w = a[(nnu, nnu - 1)] * a[(nnu - 1, nnu)];
            if l + 1 == nnu {
                // A 2×2 block deflates: two roots.
                let p = 0.5 * (y - x);
                let q = p * p + w;
                let mut z = q.abs().sqrt();
                let xx = x + t;
                if q >= 0.0 {
                    z = p + sign(z, p);
                    wr[nnu - 1] = xx + z;
                    wr[nnu] = wr[nnu - 1];
                    if z != 0.0 {
                        wr[nnu] = xx - w / z;
                    }
                    wi[nnu - 1] = 0.0;
                    wi[nnu] = 0.0;
                } else {
                    wr[nnu - 1] = xx + p;
                    wr[nnu] = xx + p;
                    wi[nnu - 1] = -z;
                    wi[nnu] = z;
                }
                nn -= 2;
                break;
            }
            // No deflation yet: do a double QR sweep.
            if its == 60 {
                return Err(NoConvergence { index: nnu });
            }
            let (mut x, mut y, mut w) = (x, y, w);
            if its == 10 || its == 20 || its == 30 || its == 40 || its == 50 {
                // Exceptional shift.
                t += x;
                for i in 0..=nnu {
                    a[(i, i)] -= x;
                }
                let s = a[(nnu, nnu - 1)].abs() + a[(nnu - 1, nnu - 2)].abs();
                x = 0.75 * s;
                y = x;
                w = -0.4375 * s * s;
            }
            its += 1;

            // Look for two consecutive small sub-diagonal elements.
            let mut m = l;
            let (mut p, mut q, mut r) = (0.0f64, 0.0f64, 0.0f64);
            for mm in (l..=nnu - 2).rev() {
                let z = a[(mm, mm)];
                let rr = x - z;
                let ss = y - z;
                p = (rr * ss - w) / a[(mm + 1, mm)] + a[(mm, mm + 1)];
                q = a[(mm + 1, mm + 1)] - z - rr - ss;
                r = a[(mm + 2, mm + 1)];
                let s = p.abs() + q.abs() + r.abs();
                p /= s;
                q /= s;
                r /= s;
                m = mm;
                if mm == l {
                    break;
                }
                let u = a[(mm, mm - 1)].abs() * (q.abs() + r.abs());
                let v = p.abs() * (a[(mm - 1, mm - 1)].abs() + z.abs() + a[(mm + 1, mm + 1)].abs());
                if u <= f64::EPSILON * v {
                    break;
                }
            }
            for i in m + 2..=nnu {
                a[(i, i - 2)] = 0.0;
                if i != m + 2 {
                    a[(i, i - 3)] = 0.0;
                }
            }

            // Double QR step on rows l..=nn, columns l..=nn.
            for k in m..nnu {
                if k != m {
                    p = a[(k, k - 1)];
                    q = a[(k + 1, k - 1)];
                    r = if k != nnu - 1 { a[(k + 2, k - 1)] } else { 0.0 };
                    x = p.abs() + q.abs() + r.abs();
                    if x != 0.0 {
                        p /= x;
                        q /= x;
                        r /= x;
                    }
                }
                let s = sign((p * p + q * q + r * r).sqrt(), p);
                if s == 0.0 {
                    continue;
                }
                if k == m {
                    if l != m {
                        a[(k, k - 1)] = -a[(k, k - 1)];
                    }
                } else {
                    a[(k, k - 1)] = -s * x;
                }
                p += s;
                x = p / s;
                y = q / s;
                let z = r / s;
                q /= p;
                r /= p;
                // Row modification.
                for j in k..=nnu {
                    let mut pp = a[(k, j)] + q * a[(k + 1, j)];
                    if k != nnu - 1 {
                        pp += r * a[(k + 2, j)];
                        a[(k + 2, j)] -= pp * z;
                    }
                    a[(k + 1, j)] -= pp * y;
                    a[(k, j)] -= pp * x;
                }
                // Column modification.
                let mmin = nnu.min(k + 3);
                for i in l..=mmin {
                    let mut pp = x * a[(i, k)] + y * a[(i, k + 1)];
                    if k != nnu - 1 {
                        pp += z * a[(i, k + 2)];
                        a[(i, k + 2)] -= pp * r;
                    }
                    a[(i, k + 1)] -= pp * q;
                    a[(i, k)] -= pp;
                }
            }
        }
    }

    Ok((0..n)
        .map(|i| Eigenvalue {
            re: wr[i],
            im: wi[i],
        })
        .collect())
}

/// Sorts eigenvalues by (re, im) for stable comparisons in tests.
pub fn sort_eigenvalues(evs: &mut [Eigenvalue]) {
    evs.sort_by(|a, b| {
        a.re.partial_cmp(&b.re)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.im.partial_cmp(&b.im).unwrap_or(std::cmp::Ordering::Equal))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_spectrum(mut got: Vec<Eigenvalue>, mut expect: Vec<Eigenvalue>, tol: f64) {
        assert_eq!(got.len(), expect.len());
        sort_eigenvalues(&mut got);
        sort_eigenvalues(&mut expect);
        for (g, e) in got.iter().zip(&expect) {
            assert!(
                (g.re - e.re).abs() < tol && (g.im - e.im).abs() < tol,
                "eigenvalue mismatch: {g:?} vs {e:?}"
            );
        }
    }

    #[test]
    fn triangular_matrix_eigenvalues_are_diagonal() {
        let diag = [3.0, -1.5, 0.25, 7.0, -4.0];
        let t = ft_matrix::random::triangular_with_eigenvalues(&diag, 1);
        let evs = eigenvalues_hessenberg(&t).unwrap();
        assert_spectrum(
            evs,
            diag.iter().map(|&d| Eigenvalue::real(d)).collect(),
            1e-10,
        );
    }

    #[test]
    fn known_complex_pair() {
        // [[0, -1], [1, 0]] has eigenvalues ±i.
        let a = Matrix::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]]);
        let evs = eigenvalues_hessenberg(&a).unwrap();
        assert_spectrum(
            evs,
            vec![
                Eigenvalue { re: 0.0, im: 1.0 },
                Eigenvalue { re: 0.0, im: -1.0 },
            ],
            1e-12,
        );
    }

    #[test]
    fn rotation_block_spectrum() {
        // Block diagonal: rotation by θ scaled by ρ has eigenvalues ρe^{±iθ},
        // plus a real eigenvalue 2.
        let (rho, theta) = (1.5f64, 0.7f64);
        let (c, s) = (theta.cos() * rho, theta.sin() * rho);
        let a = Matrix::from_rows(&[&[c, -s, 0.0], &[s, c, 0.0], &[0.0, 0.0, 2.0]]);
        let evs = eigenvalues_hessenberg(&a).unwrap();
        assert_spectrum(
            evs,
            vec![
                Eigenvalue {
                    re: c,
                    im: rho * theta.sin(),
                },
                Eigenvalue {
                    re: c,
                    im: -rho * theta.sin(),
                },
                Eigenvalue::real(2.0),
            ],
            1e-10,
        );
    }

    #[test]
    fn trace_and_det_invariants_random() {
        // Sum of eigenvalues = trace; product = det (checked via |det| on a
        // small matrix computed by the 3×3 rule).
        let a = Matrix::from_rows(&[
            &[2.0, 1.0, 0.5],
            &[1.0, -1.0, 2.0],
            &[0.0, 3.0, 1.0], // already Hessenberg
        ]);
        let evs = eigenvalues_hessenberg(&a).unwrap();
        let tr: f64 = evs.iter().map(|e| e.re).sum();
        assert!((tr - 2.0).abs() < 1e-10, "trace {tr}");
        let det_expect =
            2.0 * (-1.0 - 2.0 * 3.0) - (1.0 * 1.0 - 2.0 * 0.0) + 0.5 * (1.0 * 3.0 + 1.0 * 0.0);
        // product of complex eigenvalues
        let mut det = 1.0;
        let mut i = 0;
        while i < evs.len() {
            if evs[i].im != 0.0 {
                det *= evs[i].re * evs[i].re + evs[i].im * evs[i].im;
                i += 2;
            } else {
                det *= evs[i].re;
                i += 1;
            }
        }
        assert!((det - det_expect).abs() < 1e-9, "det {det} vs {det_expect}");
    }

    #[test]
    fn larger_random_hessenberg_converges() {
        let h = ft_matrix::random::hessenberg(60, 9);
        let evs = eigenvalues_hessenberg(&h).unwrap();
        assert_eq!(evs.len(), 60);
        let tr_h: f64 = (0..60).map(|i| h[(i, i)]).sum();
        let tr_e: f64 = evs.iter().map(|e| e.re).sum();
        assert!((tr_h - tr_e).abs() < 1e-9, "{tr_h} vs {tr_e}");
        // imaginary parts come in conjugate pairs
        let im_sum: f64 = evs.iter().map(|e| e.im).sum();
        assert!(im_sum.abs() < 1e-9);
    }

    #[test]
    fn empty_and_single() {
        assert!(eigenvalues_hessenberg(&Matrix::zeros(0, 0))
            .unwrap()
            .is_empty());
        let a = Matrix::from_rows(&[&[4.2]]);
        let evs = eigenvalues_hessenberg(&a).unwrap();
        assert_eq!(evs, vec![Eigenvalue::real(4.2)]);
    }
}
