//! Symmetric rank-k update: `C ← α·op(A)·op(A)ᵀ + β·C` on one triangle.
//!
//! Used by the orthogonality verification (`QQᵀ − I`) and as a substrate
//! kernel; only the requested triangle of `C` is referenced or written.

use crate::backend;
use crate::flops::{model, record};
use crate::types::{Trans, Uplo};
use ft_matrix::{MatView, MatViewMut};

/// Symmetric rank-k update.
///
/// For `Trans::No`, computes `C ← α·A·Aᵀ + β·C` with `A` of shape `n × k`;
/// for `Trans::Yes`, `C ← α·Aᵀ·A + β·C` with `A` of shape `k × n`. `C` is
/// `n × n` and only its `uplo` triangle is touched.
pub fn syrk(
    uplo: Uplo,
    trans: Trans,
    alpha: f64,
    a: &MatView<'_>,
    beta: f64,
    c: &mut MatViewMut<'_>,
) {
    let (n, k) = match trans {
        Trans::No => (a.rows(), a.cols()),
        Trans::Yes => (a.cols(), a.rows()),
    };
    assert_eq!(c.rows(), n, "syrk: C rows {} != {n}", c.rows());
    assert_eq!(c.cols(), n, "syrk: C cols {} != {n}", c.cols());
    record(model::gemm(n, n, k) / 2);

    // Each (i, j) entry is an independent dot product: partition columns
    // of C; every element keeps the serial accumulation order, so the
    // threaded and serial backends are bit-identical.
    let workers = backend::fork_threads(n * n * k / 2);
    backend::for_each_col_chunk(c.rb_mut(), workers, |j0, mut chunk| {
        syrk_cols(uplo, trans, alpha, a, beta, n, k, j0, &mut chunk);
    });
}

/// Serial SYRK on columns `[j0, j0 + chunk.cols())` of the `n × n` result;
/// `chunk` holds all `n` rows of that column block.
#[allow(clippy::too_many_arguments)]
fn syrk_cols(
    uplo: Uplo,
    trans: Trans,
    alpha: f64,
    a: &MatView<'_>,
    beta: f64,
    n: usize,
    k: usize,
    j0: usize,
    chunk: &mut MatViewMut<'_>,
) {
    let at = |i: usize, p: usize| -> f64 {
        match trans {
            Trans::No => a.at(i, p),
            Trans::Yes => a.at(p, i),
        }
    };

    for jj in 0..chunk.cols() {
        let j = j0 + jj;
        let (lo, hi) = match uplo {
            Uplo::Upper => (0, j + 1),
            Uplo::Lower => (j, n),
        };
        for i in lo..hi {
            let mut s = 0.0;
            for p in 0..k {
                s += at(i, p) * at(j, p);
            }
            let old = chunk.at(i, jj);
            chunk.set(i, jj, alpha * s + beta * old);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_matrix::Matrix;

    #[test]
    fn syrk_matches_gemm_on_triangle() {
        let a = ft_matrix::random::uniform(4, 6, 1);
        let mut full = Matrix::zeros(4, 4);
        crate::level3::gemm_ref(
            Trans::No,
            Trans::Yes,
            1.0,
            &a.as_view(),
            &a.as_view(),
            0.0,
            &mut full.as_view_mut(),
        );
        for uplo in [Uplo::Upper, Uplo::Lower] {
            let mut c = Matrix::zeros(4, 4);
            syrk(
                uplo,
                Trans::No,
                1.0,
                &a.as_view(),
                0.0,
                &mut c.as_view_mut(),
            );
            for j in 0..4 {
                for i in 0..4 {
                    let in_tri = match uplo {
                        Uplo::Upper => i <= j,
                        Uplo::Lower => i >= j,
                    };
                    if in_tri {
                        assert!((c[(i, j)] - full[(i, j)]).abs() < 1e-13);
                    } else {
                        assert_eq!(c[(i, j)], 0.0, "untouched triangle must stay zero");
                    }
                }
            }
        }
    }

    #[test]
    fn syrk_trans_matches() {
        let a = ft_matrix::random::uniform(5, 3, 2);
        let mut c = Matrix::zeros(3, 3);
        syrk(
            Uplo::Upper,
            Trans::Yes,
            2.0,
            &a.as_view(),
            0.0,
            &mut c.as_view_mut(),
        );
        let mut expect = Matrix::zeros(3, 3);
        crate::level3::gemm_ref(
            Trans::Yes,
            Trans::No,
            2.0,
            &a.as_view(),
            &a.as_view(),
            0.0,
            &mut expect.as_view_mut(),
        );
        for j in 0..3 {
            for i in 0..=j {
                assert!((c[(i, j)] - expect[(i, j)]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn syrk_beta_accumulates() {
        let a = Matrix::identity(2);
        let mut c = Matrix::filled(2, 2, 1.0);
        syrk(
            Uplo::Upper,
            Trans::No,
            1.0,
            &a.as_view(),
            3.0,
            &mut c.as_view_mut(),
        );
        assert_eq!(c[(0, 0)], 4.0);
        assert_eq!(c[(0, 1)], 3.0);
        assert_eq!(c[(1, 1)], 4.0);
        // lower triangle untouched
        assert_eq!(c[(1, 0)], 1.0);
    }
}
