//! Verification metrics: the residuals reported in Tables II and III of
//! the paper, plus a combined check used by tests and examples.

use ft_matrix::Matrix;

pub use ft_lapack::gehrd::{factorization_residual, orthogonality_residual};

/// All the quality numbers for one factorization.
#[derive(Clone, Copy, Debug)]
pub struct ResidualReport {
    /// `‖A − QHQᵀ‖₁ / (N·‖A‖₁)` (Table II).
    pub factorization: f64,
    /// `‖QQᵀ − I‖₁ / N` (Table III).
    pub orthogonality: f64,
    /// Largest absolute entry below the first sub-diagonal of `H`
    /// (must be exactly zero by construction).
    pub hessenberg_defect: f64,
}

impl ResidualReport {
    /// Computes the report from the original matrix and the factors.
    pub fn compute(a0: &Matrix, q: &Matrix, h: &Matrix) -> Self {
        let n = h.rows();
        let mut defect = 0.0f64;
        for j in 0..n {
            for i in (j + 2)..n {
                defect = defect.max(h[(i, j)].abs());
            }
        }
        ResidualReport {
            factorization: factorization_residual(a0, q, h),
            orthogonality: orthogonality_residual(q),
            hessenberg_defect: defect,
        }
    }

    /// `true` when both residuals are below `tol` and `H` is exactly
    /// Hessenberg.
    pub fn acceptable(&self, tol: f64) -> bool {
        self.factorization < tol && self.orthogonality < tol && self.hessenberg_defect == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_lapack::{gehrd, GehrdConfig, HessFactorization};

    #[test]
    fn clean_factorization_reports_small_residuals() {
        let n = 48;
        let a = ft_matrix::random::uniform(n, n, 71);
        let mut packed = a.clone();
        let tau = gehrd(
            &mut packed,
            &GehrdConfig {
                nb: 8,
                nx: 2,
                lookahead: false,
            },
        );
        let f = HessFactorization { packed, tau };
        let r = ResidualReport::compute(&a, &f.q(), &f.h());
        assert!(r.acceptable(1e-14), "{r:?}");
    }

    #[test]
    fn corrupted_h_reports_large_residual() {
        let n = 32;
        let a = ft_matrix::random::uniform(n, n, 72);
        let mut packed = a.clone();
        let tau = gehrd(&mut packed, &GehrdConfig::default());
        let f = HessFactorization { packed, tau };
        let q = f.q();
        let mut h = f.h();
        h[(3, 7)] += 1.0;
        let r = ResidualReport::compute(&a, &q, &h);
        assert!(r.factorization > 1e-6, "{r:?}");
        assert!(!r.acceptable(1e-14));
    }
}
