//! The hybrid execution context: CUDA-like issue semantics over simulated
//! resource timelines.

use crate::cost::{CostModel, OpClass, Work};
use crate::stats::ExecStats;

/// Identifies one device stream (in-order queue of device work).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamId(pub usize);

/// Whether closures actually execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Run the real arithmetic (simulated time + real results).
    Full,
    /// Skip the arithmetic, advance the clocks only. Closure results are
    /// `None`; drivers must not branch on numerics in this mode.
    TimingOnly,
}

/// A simulated host + device + link platform.
///
/// Issue semantics mirror the CUDA runtime the paper's MAGMA code uses:
///
/// * [`HybridCtx::host`] blocks the host clock for the op's duration;
/// * [`HybridCtx::device`] enqueues onto a stream: the op starts when both
///   the stream is free **and** the host has issued it (`max(stream,
///   host)`), and the call returns to the host immediately;
/// * [`HybridCtx::h2d`]/[`HybridCtx::d2h`] occupy the link and the target
///   stream, also asynchronously;
/// * [`HybridCtx::sync_stream`]/[`HybridCtx::sync_all`] advance the host
///   clock to the stream completion times (like `cudaStreamSynchronize`);
/// * [`HybridCtx::stream_wait_stream`] is `cudaStreamWaitEvent`.
///
/// In [`ExecMode::Full`] the closures run immediately in program order.
/// That is sound because the drivers issue operations in data-dependency
/// order (as any correct CUDA program must); the *simulated* clocks replay
/// what a genuinely concurrent platform would have achieved.
pub struct HybridCtx {
    cost: CostModel,
    mode: ExecMode,
    host_time: f64,
    streams: Vec<f64>,
    link_time: f64,
    stats: ExecStats,
}

impl HybridCtx {
    /// Creates a context with `nstreams` device streams.
    pub fn new(cost: CostModel, mode: ExecMode, nstreams: usize) -> Self {
        assert!(nstreams >= 1, "need at least one stream");
        HybridCtx {
            cost,
            mode,
            host_time: 0.0,
            streams: vec![0.0; nstreams],
            link_time: 0.0,
            stats: ExecStats::default(),
        }
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Sets the simulated host-parallelism factor (see
    /// [`CostModel::host_parallelism`]) — typically the worker count of
    /// the active `ft-blas` backend, so simulated host time tracks the
    /// threading knob the kernels actually run under.
    pub fn set_host_parallelism(&mut self, factor: f64) {
        self.cost.host_parallelism = factor;
    }

    /// Current host clock.
    pub fn host_time(&self) -> f64 {
        self.host_time
    }

    /// Current clock of `stream`.
    pub fn stream_time(&self, stream: StreamId) -> f64 {
        self.streams[stream.0]
    }

    /// Makespan so far: the latest of all clocks.
    pub fn elapsed(&self) -> f64 {
        self.streams
            .iter()
            .copied()
            .fold(self.host_time.max(self.link_time), f64::max)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Resets all clocks and statistics (the cost model and mode persist).
    pub fn reset(&mut self) {
        self.host_time = 0.0;
        self.link_time = 0.0;
        for s in &mut self.streams {
            *s = 0.0;
        }
        self.stats = ExecStats::default();
    }

    fn run<R>(&self, f: impl FnOnce() -> R) -> Option<R> {
        match self.mode {
            ExecMode::Full => Some(f()),
            ExecMode::TimingOnly => None,
        }
    }

    /// Synchronous host work: blocks the host clock.
    pub fn host<R>(&mut self, class: OpClass, work: Work, f: impl FnOnce() -> R) -> Option<R> {
        debug_assert!(
            class.is_host(),
            "host() called with non-host class {class:?}"
        );
        let dt = self.cost.seconds(class, work);
        let start = self.host_time;
        self.host_time += dt;
        self.stats.record(class, dt);
        if ft_trace::enabled() {
            // Simulated lanes: 0 = host, 1+s = device stream s.
            ft_trace::record_sim(class.name(), 0, start * 1e6, dt * 1e6);
        }
        self.run(f)
    }

    /// Advances the host clock without doing work (models driver overhead
    /// or an explicit simulated delay).
    pub fn host_delay(&mut self, seconds: f64) {
        self.host_time += seconds.max(0.0);
    }

    /// Asynchronous device kernel on `stream`. Returns immediately (the
    /// host clock is not advanced); the stream clock advances by the
    /// kernel duration starting from `max(stream, host)`.
    pub fn device<R>(
        &mut self,
        stream: StreamId,
        class: OpClass,
        work: Work,
        f: impl FnOnce() -> R,
    ) -> Option<R> {
        debug_assert!(
            class.is_device(),
            "device() called with non-device class {class:?}"
        );
        let dt = self.cost.seconds(class, work);
        let start = self.streams[stream.0].max(self.host_time);
        self.streams[stream.0] = start + dt;
        self.stats.record(class, dt);
        if ft_trace::enabled() {
            ft_trace::record_sim(class.name(), 1 + stream.0 as u64, start * 1e6, dt * 1e6);
        }
        self.run(f)
    }

    /// Asynchronous host→device transfer on `stream`: occupies the link
    /// and serializes with prior work on `stream`.
    pub fn h2d<R>(&mut self, stream: StreamId, bytes: usize, f: impl FnOnce() -> R) -> Option<R> {
        self.transfer(stream, bytes, f)
    }

    /// Asynchronous device→host transfer on `stream`.
    pub fn d2h<R>(&mut self, stream: StreamId, bytes: usize, f: impl FnOnce() -> R) -> Option<R> {
        self.transfer(stream, bytes, f)
    }

    fn transfer<R>(&mut self, stream: StreamId, bytes: usize, f: impl FnOnce() -> R) -> Option<R> {
        let dt = self
            .cost
            .seconds(OpClass::Transfer, Work::Bytes(bytes as f64));
        let start = self.streams[stream.0]
            .max(self.link_time)
            .max(self.host_time);
        let end = start + dt;
        self.streams[stream.0] = end;
        self.link_time = end;
        self.stats.record(OpClass::Transfer, dt);
        if ft_trace::enabled() {
            ft_trace::record_sim(
                OpClass::Transfer.name(),
                1 + stream.0 as u64,
                start * 1e6,
                dt * 1e6,
            );
        }
        self.run(f)
    }

    /// Blocks the host until `stream` has drained.
    pub fn sync_stream(&mut self, stream: StreamId) {
        self.host_time = self.host_time.max(self.streams[stream.0]);
    }

    /// Blocks the host until every stream and the link have drained.
    pub fn sync_all(&mut self) {
        self.host_time = self.elapsed();
    }

    /// Makes `stream` wait for all work currently enqueued on `other`
    /// (`cudaStreamWaitEvent` with an event recorded now).
    pub fn stream_wait_stream(&mut self, stream: StreamId, other: StreamId) {
        let t = self.streams[other.0];
        let s = &mut self.streams[stream.0];
        *s = s.max(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> HybridCtx {
        HybridCtx::new(CostModel::unit_test_model(), ExecMode::Full, 2)
    }

    #[test]
    fn host_work_blocks_host() {
        let mut c = ctx();
        let r = c.host(OpClass::HostPanel, Work::Flops(5.0), || 42);
        assert_eq!(r, Some(42));
        assert_eq!(c.host_time(), 5.0);
        assert_eq!(c.elapsed(), 5.0);
    }

    #[test]
    fn device_work_is_async() {
        let mut c = ctx();
        c.device(StreamId(0), OpClass::DeviceGemm, Work::Flops(10.0), || ());
        // Host did not advance; stream did.
        assert_eq!(c.host_time(), 0.0);
        assert_eq!(c.stream_time(StreamId(0)), 10.0);
        assert_eq!(c.elapsed(), 10.0);
        // Host work overlaps with the in-flight kernel.
        c.host(OpClass::HostPanel, Work::Flops(4.0), || ());
        assert_eq!(c.host_time(), 4.0);
        assert_eq!(c.elapsed(), 10.0, "overlap: makespan still 10");
        c.sync_stream(StreamId(0));
        assert_eq!(c.host_time(), 10.0);
    }

    #[test]
    fn device_kernel_waits_for_host_issue() {
        let mut c = ctx();
        c.host(OpClass::HostPanel, Work::Flops(3.0), || ());
        c.device(StreamId(0), OpClass::DeviceGemm, Work::Flops(2.0), || ());
        // Kernel issued at t=3, runs 2 ⇒ stream at 5.
        assert_eq!(c.stream_time(StreamId(0)), 5.0);
    }

    #[test]
    fn same_stream_serializes_different_streams_overlap() {
        let mut c = ctx();
        c.device(StreamId(0), OpClass::DeviceGemm, Work::Flops(4.0), || ());
        c.device(StreamId(0), OpClass::DeviceGemm, Work::Flops(4.0), || ());
        c.device(StreamId(1), OpClass::DeviceGemm, Work::Flops(4.0), || ());
        assert_eq!(c.stream_time(StreamId(0)), 8.0);
        assert_eq!(c.stream_time(StreamId(1)), 4.0);
        assert_eq!(c.elapsed(), 8.0);
    }

    #[test]
    fn transfers_occupy_link_and_stream() {
        let mut c = ctx();
        // 1 byte = 1 s in the unit model.
        c.h2d(StreamId(0), 3, || ());
        assert_eq!(c.stream_time(StreamId(0)), 3.0);
        // A second transfer on another stream serializes on the link.
        c.h2d(StreamId(1), 3, || ());
        assert_eq!(c.stream_time(StreamId(1)), 6.0);
        assert_eq!(c.host_time(), 0.0, "transfers are async");
    }

    #[test]
    fn stream_wait_stream_orders_cross_stream_work() {
        let mut c = ctx();
        c.device(StreamId(0), OpClass::DeviceGemm, Work::Flops(6.0), || ());
        c.stream_wait_stream(StreamId(1), StreamId(0));
        c.device(StreamId(1), OpClass::DeviceGemm, Work::Flops(1.0), || ());
        assert_eq!(c.stream_time(StreamId(1)), 7.0);
    }

    #[test]
    fn timing_only_skips_closures() {
        let mut c = HybridCtx::new(CostModel::unit_test_model(), ExecMode::TimingOnly, 1);
        let mut executed = false;
        let r = c.host(OpClass::HostPanel, Work::Flops(2.0), || {
            executed = true;
            7
        });
        assert_eq!(r, None);
        assert!(!executed);
        assert_eq!(c.host_time(), 2.0, "time still advances");
    }

    #[test]
    fn stats_accumulate() {
        let mut c = ctx();
        c.host(OpClass::HostPanel, Work::Flops(1.0), || ());
        c.device(StreamId(0), OpClass::DeviceGemm, Work::Flops(2.0), || ());
        c.h2d(StreamId(0), 4, || ());
        let s = c.stats();
        assert_eq!(s.host_busy, 1.0);
        assert_eq!(s.device_busy, 2.0);
        assert_eq!(s.link_busy, 4.0);
        assert_eq!(s.count(OpClass::Transfer), 1);
    }

    #[test]
    fn reset_clears_clocks() {
        let mut c = ctx();
        c.host(OpClass::HostPanel, Work::Flops(1.0), || ());
        c.reset();
        assert_eq!(c.elapsed(), 0.0);
        assert_eq!(c.stats().total_busy(), 0.0);
    }
}
