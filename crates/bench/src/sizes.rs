//! Matrix-size sweeps: the paper's exact sizes and scaled-down defaults.

/// The ten sizes of the paper's Figure 6 and Tables II/III.
pub fn paper_sizes() -> Vec<usize> {
    vec![1022, 2046, 3070, 4030, 5182, 6014, 7038, 8062, 9086, 10110]
}

/// Scaled-down sizes for real-arithmetic runs on one CPU core. Chosen
/// off-round (like the paper's) and spanning a 4× range so trends are
/// visible.
pub fn scaled_sizes() -> Vec<usize> {
    vec![254, 382, 510, 766, 1022]
}

/// Small sizes for quick smoke runs.
pub fn smoke_sizes() -> Vec<usize> {
    vec![126, 190, 254]
}

/// `true` when `FT_BENCH_SMOKE` asks for the fast, CI-sized bench run
/// (set and not `0`/`false`/`off`/`no`). The one place every bench target
/// reads the knob — shared so the accepted spellings can't drift between
/// targets.
pub fn smoke() -> bool {
    ft_trace::env_knob::flag("FT_BENCH_SMOKE")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match_figure6_axis() {
        let s = paper_sizes();
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 1022);
        assert_eq!(s[9], 10110);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }
}
