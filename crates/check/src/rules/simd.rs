//! FTC007 — every `#[target_feature]` fn needs a scalar twin and a
//! runtime-dispatch site.
//!
//! The PR-6 bit-identity contract says each ISA-specialized kernel
//! (`avx2_tile`, `axpy_col_avx2`, …) reproduces the exact per-element
//! operation stream of a scalar reference, and is only entered through
//! a dispatcher that checked the CPU at runtime (`Isa` resolution or
//! `is_x86_feature_detected!`). This rule pins both halves structurally:
//!
//! * **twin**: the tf fn either directly calls a non-tf fn in the same
//!   file (the shared-body pattern, e.g. `scalar_tile_fma` →
//!   `scalar_tile`), or a same-file non-tf fn shares its name stem once
//!   ISA segments (`avx2`, `fma`, `sse`, `neon`, `simd`) and scalar
//!   segments (`scalar`, `portable`, `body`, `ref`, `fallback`) are
//!   stripped (`avx2_tile` ↔ `scalar_tile`).
//! * **dispatch**: some non-tf, non-test fn in the same crate calls the
//!   tf fn by name and mentions `Isa` or `is_x86_feature_detected` in
//!   its body — the shape of every runtime dispatcher in the tree.

use super::Analysis;
use crate::lexer::TokKind;
use crate::Finding;

const ISA_SEGS: [&str; 8] = ["avx2", "avx", "fma", "sse", "sse2", "sse41", "neon", "simd"];
const SCALAR_SEGS: [&str; 6] = ["scalar", "portable", "body", "ref", "fallback", "generic"];

fn strip_segs(name: &str, segs: &[&str]) -> Vec<String> {
    name.split('_')
        .filter(|s| !segs.contains(s))
        .map(str::to_string)
        .collect()
}

/// Runs FTC007.
pub fn run(a: &Analysis<'_>, findings: &mut Vec<Finding>) {
    for (fi, fm) in a.files.iter().enumerate() {
        for (ki, f) in fm.items.fns.iter().enumerate() {
            if !f.target_feature || a.fn_in_test(fi, ki) {
                continue;
            }
            if !has_twin(a, fi, ki) {
                findings.push(a.finding(
                    fi,
                    f.line,
                    f.col,
                    "FTC007",
                    format!(
                        "`#[target_feature]` fn `{}` has no scalar twin in this file",
                        f.name
                    ),
                    "add a scalar fn sharing the name stem (e.g. `foo_scalar` for \
                     `foo_avx2`) or call the shared scalar body directly — the \
                     bit-identity contract needs a reference implementation",
                ));
            }
            if !has_dispatch(a, fi, ki) {
                findings.push(a.finding(
                    fi,
                    f.line,
                    f.col,
                    "FTC007",
                    format!(
                        "`#[target_feature]` fn `{}` has no runtime-dispatch site \
                         covering it",
                        f.name
                    ),
                    "call it from a non-target_feature dispatcher that matches on \
                     the resolved `Isa` (or `is_x86_feature_detected!`) so the \
                     kernel is never entered on an unsupporting CPU",
                ));
            }
        }
    }
}

fn has_twin(a: &Analysis<'_>, fi: usize, ki: usize) -> bool {
    let fm = &a.files[fi];
    let f = &fm.items.fns[ki];
    // Direct-call twin: the tf fn delegates to a same-file non-tf fn.
    for call in &fm.calls[ki] {
        if call.is_macro {
            continue;
        }
        if let Some(r) = a.graph.resolve(call, fi) {
            if r.file == fi && r.fn_idx != ki && !a.graph.item(r).target_feature {
                return true;
            }
        }
    }
    // Stem twin: same-file non-tf fn with the same name modulo
    // ISA/scalar segments.
    let stem = strip_segs(&f.name, &ISA_SEGS);
    if stem.len() == f.name.split('_').count() {
        // No ISA segment in the name at all — only the direct-call form
        // can prove a twin.
        return false;
    }
    fm.items.fns.iter().enumerate().any(|(gi, g)| {
        gi != ki && !g.target_feature && !g.in_test && strip_segs(&g.name, &SCALAR_SEGS) == stem
    })
}

fn has_dispatch(a: &Analysis<'_>, fi: usize, ki: usize) -> bool {
    let fm = &a.files[fi];
    let f = &fm.items.fns[ki];
    let crate_prefix = fm.crate_prefix();
    for (di, dm) in a.files.iter().enumerate() {
        if dm.crate_prefix() != crate_prefix {
            continue;
        }
        for (gi, g) in dm.items.fns.iter().enumerate() {
            if g.target_feature || (di == fi && gi == ki) || a.fn_in_test(di, gi) {
                continue;
            }
            // Free-call and `self.<name>()` method dispatch both count —
            // the abft wrappers dispatch through inherent methods.
            let calls_it = dm.calls[gi].iter().any(|c| !c.is_macro && c.name == f.name);
            if !calls_it {
                continue;
            }
            let Some((open, close)) = g.body else {
                continue;
            };
            let guarded = dm.lexed.toks[open..=close].iter().any(|t| {
                t.kind == TokKind::Ident && (t.text == "Isa" || t.text == "is_x86_feature_detected")
            });
            if guarded {
                return true;
            }
        }
    }
    false
}
