#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
//! Dense column-major matrix types for the FT-Hess reproduction.
//!
//! This crate is the storage substrate shared by every other crate in the
//! workspace. It deliberately mirrors the conventions of LAPACK:
//!
//! * matrices are stored **column-major** (Fortran order), so a column is a
//!   contiguous slice and a row is a strided walk with stride `lda`;
//! * sub-matrices are expressed as *views* carrying an explicit leading
//!   dimension (`lda`), so BLAS/LAPACK-style kernels can operate in place on
//!   arbitrary rectangular blocks of a larger matrix;
//! * indices are 0-based throughout (doc comments point out the 1-based
//!   LAPACK equivalents where that helps).
//!
//! The crate has no algorithmic content of its own: norms, generators and
//! equality helpers live here because every other crate's tests need them,
//! but all BLAS kernels live in `ft-blas` and all factorizations in
//! `ft-lapack`.

pub mod assertions;
pub mod dense;
pub mod io;
pub mod norms;
pub mod random;
pub mod view;

pub use assertions::{approx_eq, assert_matrix_eq, max_abs_diff, rel_diff};
pub use dense::Matrix;
pub use io::{read_matrix_market, write_matrix_market, MmError};
pub use norms::{fro_norm, grand_sum, inf_norm, max_abs, one_norm};
pub use view::{MatView, MatViewMut};
