//! Fixture: exactly one FTC002 violation (ad-hoc thread) on line 5.

/// Spawns a helper thread instead of dispatching to the ft-blas pool.
pub fn compute_in_background() -> std::thread::JoinHandle<u64> {
    std::thread::spawn(|| 42)
}
