//! Related-work baseline: **post-processing** fault-tolerant QR
//! factorization (Du, Luszczek, Tomov, Dongarra — ScalA'11, the paper's
//! reference 8).
//!
//! The paper positions its on-line scheme *against* this family: the
//! post-processing approach appends checksum columns to the input,
//! factorizes the augmented matrix, and only **after** the factorization
//! verifies and corrects the `R` factor — so
//!
//! * errors are corrected once, at the end: at most one error **per row**
//!   of `R` is correctable with the two checksum columns used here (and
//!   the original scheme tolerates at most two errors total over the
//!   whole run);
//! * an error caught mid-run in the on-line scheme never propagates,
//!   while here it silently contaminates everything derived from it
//!   until the end.
//!
//! Mechanism (Huang–Abraham): factorize `[A | A·e | A·ω]`. Since
//! `[A, A·S] = Q·[R | R·S]`, the two trailing columns of the augmented
//! `R` must equal `R·e` and `R·ω`. A corruption `ε` at `R(i, j)` shows up
//! as deficits `δ₁ = ε` and `δ₂ = ε·ω_j` in row `i` of the two checksum
//! relations; `j = δ₂/δ₁` locates the column and `δ₁` corrects the value.

use ft_blas::Trans;
use ft_lapack::{form_q_qr, geqrf};
use ft_matrix::Matrix;

/// Outcome of the post-processing verification.
#[derive(Clone, Debug, Default)]
pub struct QrPostProcessReport {
    /// Corrections applied to `R` (row, col, delta).
    pub corrected: Vec<(usize, usize, f64)>,
    /// Rows whose deficits could not be attributed to a single element
    /// (more than one error in the row, or a non-integer column index):
    /// the scheme's correction capacity was exceeded.
    pub unresolved_rows: Vec<usize>,
}

impl QrPostProcessReport {
    /// `true` when every detected deficit was correctable.
    pub fn fully_recovered(&self) -> bool {
        self.unresolved_rows.is_empty()
    }
}

/// A checksum-augmented QR factorization (the related-work baseline).
#[derive(Debug)]
pub struct FtQr {
    /// Packed QR of the augmented `n × (n+2)` matrix.
    packed: Matrix,
    tau: Vec<f64>,
    n: usize,
}

/// Factorizes `[A | A·e | A·ω]` with the blocked QR. Fault injection is
/// the caller's business (corrupt `packed_mut` between this call and
/// [`FtQr::post_process`] to model mid-run soft errors — there is no
/// on-line detection in this scheme, which is precisely its weakness).
pub fn ftqr_factorize(a: &Matrix, nb: usize) -> FtQr {
    assert!(a.is_square(), "ftqr: matrix must be square");
    let n = a.rows();
    let mut aug = Matrix::zeros(n, n + 2);
    aug.set_sub_matrix(0, 0, a);
    for i in 0..n {
        let mut s1 = 0.0;
        let mut s2 = 0.0;
        for j in 0..n {
            s1 += a[(i, j)];
            s2 += a[(i, j)] * omega(j);
        }
        aug[(i, n)] = s1;
        aug[(i, n + 1)] = s2;
    }
    let tau = geqrf(&mut aug, nb);
    FtQr {
        packed: aug,
        tau,
        n,
    }
}

#[inline]
fn omega(j: usize) -> f64 {
    (j + 1) as f64
}

impl FtQr {
    /// The logical dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Mutable access to the packed factorization — the fault-injection
    /// surface for experiments.
    pub fn packed_mut(&mut self) -> &mut Matrix {
        &mut self.packed
    }

    /// The (corrected) upper-triangular factor `R`.
    pub fn r(&self) -> Matrix {
        let n = self.n;
        Matrix::from_fn(n, n, |i, j| if i <= j { self.packed[(i, j)] } else { 0.0 })
    }

    /// The orthogonal factor.
    pub fn q(&self) -> Matrix {
        form_q_qr(&self.packed, &self.tau)
    }

    /// Post-processing verification and correction of `R` (the scheme's
    /// single, end-of-run recovery opportunity).
    ///
    /// `tol` is the deficit significance threshold.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // deliberate: NaN must count as exceeded
    pub fn post_process(&mut self, tol: f64) -> QrPostProcessReport {
        let n = self.n;
        let mut report = QrPostProcessReport::default();
        for i in 0..n {
            // Deficits of the two checksum relations in row i.
            let mut re = 0.0;
            let mut rw = 0.0;
            for j in i..n {
                let v = self.packed[(i, j)];
                re += v;
                rw += v * omega(j);
            }
            let d1 = re - self.packed[(i, n)];
            let d2 = rw - self.packed[(i, n + 1)];
            let hit1 = !(d1.abs() <= tol);
            let hit2 = !(d2.abs() <= tol);
            if !hit1 && !hit2 {
                continue;
            }
            if !hit1 && hit2 {
                // Deficit only in the weighted relation: either the
                // checksum column itself was hit, or cancellation —
                // unattributable to a unique element.
                report.unresolved_rows.push(i);
                continue;
            }
            // Column index from the deficit ratio.
            let jf = d2 / d1;
            let j = jf.round();
            if !j.is_finite() || (jf - j).abs() > 1e-3 || j < (i + 1) as f64 || j > n as f64 {
                report.unresolved_rows.push(i);
                continue;
            }
            let j = j as usize - 1;
            let old = self.packed[(i, j)];
            self.packed[(i, j)] = old - d1;
            report.corrected.push((i, j, d1));
        }
        report
    }

    /// `‖A − Q·R‖₁ / (N‖A‖₁)` against the original matrix.
    pub fn residual(&self, a0: &Matrix) -> f64 {
        let n = self.n;
        let q = self.q();
        let r = self.r();
        let mut qr = a0.clone();
        let mut tmp = Matrix::zeros(n, n);
        ft_blas::gemm(
            Trans::No,
            Trans::No,
            1.0,
            &q.as_view(),
            &r.as_view(),
            0.0,
            &mut tmp.as_view_mut(),
        );
        qr.axpy_matrix(-1.0, &tmp);
        qr.one_norm() / (n as f64 * a0.one_norm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_factorization_verifies_clean() {
        let a = ft_matrix::random::uniform(32, 32, 1);
        let mut f = ftqr_factorize(&a, 8);
        let rep = f.post_process(1e-9);
        assert!(rep.corrected.is_empty(), "{rep:?}");
        assert!(rep.fully_recovered());
        assert!(f.residual(&a) < 1e-14);
    }

    #[test]
    fn single_r_error_corrected_post_hoc() {
        let a = ft_matrix::random::uniform(32, 32, 2);
        let mut f = ftqr_factorize(&a, 8);
        // Corrupt one R element after the factorization completed.
        let truth = f.packed_mut()[(5, 20)];
        f.packed_mut()[(5, 20)] += 0.75;
        let rep = f.post_process(1e-9);
        assert_eq!(rep.corrected.len(), 1);
        assert_eq!((rep.corrected[0].0, rep.corrected[0].1), (5, 20));
        assert!((f.packed_mut()[(5, 20)] - truth).abs() < 1e-10);
        assert!(f.residual(&a) < 1e-12);
    }

    #[test]
    fn two_errors_distinct_rows_corrected() {
        let a = ft_matrix::random::uniform(32, 32, 3);
        let mut f = ftqr_factorize(&a, 8);
        f.packed_mut()[(3, 10)] += 0.5;
        f.packed_mut()[(17, 25)] -= 0.25;
        let rep = f.post_process(1e-9);
        assert_eq!(rep.corrected.len(), 2);
        assert!(rep.fully_recovered());
        assert!(f.residual(&a) < 1e-12);
    }

    #[test]
    fn two_errors_same_row_exceed_capacity() {
        // The documented limitation: two errors in one row of R cannot be
        // attributed with one checksum pair — the report must say so.
        let a = ft_matrix::random::uniform(32, 32, 4);
        let mut f = ftqr_factorize(&a, 8);
        f.packed_mut()[(7, 12)] += 0.5;
        f.packed_mut()[(7, 23)] += 0.5;
        let rep = f.post_process(1e-9);
        assert!(!rep.fully_recovered(), "{rep:?}");
        assert!(rep.unresolved_rows.contains(&7));
    }

    #[test]
    fn mid_run_error_contaminates_silently() {
        // The structural weakness the paper's on-line scheme removes: an
        // error striking the *trailing matrix during* the factorization
        // propagates into many R entries, and post-processing cannot
        // reconstruct them (deficits no longer identify single elements).
        let a = ft_matrix::random::uniform(48, 48, 5);

        // Run the blocked QR panel-by-panel manually, corrupting the
        // trailing matrix after the first panel.
        let n = 48;
        let mut aug = Matrix::zeros(n, n + 2);
        aug.set_sub_matrix(0, 0, &a);
        for i in 0..n {
            let mut s1 = 0.0;
            let mut s2 = 0.0;
            for j in 0..n {
                s1 += a[(i, j)];
                s2 += a[(i, j)] * omega(j);
            }
            aug[(i, n)] = s1;
            aug[(i, n + 1)] = s2;
        }
        // Factorize the first 8 columns, corrupt, then finish: simulate
        // by corrupting the original and comparing — simpler proxy: the
        // important observable is that post-processing cannot restore a
        // good residual when the error predates dependent computation.
        aug[(30, 40)] += 1.0; // pre-factorization corruption of A itself
        let tau = geqrf(&mut aug, 8);
        let mut f = FtQr {
            packed: aug,
            tau,
            n,
        };
        let rep = f.post_process(1e-9);
        let _ = rep;
        // R is consistent with the *corrupted* A — the residual against
        // the true A stays bad no matter what post-processing does.
        assert!(
            f.residual(&a) > 1e-6,
            "pre-existing corruption must not be repairable post hoc"
        );
    }
}
