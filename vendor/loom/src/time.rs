//! A deterministic virtual clock. [`Instant::now`] reads the execution's
//! clock, which starts at zero and advances only when a timed condvar
//! wait takes its timeout branch (to that wait's deadline). Deadline
//! rechecks after a timeout therefore observe expired deadlines exactly
//! as they would on a real clock — deterministically, per schedule.

use crate::rt::current;
use std::ops::{Add, Sub};

pub use std::time::Duration;

/// Virtual monotonic timestamp (nanoseconds since execution start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Instant {
    ns: u64,
}

impl Instant {
    /// The current virtual time of the running model execution.
    pub fn now() -> Instant {
        let (rt, _me) = current();
        Instant { ns: rt.clock_ns() }
    }

    /// Virtual time elapsed since `self`.
    pub fn elapsed(&self) -> Duration {
        Instant::now() - *self
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant {
            ns: self
                .ns
                .saturating_add(u64::try_from(rhs.as_nanos()).unwrap_or(u64::MAX)),
        }
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        Duration::from_nanos(
            self.ns
                .checked_sub(rhs.ns)
                .expect("loom: Instant subtraction went negative"),
        )
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Duration) -> Instant {
        Instant {
            ns: self
                .ns
                .checked_sub(u64::try_from(rhs.as_nanos()).unwrap_or(u64::MAX))
                .expect("loom: Instant subtraction went negative"),
        }
    }
}
