//! Each fixture under `tests/fixtures/` violates exactly one rule; the
//! scanner must report that rule — at the expected line — and nothing
//! else. The fixtures are excluded from the workspace scan itself.

use ft_check::{parse_registry, scan_source, Finding, Registry};
use std::path::PathBuf;

/// The real workspace registry (so fixture expectations track names.rs).
fn registry() -> Registry {
    let names = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../trace/src/names.rs");
    parse_registry(&std::fs::read_to_string(names).expect("read names.rs"))
}

/// Scans a fixture under a pretend repo-relative path (the path decides
/// which rules are in scope).
fn scan(fixture: &str, pretend_path: &str) -> Vec<Finding> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let source = std::fs::read_to_string(&path).expect("read fixture");
    scan_source(pretend_path, &source, &registry())
}

fn assert_single(findings: &[Finding], rule: &str, line: usize) {
    assert_eq!(
        findings.len(),
        1,
        "expected exactly one {rule} finding, got: {findings:#?}"
    );
    assert_eq!(findings[0].rule, rule);
    assert_eq!(
        findings[0].line, line,
        "wrong line for {rule}: {findings:#?}"
    );
    assert!(
        !findings[0].hint.is_empty(),
        "every finding carries a fix hint"
    );
}

#[test]
fn ftc001_env_var_outside_knob() {
    let f = scan("ftc001_env_var.rs", "crates/serve/src/fixture.rs");
    assert_single(&f, "FTC001", 5);
}

#[test]
fn ftc002_thread_outside_pool() {
    let f = scan("ftc002_thread_spawn.rs", "crates/serve/src/fixture.rs");
    assert_single(&f, "FTC002", 5);
}

#[test]
fn ftc003_unsafe_without_safety_comment() {
    let f = scan("ftc003_unsafe_no_safety.rs", "crates/fixture/src/lib.rs");
    assert_single(&f, "FTC003", 6);
}

#[test]
fn ftc004_unwrap_in_library_code() {
    let f = scan("ftc004_unwrap_in_lib.rs", "crates/fixture/src/lib.rs");
    assert_single(&f, "FTC004", 6);
}

#[test]
fn ftc004_is_out_of_scope_for_test_files() {
    // The same source under a tests/ path is fine: the rule covers
    // library code only.
    let f = scan("ftc004_unwrap_in_lib.rs", "crates/fixture/tests/it.rs");
    assert!(f.is_empty(), "tests may unwrap: {f:#?}");
}

#[test]
fn ftc005_wall_clock_in_math_crate() {
    let f = scan("ftc005_wall_clock.rs", "crates/blas/src/fixture.rs");
    assert_single(&f, "FTC005", 6);
}

#[test]
fn ftc005_is_out_of_scope_elsewhere() {
    // The service layer may read clocks (deadlines are wall-clock).
    let f = scan("ftc005_wall_clock.rs", "crates/serve/src/fixture.rs");
    assert!(f.is_empty(), "clocks outside math crates are fine: {f:#?}");
}

#[test]
fn ftc006_unregistered_metric_name() {
    let f = scan(
        "ftc006_unregistered_metric.rs",
        "crates/serve/src/fixture.rs",
    );
    assert_single(&f, "FTC006", 6);
    assert!(
        f[0].message.contains("serve.retrys"),
        "the typo'd name is quoted: {}",
        f[0].message
    );
}

#[test]
fn ftc006_unregistered_histogram_name() {
    let f = scan(
        "ftc006_unregistered_histogram.rs",
        "crates/serve/src/fixture.rs",
    );
    assert_single(&f, "FTC006", 6);
    assert!(
        f[0].message.contains("serve.latencies_high"),
        "the typo'd name is quoted: {}",
        f[0].message
    );
}

#[test]
fn clean_fixture_passes_every_rule() {
    // Scanned under the strictest scope (library code in a math crate).
    let f = scan("clean.rs", "crates/blas/src/clean.rs");
    assert!(f.is_empty(), "clean fixture must scan clean: {f:#?}");
}
