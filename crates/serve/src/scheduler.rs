//! The service proper: admission, executor workers, deadlines, retries,
//! shutdown.
//!
//! # Execution model
//!
//! [`Service::start`] spawns a fixed set of executor worker threads. Each
//! worker loops on the shared [`BoundedQueue`]: pop the next job (strict
//! priority, FIFO within a class), run the FT reduction on a fresh
//! simulator context, fulfill the caller's handle. Capacity is enforced at
//! the queue, so admission control *is* the backpressure mechanism —
//! [`Service::try_submit`] fails fast with [`SubmitError::QueueFull`] and
//! [`Service::submit`] blocks (bounded) for a slot.
//!
//! # Worker backends
//!
//! Each worker owns a fixed [`ft_blas::Backend`] installed thread-locally
//! for every run. By default the machine's parallelism is *partitioned*
//! across workers: `W` workers on a `P`-way machine each get a
//! `Threaded(P/W)` backend (or `Serial` once `P/W ≤ 1`), so the service
//! oversubscribes nothing no matter how many jobs run concurrently. The
//! shared `ft-blas` pool is safe for concurrent dispatch from multiple
//! workers (its queue is mutex-protected and each dispatch waits on its
//! own latch), and per-job numerics stay bit-identical regardless of the
//! partition thanks to the backend determinism contract.
//!
//! # Deadlines and FT-aware retries
//!
//! A job whose absolute deadline passes while it is still queued (or
//! between retry attempts) completes with [`JobStatus::DeadlineMissed`]
//! without running. A run that reports unrecoverable corruption
//! ([`FtOutcome::failure`](ft_hessenberg::FtOutcome) set) is retried under
//! [`RetryPolicy`]: capped exponential backoff, protection escalated each
//! attempt (TimingOnly→Full, `protect_q` on, more recovery attempts,
//! compensated checksums). Only when the retry budget — or the deadline —
//! is exhausted does the job fail, and it always carries the last
//! [`FtReport`](ft_hessenberg::FtReport) so the caller can see what the
//! detector saw.

use crate::job::{JobHandle, JobId, JobResult, JobSpec, JobStatus, QueuedJob};
use crate::metrics::MetricsServer;
use crate::oneshot::OneShot;
use crate::queue::{BoundedQueue, SubmitError};
use crate::retry::RetryPolicy;
use crate::stats::{trace_hooks, ServiceCounters, ServiceStats};
use ft_blas::Backend;
use ft_hessenberg::ft_gehrd_hybrid;
use ft_hybrid::{CostModel, HybridCtx};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service construction knobs.
///
/// [`ServiceConfig::default`] is fixed (no environment reads);
/// [`ServiceConfig::from_env`] layers the `FT_SERVE_*` variables on top:
///
/// | variable | meaning | default |
/// |---|---|---|
/// | `FT_SERVE_WORKERS` | executor worker count (`0` = auto) | auto |
/// | `FT_SERVE_QUEUE_CAP` | admission queue capacity | 64 |
/// | `FT_SERVE_DEADLINE_MS` | default job deadline, ms (`0`/unset = none) | none |
/// | `FT_SERVE_BACKEND` | per-worker kernel backend (`serial`, `threaded:N`, `threaded:auto`) | `threaded:auto` share |
/// | `FT_SERVE_METRICS_ADDR` | Prometheus exposition bind address (e.g. `127.0.0.1:9823`; port 0 = ephemeral) | off |
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Executor worker threads; `0` means auto (min(available
    /// parallelism, 4)).
    pub workers: usize,
    /// Admission queue capacity (≥ 1).
    pub queue_capacity: usize,
    /// Deadline applied to jobs whose spec carries none; `None` = no
    /// default deadline.
    pub default_deadline: Option<Duration>,
    /// Retry policy for unrecoverable runs.
    pub retry: RetryPolicy,
    /// Fixed per-worker kernel backend; `None` partitions the
    /// `threaded:auto` resolution (core-clamped) evenly across workers.
    pub worker_backend: Option<Backend>,
    /// Simulator cost model each job context is built from.
    pub cost: CostModel,
    /// Bind address for the read-only Prometheus exposition endpoint
    /// (`None` = no endpoint).
    pub metrics_addr: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            queue_capacity: 64,
            default_deadline: None,
            retry: RetryPolicy::default(),
            worker_backend: None,
            cost: CostModel::k40c_sandy_bridge(),
            metrics_addr: None,
        }
    }
}

impl ServiceConfig {
    /// Defaults overridden by the `FT_SERVE_*` environment knobs (see the
    /// type docs for the table).
    pub fn from_env() -> Self {
        let base = ServiceConfig::default();
        ServiceConfig {
            workers: ft_trace::env_knob::usize_or("FT_SERVE_WORKERS", base.workers),
            queue_capacity: ft_trace::env_knob::usize_or("FT_SERVE_QUEUE_CAP", base.queue_capacity)
                .max(1),
            default_deadline: ft_trace::env_knob::ms_or_none("FT_SERVE_DEADLINE_MS"),
            worker_backend: ft_trace::env_knob::parse_with("FT_SERVE_BACKEND", Backend::parse),
            metrics_addr: ft_trace::env_knob::raw("FT_SERVE_METRICS_ADDR"),
            ..base
        }
    }

    /// The worker count [`Service::start`] will spawn.
    pub fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            ft_blas::backend::available_parallelism().clamp(1, 4)
        } else {
            self.workers
        }
    }

    /// The per-worker backend [`Service::start`] will install: the
    /// explicit one if set (via `worker_backend` or `FT_SERVE_BACKEND`),
    /// otherwise the `threaded:auto` resolution divided evenly across the
    /// workers — [`Backend::auto`] clamps to the detected core count, the
    /// division prevents oversubscription, and the result degrades to
    /// [`Backend::Serial`] once the per-worker share drops to one thread
    /// (threaded dispatch on one core only pays queue/wake overhead).
    pub fn resolved_worker_backend(&self) -> Backend {
        if let Some(b) = self.worker_backend {
            return b;
        }
        let share = Backend::auto().threads() / self.resolved_workers();
        if share <= 1 {
            Backend::Serial
        } else {
            Backend::Threaded(share)
        }
    }
}

/// How [`Service::shutdown`] treats queued jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shutdown {
    /// Stop admitting, run everything already queued, then stop.
    Drain,
    /// Stop admitting, complete queued jobs as
    /// [`JobStatus::Canceled`] without running them, finish only the jobs
    /// already executing.
    Abort,
}

struct ServiceInner {
    queue: BoundedQueue<QueuedJob>,
    counters: ServiceCounters,
    retry: RetryPolicy,
    default_deadline: Option<Duration>,
    cost: CostModel,
    next_id: AtomicU64,
}

/// A running reduction service. Dropping it performs a drain shutdown.
pub struct Service {
    inner: Arc<ServiceInner>,
    workers: Vec<JoinHandle<()>>,
    worker_backend: Backend,
    metrics: Option<MetricsServer>,
}

impl Service {
    /// Spawns the executor workers and opens the queue for submissions.
    ///
    /// Also arms the telemetry side: a panic anywhere in the process now
    /// dumps the flight recorder (if a dump path is configured), and the
    /// Prometheus endpoint starts when `metrics_addr` is set — a bind
    /// failure is reported on stderr and the service runs without it
    /// (observability must never take the service down).
    pub fn start(config: ServiceConfig) -> Service {
        ft_trace::recorder::install_panic_dump_hook();
        let metrics = config.metrics_addr.as_deref().and_then(|addr| {
            MetricsServer::start(addr)
                .map_err(|e| eprintln!("ft-serve: metrics endpoint bind {addr} failed: {e}"))
                .ok()
        });
        let nworkers = config.resolved_workers();
        let backend = config.resolved_worker_backend();
        let inner = Arc::new(ServiceInner {
            queue: BoundedQueue::new(config.queue_capacity),
            counters: ServiceCounters::new(),
            retry: config.retry,
            default_deadline: config.default_deadline,
            cost: config.cost,
            next_id: AtomicU64::new(0),
        });
        let workers = (0..nworkers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("ft-serve-{w}"))
                    .spawn(move || {
                        while let Some(job) = inner.queue.pop() {
                            run_job(&inner, backend, job);
                        }
                    })
                    .expect("ft-serve: failed to spawn executor worker")
            })
            .collect();
        Service {
            inner,
            workers,
            worker_backend: backend,
            metrics,
        }
    }

    /// The backend each executor worker runs kernels under.
    pub fn worker_backend(&self) -> Backend {
        self.worker_backend
    }

    /// Number of executor workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The admission queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.inner.queue.capacity()
    }

    /// The bound exposition endpoint address, when one is serving.
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.metrics.as_ref().map(|m| m.local_addr())
    }

    fn enqueue(
        &self,
        spec: JobSpec,
        push: impl FnOnce(&BoundedQueue<QueuedJob>, QueuedJob) -> Result<(), SubmitError>,
    ) -> Result<JobHandle, SubmitError> {
        let hooks = trace_hooks();
        if let Err(reason) = spec.validate() {
            self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
            hooks.rejected.incr();
            return Err(SubmitError::InvalidSpec(reason));
        }
        let now = Instant::now();
        let job = QueuedJob {
            id: JobId(self.inner.next_id.fetch_add(1, Ordering::Relaxed)),
            deadline: spec
                .deadline
                .or(self.inner.default_deadline)
                .map(|d| now + d),
            slot: Arc::new(OneShot::new()),
            submitted: now,
            spec,
        };
        let handle = JobHandle {
            id: job.id,
            priority: job.spec.priority,
            slot: Arc::clone(&job.slot),
        };
        match push(&self.inner.queue, job) {
            Ok(()) => {
                self.inner
                    .counters
                    .submitted
                    .fetch_add(1, Ordering::Relaxed);
                hooks.submitted.incr();
                hooks.queue_depth.set(self.inner.queue.len() as u64);
                sync_lane_depths(&self.inner.queue);
                Ok(handle)
            }
            Err(e) => {
                self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
                hooks.rejected.incr();
                Err(e)
            }
        }
    }

    /// Non-blocking submission: fails fast with
    /// [`SubmitError::QueueFull`] when the queue is at capacity.
    pub fn try_submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        self.enqueue(spec, |q, job| {
            let p = job.spec.priority;
            q.try_push(p, job).map_err(|(e, _job)| e)
        })
    }

    /// Blocking submission: waits up to `timeout` for a queue slot.
    pub fn submit(&self, spec: JobSpec, timeout: Duration) -> Result<JobHandle, SubmitError> {
        self.enqueue(spec, |q, job| {
            let p = job.spec.priority;
            q.push_timeout(p, job, timeout).map_err(|(e, _job)| e)
        })
    }

    /// A point-in-time statistics snapshot (internal atomics; the same
    /// totals are mirrored to the `serve.*` registry entries in
    /// `ft-trace`).
    pub fn stats(&self) -> ServiceStats {
        let c = &self.inner.counters;
        ServiceStats {
            queue_depth: self.inner.queue.len(),
            lane_depths: self.inner.queue.lane_lens(),
            in_flight: c.in_flight.load(Ordering::Relaxed),
            submitted: c.submitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            deadline_missed: c.deadline_missed.load(Ordering::Relaxed),
            canceled: c.canceled.load(Ordering::Relaxed),
            latency: std::array::from_fn(|i| c.latency[i].snapshot().total),
            lanes: std::array::from_fn(|i| c.latency[i].snapshot()),
        }
    }

    /// Stops the service and joins every worker. `Drain` runs all queued
    /// jobs first; `Abort` cancels them (their handles resolve to
    /// [`JobStatus::Canceled`]). Jobs already executing finish either
    /// way. Returns the final statistics snapshot.
    pub fn shutdown(mut self, mode: Shutdown) -> ServiceStats {
        self.stop(mode);
        let stats = self.stats();
        self.workers.clear(); // already joined by stop()
        stats
    }

    fn stop(&mut self, mode: Shutdown) {
        let hooks = trace_hooks();
        match mode {
            Shutdown::Drain => self.inner.queue.close(),
            Shutdown::Abort => {
                for job in self.inner.queue.close_and_drain() {
                    let c = &self.inner.counters;
                    c.canceled.fetch_add(1, Ordering::Relaxed);
                    hooks.canceled.incr();
                    let us = elapsed_us(job.submitted);
                    job.slot.set(JobResult {
                        id: job.id,
                        priority: job.spec.priority,
                        status: JobStatus::Canceled,
                        attempts: 0,
                        report: None,
                        result: None,
                        queue_us: us,
                        total_us: us,
                    });
                }
            }
        }
        hooks.queue_depth.set(0);
        sync_lane_depths(&self.inner.queue);
        for h in self.workers.drain(..) {
            h.join().expect("ft-serve: executor worker panicked");
        }
        // Final telemetry flush: persist the flight recorder (no-op
        // unless a dump path is configured) and stop the endpoint.
        let _ = ft_trace::recorder::dump("shutdown");
        if let Some(m) = self.metrics.take() {
            m.stop();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.stop(Shutdown::Drain);
        }
    }
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Mirrors the per-lane queue depths into the `serve.queue_depth_*`
/// gauges (called whenever the queue's composition changes).
fn sync_lane_depths(queue: &BoundedQueue<QueuedJob>) {
    let hooks = trace_hooks();
    let lens = queue.lane_lens();
    for (gauge, len) in hooks.lane_depth.iter().zip(lens) {
        gauge.set(len as u64);
    }
}

// ft-check: worker-loop
/// Executes one job on the calling worker thread: deadline gate, run,
/// escalated retries, handle fulfillment, accounting.
fn run_job(inner: &ServiceInner, backend: Backend, job: QueuedJob) {
    let hooks = trace_hooks();
    let c = &inner.counters;
    let in_flight = c.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
    hooks.in_flight.set(in_flight);
    hooks.queue_depth.set(inner.queue.len() as u64);
    sync_lane_depths(&inner.queue);

    let QueuedJob {
        id,
        spec,
        slot,
        submitted,
        deadline,
    } = job;
    let lane = spec.priority.index();
    let queue_us = elapsed_us(submitted);
    c.latency[lane].queue_wait.record(queue_us);
    hooks.queue_wait[lane].record(queue_us);
    let mut cfg = spec.cfg;
    cfg.backend = backend;
    let mut exec = spec.exec;
    let mut attempts = 0u32;
    let mut report = None;
    let mut result = None;

    let status = loop {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            break JobStatus::DeadlineMissed;
        }
        // Every span, counter delta, and journal record below — on this
        // thread and on any pool worker it dispatches to — is tagged
        // with this job's id and the 0-based attempt number.
        let _trace_ctx = ft_trace::ctx::push(ft_trace::TraceCtx {
            job_id: id.0,
            attempt: attempts,
        });
        let _span = ft_trace::span!("serve.run", attempts as usize);
        let mut plan = spec.faults.materialize();
        let mut ctx = HybridCtx::new(inner.cost.clone(), exec, 2);
        ctx.set_host_parallelism(backend.threads() as f64);
        let exec_started = Instant::now();
        let out = ft_blas::with_backend(backend, || {
            ft_gehrd_hybrid(&spec.matrix, &cfg, &mut ctx, &mut plan)
        });
        let exec_us = elapsed_us(exec_started);
        c.latency[lane].exec.record(exec_us);
        hooks.exec[lane].record(exec_us);
        attempts += 1;
        report = Some(out.report);
        let Some(reason) = out.failure else {
            result = out.result;
            break JobStatus::Completed;
        };
        // attempts counts executed runs; the budget is 1 + max_retries.
        if attempts > inner.retry.max_retries {
            break JobStatus::Failed(reason);
        }
        let backoff = inner.retry.backoff(attempts);
        if deadline.is_some_and(|d| Instant::now() + backoff >= d) {
            break JobStatus::Failed(reason);
        }
        c.retries.fetch_add(1, Ordering::Relaxed);
        hooks.retries.incr();
        let backoff_us = u64::try_from(backoff.as_micros()).unwrap_or(u64::MAX);
        c.latency[lane].backoff.record(backoff_us);
        hooks.backoff[lane].record(backoff_us);
        std::thread::sleep(backoff);
        let (next_cfg, next_exec) = RetryPolicy::escalate(&cfg, exec);
        cfg = next_cfg;
        cfg.backend = backend;
        exec = next_exec;
    };

    let total_us = elapsed_us(submitted);
    match status {
        JobStatus::Completed => {
            c.completed.fetch_add(1, Ordering::Relaxed);
            hooks.completed.incr();
            c.latency[lane].total.record(total_us);
            hooks.latency[lane].record(total_us);
        }
        JobStatus::Failed(_) => {
            c.failed.fetch_add(1, Ordering::Relaxed);
            hooks.failed.incr();
            // Unrecoverable job: persist the flight recorder while the
            // evidence is still in the rings (no-op without a dump path).
            let _ = ft_trace::recorder::dump("job_failed");
        }
        JobStatus::DeadlineMissed => {
            c.deadline_missed.fetch_add(1, Ordering::Relaxed);
            hooks.deadline_missed.incr();
            let _ = ft_trace::recorder::dump("deadline_missed");
        }
        // Cancellation happens on the shutdown path, never in a worker.
        JobStatus::Canceled => unreachable!("workers never cancel"),
    }
    let in_flight = c.in_flight.fetch_sub(1, Ordering::Relaxed) - 1;
    hooks.in_flight.set(in_flight);

    slot.set(JobResult {
        id,
        priority: spec.priority,
        status,
        attempts,
        report,
        result,
        queue_us,
        total_us,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Priority;
    use ft_matrix::Matrix;

    fn small_spec(n: usize) -> JobSpec {
        let mut spec = JobSpec::new(ft_matrix::random::uniform(n, n, n as u64));
        spec.cfg = ft_hessenberg::FtConfig::with_nb(8);
        spec
    }

    #[test]
    fn completes_a_simple_job() {
        let svc = Service::start(ServiceConfig {
            workers: 2,
            queue_capacity: 4,
            ..ServiceConfig::default()
        });
        let h = svc.try_submit(small_spec(24)).unwrap();
        let r = h.wait();
        assert_eq!(r.status, JobStatus::Completed);
        assert_eq!(r.attempts, 1);
        assert!(r.result.is_some());
        assert!(r.report.is_some());
        let stats = svc.shutdown(Shutdown::Drain);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.terminal(), 1);
    }

    #[test]
    fn rejects_invalid_spec() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let err = svc
            .try_submit(JobSpec::new(Matrix::zeros(3, 5)))
            .unwrap_err();
        assert!(matches!(err, SubmitError::InvalidSpec(_)));
        assert_eq!(svc.stats().rejected, 1);
    }

    #[test]
    fn immediate_deadline_is_missed() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let mut spec = small_spec(16);
        spec.deadline = Some(Duration::ZERO);
        let r = svc.try_submit(spec).unwrap().wait();
        assert_eq!(r.status, JobStatus::DeadlineMissed);
        assert_eq!(r.attempts, 0);
    }

    #[test]
    fn abort_cancels_queued_jobs() {
        // One worker wedged on a big job; everything behind it is queued.
        let svc = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            ..ServiceConfig::default()
        });
        let first = svc.try_submit(small_spec(96)).unwrap();
        let queued: Vec<_> = (0..3)
            .map(|_| {
                let mut s = small_spec(16);
                s.priority = Priority::Low;
                svc.try_submit(s).unwrap()
            })
            .collect();
        let stats = svc.shutdown(Shutdown::Abort);
        // The in-flight job finished; the queued ones were canceled
        // (unless the worker got to some before shutdown — accept both,
        // but the totals must add up with nothing lost).
        assert_eq!(stats.terminal(), 4);
        let _ = first.wait();
        for h in queued {
            let r = h.wait();
            assert!(
                matches!(r.status, JobStatus::Canceled | JobStatus::Completed),
                "{r:?}"
            );
        }
    }

    #[test]
    fn config_resolution() {
        let cfg = ServiceConfig {
            workers: 0,
            ..ServiceConfig::default()
        };
        assert!(cfg.resolved_workers() >= 1);
        let pinned = ServiceConfig {
            workers: 2,
            worker_backend: Some(Backend::Threaded(3)),
            ..ServiceConfig::default()
        };
        assert_eq!(pinned.resolved_workers(), 2);
        assert_eq!(pinned.resolved_worker_backend(), Backend::Threaded(3));
        // Auto partition never oversubscribes: workers × share ≤ machine.
        let auto = ServiceConfig::default();
        let share = auto.resolved_worker_backend().threads();
        assert!(
            share * auto.resolved_workers() <= ft_blas::backend::available_parallelism().max(1)
        );
        // The default partitions the `threaded:auto` resolution, so on a
        // single-core box every worker degrades to the serial backend.
        if ft_blas::backend::available_parallelism() == 1 {
            assert_eq!(auto.resolved_worker_backend(), Backend::Serial);
        }
    }

    #[test]
    fn backend_env_knob_parses_like_ft_blas() {
        // `FT_SERVE_BACKEND` accepts the same grammar as
        // `FT_BLAS_BACKEND`, including `threaded:auto`.
        for (s, want) in [
            ("serial", Backend::Serial),
            ("threaded:3", Backend::Threaded(3)),
            ("threaded:auto", Backend::auto()),
        ] {
            let cfg = ServiceConfig {
                worker_backend: Backend::parse(s),
                ..ServiceConfig::default()
            };
            assert_eq!(cfg.resolved_worker_backend(), want, "{s}");
        }
    }
}
