//! High-level one-call drivers: the API a downstream user reaches for
//! first, wrapping the reduction → Schur → eigenvector pipeline with
//! fault tolerance on by default.

use ft_fault::FaultPlan;
use ft_hessenberg::{ft_gehrd_hybrid, FtConfig, FtReport};
use ft_hybrid::{CostModel, ExecMode, HybridCtx};
use ft_lapack::hseqr::Eigenvalue;
use ft_lapack::real_schur;
use ft_lapack::schur::SchurDecomposition;
use ft_matrix::Matrix;

/// Errors a driver can report.
#[derive(Debug)]
pub enum DriverError {
    /// The matrix is not square.
    NotSquare {
        /// Row count of the offending matrix.
        rows: usize,
        /// Column count of the offending matrix.
        cols: usize,
    },
    /// The QR iteration failed to converge.
    NoConvergence(ft_lapack::hseqr::NoConvergence),
    /// Fault recovery could not fully repair the data (e.g. an
    /// overflow-scale corruption); the computation is unreliable.
    Unrecovered(Box<FtReport>),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            DriverError::NoConvergence(e) => write!(f, "{e}"),
            DriverError::Unrecovered(r) => write!(
                f,
                "fault recovery incomplete ({} unresolved episode(s))",
                r.recoveries.iter().filter(|e| !e.resolved).count()
            ),
        }
    }
}

impl std::error::Error for DriverError {}

/// The complete spectral result of [`eigen`].
#[derive(Debug)]
pub struct Eigen {
    /// All eigenvalues (complex pairs adjacent).
    pub values: Vec<Eigenvalue>,
    /// Real eigenvalues with explicit eigenvectors (columns of
    /// `vectors`); complex pairs are represented by the Schur form.
    pub real_values: Vec<f64>,
    /// Unit eigenvectors for `real_values`, one column each.
    pub vectors: Matrix,
    /// The full real Schur decomposition `A = Z·T·Zᵀ`.
    pub schur: SchurDecomposition,
    /// Fault-tolerance telemetry of the reduction phase.
    pub report: FtReport,
}

fn check_square(a: &Matrix) -> Result<(), DriverError> {
    if a.is_square() {
        Ok(())
    } else {
        Err(DriverError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        })
    }
}

/// Reduces `a` to Hessenberg form with the fault-tolerant hybrid
/// algorithm under a caller-supplied fault plan (use
/// [`FaultPlan::none`] in production; tests inject through it).
pub fn hessenberg_ft(
    a: &Matrix,
    cfg: &FtConfig,
    plan: &mut FaultPlan,
) -> Result<(ft_lapack::HessFactorization, FtReport), DriverError> {
    check_square(a)?;
    let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
    let out = ft_gehrd_hybrid(a, cfg, &mut ctx, plan);
    if out.report.any_unresolved() {
        return Err(DriverError::Unrecovered(Box::new(out.report)));
    }
    let f = out.result.expect("full mode returns the factorization");
    Ok((f, out.report))
}

/// Options for the spectral drivers.
#[derive(Clone, Copy, Debug)]
pub struct EigenOptions {
    /// Fault-tolerance configuration for the reduction phase.
    pub ft: FtConfig,
    /// Balance the matrix (exact diagonal similarity) before reducing —
    /// improves accuracy dramatically on badly scaled inputs, at zero
    /// eigenvalue perturbation. Eigenvectors are back-transformed; the
    /// Schur factors then refer to the *balanced* matrix.
    pub balance: bool,
}

impl Default for EigenOptions {
    fn default() -> Self {
        EigenOptions {
            ft: FtConfig::default(),
            balance: true,
        }
    }
}

/// All eigenvalues of a general square matrix, computed through the
/// fault-tolerant reduction (with balancing).
pub fn eigenvalues(a: &Matrix) -> Result<Vec<Eigenvalue>, DriverError> {
    check_square(a)?;
    let mut work = a.clone();
    let _bal = ft_lapack::balance(&mut work);
    let (f, _report) = hessenberg_ft(&work, &FtConfig::default(), &mut FaultPlan::none())?;
    ft_lapack::eigenvalues_hessenberg(&f.h()).map_err(DriverError::NoConvergence)
}

/// Full spectral decomposition: eigenvalues, Schur form, and explicit
/// eigenvectors for the real part of the spectrum.
pub fn eigen(a: &Matrix) -> Result<Eigen, DriverError> {
    eigen_opts(a, &EigenOptions::default(), &mut FaultPlan::none())
}

/// [`eigen`] with an explicit FT configuration and fault plan
/// (no balancing, so fault coordinates refer to `a` itself).
pub fn eigen_with(a: &Matrix, cfg: &FtConfig, plan: &mut FaultPlan) -> Result<Eigen, DriverError> {
    eigen_opts(
        a,
        &EigenOptions {
            ft: *cfg,
            balance: false,
        },
        plan,
    )
}

/// [`eigen`] with full options.
pub fn eigen_opts(
    a: &Matrix,
    opts: &EigenOptions,
    plan: &mut FaultPlan,
) -> Result<Eigen, DriverError> {
    check_square(a)?;
    let (work, bal) = if opts.balance {
        let mut w = a.clone();
        let b = ft_lapack::balance(&mut w);
        (w, Some(b))
    } else {
        (a.clone(), None)
    };
    let (f, report) = hessenberg_ft(&work, &opts.ft, plan)?;
    let schur = real_schur(&f.h(), Some(f.q())).map_err(DriverError::NoConvergence)?;
    let (real_values, mut vectors) = schur.real_eigenvectors();
    if let Some(b) = &bal {
        for j in 0..vectors.cols() {
            let y: Vec<f64> = vectors.col(j).to_vec();
            let v = b.back_transform(&y);
            vectors.col_mut(j).copy_from_slice(&v);
        }
    }
    Ok(Eigen {
        values: schur.eigenvalues.clone(),
        real_values,
        vectors,
        schur,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_fault::Fault;

    #[test]
    fn eigen_of_symmetric_matrix() {
        let n = 24;
        let a = ft_matrix::random::symmetric(n, 5);
        let e = eigen(&a).unwrap();
        assert_eq!(e.values.len(), n);
        assert_eq!(e.real_values.len(), n, "symmetric spectrum is real");
        // A v = λ v for every returned vector.
        for (j, &lambda) in e.real_values.iter().enumerate() {
            let v: Vec<f64> = e.vectors.col(j).to_vec();
            let mut av = vec![0.0; n];
            ft_blas::gemv(ft_blas::Trans::No, 1.0, &a.as_view(), &v, 0.0, &mut av);
            for i in 0..n {
                assert!((av[i] - lambda * v[i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn eigen_survives_injection() {
        let n = 48;
        let a = ft_matrix::random::uniform(n, n, 6);
        let clean = eigenvalues(&a).unwrap();
        let mut plan = FaultPlan::one(1, Fault::add(30, 40, 0.5));
        let e = eigen_with(&a, &FtConfig::default(), &mut plan).unwrap();
        assert!(!e.report.recoveries.is_empty());
        let mut c = clean.clone();
        let mut d = e.values.clone();
        ft_lapack::hseqr::sort_eigenvalues(&mut c);
        ft_lapack::hseqr::sort_eigenvalues(&mut d);
        for (x, y) in c.iter().zip(&d) {
            assert!((x.re - y.re).abs() < 1e-7 && (x.im - y.im).abs() < 1e-7);
        }
    }

    #[test]
    fn balancing_improves_badly_scaled_spectrum() {
        // Exact diagonal similarity of a well-conditioned base: the true
        // spectrum is the base's.
        let n = 16;
        let base = ft_matrix::random::uniform(n, n, 9);
        let mut bad = base.clone();
        for i in 0..n {
            let f = 2f64.powf(((i % 7) as f64 - 3.0) * 4.0);
            for j in 0..n {
                let v = bad[(i, j)];
                bad[(i, j)] = v * f;
            }
            for j in 0..n {
                let v = bad[(j, i)];
                bad[(j, i)] = v / f;
            }
        }
        let mut truth = eigenvalues(&base).unwrap();
        let mut got = eigenvalues(&bad).unwrap();
        ft_lapack::hseqr::sort_eigenvalues(&mut truth);
        ft_lapack::hseqr::sort_eigenvalues(&mut got);
        for (x, y) in truth.iter().zip(&got) {
            let s = x.abs().max(1.0);
            assert!(
                (x.re - y.re).hypot(x.im - y.im) / s < 1e-9,
                "{x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(3, 4);
        assert!(matches!(
            eigenvalues(&a),
            Err(DriverError::NotSquare { .. })
        ));
    }

    #[test]
    fn unrecoverable_corruption_surfaces_as_error() {
        let n = 48;
        let a = ft_matrix::random::uniform(n, n, 7);
        // Overflow-scale corruption: must surface as an error, not a
        // silently wrong answer.
        let mut plan = FaultPlan::one(1, Fault::bitflip(30, 40, 62));
        let r = eigen_with(&a, &FtConfig::default(), &mut plan);
        assert!(matches!(r, Err(DriverError::Unrecovered(_))), "{r:?}");
    }
}
