//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of proptest this workspace uses: the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assume!`] / [`prop_oneof!`] macros, the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`, range
//! and tuple strategies, [`strategy::Just`], [`arbitrary::any`],
//! `collection::vec`, `bool::ANY`, and
//! [`test_runner::ProptestConfig::with_cases`].
//!
//! Cases are generated from a deterministic per-test seed (a hash of the
//! fully-qualified test name mixed with the case index), so failures are
//! reproducible run-to-run. There is **no shrinking**: a failing case
//! reports its case index and seed instead of a minimized input.

pub mod strategy {
    //! The [`Strategy`] trait and the combinators this workspace uses.

    use rand::rngs::StdRng;
    use rand::{Rng, SampleUniform};

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value. The core object-safe operation — everything
        /// else is a combinator on top of it.
        fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut StdRng) -> T {
            (**self).gen_value(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl<T: SampleUniform + 'static> Strategy for std::ops::Range<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    impl<T: SampleUniform + 'static> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut StdRng) -> T {
            rng.gen_range(*self.start()..=*self.end())
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.gen_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn gen_value(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.source.gen_value(rng)).gen_value(rng)
        }
    }

    /// Uniform choice between alternatives (see [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        variants: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over the given alternatives; must be non-empty.
        pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
            Union { variants }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.variants.len());
            self.variants[idx].gen_value(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(S0.0);
    impl_tuple_strategy!(S0.0, S1.1);
    impl_tuple_strategy!(S0.0, S1.1, S2.2);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8, S9.9);
}

pub mod arbitrary {
    //! `any::<T>()` — the type's canonical full-range strategy.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Draws one full-range value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u64, u32, u16, u8, usize, i64, i32, i16, i8);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            // Finite, sign-symmetric, wide dynamic range.
            let mag = rng.gen::<f64>() * 1e6;
            if rng.gen::<bool>() {
                mag
            } else {
                -mag
            }
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! `vec(element, len_range)` — random-length vectors.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.start..self.size.end);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod bool {
    //! `bool::ANY` — a fair coin.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The type of [`ANY`].
    pub struct Any;

    /// `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn gen_value(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

pub mod test_runner {
    //! Deterministic case scheduling for the [`proptest!`](crate::proptest) macro.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases each test must run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assert!`-style failure: the property is violated.
        Fail(String),
        /// `prop_assume!` rejection: the input is out of scope.
        Reject(String),
    }

    impl TestCaseError {
        /// A property-violation error.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// An input-rejection marker.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Hands out one deterministic RNG per case of one named test.
    pub struct TestRunner {
        cases: u32,
        base_seed: u64,
    }

    impl TestRunner {
        /// FNV-1a, so the seed depends only on the test's name.
        fn hash_name(name: &str) -> u64 {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        }

        /// A runner for the named test under `config`.
        pub fn new(config: &ProptestConfig, name: &str) -> Self {
            TestRunner {
                cases: config.cases,
                base_seed: Self::hash_name(name),
            }
        }

        /// How many successful cases the test must complete.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The RNG for case number `case` (stable across runs).
        pub fn rng_for_case(&self, case: u32) -> StdRng {
            // SplitMix-style avalanche so consecutive cases decorrelate.
            let mut z = self
                .base_seed
                .wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            StdRng::seed_from_u64(z ^ (z >> 31))
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller and
/// re-emitted) that runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let runner = $crate::test_runner::TestRunner::new(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut case: u32 = 0;
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < runner.cases() {
                assert!(
                    rejected <= runner.cases().saturating_mul(16).max(256),
                    "proptest {}: too many prop_assume! rejections ({rejected})",
                    stringify!($name),
                );
                let mut rng = runner.rng_for_case(case);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $pat =
                                $crate::strategy::Strategy::gen_value(&($strat), &mut rng);
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => rejected += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => panic!(
                        "proptest {} failed at case {case}: {msg}",
                        stringify!($name),
                    ),
                }
                case += 1;
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, fmt, args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert_eq!(left, right)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                );
            }
        }
    };
}

/// `prop_assert_ne!(left, right)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

/// `prop_assume!(cond)` — rejects the case (it does not count toward the
/// case budget) instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// `prop_oneof![s1, s2, ...]` — uniform choice among strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (1usize..10, 0.5f64..2.0), c in 3usize..=5) {
            prop_assert!((1..10).contains(&a));
            prop_assert!((0.5..2.0).contains(&b));
            prop_assert!((3..=5).contains(&c));
        }

        #[test]
        fn flat_map_respects_dependency(
            (n, k) in (2usize..20).prop_flat_map(|n| (Just(n), 0..n))
        ) {
            prop_assert!(k < n);
        }

        #[test]
        fn oneof_and_assume(x in prop_oneof![0.001f64..1.0, -1.0f64..-0.001]) {
            prop_assume!(x != 0.0);
            prop_assert_ne!(x, 0.0);
            prop_assert!(x.abs() >= 0.0009, "{x}");
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0usize..5, 1..9), flag in prop::bool::ANY) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(flag || !flag);
            for e in v {
                prop_assert!(e < 5);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let runner = crate::test_runner::TestRunner::new(
            &crate::test_runner::ProptestConfig::with_cases(4),
            "fixed-name",
        );
        let a = crate::strategy::Strategy::gen_value(&(0u64..1 << 60), &mut runner.rng_for_case(0));
        let b = crate::strategy::Strategy::gen_value(&(0u64..1 << 60), &mut runner.rng_for_case(0));
        assert_eq!(a, b);
    }
}
