//! The structured fault audit journal.
//!
//! Every recovery episode the FT driver resolves (or fails to resolve)
//! lands here as one [`JournalRecord`] tagged with the ambient trace
//! context — job id, attempt, iteration, FT phase, and the protection
//! level that was active. The journal is the input stream the planned
//! adaptive-protection policy consumes (ROADMAP item 4), it is appended
//! to every flight-recorder dump, and [`crate::to_jsonl`]'s callers can
//! render it alongside span events.
//!
//! Memory is bounded: the journal keeps the most recent
//! [`CAPACITY`] records and drops the oldest beyond that (the same
//! drop-oldest policy as the flight recorder). Records are tiny and
//! recovery is rare — hitting the bound at all means a fault storm, and
//! the retained tail is exactly the part a post-mortem wants.

#[cfg(feature = "enabled")]
use crate::ctx;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Maximum records retained (drop-oldest beyond this).
pub const CAPACITY: usize = 4096;

/// One recovery / correction episode.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalRecord {
    /// Record time, µs since the trace epoch.
    pub ts_us: f64,
    /// Owning job, if a trace context was installed.
    pub job_id: Option<u64>,
    /// Attempt number from the trace context (0 when absent).
    pub attempt: u32,
    /// Panel iteration the episode occurred in.
    pub iteration: usize,
    /// Which driver phase recorded it: `"recovery"` (in-iteration
    /// correction), `"giveup"` (budget exhausted, re-encode), or
    /// `"final"` (whole-matrix post-check).
    pub phase: &'static str,
    /// Active protection level, e.g. `"full+q"` (see the FT driver).
    pub protection: &'static str,
    /// Number of corrected elements.
    pub corrected: usize,
    /// Checksum mismatch magnitude that triggered the episode (NaN when
    /// the driver gave up without a localized mismatch).
    pub mismatch: f64,
    /// Whether the episode left the factorization consistent.
    pub resolved: bool,
}

static JOURNAL: Mutex<VecDeque<JournalRecord>> = Mutex::new(VecDeque::new());

/// Appends one record, stamping it with the calling thread's trace
/// context, and mirrors it into the flight recorder. No-op without the
/// `enabled` feature.
pub fn record(
    iteration: usize,
    phase: &'static str,
    protection: &'static str,
    corrected: usize,
    mismatch: f64,
    resolved: bool,
) {
    #[cfg(feature = "enabled")]
    {
        let c = ctx::current();
        let rec = JournalRecord {
            ts_us: crate::clock::now_us(),
            job_id: c.map(|c| c.job_id),
            attempt: c.map(|c| c.attempt).unwrap_or(0),
            iteration,
            phase,
            protection,
            corrected,
            mismatch,
            resolved,
        };
        crate::recorder::note_recovery("ft.recoveries", corrected as u64);
        let mut j = JOURNAL.lock().unwrap();
        if j.len() >= CAPACITY {
            j.pop_front();
        }
        j.push_back(rec);
    }
    #[cfg(not(feature = "enabled"))]
    let _ = (iteration, phase, protection, corrected, mismatch, resolved);
}

/// A copy of the retained records, oldest first.
pub fn snapshot() -> Vec<JournalRecord> {
    JOURNAL.lock().unwrap().iter().cloned().collect()
}

/// Drops every retained record (test isolation).
pub fn clear() {
    JOURNAL.lock().unwrap().clear();
}

/// Renders one record as a single JSONL object (no trailing newline).
/// Non-finite mismatches render as `null` — JSON has no NaN.
pub fn to_jsonl_line(rec: &JournalRecord) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"journal\":{");
    let _ = write!(out, "\"ts_us\":{:.3}", rec.ts_us);
    if let Some(j) = rec.job_id {
        let _ = write!(out, ",\"job\":{j}");
    }
    let _ = write!(
        out,
        ",\"attempt\":{},\"iteration\":{},\"phase\":\"{}\",\"protection\":\"{}\",\"corrected\":{}",
        rec.attempt,
        rec.iteration,
        crate::writer::json_escape(rec.phase),
        crate::writer::json_escape(rec.protection),
        rec.corrected,
    );
    if rec.mismatch.is_finite() {
        let _ = write!(out, ",\"mismatch\":{:e}", rec.mismatch);
    } else {
        out.push_str(",\"mismatch\":null");
    }
    let _ = write!(out, ",\"resolved\":{}}}}}", rec.resolved);
    out
}

/// Renders records as JSON Lines.
pub fn to_jsonl(records: &[JournalRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&to_jsonl_line(rec));
        out.push('\n');
    }
    out
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    // One combined test: the journal is process-global state, so the
    // context and bounding assertions must not run concurrently.
    #[test]
    fn records_carry_ambient_context_and_journal_is_bounded() {
        clear();
        let g = ctx::push(ctx::TraceCtx {
            job_id: 41,
            attempt: 2,
        });
        record(3, "recovery", "full", 2, 1.5e-9, true);
        drop(g);
        record(9, "final", "full", 0, f64::NAN, false);
        let recs = snapshot();
        let with_ctx = recs
            .iter()
            .find(|r| r.job_id == Some(41))
            .expect("context-tagged record present");
        assert_eq!(with_ctx.attempt, 2);
        assert_eq!(with_ctx.phase, "recovery");
        let line = to_jsonl_line(with_ctx);
        assert!(line.starts_with("{\"journal\":{"));
        assert!(line.contains("\"job\":41"));
        assert!(line.contains("\"attempt\":2"));
        assert!(line.contains("\"resolved\":true"));
        let bare = recs
            .iter()
            .find(|r| r.phase == "final")
            .expect("bare record");
        assert_eq!(bare.job_id, None);
        assert!(to_jsonl_line(bare).contains("\"mismatch\":null"));

        clear();
        for i in 0..(CAPACITY + 10) {
            record(i, "recovery", "full", 1, 0.0, true);
        }
        let recs = snapshot();
        assert_eq!(recs.len(), CAPACITY);
        assert_eq!(recs[0].iteration, 10, "oldest records dropped first");
        clear();
    }
}
