//! Symmetric tridiagonal reduction (LAPACK `DSYTD2`-style) — the second
//! two-sided factorization the paper's conclusion targets ("the
//! methodology … is generic enough to be applicable to the entire
//! spectrum of two-sided factorizations").
//!
//! Given symmetric `A`, computes `T = QᵀAQ` with `T` symmetric
//! tridiagonal and `Q` a product of `n − 2` Householder reflectors.
//!
//! Storage convention (full-matrix variant): this implementation keeps the
//! whole matrix — not just one triangle — exactly symmetric throughout,
//! because the fault-tolerant wrapper maintains row *and* column checksums
//! over the full storage. After column `i` is reduced:
//!
//! * column `i` holds `d_i` on the diagonal, `e_i` on the sub-diagonal and
//!   the Householder tail below it (LAPACK packing, the `Q` storage the FT
//!   wrapper protects);
//! * row `i` holds `e_i` on the super-diagonal and **explicit zeros**
//!   beyond it (the mathematical values), so checksums over rows need no
//!   masking.

use crate::householder::larfg;
use ft_blas::{dot, gemv, ger, Trans};
use ft_matrix::Matrix;

/// Result of a tridiagonal reduction.
#[derive(Clone, Debug)]
pub struct TridiagFactorization {
    /// Full-storage packed output (see module docs).
    pub packed: Matrix,
    /// Diagonal of `T`, length `n`.
    pub d: Vec<f64>,
    /// Sub-diagonal of `T`, length `n − 1`.
    pub e: Vec<f64>,
    /// Reflector scales, length `max(n − 2, 0)`.
    pub tau: Vec<f64>,
}

impl TridiagFactorization {
    /// The dense tridiagonal factor `T`.
    pub fn t(&self) -> Matrix {
        let n = self.d.len();
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                self.d[i]
            } else if i + 1 == j {
                self.e[i]
            } else if j + 1 == i {
                self.e[j]
            } else {
                0.0
            }
        })
    }

    /// The dense orthogonal factor `Q`, with `A = Q·T·Qᵀ`.
    pub fn q(&self) -> Matrix {
        form_q_tridiag(&self.packed, &self.tau)
    }
}

/// Reduces symmetric `a` to tridiagonal form in place (full-storage
/// unblocked algorithm; see module docs for the storage convention).
///
/// Only symmetry of the input is assumed (and debug-asserted); the strict
/// upper triangle is read as the mirror of the lower.
pub fn sytd2(a: &mut Matrix) -> TridiagFactorization {
    assert!(a.is_square(), "sytd2: matrix must be square");
    let n = a.rows();
    let mut tau = vec![0.0; n.saturating_sub(2)];
    if n == 0 {
        return TridiagFactorization {
            packed: a.clone(),
            d: vec![],
            e: vec![],
            tau,
        };
    }
    reduce_columns_unblocked(a, 0, &mut tau);
    finish_tridiag(a, tau)
}

/// Unblocked reduction of columns `k0 .. n−2` (the shared tail used by
/// both [`sytd2`] and the blocked [`sytrd`]).
fn reduce_columns_unblocked(a: &mut Matrix, k0: usize, tau: &mut [f64]) {
    let n = a.rows();
    let mut v = vec![0.0; n];
    let mut x = vec![0.0; n];
    for i in k0..n.saturating_sub(2) {
        let m = n - i - 1; // reflector length over rows i+1..n

        // Generate the reflector annihilating A(i+2.., i).
        let alpha = a[(i + 1, i)];
        let mut tail: Vec<f64> = (i + 2..n).map(|r| a[(r, i)]).collect();
        let refl = larfg(alpha, &mut tail);
        tau[i] = refl.tau;
        v[0] = 1.0;
        v[1..m].copy_from_slice(&tail);

        if refl.tau != 0.0 {
            // x = τ·A₂·v over the trailing block (full storage ⇒ plain GEMV).
            gemv(
                Trans::No,
                refl.tau,
                &a.view(i + 1, i + 1, m, m),
                &v[..m],
                0.0,
                &mut x[..m],
            );
            // w = x − (τ/2)(xᵀv)·v
            let coef = -0.5 * refl.tau * dot(&x[..m], &v[..m]);
            for r in 0..m {
                x[r] += coef * v[r];
            }
            // A₂ ← A₂ − v·wᵀ − w·vᵀ (kept exactly symmetric).
            let (vv, ww) = (&v[..m], &x[..m]);
            ger(-1.0, vv, ww, &mut a.view_mut(i + 1, i + 1, m, m));
            ger(-1.0, ww, vv, &mut a.view_mut(i + 1, i + 1, m, m));
        }

        // Pack: β on the sub-diagonal, tail below (Q storage); the
        // mirrored row gets its mathematical values (β then zeros).
        a[(i + 1, i)] = refl.beta;
        for (off, &val) in tail.iter().enumerate() {
            a[(i + 2 + off, i)] = val;
        }
        a[(i, i + 1)] = refl.beta;
        for c in i + 2..n {
            a[(i, c)] = 0.0;
        }
    }
    // Mirror the final sub-diagonal for exactness.
    if n >= 2 {
        let b = a[(n - 1, n - 2)];
        a[(n - 2, n - 1)] = b;
    }
}

/// Collects `d` and `e` from the band of the packed storage.
fn finish_tridiag(a: &Matrix, tau: Vec<f64>) -> TridiagFactorization {
    let n = a.rows();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n.saturating_sub(1)];
    for i in 0..n {
        d[i] = a[(i, i)];
        if i + 1 < n {
            e[i] = a[(i + 1, i)];
        }
    }
    TridiagFactorization {
        packed: a.clone(),
        d,
        e,
        tau,
    }
}

/// Panel width below which [`sytrd`] falls back to the unblocked code.
const SYTRD_NX: usize = 32;

/// Blocked symmetric tridiagonal reduction (LAPACK `DSYTRD`/`DLATRD`
/// organization on the full-storage convention): per panel of `nb`
/// columns, accumulate `V` (in place, explicit unit entries) and a
/// separate `W` such that the deferred trailing update is the rank-2k
/// `A₂₂ ← A₂₂ − V·Wᵀ − W·Vᵀ` — two GEMMs on full storage.
pub fn sytrd(a: &mut Matrix, nb: usize) -> TridiagFactorization {
    assert!(a.is_square(), "sytrd: matrix must be square");
    let n = a.rows();
    let nb = nb.max(1);
    let mut tau = vec![0.0; n.saturating_sub(2)];
    if n == 0 {
        return TridiagFactorization {
            packed: a.clone(),
            d: vec![],
            e: vec![],
            tau,
        };
    }

    let mut k = 0;
    // Keep enough trailing columns for the unblocked tail to be cheap and
    // for every panel to have a non-trivial trailing block.
    while n.saturating_sub(k + 2) > nb.max(SYTRD_NX) {
        latrd_panel(a, k, nb, &mut tau);
        k += nb;
    }
    reduce_columns_unblocked(a, k, &mut tau);
    finish_tridiag(a, tau)
}

/// One `DLATRD`-style panel: reduces columns `k .. k+nb`, leaves the
/// reflector tails in place and applies the deferred rank-2k update to
/// the trailing block.
fn latrd_panel(a: &mut Matrix, k: usize, nb: usize, tau: &mut [f64]) {
    let n = a.rows();
    let mut w = Matrix::zeros(n, nb);
    let mut betas = vec![0.0; nb];
    let mut work = vec![0.0; nb];

    for j in 0..nb {
        let c = k + j;
        let mrows = n - c; // rows c..n of the column being updated

        // Deferred update of column c by the previous panel reflectors:
        // A(c.., c) −= V_prev·W(c, :)ᵀ + W_prev·V(c, :)ᵀ.
        if j > 0 {
            let wrow: Vec<f64> = (0..j).map(|jj| w[(c, jj)]).collect();
            let vrow: Vec<f64> = (0..j).map(|jj| a[(c, k + jj)]).collect();
            // Split the borrow: columns k..c are V, column c is the target.
            let (vblock, mut rest) = a.view_mut(0, 0, n, n).split_at_col(c);
            let vpart = vblock.as_view().subview(c, k, mrows, j);
            let target = &mut rest.col_mut(0)[c..n];
            gemv(Trans::No, -1.0, &vpart, &wrow, 1.0, target);
            gemv(
                Trans::No,
                -1.0,
                &w.view(c, 0, mrows, j),
                &vrow,
                1.0,
                &mut rest.col_mut(0)[c..n],
            );
        }

        // Reflector annihilating A(c+2.., c).
        let m = n - c - 1;
        let alpha = a[(c + 1, c)];
        let mut tail: Vec<f64> = (c + 2..n).map(|r| a[(r, c)]).collect();
        let refl = larfg(alpha, &mut tail);
        tau[c] = refl.tau;
        betas[j] = refl.beta;
        // Store v with an explicit unit (restored to β after the panel).
        a[(c + 1, c)] = 1.0;
        for (off, &val) in tail.iter().enumerate() {
            a[(c + 2 + off, c)] = val;
        }

        // W(c+1.., j) per the DLATRD recurrence, on the *stale* (still
        // symmetric) trailing block:
        //   w = τ·A₂·v − τ·V(Wᵀv) − τ·W(Vᵀv) − (τ/2)(wᵀv)·v
        if refl.tau != 0.0 {
            let v_c: Vec<f64> = a.col(c)[c + 1..n].to_vec();
            {
                let (wcols, mut wj) = w.view_mut(0, 0, n, nb).split_at_col(j);
                let wj_col = &mut wj.col_mut(0)[c + 1..n];
                gemv(
                    Trans::No,
                    refl.tau,
                    &a.view(c + 1, c + 1, m, m),
                    &v_c,
                    0.0,
                    wj_col,
                );
                // work = W_prevᵀ v
                gemv(
                    Trans::Yes,
                    1.0,
                    &wcols.as_view().subview(c + 1, 0, m, j),
                    &v_c,
                    0.0,
                    &mut work[..j],
                );
                // wj −= τ·V_prev·work
                gemv(
                    Trans::No,
                    -refl.tau,
                    &a.view(c + 1, k, m, j),
                    &work[..j],
                    1.0,
                    &mut wj.col_mut(0)[c + 1..n],
                );
                // work = V_prevᵀ v
                gemv(
                    Trans::Yes,
                    1.0,
                    &a.view(c + 1, k, m, j),
                    &v_c,
                    0.0,
                    &mut work[..j],
                );
                // wj −= τ·W_prev·work
                gemv(
                    Trans::No,
                    -refl.tau,
                    &wcols.as_view().subview(c + 1, 0, m, j),
                    &work[..j],
                    1.0,
                    &mut wj.col_mut(0)[c + 1..n],
                );
                let coef = -0.5 * refl.tau * dot(&wj.col(0)[c + 1..n], &v_c);
                let wj_col = &mut wj.col_mut(0)[c + 1..n];
                for (r, x) in wj_col.iter_mut().enumerate() {
                    *x += coef * v_c[r];
                }
            }
        }
    }

    // Deferred rank-2k trailing update on full storage:
    // A₂₂ ← A₂₂ − V·W₂ᵀ − W₂·Vᵀ over rows/cols k+nb..n.
    let c1 = k + nb;
    let mtrail = n - c1;
    {
        let (vblock, mut trail) = a.view_mut(0, 0, n, n).split_at_col(c1);
        let v2 = vblock.as_view().subview(c1, k, mtrail, nb);
        let w2 = w.view(c1, 0, mtrail, nb);
        let mut t22 = trail.subview_mut(c1, 0, mtrail, mtrail);
        ft_blas::gemm(Trans::No, Trans::Yes, -1.0, &v2, &w2, 1.0, &mut t22);
        ft_blas::gemm(Trans::No, Trans::Yes, -1.0, &w2, &v2, 1.0, &mut t22);
    }

    // Restore the band storage for the panel columns: β on the
    // sub-diagonal (replacing the explicit unit), β mirrored on the
    // super-diagonal, explicit zeros beyond it.
    for j in 0..nb {
        let c = k + j;
        a[(c + 1, c)] = betas[j];
        a[(c, c + 1)] = betas[j];
        for cc in c + 2..n {
            a[(c, cc)] = 0.0;
        }
    }
}

/// Forms `Q = H₀·H₁⋯H_{n−3}` from the packed reflectors.
pub fn form_q_tridiag(packed: &Matrix, tau: &[f64]) -> Matrix {
    let n = packed.rows();
    let mut q = Matrix::identity(n);
    if n < 3 {
        return q;
    }
    assert_eq!(tau.len(), n - 2, "form_q_tridiag: tau length");
    let mut v = vec![0.0; n];
    for j in (0..n - 2).rev() {
        if tau[j] == 0.0 {
            continue;
        }
        let m = n - j - 1;
        v[0] = 1.0;
        for r in 1..m {
            v[r] = packed[(j + 1 + r, j)];
        }
        crate::householder::larf(
            crate::householder::ReflectSide::Left,
            &v[..m],
            tau[j],
            &mut q.view_mut(j + 1, j + 1, m, m),
        );
    }
    q
}

/// Eigenvalues of a symmetric tridiagonal matrix by the implicit QL
/// method with Wilkinson shifts (EISPACK `TQL1` / LAPACK `DSTERF`
/// organization). Eigenvalues only, returned in ascending order.
pub fn steqr_eigenvalues(d: &[f64], e: &[f64]) -> Result<Vec<f64>, crate::hseqr::NoConvergence> {
    let n = d.len();
    if n == 0 {
        return Ok(vec![]);
    }
    assert_eq!(e.len(), n.saturating_sub(1), "steqr: e length");
    let mut d = d.to_vec();
    // Working sub-diagonal with a trailing zero sentinel.
    let mut e: Vec<f64> = e.iter().copied().chain(std::iter::once(0.0)).collect();

    for l in 0..n {
        let mut its = 0;
        loop {
            // Find a negligible sub-diagonal element.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break; // d[l] converged
            }
            if its == 60 {
                return Err(crate::hseqr::NoConvergence { index: l });
            }
            its += 1;
            // Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + sign(r, g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            // Implicit QL sweep from m−1 down to l; `underflow` records an
            // early exit on a vanishing rotation denominator.
            let mut underflow = false;
            for i in (l..m).rev() {
                let f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    d.sort_by(|a, b| a.total_cmp(b));
    Ok(d)
}

#[inline]
fn sign(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

/// Eigenvalues **and eigenvectors** of a symmetric tridiagonal matrix by
/// the implicit QL method with accumulated rotations (EISPACK `TQL2` /
/// LAPACK `DSTEQR` job `'V'`).
///
/// `z0` seeds the accumulation: pass the `Q` of a [`sytd2`]/[`sytrd`]
/// reduction to obtain the eigenvectors of the *original* symmetric
/// matrix directly (`A = Z·Λ·Zᵀ`); `None` uses the identity (vectors of
/// the tridiagonal matrix itself). Returns `(λ ascending, Z)` with
/// eigenvector `k` in column `k`.
pub fn steqr_full(
    d: &[f64],
    e: &[f64],
    z0: Option<Matrix>,
) -> Result<(Vec<f64>, Matrix), crate::hseqr::NoConvergence> {
    let n = d.len();
    let mut z = z0.unwrap_or_else(|| Matrix::identity(n));
    assert_eq!(z.cols(), n, "steqr_full: Z must have n columns");
    if n == 0 {
        return Ok((vec![], z));
    }
    assert_eq!(e.len(), n.saturating_sub(1), "steqr_full: e length");
    let zrows = z.rows();
    let mut d = d.to_vec();
    let mut e: Vec<f64> = e.iter().copied().chain(std::iter::once(0.0)).collect();

    for l in 0..n {
        let mut its = 0;
        loop {
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            if its == 60 {
                return Err(crate::hseqr::NoConvergence { index: l });
            }
            its += 1;
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + sign(r, g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            let mut underflow = false;
            for i in (l..m).rev() {
                let f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into Z (columns i, i+1).
                for k in 0..zrows {
                    let f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    // Sort eigenvalues ascending, permuting the vectors alongside
    // (selection sort, as DSTEQR does).
    for i in 0..n {
        let mut kmin = i;
        for j in i + 1..n {
            if d[j] < d[kmin] {
                kmin = j;
            }
        }
        if kmin != i {
            d.swap(i, kmin);
            z.swap_cols(i, kmin);
        }
    }
    Ok((d, z))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verify(a0: &Matrix, f: &TridiagFactorization, tol: f64) {
        let n = a0.rows();
        let t = f.t();
        let q = f.q();
        // Q orthogonal.
        let mut qqt = Matrix::identity(n);
        ft_blas::gemm(
            Trans::No,
            Trans::Yes,
            1.0,
            &q.as_view(),
            &q.as_view(),
            -1.0,
            &mut qqt.as_view_mut(),
        );
        assert!(qqt.max_abs() < tol, "QQᵀ−I = {}", qqt.max_abs());
        // A = Q T Qᵀ.
        let mut qt = Matrix::zeros(n, n);
        ft_blas::gemm(
            Trans::No,
            Trans::No,
            1.0,
            &q.as_view(),
            &t.as_view(),
            0.0,
            &mut qt.as_view_mut(),
        );
        let mut res = a0.clone();
        ft_blas::gemm(
            Trans::No,
            Trans::Yes,
            -1.0,
            &qt.as_view(),
            &q.as_view(),
            1.0,
            &mut res.as_view_mut(),
        );
        assert!(
            res.max_abs() < tol * a0.max_abs().max(1.0),
            "A − QTQᵀ = {}",
            res.max_abs()
        );
    }

    #[test]
    fn reduces_random_symmetric() {
        for &n in &[3usize, 5, 8, 17, 40] {
            let a0 = ft_matrix::random::symmetric(n, n as u64);
            let mut a = a0.clone();
            let f = sytd2(&mut a);
            verify(&a0, &f, 1e-12 * n as f64);
        }
    }

    #[test]
    fn output_rows_are_mathematically_tridiagonal() {
        let a0 = ft_matrix::random::symmetric(12, 3);
        let mut a = a0.clone();
        let f = sytd2(&mut a);
        // Rows above the band hold explicit zeros (full-storage packing).
        for i in 0..12 {
            for j in i + 2..12 {
                assert_eq!(f.packed[(i, j)], 0.0, "({i},{j}) not zeroed");
            }
        }
    }

    #[test]
    fn tridiagonal_input_is_fixed_point() {
        // A matrix that is already tridiagonal reduces to itself.
        let n = 10;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = (i + 1) as f64;
            if i + 1 < n {
                a[(i + 1, i)] = 0.5;
                a[(i, i + 1)] = 0.5;
            }
        }
        let a0 = a.clone();
        let f = sytd2(&mut a);
        for i in 0..n {
            assert!((f.d[i] - a0[(i, i)]).abs() < 1e-14);
        }
        for i in 0..n - 1 {
            assert!((f.e[i].abs() - 0.5).abs() < 1e-13, "e[{i}] = {}", f.e[i]);
        }
    }

    #[test]
    fn steqr_known_spectrum() {
        // T = tridiag(-1, 2, -1) has eigenvalues 2 − 2cos(kπ/(n+1)).
        let n = 12;
        let d = vec![2.0; n];
        let e = vec![-1.0; n - 1];
        let evs = steqr_eigenvalues(&d, &e).unwrap();
        for (k, &ev) in evs.iter().enumerate() {
            let expect =
                2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!((ev - expect).abs() < 1e-12, "λ{k}: {ev} vs {expect}");
        }
    }

    #[test]
    fn full_symmetric_eig_pipeline() {
        // sytd2 + steqr recovers the spectrum of a random symmetric matrix
        // (validated against the trace/Frobenius invariants).
        let n = 24;
        let a0 = ft_matrix::random::symmetric(n, 77);
        let mut a = a0.clone();
        let f = sytd2(&mut a);
        let evs = steqr_eigenvalues(&f.d, &f.e).unwrap();
        let tr: f64 = evs.iter().sum();
        let tr0: f64 = (0..n).map(|i| a0[(i, i)]).sum();
        assert!((tr - tr0).abs() < 1e-11, "{tr} vs {tr0}");
        let fro2: f64 = evs.iter().map(|v| v * v).sum();
        let fro0 = a0.fro_norm().powi(2);
        assert!(
            (fro2 - fro0).abs() < 1e-10 * fro0.max(1.0),
            "{fro2} vs {fro0}"
        );
    }

    #[test]
    fn steqr_full_eigendecomposition() {
        // Full symmetric eigendecomposition: A = Z·Λ·Zᵀ through
        // sytrd + steqr_full seeded with Q.
        let n = 32;
        let a0 = ft_matrix::random::symmetric(n, 55);
        let mut a = a0.clone();
        let f = sytrd(&mut a, 8);
        let (lambda, z) = steqr_full(&f.d, &f.e, Some(f.q())).unwrap();
        assert!(lambda.windows(2).all(|w| w[0] <= w[1]), "ascending order");
        // A z_k = λ_k z_k for every k.
        for (kcol, &lk) in lambda.iter().enumerate() {
            let v: Vec<f64> = z.col(kcol).to_vec();
            let mut av = vec![0.0; n];
            gemv(Trans::No, 1.0, &a0.as_view(), &v, 0.0, &mut av);
            for i in 0..n {
                assert!(
                    (av[i] - lk * v[i]).abs() < 1e-10,
                    "k={kcol} λ={lk}: residual {}",
                    (av[i] - lk * v[i]).abs()
                );
            }
        }
        // Z orthogonal.
        let mut ztz = Matrix::identity(n);
        ft_blas::gemm(
            Trans::Yes,
            Trans::No,
            1.0,
            &z.as_view(),
            &z.as_view(),
            -1.0,
            &mut ztz.as_view_mut(),
        );
        assert!(ztz.max_abs() < 1e-12, "ZᵀZ − I = {}", ztz.max_abs());
        // Eigenvalues agree with the eigenvalues-only path.
        let evs = steqr_eigenvalues(&f.d, &f.e).unwrap();
        for (x, y) in lambda.iter().zip(&evs) {
            assert!((x - y).abs() < 1e-11);
        }
    }

    #[test]
    fn blocked_sytrd_matches_unblocked() {
        for &(n, nb) in &[(40usize, 4usize), (50, 8), (64, 16), (57, 5)] {
            let a0 = ft_matrix::random::symmetric(n, (n * nb) as u64);
            let mut au = a0.clone();
            let fu = sytd2(&mut au);
            let mut ab = a0.clone();
            let fb = sytrd(&mut ab, nb);
            for i in 0..n {
                assert!((fu.d[i] - fb.d[i]).abs() < 1e-11, "n={n} nb={nb} d[{i}]");
            }
            for i in 0..n - 1 {
                assert!((fu.e[i] - fb.e[i]).abs() < 1e-11, "n={n} nb={nb} e[{i}]");
            }
            for (x, y) in fu.tau.iter().zip(&fb.tau) {
                assert!((x - y).abs() < 1e-11, "n={n} nb={nb} tau");
            }
            let diff = ft_matrix::max_abs_diff(&fu.packed, &fb.packed);
            assert!(diff < 1e-10, "n={n} nb={nb}: packed diff {diff}");
        }
    }

    #[test]
    fn blocked_sytrd_residuals() {
        let n = 80;
        let a0 = ft_matrix::random::symmetric(n, 123);
        let mut a = a0.clone();
        let f = sytrd(&mut a, 16);
        verify(&a0, &f, 1e-12 * n as f64);
    }

    #[test]
    fn tiny_matrices() {
        for n in 0..3 {
            let a0 = ft_matrix::random::symmetric(n.max(1), 5).sub_matrix(0, 0, n, n);
            let mut a = a0.clone();
            let f = sytd2(&mut a);
            assert_eq!(f.d.len(), n);
            assert!(f.tau.is_empty());
        }
    }
}
