//! End-to-end eigenvalue pipeline — what Hessenberg reduction is *for*.
//!
//! Builds a matrix with a known, perfectly conditioned spectrum
//! (`A = P·diag(λ)·Pᵀ` with `P` orthogonal — a symmetric matrix), reduces
//! it with the fault-tolerant hybrid algorithm *while a soft error
//! strikes*, then runs the Francis double-shift QR iteration on `H` and
//! checks the computed eigenvalues against the known ones.
//!
//! Run with: `cargo run --release --example eigenvalues`

use ft_hess_repro::blas::Trans;
use ft_hess_repro::lapack::hseqr::sort_eigenvalues;
use ft_hess_repro::lapack::random_orthogonal;
use ft_hess_repro::prelude::*;

fn main() {
    let n = 128;
    // Known spectrum: 1, 2, ..., n spread over [-3, 3].
    let spectrum: Vec<f64> = (0..n)
        .map(|i| -3.0 + 6.0 * i as f64 / (n - 1) as f64)
        .collect();

    // A = P·diag(λ)·Pᵀ: symmetric, so every eigenvalue has condition 1.
    let d = Matrix::from_fn(n, n, |i, j| if i == j { spectrum[i] } else { 0.0 });
    let p = random_orthogonal(n, 8);
    let mut pd = Matrix::zeros(n, n);
    ft_hess_repro::blas::gemm(
        Trans::No,
        Trans::No,
        1.0,
        &p.as_view(),
        &d.as_view(),
        0.0,
        &mut pd.as_view_mut(),
    );
    let mut a = Matrix::zeros(n, n);
    ft_hess_repro::blas::gemm(
        Trans::No,
        Trans::Yes,
        1.0,
        &pd.as_view(),
        &p.as_view(),
        0.0,
        &mut a.as_view_mut(),
    );

    println!("eigenvalue pipeline: N = {n}, spectrum in [-3, 3]");

    // Fault-tolerant reduction with a soft error in the trailing matrix.
    let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
    let mut plan = FaultPlan::one(2, Fault::add(70, 100, 0.75));
    let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(32), &mut ctx, &mut plan);
    println!(
        "fault injected: {}; recovery episodes: {}",
        plan.applied().len(),
        out.report.recoveries.len()
    );

    let h = out.result.unwrap().h();
    let mut eigs = eigenvalues_hessenberg(&h).expect("QR iteration converges");
    sort_eigenvalues(&mut eigs);

    // All eigenvalues are real here; compare sorted lists.
    let max_im = eigs.iter().map(|e| e.im.abs()).fold(0.0f64, f64::max);
    let mut expected = spectrum.clone();
    expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let worst = eigs
        .iter()
        .zip(&expected)
        .map(|(e, x)| (e.re - x).abs())
        .fold(0.0f64, f64::max);

    println!("largest spurious imaginary part: {max_im:.3e}");
    println!("worst eigenvalue error:          {worst:.3e}");
    assert!(worst < 1e-8, "eigenvalues must survive the soft error");

    // Full Schur pipeline on the same (fault-recovered) factorization:
    // A = Z·T·Zᵀ, plus explicit eigenvectors for the real spectrum.
    let f2 = {
        let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
        ft_gehrd_hybrid(&a, &FtConfig::with_nb(32), &mut ctx, &mut FaultPlan::none())
            .result
            .unwrap()
    };
    let schur = ft_hess_repro::lapack::real_schur(&f2.h(), Some(f2.q())).expect("Schur converges");
    let (lambdas, v) = schur.real_eigenvectors();
    let mut worst_vec = 0.0f64;
    for (j, &lambda) in lambdas.iter().enumerate() {
        let vj: Vec<f64> = v.col(j).to_vec();
        let mut av = vec![0.0; n];
        ft_hess_repro::blas::gemv(Trans::No, 1.0, &a.as_view(), &vj, 0.0, &mut av);
        for i in 0..n {
            worst_vec = worst_vec.max((av[i] - lambda * vj[i]).abs());
        }
    }
    println!(
        "eigenvector residual max |Av - λv|: {worst_vec:.3e} over {} vectors",
        lambdas.len()
    );
    assert!(worst_vec < 1e-8);
    println!("OK: spectrum recovered through a faulty reduction.");
}
