//! General matrix–matrix multiply: `C ← α·op(A)·op(B) + β·C`.

use crate::backend;
use crate::flops::{model, record};
use crate::types::Trans;
use crate::workspace;
use ft_matrix::{MatView, MatViewMut};

/// Cache-blocking parameters (tuned for a ~32 KiB L1 / 256 KiB L2 class
/// core; the microkernel is `MR × NR` and relies on LLVM auto-vectorization).
const MC: usize = 128;
const KC: usize = 256;
const NC: usize = 1024;
const MR: usize = 8;
const NR: usize = 4;

/// Minimum problem volume (`m·n·k`) before the packed kernel pays off.
/// The parallel gate lives in [`backend`] (`PARALLEL_MIN_VOLUME`), shared
/// by every level-3 kernel.
const BLOCKED_THRESHOLD: usize = 32 * 32 * 32;

/// Which GEMM implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmAlgo {
    /// Pick based on problem size and available threads.
    Auto,
    /// Naive triple loop (test oracle; fastest for tiny problems).
    Reference,
    /// Cache-blocked with packed panels.
    Blocked,
    /// [`GemmAlgo::Blocked`] with rows of `C` split across OS threads.
    /// Bit-identical to [`GemmAlgo::Blocked`] for every thread count.
    Parallel,
}

#[inline]
fn op_dims(trans: Trans, a: &MatView<'_>) -> (usize, usize) {
    match trans {
        Trans::No => (a.rows(), a.cols()),
        Trans::Yes => (a.cols(), a.rows()),
    }
}

#[inline(always)]
fn op_at(trans: Trans, a: &MatView<'_>, i: usize, k: usize) -> f64 {
    // SAFETY: callers index within op(A)'s bounds, checked at entry.
    unsafe {
        match trans {
            Trans::No => a.at_unchecked(i, k),
            Trans::Yes => a.at_unchecked(k, i),
        }
    }
}

fn check_dims(
    transa: Trans,
    transb: Trans,
    a: &MatView<'_>,
    b: &MatView<'_>,
    c: &MatViewMut<'_>,
) -> (usize, usize, usize) {
    let (m, ka) = op_dims(transa, a);
    let (kb, n) = op_dims(transb, b);
    assert_eq!(ka, kb, "gemm: inner dimensions differ: {ka} vs {kb}");
    assert_eq!(c.rows(), m, "gemm: C rows {} != {m}", c.rows());
    assert_eq!(c.cols(), n, "gemm: C cols {} != {n}", c.cols());
    (m, n, ka)
}

/// Reference GEMM: straightforward loops, used as the oracle in tests and
/// for small problems where blocking overhead dominates.
pub fn gemm_ref(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &MatView<'_>,
    b: &MatView<'_>,
    beta: f64,
    c: &mut MatViewMut<'_>,
) {
    let (m, n, k) = check_dims(transa, transb, a, b, c);
    record(model::gemm(m, n, k));
    scale_c(beta, c);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    // j-k-i ordering: innermost loop walks a column of C and (for
    // Trans::No) a column of A — both contiguous.
    for j in 0..n {
        for p in 0..k {
            let bpj = alpha * op_at(transb, b, p, j);
            if bpj == 0.0 {
                continue;
            }
            match transa {
                Trans::No => {
                    let acol = a.col(p);
                    let ccol = c.col_mut(j);
                    for i in 0..m {
                        ccol[i] += bpj * acol[i];
                    }
                }
                Trans::Yes => {
                    let ccol = c.col_mut(j);
                    for (i, cij) in ccol.iter_mut().enumerate() {
                        *cij += bpj * op_at(Trans::Yes, a, i, p);
                    }
                }
            }
        }
    }
}

#[inline]
fn scale_c(beta: f64, c: &mut MatViewMut<'_>) {
    if beta == 1.0 {
        return;
    }
    if beta == 0.0 {
        c.fill(0.0);
    } else {
        c.scale(beta);
    }
}

/// Packs a `mc × kc` block of `op(A)` into row-panels of height `MR`,
/// zero-padding the ragged edge.
fn pack_a(
    transa: Trans,
    a: &MatView<'_>,
    i0: usize,
    p0: usize,
    mc: usize,
    kc: usize,
    buf: &mut [f64],
) {
    let panels = mc.div_ceil(MR);
    debug_assert!(buf.len() >= panels * MR * kc);
    for pi in 0..panels {
        let ib = pi * MR;
        let h = MR.min(mc - ib);
        let panel = &mut buf[pi * MR * kc..(pi + 1) * MR * kc];
        for p in 0..kc {
            let dst = &mut panel[p * MR..p * MR + MR];
            for r in 0..h {
                dst[r] = op_at(transa, a, i0 + ib + r, p0 + p);
            }
            dst[h..].fill(0.0);
        }
    }
}

/// Packs a `kc × nc` block of `op(B)` into column-panels of width `NR`,
/// zero-padding the ragged edge.
fn pack_b(
    transb: Trans,
    b: &MatView<'_>,
    p0: usize,
    j0: usize,
    kc: usize,
    nc: usize,
    buf: &mut [f64],
) {
    let panels = nc.div_ceil(NR);
    debug_assert!(buf.len() >= panels * NR * kc);
    for pj in 0..panels {
        let jb = pj * NR;
        let w = NR.min(nc - jb);
        let panel = &mut buf[pj * NR * kc..(pj + 1) * NR * kc];
        for p in 0..kc {
            let dst = &mut panel[p * NR..p * NR + NR];
            for cidx in 0..w {
                dst[cidx] = op_at(transb, b, p0 + p, j0 + jb + cidx);
            }
            dst[w..].fill(0.0);
        }
    }
}

/// `MR × NR` register-tiled microkernel: accumulates
/// `alpha · Apanel · Bpanel` into `C(i0+.., j0+..)` (height `h ≤ MR`, width
/// `w ≤ NR`).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn microkernel(
    kc: usize,
    alpha: f64,
    apanel: &[f64],
    bpanel: &[f64],
    c: &mut MatViewMut<'_>,
    i0: usize,
    j0: usize,
    h: usize,
    w: usize,
) {
    let mut acc = [[0.0f64; MR]; NR];
    for p in 0..kc {
        let av = &apanel[p * MR..p * MR + MR];
        let bv = &bpanel[p * NR..p * NR + NR];
        for (jj, accj) in acc.iter_mut().enumerate() {
            let bj = bv[jj];
            for (ii, a) in accj.iter_mut().enumerate() {
                *a += av[ii] * bj;
            }
        }
    }
    for jj in 0..w {
        let ccol = &mut c.col_mut(j0 + jj)[i0..i0 + h];
        for (ii, cij) in ccol.iter_mut().enumerate() {
            *cij += alpha * acc[jj][ii];
        }
    }
}

/// Cache-blocked packed GEMM (single-threaded): the BLIS loop nest
/// `jc → pc → ic → jr → ir` with `A` and `B` panels packed per block.
pub fn gemm_blocked(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &MatView<'_>,
    b: &MatView<'_>,
    beta: f64,
    c: &mut MatViewMut<'_>,
) {
    let (m, n, k) = check_dims(transa, transb, a, b, c);
    record(model::gemm(m, n, k));
    scale_c(beta, c);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    // Pack buffers come from the thread-local workspace arena: allocated
    // once per thread, reused by every subsequent call (and by each pool
    // worker's row block in the threaded path).
    let mut abuf = workspace::scratch(MC.div_ceil(MR) * MR * KC);
    let mut bbuf = workspace::scratch(NC.div_ceil(NR) * NR * KC);

    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(transb, b, pc, jc, kc, nc, &mut bbuf);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(transa, a, ic, pc, mc, kc, &mut abuf);
                for jr in (0..nc).step_by(NR) {
                    let w = NR.min(nc - jr);
                    let bpanel = &bbuf[(jr / NR) * NR * kc..(jr / NR + 1) * NR * kc];
                    for ir in (0..mc).step_by(MR) {
                        let h = MR.min(mc - ir);
                        let apanel = &abuf[(ir / MR) * MR * kc..(ir / MR + 1) * MR * kc];
                        microkernel(kc, alpha, apanel, bpanel, c, ic + ir, jc + jr, h, w);
                    }
                }
            }
        }
    }
}

/// Threaded GEMM: splits `C` into contiguous row blocks (`threads` of
/// them, `0` = available parallelism) and runs [`gemm_blocked`] on each
/// block with the matching row slice of `op(A)`, one persistent pool
/// worker per extra block. Each worker owns a disjoint `MatViewMut`, so
/// the parallelism is data-race free by construction.
///
/// Because every element of `C` is accumulated in exactly the order the
/// serial blocked kernel uses (the row partition never changes a per-
/// element reduction), the result is **bit-identical** to
/// [`gemm_blocked`] for any thread count.
#[allow(clippy::too_many_arguments)] // standard BLAS gemm signature + thread count
pub fn gemm_threaded(
    threads: usize,
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &MatView<'_>,
    b: &MatView<'_>,
    beta: f64,
    c: &mut MatViewMut<'_>,
) {
    let (_m, _n, k) = check_dims(transa, transb, a, b, c);
    let t = if threads == 0 {
        backend::available_parallelism()
    } else {
        threads
    };
    backend::for_each_row_chunk(c.rb_mut(), t, |i0, mut chunk| {
        let av = op_row_slice(transa, a, i0, chunk.rows(), k);
        gemm_blocked(transa, transb, alpha, &av, b, beta, &mut chunk);
    });
}

/// The sub-view of `a` corresponding to rows `[i0, i0+h)` of `op(A)`.
fn op_row_slice<'a>(transa: Trans, a: &MatView<'a>, i0: usize, h: usize, k: usize) -> MatView<'a> {
    match transa {
        Trans::No => a.subview(i0, 0, h, k),
        Trans::Yes => a.subview(0, i0, k, h),
    }
}

/// GEMM with an explicit algorithm choice.
#[allow(clippy::too_many_arguments)] // standard BLAS gemm signature
pub fn gemm_with_algo(
    algo: GemmAlgo,
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &MatView<'_>,
    b: &MatView<'_>,
    beta: f64,
    c: &mut MatViewMut<'_>,
) {
    match algo {
        GemmAlgo::Reference => gemm_ref(transa, transb, alpha, a, b, beta, c),
        GemmAlgo::Blocked => gemm_blocked(transa, transb, alpha, a, b, beta, c),
        GemmAlgo::Parallel => {
            // Explicit request for the threaded kernel: use the current
            // backend's worker count, or the whole machine when the
            // ambient backend is Serial.
            let workers = match backend::current_backend() {
                b @ backend::Backend::Threaded(_) => b.threads(),
                backend::Backend::Serial => backend::available_parallelism(),
            };
            gemm_threaded(workers, transa, transb, alpha, a, b, beta, c);
        }
        GemmAlgo::Auto => {
            let (m, ka) = op_dims(transa, a);
            let n = c.cols();
            let volume = m * n * ka;
            // The unified compute-bound gate in `backend` decides whether
            // the threaded path engages at all.
            let workers = backend::fork_threads(volume);
            if workers > 1 {
                gemm_threaded(workers, transa, transb, alpha, a, b, beta, c);
            } else if volume >= BLOCKED_THRESHOLD {
                gemm_blocked(transa, transb, alpha, a, b, beta, c);
            } else {
                gemm_ref(transa, transb, alpha, a, b, beta, c);
            }
        }
    }
}

/// `C ← α·op(A)·op(B) + β·C` with automatic algorithm selection.
pub fn gemm(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &MatView<'_>,
    b: &MatView<'_>,
    beta: f64,
    c: &mut MatViewMut<'_>,
) {
    gemm_with_algo(GemmAlgo::Auto, transa, transb, alpha, a, b, beta, c);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_matrix::{max_abs_diff, Matrix};

    fn mul_naive(transa: Trans, transb: Trans, a: &Matrix, b: &Matrix) -> Matrix {
        let av = a.as_view();
        let bv = b.as_view();
        let (m, k) = op_dims(transa, &av);
        let (_, n) = op_dims(transb, &bv);
        Matrix::from_fn(m, n, |i, j| {
            (0..k)
                .map(|p| op_at(transa, &av, i, p) * op_at(transb, &bv, p, j))
                .sum()
        })
    }

    #[test]
    fn gemm_ref_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let mut c = Matrix::zeros(2, 2);
        gemm_ref(
            Trans::No,
            Trans::No,
            1.0,
            &a.as_view(),
            &b.as_view(),
            0.0,
            &mut c.as_view_mut(),
        );
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut c = Matrix::filled(2, 2, 10.0);
        gemm_ref(
            Trans::No,
            Trans::No,
            2.0,
            &a.as_view(),
            &b.as_view(),
            0.5,
            &mut c.as_view_mut(),
        );
        assert_eq!(c, Matrix::from_rows(&[&[7.0, 9.0], &[11.0, 13.0]]));
    }

    #[test]
    fn all_transpose_combos_and_algos_match_naive() {
        for &(m, n, k) in &[
            (5usize, 7usize, 3usize),
            (13, 9, 17),
            (40, 33, 21),
            (64, 64, 64),
        ] {
            for (ta, tb) in [
                (Trans::No, Trans::No),
                (Trans::No, Trans::Yes),
                (Trans::Yes, Trans::No),
                (Trans::Yes, Trans::Yes),
            ] {
                let a = match ta {
                    Trans::No => ft_matrix::random::uniform(m, k, 1),
                    Trans::Yes => ft_matrix::random::uniform(k, m, 1),
                };
                let b = match tb {
                    Trans::No => ft_matrix::random::uniform(k, n, 2),
                    Trans::Yes => ft_matrix::random::uniform(n, k, 2),
                };
                let expect = mul_naive(ta, tb, &a, &b);
                for algo in [GemmAlgo::Reference, GemmAlgo::Blocked, GemmAlgo::Parallel] {
                    let mut c = Matrix::zeros(m, n);
                    gemm_with_algo(
                        algo,
                        ta,
                        tb,
                        1.0,
                        &a.as_view(),
                        &b.as_view(),
                        0.0,
                        &mut c.as_view_mut(),
                    );
                    let err = max_abs_diff(&c, &expect);
                    assert!(err < 1e-12, "{algo:?} {ta:?}/{tb:?} {m}x{n}x{k}: err {err}");
                }
            }
        }
    }

    #[test]
    fn blocked_ragged_edges() {
        // Sizes chosen to leave remainders against MR=8 / NR=4 / KC=256.
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (9, 5, 2),
            (17, 3, 300),
            (8, 4, 256),
        ] {
            let a = ft_matrix::random::uniform(m, k, 3);
            let b = ft_matrix::random::uniform(k, n, 4);
            let expect = mul_naive(Trans::No, Trans::No, &a, &b);
            let mut c = Matrix::zeros(m, n);
            gemm_blocked(
                Trans::No,
                Trans::No,
                1.0,
                &a.as_view(),
                &b.as_view(),
                0.0,
                &mut c.as_view_mut(),
            );
            assert!(max_abs_diff(&c, &expect) < 1e-11, "{m}x{n}x{k}");
        }
    }

    #[test]
    fn gemm_on_subviews() {
        let big = ft_matrix::random::uniform(10, 10, 5);
        let a = big.view(1, 1, 4, 3);
        let b = big.view(5, 2, 3, 4);
        let mut c = Matrix::zeros(4, 4);
        gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c.as_view_mut());
        let expect = mul_naive(
            Trans::No,
            Trans::No,
            &a.to_owned_matrix(),
            &b.to_owned_matrix(),
        );
        assert!(max_abs_diff(&c, &expect) < 1e-13);
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(2);
        let mut c = Matrix::filled(2, 2, f64::NAN);
        gemm_blocked(
            Trans::No,
            Trans::No,
            1.0,
            &a.as_view(),
            &b.as_view(),
            0.0,
            &mut c.as_view_mut(),
        );
        assert_eq!(c, Matrix::identity(2));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        let mut c = Matrix::zeros(2, 2);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            &a.as_view(),
            &b.as_view(),
            0.0,
            &mut c.as_view_mut(),
        );
    }

    #[test]
    fn empty_dims_are_noops() {
        let a = Matrix::zeros(0, 0);
        let b = Matrix::zeros(0, 0);
        let mut c = Matrix::zeros(0, 0);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            &a.as_view(),
            &b.as_view(),
            0.0,
            &mut c.as_view_mut(),
        );
        // k = 0 with m, n > 0: C scaled by beta only.
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 2);
        let mut c = Matrix::filled(2, 2, 3.0);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            &a.as_view(),
            &b.as_view(),
            2.0,
            &mut c.as_view_mut(),
        );
        assert_eq!(c, Matrix::filled(2, 2, 6.0));
    }
}
