//! Property-based tests of the factorization-level invariants: every
//! reduction must be a backward-stable orthogonal similarity across
//! random sizes, block widths and inputs.

use ft_blas::Trans;
use ft_lapack::gehrd::{factorization_residual, orthogonality_residual};
use ft_lapack::sytrd::sytd2;
use ft_lapack::{eigenvalues_hessenberg, gehd2, gehrd, GehrdConfig, HessFactorization};
use ft_matrix::Matrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Blocked and unblocked Hessenberg reductions produce the same
    /// packed output (same reflector sequence) for any (n, nb).
    #[test]
    fn blocked_equals_unblocked(n in 4usize..40, nb in 1usize..12, seed in any::<u64>()) {
        let a0 = ft_matrix::random::uniform(n, n, seed);
        let mut au = a0.clone();
        let tau_u = gehd2(&mut au);
        let mut ab = a0.clone();
        let tau_b = gehrd(&mut ab, &GehrdConfig { nb, nx: 1, lookahead: false });
        prop_assert!(ft_matrix::max_abs_diff(&au, &ab) < 1e-9, "packed outputs differ");
        for (x, y) in tau_u.iter().zip(&tau_b) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    /// The lookahead-pipelined schedule is bit-identical to the
    /// sequential one for any shape, panel width, crossover and backend
    /// (the SIMD axis of the grid comes from CI re-running this suite
    /// under `FT_BLAS_SIMD=portable`).
    #[test]
    fn lookahead_bit_identical(
        n in 4usize..64,
        nb in 1usize..12,
        nx in 0usize..10,
        threaded in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let backend = if threaded {
            ft_blas::Backend::Threaded(4)
        } else {
            ft_blas::Backend::Serial
        };
        let a0 = ft_matrix::random::uniform(n, n, seed);
        let base = GehrdConfig { nb, nx, lookahead: false };
        let (seq, la) = ft_blas::with_backend(backend, || {
            let mut a_seq = a0.clone();
            let tau_seq = gehrd(&mut a_seq, &base);
            let mut a_la = a0.clone();
            let tau_la = gehrd(&mut a_la, &base.with_lookahead(true));
            ((a_seq, tau_seq), (a_la, tau_la))
        });
        prop_assert_eq!(seq.1, la.1);
        for j in 0..n {
            for i in 0..n {
                prop_assert!(
                    seq.0[(i, j)].to_bits() == la.0[(i, j)].to_bits(),
                    "packed ({i},{j}) differs under {backend:?}"
                );
            }
        }
    }

    /// The Hessenberg reduction is a backward-stable orthogonal
    /// similarity for arbitrary matrices.
    #[test]
    fn gehrd_residuals(n in 3usize..48, seed in any::<u64>(), scale in 1e-3f64..1e3) {
        let mut a0 = ft_matrix::random::uniform(n, n, seed);
        a0.scale(scale);
        let mut packed = a0.clone();
        let tau = gehrd(&mut packed, &GehrdConfig::default());
        let f = HessFactorization { packed, tau };
        let h = f.h();
        prop_assert!(h.is_upper_hessenberg());
        let q = f.q();
        prop_assert!(factorization_residual(&a0, &q, &h) < 1e-13);
        prop_assert!(orthogonality_residual(&q) < 1e-13);
    }

    /// Eigenvalues of H sum to the trace and come in conjugate pairs.
    #[test]
    fn hseqr_invariants(n in 1usize..32, seed in any::<u64>()) {
        let h = ft_matrix::random::hessenberg(n, seed);
        let evs = eigenvalues_hessenberg(&h).unwrap();
        prop_assert_eq!(evs.len(), n);
        let tr_h: f64 = (0..n).map(|i| h[(i, i)]).sum();
        let tr_e: f64 = evs.iter().map(|e| e.re).sum();
        prop_assert!((tr_h - tr_e).abs() < 1e-8 * (1.0 + tr_h.abs()), "{tr_h} vs {tr_e}");
        let im_sum: f64 = evs.iter().map(|e| e.im).sum();
        prop_assert!(im_sum.abs() < 1e-9);
    }

    /// Similarity invariance: gehrd(QᵀAQ) has the same spectrum as
    /// gehrd(A) for random orthogonal Q.
    #[test]
    fn spectrum_is_similarity_invariant(n in 3usize..20, seed in any::<u64>()) {
        let a = ft_matrix::random::uniform(n, n, seed);
        let q = ft_lapack::random_orthogonal(n, seed ^ 77);
        let mut qa = Matrix::zeros(n, n);
        ft_blas::gemm(Trans::Yes, Trans::No, 1.0, &q.as_view(), &a.as_view(), 0.0, &mut qa.as_view_mut());
        let mut qaq = Matrix::zeros(n, n);
        ft_blas::gemm(Trans::No, Trans::No, 1.0, &qa.as_view(), &q.as_view(), 0.0, &mut qaq.as_view_mut());

        let eig = |m: &Matrix| {
            let mut p = m.clone();
            let tau = gehrd(&mut p, &GehrdConfig::default());
            let f = HessFactorization { packed: p, tau };
            let mut evs = eigenvalues_hessenberg(&f.h()).unwrap();
            ft_lapack::hseqr::sort_eigenvalues(&mut evs);
            evs
        };
        let e1 = eig(&a);
        let e2 = eig(&qaq);
        for (x, y) in e1.iter().zip(&e2) {
            prop_assert!((x.re - y.re).abs() < 2e-6 && (x.im - y.im).abs() < 2e-6,
                "{x:?} vs {y:?}");
        }
    }

    /// Tridiagonal reduction of a symmetric matrix: orthogonal
    /// similarity with a symmetric tridiagonal result.
    #[test]
    fn sytd2_residuals(n in 1usize..40, seed in any::<u64>()) {
        let a0 = ft_matrix::random::symmetric(n, seed);
        let mut a = a0.clone();
        let f = sytd2(&mut a);
        let t = f.t();
        // T tridiagonal and symmetric by construction.
        for j in 0..n {
            for i in 0..n {
                if i.abs_diff(j) > 1 {
                    prop_assert_eq!(t[(i, j)], 0.0);
                }
            }
        }
        let q = f.q();
        prop_assert!(orthogonality_residual(&q) < 1e-13);
        prop_assert!(factorization_residual(&a0, &q, &t) < 1e-13);
    }
}
