//! Execution reports: what the fault-tolerant run detected, corrected and
//! spent.

use ft_fault::AppliedFault;
use ft_hybrid::ExecStats;

/// One detection-and-recovery episode.
#[derive(Clone, Debug)]
pub struct RecoveryEvent {
    /// Panel iteration at whose end the mismatch was detected.
    pub iteration: usize,
    /// `|Sre − Sce|` that tripped the detector.
    pub mismatch: f64,
    /// Errors located and corrected (row, col, delta applied).
    pub corrected: Vec<(usize, usize, f64)>,
    /// Whether the located positions were resolvable (non-rectangle).
    pub resolved: bool,
}

/// Summary of one fault-tolerant factorization.
#[derive(Clone, Debug, Default)]
pub struct FtReport {
    /// Matrix dimension.
    pub n: usize,
    /// Panel width.
    pub nb: usize,
    /// Number of panel iterations executed (excluding re-executions).
    pub iterations: usize,
    /// Iterations re-executed due to recovery.
    pub redone_iterations: usize,
    /// Detection episodes (each may correct several simultaneous errors).
    pub recoveries: Vec<RecoveryEvent>,
    /// Errors corrected in `Q` storage by the end-of-run check.
    pub q_corrections: Vec<(usize, usize, f64)>,
    /// Indices of reflector scales repaired via the `tau` scalar checksum
    /// by the end-of-run check.
    pub tau_corrections: Vec<usize>,
    /// Faults injected by the test harness (provenance for reports).
    pub injected: Vec<AppliedFault>,
    /// Resolved detection threshold used.
    pub threshold: f64,
    /// Simulated makespan, seconds.
    pub sim_seconds: f64,
    /// Simulated resource statistics.
    pub stats: ExecStats,
}

impl FtReport {
    /// Total individual element corrections (H region).
    pub fn corrections(&self) -> usize {
        self.recoveries.iter().map(|r| r.corrected.len()).sum()
    }

    /// `true` if any detection episode failed to resolve error positions.
    pub fn any_unresolved(&self) -> bool {
        self.recoveries.iter().any(|r| !r.resolved)
    }

    /// Simulated GFLOP/s against the `10/3·n³` nominal flop count
    /// (the y-axis of the paper's Figure 6).
    pub fn gflops(&self) -> f64 {
        if self.sim_seconds <= 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        (10.0 / 3.0) * n * n * n / self.sim_seconds / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_gflops() {
        let mut r = FtReport {
            n: 1000,
            nb: 32,
            sim_seconds: 1.0,
            ..Default::default()
        };
        r.recoveries.push(RecoveryEvent {
            iteration: 3,
            mismatch: 1.0,
            corrected: vec![(1, 2, 0.5), (3, 4, -0.5)],
            resolved: true,
        });
        assert_eq!(r.corrections(), 2);
        assert!(!r.any_unresolved());
        let expect = (10.0 / 3.0) * 1e9 / 1e9;
        assert!((r.gflops() - expect).abs() < 1e-12);
    }

    #[test]
    fn zero_time_gflops_is_zero() {
        let r = FtReport::default();
        assert_eq!(r.gflops(), 0.0);
    }
}
