//! LDA-carrying matrix views.
//!
//! A view is the Rust analogue of the `(pointer, lda)` pair every BLAS and
//! LAPACK routine takes: an `m × n` window onto a column-major buffer whose
//! consecutive columns are `lda` elements apart. Views let the factorization
//! code operate **in place** on panels, trailing matrices and checksum
//! borders of one backing allocation, exactly like the Fortran codes the
//! paper builds on.
//!
//! [`MatView`] borrows immutably and is a thin wrapper over `&[f64]`.
//! [`MatViewMut`] borrows exclusively; internally it stores a raw pointer so
//! that it can be split into *disjoint* mutable sub-views (by row ranges,
//! which interleave in memory and therefore cannot be expressed as two
//! `&mut [f64]`). The safety invariant is the usual one: a `MatViewMut`
//! exclusively owns every element `(i, j)` with `i < rows`, `j < cols` at
//! offset `i + j * lda`, and splitting hands out views over disjoint index
//! sets.

use crate::dense::Matrix;
use std::marker::PhantomData;

/// Immutable `m × n` window onto a column-major buffer with leading
/// dimension `lda`.
#[derive(Clone, Copy)]
pub struct MatView<'a> {
    data: &'a [f64],
    rows: usize,
    cols: usize,
    lda: usize,
}

impl<'a> MatView<'a> {
    /// Wraps `data` as a `rows × cols` view with leading dimension `lda`.
    ///
    /// Panics if `lda < rows` or the buffer is too short to hold the window.
    pub fn new(data: &'a [f64], rows: usize, cols: usize, lda: usize) -> Self {
        assert!(lda >= rows.max(1), "lda {lda} < rows {rows}");
        if rows > 0 && cols > 0 {
            let need = (cols - 1) * lda + rows;
            assert!(
                data.len() >= need,
                "buffer too short: {} < {need}",
                data.len()
            );
        }
        MatView {
            data,
            rows,
            cols,
            lda,
        }
    }

    /// Number of rows in the window.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns in the window.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension of the backing buffer.
    #[inline]
    pub fn lda(&self) -> usize {
        self.lda
    }

    /// `true` iff the window has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Checked element access.
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.rows && j < self.cols,
            "view index ({i},{j}) out of bounds"
        );
        self.data[i + j * self.lda]
    }

    /// Unchecked element access.
    ///
    /// # Safety
    /// `i < rows && j < cols` must hold.
    #[inline(always)]
    pub unsafe fn at_unchecked(&self, i: usize, j: usize) -> f64 {
        // SAFETY: the caller contract above is exactly the in-bounds proof.
        unsafe { *self.data.get_unchecked(i + j * self.lda) }
    }

    /// Column `j` as a contiguous slice of length `rows`.
    #[inline]
    pub fn col(&self, j: usize) -> &'a [f64] {
        assert!(j < self.cols, "view col {j} out of bounds");
        if self.rows == 0 {
            // A zero-row window may sit past the end of the buffer.
            return &[];
        }
        &self.data[j * self.lda..j * self.lda + self.rows]
    }

    /// The `m × n` sub-window with top-left corner `(r0, c0)`.
    pub fn subview(&self, r0: usize, c0: usize, m: usize, n: usize) -> MatView<'a> {
        assert!(
            r0 + m <= self.rows && c0 + n <= self.cols,
            "subview ({r0},{c0})+{m}x{n} exceeds {}x{}",
            self.rows,
            self.cols
        );
        let offset = r0 + c0 * self.lda;
        let data = if m == 0 || n == 0 {
            &self.data[self.data.len()..]
        } else {
            &self.data[offset..]
        };
        MatView {
            data,
            rows: m,
            cols: n,
            lda: self.lda,
        }
    }

    /// Copies the window into a freshly allocated owned [`Matrix`].
    pub fn to_owned_matrix(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            out.col_mut(j).copy_from_slice(self.col(j));
        }
        out
    }

    /// Copies row `i` into a vector (strided gather).
    pub fn row_to_vec(&self, i: usize) -> Vec<f64> {
        assert!(i < self.rows, "view row {i} out of bounds");
        (0..self.cols)
            .map(|j| self.data[i + j * self.lda])
            .collect()
    }
}

/// Exclusive `m × n` window onto a column-major buffer with leading
/// dimension `lda`.
///
/// Unlike [`MatView`] this stores a raw pointer so it can be split into
/// disjoint mutable parts along either axis (row splits interleave in
/// memory). All public constructors take `&mut [f64]`, so safety reduces to
/// the internal splitting functions maintaining disjointness.
pub struct MatViewMut<'a> {
    ptr: *mut f64,
    rows: usize,
    cols: usize,
    lda: usize,
    _marker: PhantomData<&'a mut [f64]>,
}

// SAFETY: a MatViewMut exclusively owns its index set; ownership of disjoint
// index sets may be transferred across threads (used by the parallel GEMM).
unsafe impl Send for MatViewMut<'_> {}

impl<'a> MatViewMut<'a> {
    /// Wraps `data` as a `rows × cols` mutable view with leading dimension
    /// `lda`.
    ///
    /// Panics if `lda < rows` or the buffer is too short.
    pub fn new(data: &'a mut [f64], rows: usize, cols: usize, lda: usize) -> Self {
        assert!(lda >= rows.max(1), "lda {lda} < rows {rows}");
        if rows > 0 && cols > 0 {
            let need = (cols - 1) * lda + rows;
            assert!(
                data.len() >= need,
                "buffer too short: {} < {need}",
                data.len()
            );
        }
        MatViewMut {
            ptr: data.as_mut_ptr(),
            rows,
            cols,
            lda,
            _marker: PhantomData,
        }
    }

    /// Number of rows in the window.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns in the window.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension of the backing buffer.
    #[inline]
    pub fn lda(&self) -> usize {
        self.lda
    }

    /// `true` iff the window has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Checked element read.
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.rows && j < self.cols,
            "view index ({i},{j}) out of bounds"
        );
        // SAFETY: the bounds assert above keeps the offset inside the window.
        unsafe { *self.ptr.add(i + j * self.lda) }
    }

    /// Checked element write.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(
            i < self.rows && j < self.cols,
            "view index ({i},{j}) out of bounds"
        );
        // SAFETY: the bounds assert above keeps the offset inside the window.
        unsafe { *self.ptr.add(i + j * self.lda) = v }
    }

    /// Unchecked element read.
    ///
    /// # Safety
    /// `i < rows && j < cols` must hold.
    #[inline(always)]
    pub unsafe fn at_unchecked(&self, i: usize, j: usize) -> f64 {
        // SAFETY: the caller contract above is exactly the in-bounds proof.
        unsafe { *self.ptr.add(i + j * self.lda) }
    }

    /// Unchecked element write.
    ///
    /// # Safety
    /// `i < rows && j < cols` must hold.
    #[inline(always)]
    pub unsafe fn set_unchecked(&mut self, i: usize, j: usize, v: f64) {
        // SAFETY: the caller contract above is exactly the in-bounds proof.
        unsafe { *self.ptr.add(i + j * self.lda) = v }
    }

    /// Column `j` as a contiguous mutable slice of length `rows`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(j < self.cols, "view col {j} out of bounds");
        if self.rows == 0 {
            // Never offset the pointer past the allocation for an empty
            // column (ptr::add beyond the buffer would be UB).
            return &mut [];
        }
        // SAFETY: the view owns rows 0..rows of column j exclusively.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(j * self.lda), self.rows) }
    }

    /// Column `j` as a contiguous immutable slice of length `rows`.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(j < self.cols, "view col {j} out of bounds");
        if self.rows == 0 {
            return &[];
        }
        // SAFETY: the view owns rows 0..rows of column j.
        unsafe { std::slice::from_raw_parts(self.ptr.add(j * self.lda), self.rows) }
    }

    /// Reborrows as an immutable view with a shorter lifetime.
    #[inline]
    pub fn as_view(&self) -> MatView<'_> {
        let len = if self.rows == 0 || self.cols == 0 {
            0
        } else {
            (self.cols - 1) * self.lda + self.rows
        };
        // SAFETY: the view owns this window.
        let data = unsafe { std::slice::from_raw_parts(self.ptr, len) };
        MatView {
            data,
            rows: self.rows,
            cols: self.cols,
            lda: self.lda,
        }
    }

    /// Reborrows mutably with a shorter lifetime (like `&mut *x`).
    #[inline]
    pub fn rb_mut(&mut self) -> MatViewMut<'_> {
        MatViewMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            lda: self.lda,
            _marker: PhantomData,
        }
    }

    /// Consumes the view and returns the `m × n` sub-window with top-left
    /// corner `(r0, c0)`, keeping the original lifetime.
    pub fn into_subview(self, r0: usize, c0: usize, m: usize, n: usize) -> MatViewMut<'a> {
        assert!(
            r0 + m <= self.rows && c0 + n <= self.cols,
            "subview ({r0},{c0})+{m}x{n} exceeds {}x{}",
            self.rows,
            self.cols
        );
        if m == 0 || n == 0 {
            // Keep the base pointer: offsetting past the allocation for a
            // zero-sized window would be UB.
            return MatViewMut {
                ptr: self.ptr,
                rows: m,
                cols: n,
                lda: self.lda,
                _marker: PhantomData,
            };
        }
        MatViewMut {
            // SAFETY: the sub-window's index set is contained in the parent's.
            ptr: unsafe { self.ptr.add(r0 + c0 * self.lda) },
            rows: m,
            cols: n,
            lda: self.lda,
            _marker: PhantomData,
        }
    }

    /// Mutable sub-window with a shorter lifetime (non-consuming).
    pub fn subview_mut(&mut self, r0: usize, c0: usize, m: usize, n: usize) -> MatViewMut<'_> {
        self.rb_mut().into_subview(r0, c0, m, n)
    }

    /// Splits into the first `c` columns and the remaining `cols - c`
    /// columns. The two views own disjoint element sets.
    pub fn split_at_col(self, c: usize) -> (MatViewMut<'a>, MatViewMut<'a>) {
        assert!(c <= self.cols, "split_at_col {c} > cols {}", self.cols);
        let left = MatViewMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: c,
            lda: self.lda,
            _marker: PhantomData,
        };
        let right = if c == self.cols || self.rows == 0 {
            // Empty right half: keep the base pointer (no past-the-end
            // offset arithmetic).
            MatViewMut {
                ptr: self.ptr,
                rows: self.rows,
                cols: self.cols - c,
                lda: self.lda,
                _marker: PhantomData,
            }
        } else {
            MatViewMut {
                // SAFETY: column c starts at offset c * lda inside the window.
                ptr: unsafe { self.ptr.add(c * self.lda) },
                rows: self.rows,
                cols: self.cols - c,
                lda: self.lda,
                _marker: PhantomData,
            }
        };
        (left, right)
    }

    /// Splits into the first `r` rows and the remaining `rows - r` rows.
    /// The parts interleave in memory but own disjoint element sets.
    pub fn split_at_row(self, r: usize) -> (MatViewMut<'a>, MatViewMut<'a>) {
        assert!(r <= self.rows, "split_at_row {r} > rows {}", self.rows);
        let top = MatViewMut {
            ptr: self.ptr,
            rows: r,
            cols: self.cols,
            lda: self.lda,
            _marker: PhantomData,
        };
        let bottom = if r == self.rows || self.cols == 0 {
            MatViewMut {
                ptr: self.ptr,
                rows: self.rows - r,
                cols: self.cols,
                lda: self.lda,
                _marker: PhantomData,
            }
        } else {
            MatViewMut {
                // SAFETY: row r of the window starts at offset r.
                ptr: unsafe { self.ptr.add(r) },
                rows: self.rows - r,
                cols: self.cols,
                lda: self.lda,
                _marker: PhantomData,
            }
        };
        (top, bottom)
    }

    /// Overwrites this window with the contents of `src` (same shape).
    pub fn copy_from(&mut self, src: &MatView<'_>) {
        assert_eq!(
            (self.rows, self.cols),
            (src.rows(), src.cols()),
            "copy_from: shape mismatch"
        );
        for j in 0..self.cols {
            self.col_mut(j).copy_from_slice(src.col(j));
        }
    }

    /// Sets every element of the window to `value`.
    pub fn fill(&mut self, value: f64) {
        for j in 0..self.cols {
            self.col_mut(j).fill(value);
        }
    }

    /// `self += alpha * other`, element-wise over the window.
    pub fn axpy_from(&mut self, alpha: f64, other: &MatView<'_>) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows(), other.cols()),
            "axpy_from: shape mismatch"
        );
        for j in 0..self.cols {
            let src = other.col(j);
            for (d, s) in self.col_mut(j).iter_mut().zip(src) {
                *d += alpha * s;
            }
        }
    }

    /// Multiplies every element of the window by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for j in 0..self.cols {
            for v in self.col_mut(j) {
                *v *= alpha;
            }
        }
    }

    /// Copies the window into an owned [`Matrix`].
    pub fn to_owned_matrix(&self) -> Matrix {
        self.as_view().to_owned_matrix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numbered(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| (i * 100 + j) as f64)
    }

    #[test]
    fn view_basics() {
        let a = numbered(4, 3);
        let v = a.as_view();
        assert_eq!(v.rows(), 4);
        assert_eq!(v.cols(), 3);
        assert_eq!(v.lda(), 4);
        assert_eq!(v.at(2, 1), 201.0);
        assert_eq!(v.col(2), a.col(2));
    }

    #[test]
    fn subview_indexing() {
        let a = numbered(6, 6);
        let v = a.view(2, 3, 3, 2);
        assert_eq!(v.at(0, 0), a[(2, 3)]);
        assert_eq!(v.at(2, 1), a[(4, 4)]);
        assert_eq!(v.lda(), 6);
        let vv = v.subview(1, 1, 2, 1);
        assert_eq!(vv.at(0, 0), a[(3, 4)]);
    }

    #[test]
    fn mut_view_writes_through() {
        let mut a = numbered(5, 5);
        {
            let mut v = a.view_mut(1, 1, 3, 3);
            v.set(0, 0, -7.0);
            v.col_mut(2)[2] = -9.0;
        }
        assert_eq!(a[(1, 1)], -7.0);
        assert_eq!(a[(3, 3)], -9.0);
    }

    #[test]
    fn split_at_col_disjoint() {
        let mut a = numbered(4, 6);
        let v = a.as_view_mut();
        let (mut l, mut r) = v.split_at_col(2);
        assert_eq!(l.cols(), 2);
        assert_eq!(r.cols(), 4);
        l.fill(1.0);
        r.fill(2.0);
        assert_eq!(a[(0, 1)], 1.0);
        assert_eq!(a[(0, 2)], 2.0);
    }

    #[test]
    fn split_at_row_disjoint() {
        let mut a = numbered(6, 4);
        let v = a.as_view_mut();
        let (mut t, mut b) = v.split_at_row(2);
        assert_eq!(t.rows(), 2);
        assert_eq!(b.rows(), 4);
        t.fill(1.0);
        b.fill(2.0);
        assert_eq!(a[(1, 3)], 1.0);
        assert_eq!(a[(2, 0)], 2.0);
    }

    #[test]
    fn copy_and_axpy() {
        let a = numbered(4, 4);
        let mut b = Matrix::zeros(2, 2);
        b.as_view_mut().copy_from(&a.view(1, 1, 2, 2));
        assert_eq!(b[(0, 0)], a[(1, 1)]);
        b.as_view_mut().axpy_from(2.0, &a.view(1, 1, 2, 2));
        assert_eq!(b[(1, 1)], 3.0 * a[(2, 2)]);
    }

    #[test]
    fn to_owned_matches() {
        let a = numbered(5, 5);
        let sub = a.view(1, 2, 3, 2).to_owned_matrix();
        assert_eq!(sub, a.sub_matrix(1, 2, 3, 2));
    }

    #[test]
    fn zero_sized_views() {
        let a = numbered(4, 4);
        let v = a.view(4, 4, 0, 0);
        assert!(v.is_empty());
        let v2 = a.view(0, 0, 0, 4);
        assert_eq!(v2.cols(), 4);
        assert!(v2.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn subview_out_of_bounds_panics() {
        let a = numbered(3, 3);
        let _ = a.view(1, 1, 3, 3);
    }

    #[test]
    fn row_to_vec_strided() {
        let a = numbered(4, 3);
        assert_eq!(a.as_view().row_to_vec(2), vec![200.0, 201.0, 202.0]);
    }
}
