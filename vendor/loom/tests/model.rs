//! Self-tests for the vendored model checker: it must explore all
//! interleavings (both orders of a racing pair, both branches of a timed
//! wait), detect deadlocks, and propagate model panics.

use loom::sync::{Arc, Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc as StdArc;
use std::time::Duration;

#[test]
fn explores_both_orders_of_a_racing_pair() {
    let saw_12 = StdArc::new(AtomicBool::new(false));
    let saw_21 = StdArc::new(AtomicBool::new(false));
    let (a, b) = (StdArc::clone(&saw_12), StdArc::clone(&saw_21));
    loom::model(move || {
        let log = Arc::new(Mutex::new(Vec::new()));
        let l2 = Arc::clone(&log);
        let t = loom::thread::spawn(move || l2.lock().unwrap().push(2));
        log.lock().unwrap().push(1);
        t.join().unwrap();
        let order = log.lock().unwrap().clone();
        match order.as_slice() {
            [1, 2] => a.store(true, Ordering::Relaxed),
            [2, 1] => b.store(true, Ordering::Relaxed),
            other => panic!("impossible order {other:?}"),
        }
    });
    assert!(saw_12.load(Ordering::Relaxed), "never saw main-first order");
    assert!(
        saw_21.load(Ordering::Relaxed),
        "never saw child-first order"
    );
}

#[test]
fn detects_lost_notification_as_deadlock() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            // Buggy rendezvous: the waiter never checks the flag before
            // waiting, so a notify that lands first is lost forever.
            let cell = Arc::new((Mutex::new(false), Condvar::new()));
            let c2 = Arc::clone(&cell);
            let t = loom::thread::spawn(move || {
                let (flag, cv) = &*c2;
                *flag.lock().unwrap() = true;
                cv.notify_one();
            });
            let (flag, cv) = &*cell;
            let guard = flag.lock().unwrap();
            drop(cv.wait(guard).unwrap());
            t.join().unwrap();
        });
    }));
    let payload = result.expect_err("the lost-notify schedule must fail");
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .unwrap_or("");
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

#[test]
fn timed_wait_explores_both_branches_and_advances_the_clock() {
    let saw_timeout = StdArc::new(AtomicBool::new(false));
    let saw_notify = StdArc::new(AtomicBool::new(false));
    let (a, b) = (StdArc::clone(&saw_timeout), StdArc::clone(&saw_notify));
    loom::model(move || {
        let cell = Arc::new((Mutex::new(()), Condvar::new()));
        let c2 = Arc::clone(&cell);
        let t = loom::thread::spawn(move || c2.1.notify_one());
        let before = loom::time::Instant::now();
        let wait = Duration::from_millis(10);
        let guard = cell.0.lock().unwrap();
        let (guard, res) = cell.1.wait_timeout(guard, wait).unwrap();
        drop(guard);
        if res.timed_out() {
            a.store(true, Ordering::Relaxed);
            assert!(
                loom::time::Instant::now() >= before + wait,
                "timeout must advance the virtual clock past the deadline"
            );
        } else {
            b.store(true, Ordering::Relaxed);
        }
        t.join().unwrap();
    });
    assert!(
        saw_timeout.load(Ordering::Relaxed),
        "never saw the timeout branch"
    );
    assert!(
        saw_notify.load(Ordering::Relaxed),
        "never saw the notified branch"
    );
}

#[test]
fn join_returns_the_thread_result() {
    loom::model(|| {
        let t = loom::thread::spawn(|| 40 + 2);
        assert_eq!(t.join().unwrap(), 42);
    });
}

#[test]
fn model_thread_panics_propagate() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let t = loom::thread::spawn(|| panic!("child boom"));
            let _ = t.join();
        });
    }));
    let payload = result.expect_err("a child panic must fail the model");
    let msg = payload
        .downcast_ref::<&'static str>()
        .copied()
        .unwrap_or("");
    assert!(msg.contains("child boom"), "unexpected payload: {msg}");
}

#[test]
fn mutex_provides_mutual_exclusion() {
    loom::model(|| {
        let n = Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let n2 = Arc::clone(&n);
            handles.push(loom::thread::spawn(move || {
                let mut g = n2.lock().unwrap();
                let v = *g;
                *g = v + 1;
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 2);
    });
}
