#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `ft-check`: project-invariant lints for the FT-Hess workspace.
//!
//! The runtime under the FT guarantee is a hand-rolled concurrency stack
//! whose invariants are conventions — env knobs live in
//! `ft_trace::env_knob`, threads come only from the `ft-blas` pool,
//! `unsafe` is justified in writing, deterministic math crates never read
//! wall clocks, metric names come from one declared registry, SIMD
//! kernels keep a scalar twin behind a runtime dispatcher, hot paths do
//! not allocate, and locks follow one declared order. This crate turns
//! those conventions into machine-checked, deny-by-default rules (run
//! `cargo run -p ft-check`):
//!
//! | rule | invariant |
//! |------|-----------|
//! | FTC000 | every `check_allow.toml` entry still matches something and has not expired |
//! | FTC001 | no `std::env::var` outside `ft_trace::env_knob` |
//! | FTC002 | no `thread::spawn`/`scope`/`Builder` outside the pool |
//! | FTC003 | every `unsafe` is annotated with `SAFETY`/`# Safety` |
//! | FTC004 | no `unwrap`/`expect`/`panic!` in non-test library code |
//! | FTC005 | no `Instant::now`/`SystemTime` in deterministic math crates |
//! | FTC006 | counter/gauge/histogram/span name literals appear in `names.rs` |
//! | FTC007 | every `#[target_feature]` fn has a scalar twin and a dispatch site |
//! | FTC008 | no heap allocation reachable from `// ft-check: hot` fns |
//! | FTC009 | locks in serve/blas follow the declared acquisition order |
//! | FTC010 | `FT_*` knobs agree between code, the `KNOBS` registry, and the README |
//! | FTC011 | no panicking call within 2 hops of the `// ft-check: worker-loop` fn |
//! | FTC012 | every declared metric name is actually emitted somewhere |
//!
//! The analyzer is a hand-rolled, dependency-free pipeline: a real
//! lexer ([`lexer`]) producing typed tokens with spans, an item pass
//! ([`items`]) attributing tokens to `fn` items, attributes, and
//! `#[cfg(test)]` regions, and a conservatively name-resolved call
//! graph ([`callgraph`]) for the reachability rules. Matching on tokens
//! (not stripped text) makes the classic scanner false positives —
//! rule-shaped text in string literals, doc comments, or oddly
//! formatted `#[test]` items — structurally impossible, and every
//! finding carries an exact `file:line:col`.
//!
//! Known escapes are recorded in `check_allow.toml` at the repo root:
//! every entry names a rule, a file, and an audit reason, may cap the
//! number of matches it excuses (`max`), and may carry an `expires`
//! date after which the audit must be renewed. Stale and expired
//! entries fail the run (FTC000) so the allowlist can only shrink by
//! itself.

pub mod callgraph;
pub mod items;
pub mod lexer;
pub mod rules;

use lexer::TokKind;
pub use rules::{Ctx, LockRank};
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation (or allowlist-hygiene failure).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
    /// Rule ID (`FTC000`–`FTC012`).
    pub rule: &'static str,
    /// What was found.
    pub message: String,
    /// One-line fix hint.
    pub hint: &'static str,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{} [{}] {}\n    hint: {}",
            self.path, self.line, self.col, self.rule, self.message, self.hint
        )
    }
}

/// The declared metric-name registry, parsed from
/// `crates/trace/src/names.rs`.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    /// Declared counter names.
    pub counters: BTreeSet<String>,
    /// Declared gauge names.
    pub gauges: BTreeSet<String>,
    /// Declared histogram names.
    pub histograms: BTreeSet<String>,
    /// Declared span names.
    pub spans: BTreeSet<String>,
    /// Every declaration with its span: `(kind, name, 1-based line)`.
    /// FTC012 walks this to find declared-but-never-emitted names;
    /// empty disables that rule (single-file fixture mode).
    pub declared: Vec<(String, String, usize)>,
}

/// One audited `[[allow]]` entry from `check_allow.toml`.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule ID the entry excuses.
    pub rule: String,
    /// Repo-relative file the entry applies to.
    pub path: String,
    /// Why the escape is sound (required; this is the audit).
    pub reason: String,
    /// Maximum matches excused (entries beyond it are reported).
    pub max: usize,
    /// Line of the `[[allow]]` header, for FTC000 reports.
    pub line: usize,
    /// Optional `YYYY-MM-DD` date after which the audit must be renewed
    /// (the entry stops suppressing and fails as FTC000).
    pub expires: Option<String>,
}

// ---------------------------------------------------------------------------
// Scanning entry points
// ---------------------------------------------------------------------------

/// Analyzes a set of in-memory sources `(repo-relative path, text)`
/// under an explicit rule context. This is the core the fixture tests
/// drive; [`scan_workspace`] wraps it with registry/allowlist loading.
pub fn analyze(sources: &[(String, String)], ctx: &Ctx) -> Vec<Finding> {
    let files: Vec<callgraph::FileModel> = sources
        .iter()
        .map(|(rel, src)| callgraph::FileModel::new(rel.clone(), src))
        .collect();
    rules::run_all(&files, ctx)
}

/// Scans one file's source, returning its findings (allowlist not yet
/// applied). `rel` is the repo-relative path and decides rule scope.
/// Workspace-global registries (knob table, lock order, README) are
/// empty here, so only the per-file directions of the semantic rules
/// apply — exactly what single-fixture tests need.
pub fn scan_source(rel: &str, source: &str, registry: &Registry) -> Vec<Finding> {
    let mut registry = registry.clone();
    registry.declared.clear(); // FTC012 is workspace-global
    let ctx = Ctx {
        registry,
        ..Ctx::default()
    };
    analyze(&[(rel.to_string(), source.to_string())], &ctx)
}

// ---------------------------------------------------------------------------
// Registry parsing (names.rs, env_knob.rs, lock_order.rs)
// ---------------------------------------------------------------------------

/// Parses `crates/trace/src/names.rs`: the string literals of the
/// `COUNTERS`, `GAUGES`, `HISTOGRAMS`, and `SPANS` const slices, with
/// the line of each declaration.
pub fn parse_registry(source: &str) -> Registry {
    let lexed = lexer::lex(source);
    let toks = &lexed.toks;
    let mut reg = Registry::default();
    let mut k = 0usize;
    while k < toks.len() {
        let t = &toks[k];
        let kind = match t.text.as_str() {
            "COUNTERS" => "counter",
            "GAUGES" => "gauge",
            "HISTOGRAMS" => "histogram",
            "SPANS" => "span",
            _ => {
                k += 1;
                continue;
            }
        };
        if t.kind != TokKind::Ident || !toks.get(k + 1).is_some_and(|n| n.is_punct(":")) {
            k += 1;
            continue;
        }
        // Collect every string literal until the terminating `;`.
        k += 2;
        while k < toks.len() && !toks[k].is_punct(";") {
            if toks[k].kind == TokKind::Str {
                let name = toks[k].text.clone();
                let set = match kind {
                    "counter" => &mut reg.counters,
                    "gauge" => &mut reg.gauges,
                    "histogram" => &mut reg.histograms,
                    _ => &mut reg.spans,
                };
                set.insert(name.clone());
                reg.declared
                    .push((kind.to_string(), name, toks[k].line as usize + 1));
            }
            k += 1;
        }
    }
    reg
}

/// Parses the `KNOBS` table in `crates/trace/src/env_knob.rs`: each
/// `("FT_…", "description")` row becomes `(name, 1-based line)`.
pub fn parse_knobs(source: &str) -> Vec<(String, usize)> {
    let lexed = lexer::lex(source);
    let toks = &lexed.toks;
    let mut out = Vec::new();
    let Some(start) = toks
        .iter()
        .position(|t| t.is_ident("KNOBS") && t.kind == TokKind::Ident)
    else {
        return out;
    };
    for k in start..toks.len() {
        if toks[k].is_punct(";") {
            break;
        }
        if toks[k].kind == TokKind::Str
            && toks[k].text.starts_with("FT_")
            && k > 0
            && toks[k - 1].is_punct("(")
        {
            out.push((toks[k].text.clone(), toks[k].line as usize + 1));
        }
    }
    out
}

/// Parses the `LOCK_ORDER` table in `crates/serve/src/lock_order.rs`:
/// each `("path", "field", rank)` row becomes a [`LockRank`].
pub fn parse_lock_order(source: &str) -> Vec<LockRank> {
    let lexed = lexer::lex(source);
    let toks = &lexed.toks;
    let mut out = Vec::new();
    let Some(start) = toks.iter().position(|t| t.is_ident("LOCK_ORDER")) else {
        return out;
    };
    let mut k = start;
    while k < toks.len() && !toks[k].is_punct(";") {
        let row = toks[k].is_punct("(")
            && toks.get(k + 1).is_some_and(|t| t.kind == TokKind::Str)
            && toks.get(k + 2).is_some_and(|t| t.is_punct(","))
            && toks.get(k + 3).is_some_and(|t| t.kind == TokKind::Str)
            && toks.get(k + 4).is_some_and(|t| t.is_punct(","))
            && toks.get(k + 5).is_some_and(|t| t.kind == TokKind::Num);
        if row {
            if let Ok(rank) = toks[k + 5].text.replace('_', "").parse::<u32>() {
                out.push(LockRank {
                    path: toks[k + 1].text.clone(),
                    name: toks[k + 3].text.clone(),
                    rank,
                    line: toks[k + 1].line as usize + 1,
                });
            }
            k += 6;
            continue;
        }
        k += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------------------

/// Parses the minimal TOML dialect of `check_allow.toml`: `[[allow]]`
/// tables with `rule`/`path`/`reason` strings, an optional integer
/// `max`, and an optional `expires = "YYYY-MM-DD"` date.
pub fn parse_allowlist(text: &str) -> Result<Vec<Allow>, String> {
    let mut entries: Vec<Allow> = Vec::new();
    let mut current: Option<Allow> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(e) = current.take() {
                entries.push(validate_entry(e)?);
            }
            current = Some(Allow {
                rule: String::new(),
                path: String::new(),
                reason: String::new(),
                max: usize::MAX,
                line: idx + 1,
                expires: None,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "check_allow.toml:{}: expected `key = value`",
                idx + 1
            ));
        };
        let Some(entry) = current.as_mut() else {
            return Err(format!(
                "check_allow.toml:{}: key outside an [[allow]] table",
                idx + 1
            ));
        };
        let key = key.trim();
        let value = value.trim();
        let as_string = |v: &str| -> Result<String, String> {
            let v = v.strip_prefix('"').and_then(|v| v.strip_suffix('"'));
            v.map(str::to_string)
                .ok_or_else(|| format!("check_allow.toml:{}: expected a quoted string", idx + 1))
        };
        match key {
            "rule" => entry.rule = as_string(value)?,
            "path" => entry.path = as_string(value)?,
            "reason" => entry.reason = as_string(value)?,
            "max" => {
                entry.max = value.parse().map_err(|_| {
                    format!("check_allow.toml:{}: `max` must be an integer", idx + 1)
                })?;
            }
            "expires" => {
                let d = as_string(value)?;
                if !is_iso_date(&d) {
                    return Err(format!(
                        "check_allow.toml:{}: `expires` must be YYYY-MM-DD",
                        idx + 1
                    ));
                }
                entry.expires = Some(d);
            }
            other => {
                return Err(format!(
                    "check_allow.toml:{}: unknown key `{other}`",
                    idx + 1
                ));
            }
        }
    }
    if let Some(e) = current.take() {
        entries.push(validate_entry(e)?);
    }
    Ok(entries)
}

fn validate_entry(e: Allow) -> Result<Allow, String> {
    if e.rule.is_empty() || e.path.is_empty() {
        return Err(format!(
            "check_allow.toml:{}: entry needs both `rule` and `path`",
            e.line
        ));
    }
    if e.reason.trim().is_empty() {
        return Err(format!(
            "check_allow.toml:{}: entry needs a non-empty `reason` (that is the audit)",
            e.line
        ));
    }
    Ok(e)
}

fn is_iso_date(s: &str) -> bool {
    let b = s.as_bytes();
    b.len() == 10
        && b[4] == b'-'
        && b[7] == b'-'
        && b.iter()
            .enumerate()
            .all(|(i, c)| matches!(i, 4 | 7) || c.is_ascii_digit())
}

/// Suppresses findings covered by the allowlist. Entries that matched
/// nothing, whose `max` was exceeded, or whose `expires` date has
/// passed produce findings of their own. Uses today's UTC date; see
/// [`apply_allowlist_at`] for an injectable clock.
pub fn apply_allowlist(findings: Vec<Finding>, allow: &[Allow]) -> Vec<Finding> {
    apply_allowlist_at(findings, allow, &today_utc())
}

/// [`apply_allowlist`] with an explicit `today` (ISO `YYYY-MM-DD`).
/// ISO dates compare correctly as strings, so expiry is `expires < today`.
pub fn apply_allowlist_at(findings: Vec<Finding>, allow: &[Allow], today: &str) -> Vec<Finding> {
    let expired: Vec<bool> = allow
        .iter()
        .map(|a| a.expires.as_deref().is_some_and(|d| d < today))
        .collect();
    let mut used = vec![0usize; allow.len()];
    let mut out = Vec::new();
    for f in findings {
        let slot = allow
            .iter()
            .position(|a| a.rule == f.rule && a.path == f.path);
        match slot {
            Some(i) if !expired[i] && used[i] < allow[i].max => used[i] += 1,
            _ => out.push(f),
        }
    }
    for (i, a) in allow.iter().enumerate() {
        if expired[i] {
            out.push(Finding {
                path: "check_allow.toml".to_string(),
                line: a.line,
                col: 1,
                rule: "FTC000",
                message: format!(
                    "expired allowlist entry: {} on {} (expired {})",
                    a.rule,
                    a.path,
                    a.expires.as_deref().unwrap_or("?")
                ),
                hint: "re-audit the escape and bump `expires`, or fix the code and \
                       delete the entry",
            });
        } else if used[i] == 0 {
            out.push(Finding {
                path: "check_allow.toml".to_string(),
                line: a.line,
                col: 1,
                rule: "FTC000",
                message: format!(
                    "stale allowlist entry: {} on {} matched nothing",
                    a.rule, a.path
                ),
                hint: "delete the entry — the allowlist must only shrink by itself",
            });
        }
    }
    out
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days, no deps).
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil_from_days.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

// ---------------------------------------------------------------------------
// JSON output
// ---------------------------------------------------------------------------

/// Renders findings as the documented machine-readable report:
///
/// ```json
/// {"version": 1, "tool": "ft-check", "files_scanned": N,
///  "finding_count": M,
///  "findings": [{"path": …, "line": …, "col": …, "rule": …,
///                "message": …, "hint": …}]}
/// ```
pub fn to_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut s = String::with_capacity(256 + findings.len() * 160);
    s.push_str(&format!(
        "{{\"version\":1,\"tool\":\"ft-check\",\"files_scanned\":{files_scanned},\
         \"finding_count\":{},\"findings\":[",
        findings.len()
    ));
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"path\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{},\"hint\":{}}}",
            json_str(&f.path),
            f.line,
            f.col,
            json_str(f.rule),
            json_str(&f.message),
            json_str(f.hint)
        ));
    }
    s.push_str("]}");
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------------

/// Directory names never scanned.
const SKIP_DIRS: [&str; 3] = [".git", "target", "vendor"];

/// Repo-relative prefixes never scanned (rule fixtures violate rules on
/// purpose).
const SKIP_PREFIXES: [&str; 1] = ["crates/check/tests/fixtures"];

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = relative(root, &path);
        if path.is_dir() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if SKIP_DIRS.contains(&name.as_ref()) || SKIP_PREFIXES.contains(&rel.as_str()) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if rel.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Builds the workspace rule context: metric registry, knob table, lock
/// order, README knob tokens.
pub fn workspace_ctx(root: &Path, include_tests: bool) -> Result<Ctx, String> {
    let names_rel = "crates/trace/src/names.rs";
    let names_path = root.join(names_rel);
    let registry = match std::fs::read_to_string(&names_path) {
        Ok(src) => parse_registry(&src),
        Err(e) => return Err(format!("cannot read {}: {e}", names_path.display())),
    };
    let knobs_rel = "crates/trace/src/env_knob.rs";
    let knobs = std::fs::read_to_string(root.join(knobs_rel))
        .map(|src| parse_knobs(&src))
        .unwrap_or_default();
    let lock_order = std::fs::read_to_string(root.join("crates/serve/src/lock_order.rs"))
        .map(|src| parse_lock_order(&src))
        .unwrap_or_default();
    let readme_rel = "README.md";
    let readme_knobs = std::fs::read_to_string(root.join(readme_rel))
        .ok()
        .map(|text| rules::knobs::readme_knob_tokens(&text));
    Ok(Ctx {
        registry,
        names_rel: names_rel.to_string(),
        knobs,
        knobs_rel: knobs_rel.to_string(),
        readme_knobs,
        readme_rel: readme_rel.to_string(),
        lock_order,
        include_tests,
    })
}

/// Scans the whole workspace under `root`, applying the allowlist and
/// the registries. Returns findings sorted by path, line, column.
pub fn scan_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    scan_workspace_opts(root, false)
}

/// [`scan_workspace`] with test exemptions optionally disabled
/// (`include_tests`, the `--tests` flag; the allowlist still applies).
pub fn scan_workspace_opts(root: &Path, include_tests: bool) -> Result<Vec<Finding>, String> {
    let ctx = workspace_ctx(root, include_tests)?;
    let allow = match std::fs::read_to_string(root.join("check_allow.toml")) {
        Ok(text) => parse_allowlist(&text)?,
        Err(_) => Vec::new(),
    };
    let mut paths = Vec::new();
    collect_rs_files(root, root, &mut paths)?;
    paths.sort();
    let mut sources = Vec::with_capacity(paths.len());
    for path in &paths {
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        sources.push((relative(root, path), source));
    }
    let findings = analyze(&sources, &ctx);
    let mut findings = apply_allowlist(findings, &allow);
    findings.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    Ok(findings)
}

/// The number of files the last scan would cover (for reporting).
pub fn count_scanned_files(root: &Path) -> usize {
    let mut files = Vec::new();
    let _ = collect_rs_files(root, root, &mut files);
    files.len()
}
