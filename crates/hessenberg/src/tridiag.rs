//! Fault-tolerant symmetric tridiagonal reduction — the paper's §VII
//! extension claim ("the methodology … is generic enough to be applicable
//! to the entire spectrum of two-sided factorizations"), demonstrated on
//! a second two-sided factorization.
//!
//! The same three ingredients carry over unchanged:
//!
//! * **ABFT checksums**: the symmetric rank-2 update
//!   `A ← A − v·wᵀ − w·vᵀ` extends to the checksum borders with the
//!   column sums of `v` and `w` (the tridiagonal analogue of `Vce`);
//! * **diskless checkpointing**: per reduced column, the pre-step column
//!   and row (including their checksum entries) are retained until the
//!   next verification point, plus the `(v, w)` update operands — in
//!   total a panel's worth of memory, matching the paper's budget;
//! * **reverse computation**: on detection the retained rank-2 operands
//!   are re-added in LIFO order and the column/row storage restored from
//!   the checkpoints, after which the standard locate/correct/redo cycle
//!   runs.
//!
//! Detection runs every [`FtTridiagConfig::check_every`] columns (the
//! cadence analogue of the Hessenberg panel iteration), and `Q` storage is
//! protected by the same end-of-run checksums ([`crate::qprotect`]).
//!
//! # Detection for symmetric updates: mixed-path checksum routing
//!
//! The Hessenberg detector compares `Sre` (sum of row checksums) against
//! `Sce` (sum of column checksums); a silent corruption makes the two
//! aggregates diverge because the two-sided updates treat rows and
//! columns asymmetrically. The symmetric rank-2 update
//! `A ← A − v·wᵀ − w·vᵀ` does not: if both checksum borders are
//! maintained with the *same* scalars `(Σv, Σw)`, a corruption perturbs
//! them through identical terms and `Sre − Sce` stays zero forever — the
//! plain detector is structurally blind, no matter which path computes
//! the scalars.
//!
//! The remedy implemented here is **mixed-path routing**: the row-sum
//! border is updated with `Σw` computed through the *checksum* path
//! (`eᵀw = τ·(Ac_chk − row_i)·v + coef·Σv` — the tridiagonal analogue of
//! the paper's `Yce`), while the column-sum border uses `Σw` from the
//! *data* path. The two scalars differ by exactly `τ·(drᵀv)`, where `dr`
//! is the column-checksum defect vector — so **any** inconsistency
//! between data and checksums (off-diagonal errors, diagonal errors,
//! even corrupted checksum entries) injects a growing divergence into
//! `Sre − Sce` and trips the detector at the next group boundary. A
//! second, non-uniformly weighted checksum pair (`ω = (1, 2, …, n)`)
//! provides redundant coverage through the same mechanism.

use crate::encode::ExtMatrix;
use crate::qprotect::QProtection;
use crate::recovery::{correct_errors, locate_errors};
use crate::report::{FtReport, RecoveryEvent};
use crate::threshold::ThresholdPolicy;
use ft_blas::{dot, gemv, ger, Trans};
use ft_fault::{FaultPlan, Phase};
use ft_lapack::householder::larfg;
use ft_lapack::sytrd::TridiagFactorization;
use ft_matrix::Matrix;

/// Configuration of the fault-tolerant tridiagonal reduction.
#[derive(Clone, Copy, Debug)]
pub struct FtTridiagConfig {
    /// Detection cadence in columns (the "iteration" granularity).
    pub check_every: usize,
    /// Detection threshold policy.
    pub threshold: ThresholdPolicy,
    /// Maintain and verify the `Q`-storage checksums.
    pub protect_q: bool,
    /// Recovery attempts per group before falling back to re-encoding.
    pub max_recovery_attempts: usize,
}

impl Default for FtTridiagConfig {
    fn default() -> Self {
        FtTridiagConfig {
            check_every: 32,
            threshold: ThresholdPolicy::default(),
            protect_q: true,
            max_recovery_attempts: 3,
        }
    }
}

/// Result of a fault-tolerant tridiagonal reduction.
#[derive(Debug)]
pub struct FtTridiagOutcome {
    /// The (recovered) tridiagonal factorization.
    pub result: TridiagFactorization,
    /// Detection/recovery telemetry.
    pub report: FtReport,
}

/// The second, non-uniformly-weighted checksum pair (`Aω` and `ωᵀA` with
/// `ω = (1, 2, …, n)`) that makes symmetric-consistent corruptions
/// observable (see module docs).
struct WeightedChecksums {
    omega: Vec<f64>,
    /// `A·ω` (one entry per row).
    col: Vec<f64>,
    /// `ωᵀ·A` (one entry per column).
    row: Vec<f64>,
}

impl WeightedChecksums {
    fn init(a: &Matrix) -> Self {
        let n = a.rows();
        let omega: Vec<f64> = (0..n).map(|c| (c + 1) as f64).collect();
        let mut col = vec![0.0; n];
        let mut row = vec![0.0; n];
        for c in 0..n {
            let ac = a.col(c);
            for r in 0..n {
                col[r] += ac[r] * omega[c];
                row[c] += ac[r] * omega[r];
            }
        }
        WeightedChecksums { omega, col, row }
    }

    /// `Σ(Aω) − Σ(ωᵀA)` — zero for a consistent (symmetric) state.
    fn aggregate_mismatch(&self) -> f64 {
        let s1: f64 = self.col.iter().sum();
        let s2: f64 = self.row.iter().sum();
        s1 - s2
    }

    /// Recomputes both vectors from the extended matrix under the
    /// Hessenberg-storage mask.
    fn reencode(&mut self, ax: &ExtMatrix, frontier: usize) {
        let n = ax.n();
        self.col.iter_mut().for_each(|v| *v = 0.0);
        self.row.iter_mut().for_each(|v| *v = 0.0);
        for c in 0..n {
            for r in 0..n {
                let v = ax.math_at(r, c, frontier);
                self.col[r] += v * self.omega[c];
                self.row[c] += v * self.omega[r];
            }
        }
    }
}

/// Retained state for one reduced column (the diskless checkpoint unit).
struct ColumnArtifacts {
    i: usize,
    tau: f64,
    /// Rank-2 operands extended with their sums: `[v; Σv]`, `[w; Σw]`.
    vx: Vec<f64>,
    wx: Vec<f64>,
    /// Pre-step extended column `i` and row `i` (length `n + 1` each).
    col_checkpoint: Vec<f64>,
    row_checkpoint: Vec<f64>,
}

/// Protection tag for the fault journal (the tridiagonal path has two
/// levels: weighted checksums alone, or with Q-storage protection).
fn tridiag_protection(cfg: &FtTridiagConfig) -> &'static str {
    if cfg.protect_q {
        "tridiag+q"
    } else {
        "tridiag"
    }
}

/// Runs the fault-tolerant reduction. `plan` injects faults at group
/// boundaries (`Phase::IterationStart`, iteration = group index).
pub fn ft_sytd2(a: &Matrix, cfg: &FtTridiagConfig, plan: &mut FaultPlan) -> FtTridiagOutcome {
    assert!(a.is_square(), "ft_sytd2: matrix must be square");
    let n = a.rows();
    let group = cfg.check_every.max(1);
    let threshold = cfg.threshold.resolve(a);
    let loc_tol = threshold / (n as f64).sqrt().max(1.0);

    let mut report = FtReport {
        n,
        nb: group,
        threshold,
        ..Default::default()
    };
    let mut ax = ExtMatrix::encode(a);
    let mut wchk = WeightedChecksums::init(a);
    // The weighted aggregates carry an extra factor of up to n in scale.
    let threshold_w = threshold * n as f64;
    let mut qprot = QProtection::new(n);
    let mut tau_all = vec![0.0f64; n.saturating_sub(2)];

    let total = n.saturating_sub(2);
    let mut gk = 0usize; // first column of the current group
    let mut iter = 0usize;
    while gk < total {
        let glen = group.min(total - gk);

        // Fault hook at the group boundary.
        let applied = plan.apply_due(iter, Phase::IterationStart, ax.raw_mut());
        report.injected.extend_from_slice(&applied);

        // Group-start checksum snapshot (4(n+1) values — cheap).
        let chk_snapshot = snapshot_checksums(&ax);
        let wchk_snapshot = (wchk.col.clone(), wchk.row.clone());

        let mut artifacts = reduce_group(&mut ax, &mut wchk, gk, glen, &mut tau_all);

        // Fault hook right before detection.
        let applied = plan.apply_due(iter, Phase::BeforeDetection, ax.raw_mut());
        report.injected.extend_from_slice(&applied);

        // Detection: plain |Sre − Sce| (inherited from the Hessenberg
        // scheme) OR the weighted aggregate (the symmetric-case detector).
        let detect_now = |ax: &ExtMatrix, wchk: &WeightedChecksums| {
            ThresholdPolicy::exceeded(ax.sre() - ax.sce(), threshold)
                || ThresholdPolicy::exceeded(wchk.aggregate_mismatch(), threshold_w)
        };
        let mut detected = detect_now(&ax, &wchk);
        let mut attempts = 0;
        while detected && attempts < cfg.max_recovery_attempts {
            attempts += 1;
            report.redone_iterations += 1;
            let mismatch = (ax.sre() - ax.sce())
                .abs()
                .max(wchk.aggregate_mismatch().abs());

            // Reverse computation: LIFO over the group's columns.
            for art in artifacts.iter().rev() {
                reverse_column(&mut ax, art);
            }
            restore_checksums(&mut ax, &chk_snapshot);
            wchk.col.copy_from_slice(&wchk_snapshot.0);
            wchk.row.copy_from_slice(&wchk_snapshot.1);

            // Locate and correct on the restored, consistent state.
            let out = locate_errors(&ax, gk, loc_tol);
            let fixes: Vec<(usize, usize, f64)> =
                out.errors.iter().map(|e| (e.row, e.col, e.delta)).collect();
            correct_errors(&mut ax, &out.errors);
            if out.errors.is_empty() {
                // Checksum-side corruption: rebuild from data.
                reencode(&mut ax, gk);
                wchk.reencode(&ax, gk);
            } else {
                // The corrections changed the data; the weighted vectors
                // were snapshotted pre-error, so refresh them to match.
                wchk.reencode(&ax, gk);
            }
            ft_trace::journal::record(
                iter,
                "recovery",
                tridiag_protection(cfg),
                fixes.len(),
                mismatch,
                out.resolved,
            );
            report.recoveries.push(RecoveryEvent {
                iteration: iter,
                mismatch,
                corrected: fixes,
                resolved: out.resolved,
            });

            // Re-execute the group.
            artifacts = reduce_group(&mut ax, &mut wchk, gk, glen, &mut tau_all);
            detected = detect_now(&ax, &wchk);
        }
        if detected {
            reencode(&mut ax, gk + glen);
            wchk.reencode(&ax, gk + glen);
            ft_trace::journal::record(iter, "giveup", tridiag_protection(cfg), 0, f64::NAN, false);
            report.recoveries.push(RecoveryEvent {
                iteration: iter,
                mismatch: f64::NAN,
                corrected: vec![],
                resolved: false,
            });
        }

        // Commit: absorb the verified columns into Q protection.
        if cfg.protect_q {
            for art in &artifacts {
                qprot.absorb_panel(ax.raw(), art.i, 1, &[art.tau]);
            }
        }

        gk += glen;
        iter += 1;
        report.iterations += 1;
    }

    // Final whole-matrix consistency pass + Q verification.
    let out = locate_errors(&ax, total, loc_tol);
    if !out.errors.is_empty() {
        let fixes: Vec<(usize, usize, f64)> =
            out.errors.iter().map(|e| (e.row, e.col, e.delta)).collect();
        correct_errors(&mut ax, &out.errors);
        ft_trace::journal::record(
            iter,
            "final",
            tridiag_protection(cfg),
            fixes.len(),
            f64::NAN,
            out.resolved,
        );
        report.recoveries.push(RecoveryEvent {
            iteration: iter,
            mismatch: f64::NAN,
            corrected: fixes,
            resolved: out.resolved,
        });
    }
    if cfg.protect_q {
        let fixes = qprot.verify_and_correct(ax.raw_mut(), loc_tol.max(1e-12));
        report.q_corrections = fixes.iter().map(|f| (f.row, f.col, f.delta)).collect();
        let _ = qprot.verify_taus(&mut tau_all, 1e-10);
    }

    // Extract d, e from the band of the packed result.
    let packed = ax.into_packed();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n.saturating_sub(1)];
    for i in 0..n {
        d[i] = packed[(i, i)];
        if i + 1 < n {
            e[i] = packed[(i + 1, i)];
        }
    }
    report.sim_seconds = 0.0; // CPU-only extension: no simulated platform.

    FtTridiagOutcome {
        result: TridiagFactorization {
            packed,
            d,
            e,
            tau: tau_all,
        },
        report,
    }
}

/// Reduces columns `gk .. gk+glen` with checksum maintenance, returning
/// the retained artifacts for possible reversal.
fn reduce_group(
    ax: &mut ExtMatrix,
    wchk: &mut WeightedChecksums,
    gk: usize,
    glen: usize,
    tau_all: &mut [f64],
) -> Vec<ColumnArtifacts> {
    let n = ax.n();
    let mut artifacts = Vec::with_capacity(glen);
    for i in gk..gk + glen {
        let m = n - i - 1;

        // Diskless checkpoint of the extended column i and row i.
        let col_checkpoint: Vec<f64> = ax.raw().col(i)[..n + 1].to_vec();
        let row_checkpoint: Vec<f64> = (0..=n).map(|c| ax.raw()[(i, c)]).collect();

        // Reflector from the current column.
        let alpha = ax.raw()[(i + 1, i)];
        let old_band: Vec<f64> = (i + 1..n).map(|r| ax.raw()[(r, i)]).collect();
        let mut tail: Vec<f64> = old_band[1..].to_vec();
        let refl = larfg(alpha, &mut tail);
        tau_all[i] = refl.tau;

        let mut v = vec![0.0; m];
        v[0] = 1.0;
        v[1..].copy_from_slice(&tail);

        // w = τ·A₂·v − (τ/2)(·)·v over the trailing block.
        let mut w = vec![0.0; m];
        let mut coef = 0.0;
        if refl.tau != 0.0 {
            gemv(
                Trans::No,
                refl.tau,
                &ax.raw().view(i + 1, i + 1, m, m),
                &v,
                0.0,
                &mut w,
            );
            coef = -0.5 * refl.tau * dot(&w, &v);
            for r in 0..m {
                w[r] += coef * v[r];
            }
        }

        // Extended rank-2 update: [v; Σv], [w; Σw_ind] over rows/cols
        // i+1 ..= n of the extended matrix (covers both checksum borders
        // and the grand-sum corner).
        //
        // Σw is computed through the *checksum row* — the independent
        // path (the tridiagonal analogue of the paper's
        // `Ychk_c = trail(A)chk_c · V`): `eᵀw = τ·(eᵀA₂)·v + coef·Σv`
        // with `eᵀA₂ = Ac_chk(i+1..) − row_i(i+1..)` (rows above the
        // trailing block are explicit zeros except row i, not yet
        // rewritten). A silent corruption in `A₂` then perturbs the data
        // path but not this one, making `Sre − Sce` diverge — which is
        // exactly what the detector keys on.
        let sv: f64 = v.iter().sum();
        let sw: f64 = if refl.tau != 0.0 {
            let ea2v: f64 = (0..m)
                .map(|r| {
                    let c = i + 1 + r;
                    (ax.chk_row(c) - ax.raw()[(i, c)]) * v[r]
                })
                .sum();
            refl.tau * ea2v + coef * sv
        } else {
            0.0
        };
        let mut vx = v.clone();
        vx.push(sv);
        let mut wx = w.clone();
        wx.push(sw);
        if refl.tau != 0.0 {
            // Weighted scalars: ωᵀw through the independent path for the
            // column border, and through the data path for the row border.
            // Mixing the two paths is what makes the detector sensitive:
            // feeding the same scalar to both borders would keep them
            // mutually consistent no matter how corrupted the data is
            // (the symmetric-update blindness analysed in the module docs).
            let svw: f64 = (0..m).map(|r| wchk.omega[i + 1 + r] * v[r]).sum();
            let sww_ind: f64 = {
                let oa2v: f64 = (0..m)
                    .map(|r| {
                        let c = i + 1 + r;
                        (wchk.row[c] - wchk.omega[i] * ax.raw()[(i, c)]) * v[r]
                    })
                    .sum();
                refl.tau * oa2v + coef * svw
            };
            let sww_data: f64 = (0..m).map(|r| wchk.omega[i + 1 + r] * w[r]).sum();
            let sw_data: f64 = w.iter().sum();

            {
                let mut block = ax.raw_mut().view_mut(i + 1, i + 1, m + 1, m + 1);
                ger(-1.0, &vx, &wx, &mut block);
                ger(-1.0, &wx, &vx, &mut block);
            }
            // The gers fed sw_ind to *both* borders; switch the row border
            // (column-sum checksums) to the data-path scalar.
            let ds = sw - sw_data;
            if ds != 0.0 {
                let n_idx = n;
                for (r, &vr) in v.iter().enumerate() {
                    let c = i + 1 + r;
                    let cur = ax.raw()[(n_idx, c)];
                    ax.raw_mut()[(n_idx, c)] = cur + ds * vr;
                }
            }

            for r in 0..m {
                let g = i + 1 + r;
                wchk.col[g] -= v[r] * sww_ind + w[r] * svw;
                wchk.row[g] -= svw * w[r] + sww_data * v[r];
            }
        }

        // Band transformation of column i / row i: mathematically the
        // entries (i+1.., i) and (i, i+1..) become [β, 0, …]; adjust the
        // checksum borders by the difference and write the storage.
        {
            let n_idx = n;
            // delta over rows i+1..n: new − old.
            for (off, &old) in old_band.iter().enumerate() {
                let new = if off == 0 { refl.beta } else { 0.0 };
                let r = i + 1 + off;
                let dlt = new - old;
                if dlt != 0.0 {
                    // column i changed at row r → row-sum checksum of row r;
                    // row i changed at column r → column-sum checksum of r.
                    let cur = ax.raw()[(r, n_idx)];
                    ax.raw_mut()[(r, n_idx)] = cur + dlt;
                    let cur = ax.raw()[(n_idx, r)];
                    ax.raw_mut()[(n_idx, r)] = cur + dlt;
                    // Weighted counterparts (both weighted by ω_i: the
                    // changed entry sits in column i resp. row i).
                    wchk.col[r] += dlt * wchk.omega[i];
                    wchk.row[r] += dlt * wchk.omega[i];
                }
            }
            // Write the packed storage: β + reflector tail in the column
            // (Q storage), β + explicit zeros in the row (math values).
            ax.raw_mut()[(i + 1, i)] = refl.beta;
            for (off, &val) in tail.iter().enumerate() {
                ax.raw_mut()[(i + 2 + off, i)] = val;
            }
            ax.raw_mut()[(i, i + 1)] = refl.beta;
            for c in i + 2..n {
                ax.raw_mut()[(i, c)] = 0.0;
            }
            // Refresh the checksums of column i and row i themselves from
            // the (≤3-entry) mathematical band.
            let mut band_sum = ax.raw()[(i, i)];
            let mut band_sum_w = ax.raw()[(i, i)] * wchk.omega[i];
            if i > 0 {
                band_sum += ax.raw()[(i - 1, i)];
                band_sum_w += ax.raw()[(i - 1, i)] * wchk.omega[i - 1];
            }
            band_sum += refl.beta;
            band_sum_w += refl.beta * wchk.omega[i + 1];
            ax.raw_mut()[(n_idx, i)] = band_sum;
            ax.raw_mut()[(i, n_idx)] = band_sum;
            wchk.col[i] = band_sum_w;
            wchk.row[i] = band_sum_w;
        }

        artifacts.push(ColumnArtifacts {
            i,
            tau: refl.tau,
            vx,
            wx,
            col_checkpoint,
            row_checkpoint,
        });
    }
    artifacts
}

/// Reverses one column step: re-adds the rank-2 operands and restores the
/// column/row storage from the checkpoints.
fn reverse_column(ax: &mut ExtMatrix, art: &ColumnArtifacts) {
    let n = ax.n();
    let i = art.i;
    let m = n - i - 1;
    if art.tau != 0.0 {
        let mut block = ax.raw_mut().view_mut(i + 1, i + 1, m + 1, m + 1);
        ger(1.0, &art.vx, &art.wx, &mut block);
        ger(1.0, &art.wx, &art.vx, &mut block);
    }
    for r in 0..=n {
        ax.raw_mut()[(r, i)] = art.col_checkpoint[r];
        ax.raw_mut()[(i, r)] = art.row_checkpoint[r];
    }
}

fn snapshot_checksums(ax: &ExtMatrix) -> (Vec<f64>, Vec<f64>, f64) {
    let n = ax.n();
    (ax.chk_col().to_vec(), ax.chk_row_to_vec(), ax.raw()[(n, n)])
}

fn restore_checksums(ax: &mut ExtMatrix, snap: &(Vec<f64>, Vec<f64>, f64)) {
    let n = ax.n();
    for i in 0..n {
        ax.raw_mut()[(i, n)] = snap.0[i];
        ax.raw_mut()[(n, i)] = snap.1[i];
    }
    ax.raw_mut()[(n, n)] = snap.2;
}

fn reencode(ax: &mut ExtMatrix, frontier: usize) {
    let n = ax.n();
    let rs = ax.math_row_sums(frontier);
    let cs = ax.math_col_sums(frontier);
    let mut grand = 0.0;
    for i in 0..n {
        ax.raw_mut()[(i, n)] = rs[i];
        grand += rs[i];
    }
    for j in 0..n {
        ax.raw_mut()[(n, j)] = cs[j];
    }
    ax.raw_mut()[(n, n)] = grand;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_fault::Fault;
    use ft_lapack::sytrd::{steqr_eigenvalues, sytd2};

    fn residuals(a0: &Matrix, f: &TridiagFactorization) -> (f64, f64) {
        let n = a0.rows();
        let t = f.t();
        let q = f.q();
        let mut qt = Matrix::zeros(n, n);
        ft_blas::gemm(
            Trans::No,
            Trans::No,
            1.0,
            &q.as_view(),
            &t.as_view(),
            0.0,
            &mut qt.as_view_mut(),
        );
        let mut res = a0.clone();
        ft_blas::gemm(
            Trans::No,
            Trans::Yes,
            -1.0,
            &qt.as_view(),
            &q.as_view(),
            1.0,
            &mut res.as_view_mut(),
        );
        let fact = res.one_norm() / (n as f64 * a0.one_norm());
        let mut qqt = Matrix::identity(n);
        ft_blas::gemm(
            Trans::No,
            Trans::Yes,
            1.0,
            &q.as_view(),
            &q.as_view(),
            -1.0,
            &mut qqt.as_view_mut(),
        );
        (fact, qqt.one_norm() / n as f64)
    }

    #[test]
    fn clean_run_matches_plain_sytd2() {
        let n = 48;
        let a = ft_matrix::random::symmetric(n, 5);
        let out = ft_sytd2(&a, &FtTridiagConfig::default(), &mut FaultPlan::none());
        assert!(out.report.recoveries.is_empty(), "no false positives");

        let mut plain = a.clone();
        let base = sytd2(&mut plain);
        for i in 0..n {
            assert!((out.result.d[i] - base.d[i]).abs() < 1e-11, "d[{i}]");
        }
        for i in 0..n - 1 {
            assert!((out.result.e[i] - base.e[i]).abs() < 1e-11, "e[{i}]");
        }
        let (fact, orth) = residuals(&a, &out.result);
        assert!(fact < 1e-14 && orth < 1e-13, "{fact} {orth}");
    }

    #[test]
    fn trailing_fault_detected_and_corrected() {
        let n = 64;
        let a = ft_matrix::random::symmetric(n, 7);
        let mut plan = FaultPlan::one(1, Fault::add(45, 55, 0.5)); // group 1 → cols ≥ 32 active
        let out = ft_sytd2(&a, &FtTridiagConfig::default(), &mut plan);
        assert!(!out.report.recoveries.is_empty(), "must detect");
        let (fact, orth) = residuals(&a, &out.result);
        assert!(fact < 1e-12 && orth < 1e-12, "{fact} {orth}");
    }

    #[test]
    fn q_storage_fault_fixed_at_end() {
        let n = 64;
        let a = ft_matrix::random::symmetric(n, 9);
        // Corrupt a reflector tail of an already-reduced column (col 5,
        // well below the band) at group 1.
        let mut plan = FaultPlan::one(1, Fault::add(30, 5, 0.25));
        let out = ft_sytd2(&a, &FtTridiagConfig::default(), &mut plan);
        assert!(
            !out.report.q_corrections.is_empty(),
            "{:?}",
            out.report.q_corrections
        );
        let (fact, orth) = residuals(&a, &out.result);
        assert!(fact < 1e-11 && orth < 1e-11, "{fact} {orth}");
    }

    #[test]
    fn eigenvalues_survive_fault() {
        let n = 48;
        let a = ft_matrix::random::symmetric(n, 11);
        // Ground truth from a clean reduction.
        let mut plain = a.clone();
        let base = sytd2(&mut plain);
        let clean = steqr_eigenvalues(&base.d, &base.e).unwrap();

        let mut plan = FaultPlan::one(0, Fault::add(30, 40, 0.8));
        let out = ft_sytd2(&a, &FtTridiagConfig::default(), &mut plan);
        let dirty = steqr_eigenvalues(&out.result.d, &out.result.e).unwrap();
        for (x, y) in clean.iter().zip(&dirty) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn diagonal_fault_detected_and_corrected() {
        // A diagonal error is symmetric-consistent — the hardest case for
        // row-vs-column comparisons. The mixed-path scalar routing still
        // catches it (the divergence driver is the checksum defect dr,
        // not row/column asymmetry).
        let n = 64;
        let a = ft_matrix::random::symmetric(n, 21);
        let mut plan = FaultPlan::one(1, Fault::add(50, 50, 0.5));
        let out = ft_sytd2(&a, &FtTridiagConfig::default(), &mut plan);
        assert!(
            !out.report.recoveries.is_empty(),
            "diagonal error must be detected"
        );
        let rec = &out.report.recoveries[0];
        assert!(
            rec.corrected.iter().any(|&(r, c, _)| r == 50 && c == 50),
            "{rec:?}"
        );
        let (fact, orth) = residuals(&a, &out.result);
        assert!(fact < 1e-12 && orth < 1e-12, "{fact} {orth}");
    }

    #[test]
    fn checksum_border_corruption_handled() {
        // Inject into the checksum column itself (index n of the extended
        // matrix): the recovery path re-encodes rather than "correcting"
        // a phantom data error.
        let n = 48;
        let a = ft_matrix::random::symmetric(n, 23);
        let mut plan = FaultPlan::one(1, Fault::add(10, n, 3.0));
        let out = ft_sytd2(&a, &FtTridiagConfig::default(), &mut plan);
        let (fact, orth) = residuals(&a, &out.result);
        assert!(
            fact < 1e-12 && orth < 1e-12,
            "{fact} {orth} ({:?})",
            out.report.recoveries
        );
    }

    #[test]
    fn various_cadences() {
        let n = 50;
        let a = ft_matrix::random::symmetric(n, 13);
        for check_every in [1usize, 8, 16, 64] {
            let cfg = FtTridiagConfig {
                check_every,
                ..Default::default()
            };
            let mut plan = FaultPlan::one(0, Fault::add(30, 35, 0.3));
            let out = ft_sytd2(&a, &cfg, &mut plan);
            let (fact, orth) = residuals(&a, &out.result);
            assert!(
                fact < 1e-12 && orth < 1e-12,
                "cadence {check_every}: {fact} {orth}"
            );
        }
    }

    #[test]
    fn band_checksum_maintenance_is_exact() {
        // After a clean run, the checksums must still match the data —
        // i.e. the incremental band adjustments did their job (no drift).
        let n = 40;
        let a = ft_matrix::random::symmetric(n, 15);
        let cfg = FtTridiagConfig {
            check_every: 4,
            ..Default::default()
        };
        let out = ft_sytd2(&a, &cfg, &mut FaultPlan::none());
        assert!(out.report.recoveries.is_empty());
        assert_eq!(out.report.iterations, (n - 2usize).div_ceil(4));
    }
}
