//! Service observability: internal atomics and HDR latency histograms
//! for the per-instance snapshot, mirrored into the process-wide
//! `ft-trace` registry (`serve.*` counters, gauges, and histograms) so
//! the service shows up next to `pool.*`/`ft.*` in traces, counter
//! dumps, and the Prometheus exposition endpoint.
//!
//! Latency is accounted as four HDR histograms per priority lane
//! (`ft_trace::Histogram`, ≤ 2⁻⁵ relative quantile error): end-to-end
//! latency plus its three components — queue wait, execution, and retry
//! backoff wait. Every observation lands twice: in the instance-owned
//! histogram (the [`ServiceStats`] snapshot source, isolated per
//! service) and in the registry histogram of the same name (the
//! process-wide exposition source).

use crate::job::Priority;
use ft_trace::{HistSnapshot, Histogram};
use std::sync::atomic::AtomicU64;
use std::sync::OnceLock;

/// Cached `serve.*` registry handles (one mutex-guarded lookup each,
/// then plain pointers — the registry idiom from `ft-trace`). Histogram
/// and lane-gauge arrays are indexed by [`Priority::index`].
pub(crate) struct TraceHooks {
    pub submitted: &'static ft_trace::Counter,
    pub rejected: &'static ft_trace::Counter,
    pub completed: &'static ft_trace::Counter,
    pub failed: &'static ft_trace::Counter,
    pub retries: &'static ft_trace::Counter,
    pub deadline_missed: &'static ft_trace::Counter,
    pub canceled: &'static ft_trace::Counter,
    pub queue_depth: &'static ft_trace::Gauge,
    pub lane_depth: [&'static ft_trace::Gauge; 3],
    pub in_flight: &'static ft_trace::Gauge,
    pub latency: [&'static Histogram; 3],
    pub queue_wait: [&'static Histogram; 3],
    pub exec: [&'static Histogram; 3],
    pub backoff: [&'static Histogram; 3],
}

pub(crate) fn trace_hooks() -> &'static TraceHooks {
    static HOOKS: OnceLock<TraceHooks> = OnceLock::new();
    HOOKS.get_or_init(|| TraceHooks {
        submitted: ft_trace::counter("serve.submitted"),
        rejected: ft_trace::counter("serve.rejected"),
        completed: ft_trace::counter("serve.completed"),
        failed: ft_trace::counter("serve.failed"),
        retries: ft_trace::counter("serve.retries"),
        deadline_missed: ft_trace::counter("serve.deadline_missed"),
        canceled: ft_trace::counter("serve.canceled"),
        queue_depth: ft_trace::gauge("serve.queue_depth"),
        lane_depth: [
            ft_trace::gauge("serve.queue_depth_high"),
            ft_trace::gauge("serve.queue_depth_normal"),
            ft_trace::gauge("serve.queue_depth_low"),
        ],
        in_flight: ft_trace::gauge("serve.in_flight"),
        latency: [
            ft_trace::histogram("serve.latency_high"),
            ft_trace::histogram("serve.latency_normal"),
            ft_trace::histogram("serve.latency_low"),
        ],
        queue_wait: [
            ft_trace::histogram("serve.queue_wait_high"),
            ft_trace::histogram("serve.queue_wait_normal"),
            ft_trace::histogram("serve.queue_wait_low"),
        ],
        exec: [
            ft_trace::histogram("serve.exec_high"),
            ft_trace::histogram("serve.exec_normal"),
            ft_trace::histogram("serve.exec_low"),
        ],
        backoff: [
            ft_trace::histogram("serve.backoff_high"),
            ft_trace::histogram("serve.backoff_normal"),
            ft_trace::histogram("serve.backoff_low"),
        ],
    })
}

/// The four instance-owned latency histograms of one priority lane.
#[derive(Debug)]
pub(crate) struct LaneHistograms {
    pub total: Histogram,
    pub queue_wait: Histogram,
    pub exec: Histogram,
    pub backoff: Histogram,
}

impl LaneHistograms {
    const fn new(
        total: &'static str,
        queue_wait: &'static str,
        exec: &'static str,
        backoff: &'static str,
    ) -> LaneHistograms {
        LaneHistograms {
            total: Histogram::new(total),
            queue_wait: Histogram::new(queue_wait),
            exec: Histogram::new(exec),
            backoff: Histogram::new(backoff),
        }
    }

    pub(crate) fn snapshot(&self) -> LaneLatencies {
        LaneLatencies {
            total: PriorityLatency::from_snapshot(&self.total.snapshot()),
            queue_wait: PriorityLatency::from_snapshot(&self.queue_wait.snapshot()),
            exec: PriorityLatency::from_snapshot(&self.exec.snapshot()),
            backoff: PriorityLatency::from_snapshot(&self.backoff.snapshot()),
        }
    }
}

/// Latency snapshot for one priority class. Percentile fields are HDR
/// estimates: never below the exact sorted-sample quantile and at most
/// ≈ 3.1 % (2⁻⁵ relative) above it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PriorityLatency {
    /// Completed observations.
    pub count: u64,
    /// Arithmetic mean, µs.
    pub mean_us: u64,
    /// Median estimate, µs.
    pub p50_us: u64,
    /// 95th-percentile estimate, µs.
    pub p95_us: u64,
    /// 99th-percentile estimate, µs.
    pub p99_us: u64,
    /// 99.9th-percentile estimate, µs.
    pub p999_us: u64,
    /// Exact maximum, µs.
    pub max_us: u64,
}

impl PriorityLatency {
    /// Summarizes one histogram snapshot.
    pub fn from_snapshot(s: &HistSnapshot) -> PriorityLatency {
        PriorityLatency {
            count: s.count,
            mean_us: s.mean() as u64,
            p50_us: s.quantile(0.50),
            p95_us: s.quantile(0.95),
            p99_us: s.quantile(0.99),
            p999_us: s.quantile(0.999),
            max_us: s.max,
        }
    }
}

/// The per-lane latency breakdown: end-to-end plus its three components.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneLatencies {
    /// Submit-to-terminal latency of completed jobs.
    pub total: PriorityLatency,
    /// Admission-to-pickup wait (one observation per executed job).
    pub queue_wait: PriorityLatency,
    /// Kernel execution time (one observation per executed run — retries
    /// observe once per attempt).
    pub exec: PriorityLatency,
    /// Retry backoff sleeps (one observation per backoff wait).
    pub backoff: PriorityLatency,
}

/// Internal counter block (the snapshot source).
#[derive(Debug)]
pub(crate) struct ServiceCounters {
    pub submitted: AtomicU64,
    pub rejected: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub retries: AtomicU64,
    pub deadline_missed: AtomicU64,
    pub canceled: AtomicU64,
    pub in_flight: AtomicU64,
    pub latency: [LaneHistograms; 3],
}

impl ServiceCounters {
    pub fn new() -> ServiceCounters {
        ServiceCounters {
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            deadline_missed: AtomicU64::new(0),
            canceled: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            latency: [
                LaneHistograms::new(
                    "serve.latency_high",
                    "serve.queue_wait_high",
                    "serve.exec_high",
                    "serve.backoff_high",
                ),
                LaneHistograms::new(
                    "serve.latency_normal",
                    "serve.queue_wait_normal",
                    "serve.exec_normal",
                    "serve.backoff_normal",
                ),
                LaneHistograms::new(
                    "serve.latency_low",
                    "serve.queue_wait_low",
                    "serve.exec_low",
                    "serve.backoff_low",
                ),
            ],
        }
    }
}

/// Point-in-time statistics of a running service.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Jobs currently queued (admitted, not yet picked up).
    pub queue_depth: usize,
    /// Per-lane queued jobs, indexed by [`Priority::index`].
    pub lane_depths: [usize; 3],
    /// Jobs currently executing (including retry backoff waits).
    pub in_flight: u64,
    /// Jobs admitted since start.
    pub submitted: u64,
    /// Submissions refused (`QueueFull`/`Timeout`/`Closed`).
    pub rejected: u64,
    /// Jobs that reached [`crate::JobStatus::Completed`].
    pub completed: u64,
    /// Jobs that reached [`crate::JobStatus::Failed`].
    pub failed: u64,
    /// Escalated re-runs executed (counts runs, not jobs).
    pub retries: u64,
    /// Jobs that expired before (or between) runs.
    pub deadline_missed: u64,
    /// Jobs canceled by an abort shutdown.
    pub canceled: u64,
    /// Per-priority completion latency, indexed by [`Priority::index`]
    /// (the `total` component of [`ServiceStats::lanes`], kept flat for
    /// the common consumer).
    pub latency: [PriorityLatency; 3],
    /// Per-priority latency breakdown (total / queue wait / execution /
    /// backoff), indexed by [`Priority::index`].
    pub lanes: [LaneLatencies; 3],
}

impl ServiceStats {
    /// Jobs accounted as terminal (completed + failed + deadline-missed +
    /// canceled).
    pub fn terminal(&self) -> u64 {
        self.completed + self.failed + self.deadline_missed + self.canceled
    }

    /// Latency snapshot of one priority class.
    pub fn latency_of(&self, p: Priority) -> &PriorityLatency {
        &self.latency[p.index()]
    }

    /// Latency breakdown of one priority class.
    pub fn lanes_of(&self, p: Priority) -> &LaneLatencies {
        &self.lanes[p.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_snapshot_brackets_samples() {
        let lanes = LaneHistograms::new("t.total", "t.queue", "t.exec", "t.backoff");
        for us in 1..=1000u64 {
            lanes.total.record(us);
        }
        lanes.queue_wait.record(7);
        let s = lanes.snapshot();
        assert_eq!(s.total.count, 1000);
        assert_eq!(s.total.max_us, 1000);
        // HDR estimates: never below the exact percentile, ≤ 2⁻⁵ above.
        assert!(s.total.p50_us >= 500 && s.total.p50_us <= 516, "{s:?}");
        assert!(s.total.p95_us >= 950 && s.total.p95_us <= 980, "{s:?}");
        assert!(s.total.p99_us >= 990 && s.total.p99_us <= 1000, "{s:?}");
        assert!(s.total.p999_us >= 999 && s.total.p999_us <= 1000, "{s:?}");
        assert!(s.total.mean_us >= 400 && s.total.mean_us <= 600, "{s:?}");
        assert_eq!(s.queue_wait.count, 1);
        assert_eq!(s.queue_wait.max_us, 7);
        assert_eq!(s.exec, PriorityLatency::default());
        assert_eq!(s.backoff, PriorityLatency::default());
    }

    #[test]
    fn empty_lane_is_default() {
        let lanes = LaneHistograms::new("e.total", "e.queue", "e.exec", "e.backoff");
        assert_eq!(lanes.snapshot(), LaneLatencies::default());
    }

    #[test]
    fn hooks_register_every_lane_histogram() {
        let hooks = trace_hooks();
        for i in 0..3 {
            assert!(hooks.latency[i].name().starts_with("serve.latency_"));
            assert!(hooks.queue_wait[i].name().starts_with("serve.queue_wait_"));
            assert!(hooks.exec[i].name().starts_with("serve.exec_"));
            assert!(hooks.backoff[i].name().starts_with("serve.backoff_"));
            assert!(hooks.lane_depth[i].name().starts_with("serve.queue_depth_"));
        }
    }
}
