//! MatrixMarket-format I/O (dense `array` and sparse `coordinate`
//! flavours, `real general`/`symmetric`) — the lingua franca for
//! exchanging test matrices with other linear-algebra stacks.

use crate::Matrix;
use std::fmt::Write as _;
use std::str::FromStr;

/// Errors while parsing a MatrixMarket stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MmError {
    /// Missing or malformed `%%MatrixMarket` header.
    BadHeader(String),
    /// Unsupported qualifier (e.g. complex/pattern).
    Unsupported(String),
    /// Malformed size or entry line.
    BadLine(usize, String),
    /// Fewer entries than the size line promised.
    Truncated,
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::BadHeader(s) => write!(f, "bad MatrixMarket header: {s}"),
            MmError::Unsupported(s) => write!(f, "unsupported MatrixMarket qualifier: {s}"),
            MmError::BadLine(n, s) => write!(f, "malformed line {n}: {s}"),
            MmError::Truncated => write!(f, "stream ended before all entries were read"),
        }
    }
}

impl std::error::Error for MmError {}

/// Renders a dense matrix in MatrixMarket `array real general` format.
pub fn write_matrix_market(a: &Matrix) -> String {
    let mut out = String::new();
    out.push_str("%%MatrixMarket matrix array real general\n");
    out.push_str("% written by ft-matrix\n");
    let _ = writeln!(out, "{} {}", a.rows(), a.cols());
    // Array format is column-major — matching our storage.
    for j in 0..a.cols() {
        for i in 0..a.rows() {
            let _ = writeln!(out, "{:e}", a[(i, j)]);
        }
    }
    out
}

/// Parses a MatrixMarket stream into a dense [`Matrix`].
///
/// Supports `array` (dense, column-major) and `coordinate` (sparse,
/// 1-based indices) formats with `real`/`integer` fields and
/// `general`/`symmetric` symmetry.
pub fn read_matrix_market(text: &str) -> Result<Matrix, MmError> {
    let mut lines = text.lines().enumerate();

    let (_, header) = lines
        .next()
        .ok_or_else(|| MmError::BadHeader("empty input".into()))?;
    let toks: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_lowercase())
        .collect();
    if toks.len() < 5 || toks[0] != "%%matrixmarket" || toks[1] != "matrix" {
        return Err(MmError::BadHeader(header.to_string()));
    }
    let format = toks[2].as_str();
    let field = toks[3].as_str();
    let symmetry = toks[4].as_str();
    if !matches!(format, "array" | "coordinate") {
        return Err(MmError::Unsupported(format.into()));
    }
    if !matches!(field, "real" | "integer" | "double") {
        return Err(MmError::Unsupported(field.into()));
    }
    if !matches!(symmetry, "general" | "symmetric") {
        return Err(MmError::Unsupported(symmetry.into()));
    }

    // Skip comments, find the size line.
    let mut size_line = None;
    for (n, line) in lines.by_ref() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some((n, t.to_string()));
        break;
    }
    let (size_no, size) = size_line.ok_or(MmError::Truncated)?;
    let dims: Vec<usize> = size
        .split_whitespace()
        .map(usize::from_str)
        .collect::<Result<_, _>>()
        .map_err(|_| MmError::BadLine(size_no + 1, size.clone()))?;

    match format {
        "array" => {
            if dims.len() != 2 {
                return Err(MmError::BadLine(size_no + 1, size));
            }
            let (rows, cols) = (dims[0], dims[1]);
            let mut m = Matrix::zeros(rows, cols);
            let mut idx = 0usize;
            let needed = if symmetry == "symmetric" {
                // Lower triangle, column by column.
                cols * (cols + 1) / 2
            } else {
                rows * cols
            };
            let mut positions: Vec<(usize, usize)> = Vec::with_capacity(needed);
            if symmetry == "symmetric" {
                for j in 0..cols {
                    for i in j..rows {
                        positions.push((i, j));
                    }
                }
            } else {
                for j in 0..cols {
                    for i in 0..rows {
                        positions.push((i, j));
                    }
                }
            }
            for (n, line) in lines {
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                let v: f64 = t
                    .parse()
                    .map_err(|_| MmError::BadLine(n + 1, t.to_string()))?;
                if idx >= positions.len() {
                    return Err(MmError::BadLine(n + 1, "too many entries".into()));
                }
                let (i, j) = positions[idx];
                m[(i, j)] = v;
                if symmetry == "symmetric" && i != j {
                    m[(j, i)] = v;
                }
                idx += 1;
            }
            if idx != positions.len() {
                return Err(MmError::Truncated);
            }
            Ok(m)
        }
        _ => {
            // coordinate
            if dims.len() != 3 {
                return Err(MmError::BadLine(size_no + 1, size));
            }
            let (rows, cols, nnz) = (dims[0], dims[1], dims[2]);
            let mut m = Matrix::zeros(rows, cols);
            let mut count = 0usize;
            for (n, line) in lines {
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                let parts: Vec<&str> = t.split_whitespace().collect();
                if parts.len() != 3 {
                    return Err(MmError::BadLine(n + 1, t.to_string()));
                }
                let i: usize = parts[0]
                    .parse()
                    .map_err(|_| MmError::BadLine(n + 1, t.to_string()))?;
                let j: usize = parts[1]
                    .parse()
                    .map_err(|_| MmError::BadLine(n + 1, t.to_string()))?;
                let v: f64 = parts[2]
                    .parse()
                    .map_err(|_| MmError::BadLine(n + 1, t.to_string()))?;
                if i == 0 || j == 0 || i > rows || j > cols {
                    return Err(MmError::BadLine(n + 1, t.to_string()));
                }
                m[(i - 1, j - 1)] = v;
                if symmetry == "symmetric" && i != j {
                    m[(j - 1, i - 1)] = v;
                }
                count += 1;
            }
            if count != nnz {
                return Err(MmError::Truncated);
            }
            Ok(m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip() {
        let a = crate::random::uniform(7, 5, 3);
        let text = write_matrix_market(&a);
        let b = read_matrix_market(&text).unwrap();
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        assert!(crate::max_abs_diff(&a, &b) < 1e-12);
    }

    #[test]
    fn coordinate_parse() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 3\n\
                    1 1 2.5\n\
                    2 3 -1.0\n\
                    3 2 4.0\n";
        let m = read_matrix_market(text).unwrap();
        assert_eq!(m[(0, 0)], 2.5);
        assert_eq!(m[(1, 2)], -1.0);
        assert_eq!(m[(2, 1)], 4.0);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn symmetric_coordinate_mirrors() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 1.0\n\
                    2 1 5.0\n";
        let m = read_matrix_market(text).unwrap();
        assert_eq!(m[(1, 0)], 5.0);
        assert_eq!(m[(0, 1)], 5.0);
    }

    #[test]
    fn symmetric_array_lower_triangle() {
        // 2x2 symmetric array: entries (1,1), (2,1), (2,2).
        let text = "%%MatrixMarket matrix array real symmetric\n\
                    2 2\n\
                    1.0\n\
                    3.0\n\
                    2.0\n";
        let m = read_matrix_market(text).unwrap();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 1)], 2.0);
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            read_matrix_market("nonsense"),
            Err(MmError::BadHeader(_))
        ));
        assert!(matches!(
            read_matrix_market("%%MatrixMarket matrix array complex general\n1 1\n1.0\n"),
            Err(MmError::Unsupported(_))
        ));
        assert!(matches!(
            read_matrix_market("%%MatrixMarket matrix array real general\n2 2\n1.0\n"),
            Err(MmError::Truncated)
        ));
        assert!(matches!(
            read_matrix_market("%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n"),
            Err(MmError::BadLine(..))
        ));
    }
}
