//! Detection threshold policy (paper §IV-C): "a value larger than the
//! machine epsilon by 2 to 3 orders of magnitude", scaled to the data.

use ft_matrix::Matrix;

/// How the `|Sre − Sce| > threshold` comparison is scaled.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ThresholdPolicy {
    /// Absolute threshold (caller-chosen units).
    Absolute(f64),
    /// `factor · ε · n · ‖A‖₁` computed from the input matrix — the
    /// default, with `factor = 100` (two orders above ε as the paper
    /// recommends, times the natural `n‖A‖₁` magnitude of the sums).
    Scaled {
        /// Multiples of machine epsilon.
        factor: f64,
    },
}

impl Default for ThresholdPolicy {
    fn default() -> Self {
        ThresholdPolicy::Scaled { factor: 100.0 }
    }
}

impl ThresholdPolicy {
    /// Resolves the policy against the input matrix.
    pub fn resolve(&self, a: &Matrix) -> f64 {
        match *self {
            ThresholdPolicy::Absolute(v) => {
                assert!(v > 0.0, "threshold must be positive");
                v
            }
            ThresholdPolicy::Scaled { factor } => {
                let n = a.rows() as f64;
                let scale = (n * a.one_norm()).max(1.0);
                factor * f64::EPSILON * scale
            }
        }
    }

    /// NaN-safe exceedance test: a non-finite difference (e.g. from a
    /// bit flip that produced Inf/NaN) always counts as a detection.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // deliberate: NaN must count as exceeded
    pub fn exceeded(diff: f64, threshold: f64) -> bool {
        !(diff.abs() <= threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_threshold_grows_with_size_and_magnitude() {
        let a1 = ft_matrix::random::uniform(64, 64, 1);
        let a2 = ft_matrix::random::uniform(256, 256, 1);
        let p = ThresholdPolicy::default();
        assert!(p.resolve(&a2) > p.resolve(&a1));
        let mut big = a1.clone();
        big.scale(1e6);
        assert!(p.resolve(&big) > 1e5 * p.resolve(&a1));
    }

    #[test]
    fn absolute_passthrough() {
        let a = Matrix::identity(4);
        assert_eq!(ThresholdPolicy::Absolute(1e-8).resolve(&a), 1e-8);
    }

    #[test]
    fn exceeded_is_nan_safe() {
        assert!(ThresholdPolicy::exceeded(f64::NAN, 1e-8));
        assert!(ThresholdPolicy::exceeded(f64::INFINITY, 1e-8));
        assert!(ThresholdPolicy::exceeded(1e-7, 1e-8));
        assert!(!ThresholdPolicy::exceeded(1e-9, 1e-8));
        assert!(!ThresholdPolicy::exceeded(-1e-9, 1e-8));
    }

    #[test]
    fn default_is_well_above_eps() {
        let a = ft_matrix::random::uniform(100, 100, 2);
        let t = ThresholdPolicy::default().resolve(&a);
        assert!(t > 100.0 * f64::EPSILON);
        assert!(t < 1.0, "but far below data magnitude");
    }
}
