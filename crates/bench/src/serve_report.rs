//! `ft-serve` summaries → bench records.
//!
//! Converts a load-generator run ([`ft_serve::LoadgenSummary`]) and a
//! service snapshot ([`ft_serve::ServiceStats`]) into the flat
//! [`Record`]s the JSON emitter understands, so `BENCH_serve.json` sits
//! next to the kernel benches with the same shape and tooling.

use crate::report::Record;
use ft_serve::{JobStatus, LoadgenSummary, Priority, PriorityLatency, ServiceStats};

fn latency_fields(r: Record, prefix: &str, l: &PriorityLatency) -> Record {
    r.int(&format!("{prefix}_count"), l.count)
        .int(&format!("{prefix}_mean_us"), l.mean_us)
        .int(&format!("{prefix}_p50_us"), l.p50_us)
        .int(&format!("{prefix}_p95_us"), l.p95_us)
        .int(&format!("{prefix}_p99_us"), l.p99_us)
        .int(&format!("{prefix}_p999_us"), l.p999_us)
        .int(&format!("{prefix}_max_us"), l.max_us)
}

/// Records for one load-generator run: one `throughput` record with the
/// headline numbers (jobs, wall, throughput, exact percentiles over all
/// completed jobs) plus one `latency` record per priority class that saw
/// traffic.
pub fn loadgen_records(s: &LoadgenSummary) -> Vec<Record> {
    let mut out = Vec::new();
    let completed = s.count(|o| o.status == JobStatus::Completed);
    let failed = s.count(|o| matches!(o.status, JobStatus::Failed(_)));
    let missed = s.count(|o| o.status == JobStatus::DeadlineMissed);
    let canceled = s.count(|o| o.status == JobStatus::Canceled);
    let injected = s.count(|o| o.injected);
    let injected_recovered = s.count(|o| o.injected && o.status == JobStatus::Completed);
    let retried = s.count(|o| o.attempts > 1);

    let head = Record::new()
        .str("record", "throughput")
        .int("clients", s.config.clients as u64)
        .int("jobs", s.config.jobs as u64)
        .int("accepted", s.accepted as u64)
        .int("submit_errors", s.submit_errors as u64)
        .int("lost", s.lost as u64)
        .int("completed", completed as u64)
        .int("failed", failed as u64)
        .int("deadline_missed", missed as u64)
        .int("canceled", canceled as u64)
        .int("injected_fault_jobs", injected as u64)
        .int("injected_fault_jobs_recovered", injected_recovered as u64)
        .int("jobs_retried", retried as u64)
        .int("service_retries", s.service.retries)
        .num("wall_s", s.wall.as_secs_f64())
        .num("throughput_jobs_per_s", s.throughput_jobs_per_s)
        .int("seed", s.config.seed);
    out.push(latency_fields(head, "latency", &s.latency_all));

    for p in Priority::ALL {
        let l = &s.latency[p.index()];
        if l.count == 0 {
            continue;
        }
        let rec = Record::new()
            .str("record", "latency")
            .str("priority", p.name());
        out.push(latency_fields(rec, "latency", l));
    }
    out
}

/// One record summarizing a service statistics snapshot (the counter
/// totals a dashboard would scrape from the `serve.*` registry entries).
pub fn service_records(stats: &ServiceStats) -> Vec<Record> {
    let mut rec = Record::new()
        .str("record", "service_stats")
        .int("submitted", stats.submitted)
        .int("rejected", stats.rejected)
        .int("completed", stats.completed)
        .int("failed", stats.failed)
        .int("retries", stats.retries)
        .int("deadline_missed", stats.deadline_missed)
        .int("canceled", stats.canceled)
        .int("terminal", stats.terminal())
        .int("queue_depth", stats.queue_depth as u64)
        .int("in_flight", stats.in_flight);
    for p in Priority::ALL {
        let l = stats.latency_of(p);
        if l.count == 0 {
            continue;
        }
        rec = latency_fields(rec, p.name(), l);
    }
    vec![rec]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::to_json;
    use ft_serve::{loadgen, LoadgenConfig, Service, ServiceConfig, Shutdown};
    use std::time::Duration;

    #[test]
    fn records_from_a_real_run_are_well_formed() {
        let service = Service::start(ServiceConfig {
            workers: 2,
            queue_capacity: 4,
            ..ServiceConfig::default()
        });
        let cfg = LoadgenConfig {
            clients: 2,
            jobs: 6,
            sizes: vec![16, 24],
            submit_timeout: Duration::from_secs(60),
            ..LoadgenConfig::default()
        };
        let summary = loadgen::run(&service, &cfg);
        let stats = service.shutdown(Shutdown::Drain);

        let mut records = loadgen_records(&summary);
        records.extend(service_records(&stats));
        let json = to_json("serve", &records);
        assert!(json.contains("\"record\": \"throughput\""));
        assert!(json.contains("latency_p999_us"));
        assert!(json.contains("\"record\": \"service_stats\""));
        assert!(json.contains("\"lost\": 0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
