//! The span API and the process-wide event sink.
//!
//! Events land in one mutex-protected vector. That is deliberate: spans in
//! this workspace are *phase*-granular (a panel factorization, a trailing
//! update, a detection episode — tens of events per panel iteration, not
//! per element), so sink contention is negligible next to the kernels the
//! spans surround, and a single ordered vector makes per-run attribution
//! (`mark` / `events_since`) trivial.

use crate::clock::now_us;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One completed span (or simulated-clock interval) in the trace.
#[derive(Clone, Debug)]
pub struct Event {
    /// Dot-separated span name (`ft.panel`, `pool.dispatch`, …).
    pub name: &'static str,
    /// Timeline category: `"wall"` for real monotonic-clock spans,
    /// `"sim"` for simulated-clock events mirrored by `ft-hybrid`.
    pub cat: &'static str,
    /// Optional integer payload (panel start column, task count, …).
    pub arg: Option<i64>,
    /// Recording lane: a process-unique small thread id for wall spans,
    /// the simulator's resource lane for sim events.
    pub tid: u64,
    /// Start, microseconds since the trace epoch (wall) or simulation
    /// start (sim).
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Ambient trace context (job + attempt) at record time, when the
    /// recording thread was working for a service job.
    pub ctx: Option<crate::ctx::TraceCtx>,
}

static EVENTS: Mutex<Vec<Event>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
}

/// A process-unique small id for the calling thread (assigned on first
/// use; stable for the thread's lifetime). Used to attribute wall spans
/// to threads and to filter one run's events out of a shared sink.
pub fn current_tid() -> u64 {
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// RAII span guard: construct via [`crate::span!`]. Records start on
/// creation and pushes one [`Event`] on drop — or does nothing at all
/// when tracing is off at creation time.
pub struct SpanGuard {
    name: &'static str,
    arg: Option<i64>,
    start_us: f64,
    active: bool,
}

impl SpanGuard {
    /// Opens a span named `name` with an optional integer payload. The
    /// guard is live when *anything* is recording — the `FT_TRACE` sink
    /// or the flight recorder; [`crate::recording`] is the single
    /// atomic load both share.
    #[inline]
    pub fn new(name: &'static str, arg: Option<i64>) -> SpanGuard {
        if crate::recording() {
            SpanGuard {
                name,
                arg,
                start_us: now_us(),
                active: true,
            }
        } else {
            SpanGuard {
                name,
                arg,
                start_us: 0.0,
                active: false,
            }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            let end = now_us();
            let dur_us = (end - self.start_us).max(0.0);
            let tid = current_tid();
            if crate::recorder::is_on_raw() {
                crate::recorder::note_span(self.name, self.arg, tid, self.start_us, dur_us);
            }
            if crate::enabled() {
                push(Event {
                    name: self.name,
                    cat: "wall",
                    arg: self.arg,
                    tid,
                    start_us: self.start_us,
                    dur_us,
                    ctx: crate::ctx::current(),
                });
            }
        }
    }
}

fn push(ev: Event) {
    EVENTS.lock().unwrap().push(ev);
}

/// Records one simulated-clock interval (category `"sim"`) on resource
/// lane `lane`. No-op when tracing is off — callers on hot loops should
/// still guard with [`crate::enabled`] to skip argument marshalling.
pub fn record_sim(name: &'static str, lane: u64, start_us: f64, dur_us: f64) {
    if crate::enabled() {
        push(Event {
            name,
            cat: "sim",
            arg: None,
            tid: lane,
            start_us,
            dur_us,
            ctx: None,
        });
    }
}

/// A watermark into the event sink: everything recorded from now on has an
/// index `>=` the returned mark. Pair with [`events_since`] to attribute
/// events to one run in a shared process.
pub fn mark() -> usize {
    EVENTS.lock().unwrap().len()
}

/// Clones the events recorded at or after `mark` (oldest first).
pub fn events_since(mark: usize) -> Vec<Event> {
    let evs = EVENTS.lock().unwrap();
    evs.get(mark..).map(|s| s.to_vec()).unwrap_or_default()
}

/// Number of span events currently in the sink (the quantity the
/// zero-writes-when-off tests pin to zero).
pub fn span_event_count() -> usize {
    EVENTS.lock().unwrap().len()
}

/// Drains the sink, returning every event recorded so far.
pub fn take_events() -> Vec<Event> {
    std::mem::take(&mut *EVENTS.lock().unwrap())
}

/// Aggregate of all events sharing one span name.
#[derive(Clone, Debug)]
pub struct SpanTotal {
    /// Span name.
    pub name: &'static str,
    /// Number of completed spans.
    pub count: u64,
    /// Summed duration, microseconds.
    pub total_us: f64,
}

/// Aggregates `events` by name (order of first appearance preserved).
/// Callers filter by category / tid / prefix first if they need a subset.
pub fn totals(events: &[Event]) -> Vec<SpanTotal> {
    let mut out: Vec<SpanTotal> = Vec::new();
    for ev in events {
        match out.iter_mut().find(|t| t.name == ev.name) {
            Some(t) => {
                t.count += 1;
                t.total_us += ev.dur_us;
            }
            None => out.push(SpanTotal {
                name: ev.name,
                count: 1,
                total_us: ev.dur_us,
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_is_stable_and_nonzero() {
        let a = current_tid();
        let b = current_tid();
        assert_eq!(a, b);
        assert!(a > 0);
        let other = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(a, other, "distinct threads get distinct tids");
    }

    #[test]
    fn totals_aggregate_by_name() {
        let evs = vec![
            Event {
                name: "a",
                cat: "wall",
                arg: None,
                tid: 1,
                start_us: 0.0,
                dur_us: 2.0,
                ctx: None,
            },
            Event {
                name: "b",
                cat: "wall",
                arg: None,
                tid: 1,
                start_us: 2.0,
                dur_us: 1.0,
                ctx: None,
            },
            Event {
                name: "a",
                cat: "wall",
                arg: None,
                tid: 2,
                start_us: 3.0,
                dur_us: 4.0,
                ctx: None,
            },
        ];
        let t = totals(&evs);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].name, "a");
        assert_eq!(t[0].count, 2);
        assert!((t[0].total_us - 6.0).abs() < 1e-12);
        assert_eq!(t[1].count, 1);
    }
}
