//! Criterion bench: Hessenberg reduction variants — unblocked (`gehd2`)
//! vs blocked (`gehrd`) vs the simulated hybrid driver (Algorithm 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ft_fault::FaultPlan;
use ft_hessenberg::{gehrd_hybrid, HybridConfig};
use ft_hybrid::{CostModel, ExecMode, HybridCtx};
use ft_lapack::{gehd2, gehrd, GehrdConfig};

fn bench_gehrd(c: &mut Criterion) {
    let mut group = c.benchmark_group("gehrd");
    group.sample_size(10);
    for &n in &[96usize, 192] {
        let a = ft_matrix::random::uniform(n, n, 7);
        group.throughput(Throughput::Elements((10 * n * n * n / 3) as u64));

        group.bench_with_input(BenchmarkId::new("unblocked", n), &n, |bench, _| {
            bench.iter(|| {
                let mut w = a.clone();
                std::hint::black_box(gehd2(&mut w));
            });
        });
        group.bench_with_input(BenchmarkId::new("blocked_nb32", n), &n, |bench, _| {
            bench.iter(|| {
                let mut w = a.clone();
                std::hint::black_box(gehrd(&mut w, &GehrdConfig { nb: 32, nx: 4 }));
            });
        });
        group.bench_with_input(BenchmarkId::new("hybrid_sim", n), &n, |bench, _| {
            bench.iter(|| {
                let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
                let out = gehrd_hybrid(
                    &a,
                    &HybridConfig { nb: 32 },
                    &mut ctx,
                    &mut FaultPlan::none(),
                );
                std::hint::black_box(out.sim_seconds);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gehrd);
criterion_main!(benches);
