//! FTC001–FTC006, ported from the PR-5 line scanner onto the token
//! stream. Matching on typed tokens (instead of stripped text) makes
//! the old false-positive class — rule-shaped text inside string
//! literals, doc comments, or `#[test]` fns that the line mask missed —
//! structurally impossible: an `unwrap` in a doc comment is trivia, a
//! `counter("…")` in a test string is a `Str` token, and `#[test]`
//! gates its fn through the item pass regardless of line layout.

use super::Analysis;
use crate::lexer::{Tok, TokKind};
use crate::Finding;

/// Runs FTC001–FTC006 over every file.
pub fn run(a: &Analysis<'_>, findings: &mut Vec<Finding>) {
    for fi in 0..a.files.len() {
        run_file(a, fi, findings);
    }
}

fn path_seg(toks: &[Tok], k: usize) -> Option<&str> {
    // For `a :: b` at ident index k of `b`, the segment before it.
    if k >= 2 && toks[k - 1].is_punct("::") && toks[k - 2].kind == TokKind::Ident {
        Some(&toks[k - 2].text)
    } else {
        None
    }
}

fn run_file(a: &Analysis<'_>, fi: usize, findings: &mut Vec<Finding>) {
    let fm = &a.files[fi];
    let rel = fm.rel.as_str();
    let toks = &fm.lexed.toks;
    let lib = super::is_library_path(rel);
    let math = super::is_deterministic_math_path(rel);
    // FTC004 reports once per (line, token kind), like the old scanner.
    let mut ftc004_seen: std::collections::HashSet<(u32, &'static str)> =
        std::collections::HashSet::new();

    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let in_test = a.tok_in_test(fi, k);

        // FTC001 — env access outside the knob module (non-test code).
        if !in_test
            && rel != super::ENV_KNOB
            && path_seg(toks, k) == Some("env")
            && matches!(t.text.as_str(), "var" | "var_os" | "vars")
        {
            findings.push(a.finding(
                fi,
                t.line,
                t.col,
                "FTC001",
                format!("`env::{}` outside `ft_trace::env_knob`", t.text),
                "read configuration through ft_trace::env_knob so every knob \
                 is centralized, documented, and trace-consistent",
            ));
        }

        // FTC002 — thread creation outside the pool (non-test code).
        if !in_test
            && rel != super::POOL
            && path_seg(toks, k) == Some("thread")
            && matches!(t.text.as_str(), "spawn" | "scope" | "Builder")
        {
            findings.push(a.finding(
                fi,
                t.line,
                t.col,
                "FTC002",
                format!("`thread::{}` outside `ft-blas/src/pool.rs`", t.text),
                "run work on the persistent ft-blas pool, or audit the new \
                 thread with a check_allow.toml entry",
            ));
        }

        // FTC003 — unannotated unsafe (all code, tests included).
        if t.text == "unsafe" && !has_safety_annotation(a, fi, t.line) {
            findings.push(a.finding(
                fi,
                t.line,
                t.col,
                "FTC003",
                "`unsafe` without a `// SAFETY:` comment".to_string(),
                "state the proof obligation discharged by this unsafe in a \
                 SAFETY comment directly above it (or a `# Safety` doc section)",
            ));
        }

        // FTC004 — panicking calls in non-test library code.
        if lib && !in_test {
            let prev_dot = k > 0 && toks[k - 1].is_punct(".");
            let next = toks.get(k + 1);
            let hit: Option<(&'static str, &'static str)> = match t.text.as_str() {
                "unwrap" if prev_dot && next.is_some_and(|n| n.is_punct("(")) => {
                    Some(("unwrap", "unwrap()"))
                }
                "expect" if prev_dot && next.is_some_and(|n| n.is_punct("(")) => {
                    Some(("expect", "expect()"))
                }
                "panic" if next.is_some_and(|n| n.is_punct("!")) => Some(("panic", "panic!")),
                _ => None,
            };
            if let Some((kind, shown)) = hit {
                if ftc004_seen.insert((t.line, kind)) {
                    findings.push(a.finding(
                        fi,
                        t.line,
                        t.col,
                        "FTC004",
                        format!("`{shown}` in non-test library code"),
                        "return a Result, degrade gracefully, or audit the abort \
                         with a check_allow.toml entry",
                    ));
                }
            }
        }

        // FTC005 — wall clocks in deterministic math crates (non-test).
        if math && !in_test {
            let is_instant_now = t.text == "now" && path_seg(toks, k) == Some("Instant");
            let is_systemtime = t.text == "SystemTime";
            if is_instant_now || is_systemtime {
                let shown = if is_systemtime {
                    "SystemTime"
                } else {
                    "Instant::now"
                };
                findings.push(a.finding(
                    fi,
                    t.line,
                    t.col,
                    "FTC005",
                    format!("`{shown}` in a deterministic math crate"),
                    "math crates must stay replayable: take timings through \
                     ft_trace (spans or ft_trace::clock) at the call boundary",
                ));
            }
        }

        // FTC006 — metric/span names must be declared (non-test code).
        if !in_test {
            if let Some((kind, name_tok)) = metric_name_at(toks, k) {
                let set = match kind {
                    "counter" => &a.ctx.registry.counters,
                    "gauge" => &a.ctx.registry.gauges,
                    "histogram" => &a.ctx.registry.histograms,
                    _ => &a.ctx.registry.spans,
                };
                if !set.contains(&name_tok.text) {
                    findings.push(a.finding(
                        fi,
                        name_tok.line,
                        name_tok.col,
                        "FTC006",
                        format!(
                            "{kind} name \"{}\" is not declared in the registry",
                            name_tok.text
                        ),
                        "declare the name in crates/trace/src/names.rs (typo'd \
                         names silently report zero)",
                    ));
                }
            }
        }
    }
}

/// For ident index `k`, returns `(kind, name-literal token)` when the
/// tokens form `counter("…"` / `gauge("…"` / `histogram("…"` /
/// `span!("…"` — the registry-lookup call shapes.
pub(crate) fn metric_name_at(toks: &[Tok], k: usize) -> Option<(&'static str, &Tok)> {
    let t = &toks[k];
    let kind = match t.text.as_str() {
        "counter" => "counter",
        "gauge" => "gauge",
        "histogram" => "histogram",
        "span" => "span",
        _ => return None,
    };
    let mut j = k + 1;
    if kind == "span" {
        if !toks.get(j).is_some_and(|t| t.is_punct("!")) {
            return None;
        }
        j += 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_punct("(")) {
        return None;
    }
    j += 1;
    let name = toks.get(j)?;
    if name.kind != TokKind::Str {
        return None;
    }
    Some((kind, name))
}

/// `true` when the contiguous comment/attribute block above `line` (or
/// the line itself) carries a SAFETY annotation. Works on raw source
/// lines: the annotation is prose layout, not token structure.
fn has_safety_annotation(a: &Analysis<'_>, fi: usize, line: u32) -> bool {
    let originals = &a.files[fi].lines;
    let idx = line as usize;
    let carries = |s: &str| s.contains("SAFETY") || s.contains("# Safety");
    if originals.get(idx).is_some_and(|l| carries(l)) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let t = originals[j].trim_start();
        if t.is_empty()
            || t.starts_with("//")
            || t.starts_with("#[")
            || t.starts_with("#![")
            || t.starts_with("*")
        {
            if carries(t) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}
