//! Criterion bench: the fault-tolerance micro-costs in isolation —
//! encoding, extension construction, detection, localization — i.e. the
//! components §V budgets as `O(N²)` — and how localization's fresh
//! row/column sums respond to the threaded backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_blas::{with_backend, Backend};
use ft_hessenberg::encode::{extend_v, extend_y, ExtMatrix};
use ft_hessenberg::recovery::locate_errors;
use std::time::Instant;

fn bench_ft_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("ft_components");
    group.sample_size(20);
    for &n in &[256usize, 512] {
        let a = ft_matrix::random::uniform(n, n, 3);
        group.bench_with_input(BenchmarkId::new("encode", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(ExtMatrix::encode(&a)));
        });

        let ax = ExtMatrix::encode(&a);
        group.bench_with_input(BenchmarkId::new("detect_sre_sce", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(ax.sre() - ax.sce()));
        });
        group.bench_with_input(BenchmarkId::new("locate", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(locate_errors(&ax, 0, 1e-10).errors.len()));
        });

        // Panel-shaped extension construction (nb = 32).
        let nb = 32;
        let m = n - 1;
        let v = ft_matrix::random::uniform(m, nb, 4);
        let t = {
            let mut t = ft_matrix::random::uniform(nb, nb, 5);
            for j in 0..nb {
                for i in j + 1..nb {
                    t[(i, j)] = 0.0;
                }
            }
            t
        };
        let y = ft_matrix::random::uniform(n, nb, 6);
        let seg: Vec<f64> = (0..m).map(|i| i as f64).collect();
        group.bench_with_input(BenchmarkId::new("extend_v", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(extend_v(&v)));
        });
        group.bench_with_input(BenchmarkId::new("extend_y", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(extend_y(&y, &seg, &v, &t)));
        });
    }
    group.finish();
}

/// Localization (fresh masked row/column sums) under the serial vs
/// threaded backend. The fork gate keys off the matrix order, so the
/// non-smoke size is chosen past `ft_blas::backend::PARALLEL_MIN_VOLUME`
/// (order² element-operations); the smoke size stays serial under every
/// backend and just exercises the path.
fn bench_locate_backend(c: &mut Criterion) {
    let smoke = ft_bench::smoke();
    let n = if smoke { 256usize } else { 1536usize };
    let a = ft_matrix::random::uniform(n, n, 9);
    let ax = ExtMatrix::encode(&a);
    let mut group = c.benchmark_group("locate_backend");
    group.sample_size(10);
    for backend in [Backend::Serial, Backend::Threaded(4)] {
        let label = match backend {
            Backend::Serial => "serial".to_string(),
            Backend::Threaded(t) => format!("threaded{t}"),
        };
        group.bench_with_input(BenchmarkId::new(label, n), &n, |bench, _| {
            bench.iter(|| {
                with_backend(backend, || {
                    std::hint::black_box(locate_errors(&ax, 0, 1e-10).errors.len())
                })
            });
        });
    }
    group.finish();
    let iters = if smoke { 1 } else { 5 };
    let time = |backend: Backend| {
        let t0 = Instant::now();
        for _ in 0..iters {
            with_backend(backend, || {
                std::hint::black_box(locate_errors(&ax, 0, 1e-10).errors.len())
            });
        }
        t0.elapsed().as_secs_f64() / iters as f64
    };
    let ts = time(Backend::Serial);
    let tt = time(Backend::Threaded(4));
    println!(
        "locate backend speedup @ n={n}: serial {:.2} ms, threaded(4) {:.2} ms -> {:.2}x",
        ts * 1e3,
        tt * 1e3,
        ts / tt
    );
}

criterion_group!(benches, bench_ft_components, bench_locate_backend);
criterion_main!(benches);
