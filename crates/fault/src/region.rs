//! The Area 1/2/3 partition of the matrix during the factorization
//! (paper Figure 2(a)) and the B/M/E moment convention of Tables II/III.

use rand::Rng;

/// Where a matrix element lives relative to the factorization frontier
/// after `k` columns have been reduced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Region {
    /// Upper part of the trailing matrix (rows above the frontier,
    /// columns at or right of it). A fault here propagates **row-wise**:
    /// the row is polluted in the final `H` (Fig. 2(c)).
    Area1,
    /// Lower trailing matrix (the active sub-problem). A fault here is
    /// read by every subsequent panel and update: it pollutes nearly the
    /// whole trailing result (Fig. 2(d)) — the worst case.
    Area2,
    /// Finished Householder vectors (`Q` storage, below the sub-diagonal
    /// of reduced columns, resident on the host). Never read again by the
    /// factorization: the fault stays a single wrong element (Fig. 2(b)).
    Area3,
    /// Finished `H` entries (on/above the sub-diagonal of reduced
    /// columns). Also never read again; like Area 3 but it corrupts `H`
    /// rather than `Q`.
    FinishedH,
}

impl Region {
    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            Region::Area1 => "Area 1",
            Region::Area2 => "Area 2",
            Region::Area3 => "Area 3",
            Region::FinishedH => "H done",
        }
    }
}

/// Classifies element `(row, col)` of an `n × n` matrix when `k` columns
/// have been fully reduced (`k` = iterations-completed × `nb`).
///
/// Detection-frontier contract (relied on by the FT driver's `detect`):
/// the per-iteration `Sre − Sce` aggregates see a fault iff its column is
/// at or right of the frontier *at injection time* — i.e. anywhere in the
/// in-flight panel (including below its sub-diagonal) or the trailing
/// matrix. [`Region::Area3`] and [`Region::FinishedH`] faults land in
/// data the aggregates no longer cover; they are repaired by the
/// end-of-run `Q`/whole-matrix checks with **no rollback**. A fault
/// injected after an iteration's detection point surfaces one iteration
/// later, after the updates have run over the inconsistent data.
pub fn classify(n: usize, k: usize, row: usize, col: usize) -> Region {
    assert!(row < n && col < n, "classify: ({row},{col}) out of {n}x{n}");
    if col >= k {
        if row < k {
            Region::Area1
        } else {
            Region::Area2
        }
    } else if row > col + 1 {
        Region::Area3
    } else {
        Region::FinishedH
    }
}

/// The paper's B/M/E convention: when during the factorization the fault
/// strikes (Tables II and III columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Moment {
    /// Right after the first iteration.
    Beginning,
    /// Halfway through the iterations.
    Middle,
    /// Just before the last iteration.
    End,
}

impl Moment {
    /// Maps the moment to a 0-based iteration index out of `iters` total
    /// panel iterations; the fault is injected at that iteration's end.
    pub fn iteration(self, iters: usize) -> usize {
        match self {
            Moment::Beginning => 0,
            Moment::Middle => iters / 2,
            Moment::End => iters.saturating_sub(2),
        }
        .min(iters.saturating_sub(1))
    }

    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            Moment::Beginning => "B",
            Moment::Middle => "M",
            Moment::End => "E",
        }
    }

    /// All three moments.
    pub const ALL: [Moment; 3] = [Moment::Beginning, Moment::Middle, Moment::End];
}

/// Samples a uniformly random `(row, col)` inside `region` given the
/// frontier `k`; returns `None` when the region is empty (e.g. Area 3
/// before any column has been reduced).
pub fn sample_in_region(
    n: usize,
    k: usize,
    region: Region,
    rng: &mut impl Rng,
) -> Option<(usize, usize)> {
    match region {
        Region::Area1 => {
            if k == 0 || k >= n {
                return None;
            }
            Some((rng.gen_range(0..k), rng.gen_range(k..n)))
        }
        Region::Area2 => {
            if k >= n {
                return None;
            }
            Some((rng.gen_range(k..n), rng.gen_range(k..n)))
        }
        Region::Area3 => {
            // Columns 0..k with rows col+2..n; column c usable iff c+2 < n.
            let usable: Vec<usize> = (0..k.min(n)).filter(|&c| c + 2 < n).collect();
            if usable.is_empty() {
                return None;
            }
            let col = usable[rng.gen_range(0..usable.len())];
            Some((rng.gen_range(col + 2..n), col))
        }
        Region::FinishedH => {
            if k == 0 {
                return None;
            }
            let col = rng.gen_range(0..k);
            Some((rng.gen_range(0..(col + 2).min(n)), col))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The paper's worked example: N = 158, nb = 32, fault after
    /// iteration 1 (k = 32).
    #[test]
    fn paper_fig2_examples() {
        let (n, k) = (158, 32);
        assert_eq!(classify(n, k, 53, 16), Region::Area3);
        assert_eq!(classify(n, k, 31, 127), Region::Area1);
        assert_eq!(classify(n, k, 63, 127), Region::Area2);
    }

    #[test]
    fn finished_h_band() {
        let (n, k) = (10, 4);
        assert_eq!(classify(n, k, 0, 2), Region::FinishedH); // above diag
        assert_eq!(classify(n, k, 3, 2), Region::FinishedH); // sub-diagonal
        assert_eq!(classify(n, k, 4, 2), Region::Area3); // below sub-diagonal
    }

    #[test]
    fn boundaries() {
        let (n, k) = (8, 4);
        assert_eq!(classify(n, k, 3, 4), Region::Area1); // last row above frontier
        assert_eq!(classify(n, k, 4, 4), Region::Area2); // frontier corner
        assert_eq!(classify(n, k, 7, 3), Region::Area3); // last reduced col
    }

    #[test]
    fn moments_map_into_range() {
        for iters in 1..20 {
            for m in Moment::ALL {
                let it = m.iteration(iters);
                assert!(it < iters, "{m:?} of {iters} -> {it}");
            }
        }
        assert_eq!(Moment::Beginning.iteration(10), 0);
        assert_eq!(Moment::Middle.iteration(10), 5);
        assert_eq!(Moment::End.iteration(10), 8);
    }

    #[test]
    fn sampling_lands_in_region() {
        let mut rng = StdRng::seed_from_u64(1);
        let (n, k) = (50, 20);
        for region in [
            Region::Area1,
            Region::Area2,
            Region::Area3,
            Region::FinishedH,
        ] {
            for _ in 0..200 {
                let (r, c) = sample_in_region(n, k, region, &mut rng).unwrap();
                assert_eq!(classify(n, k, r, c), region, "({r},{c}) for {region:?}");
            }
        }
    }

    #[test]
    fn empty_regions_yield_none() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(sample_in_region(10, 0, Region::Area1, &mut rng), None);
        assert_eq!(sample_in_region(10, 0, Region::Area3, &mut rng), None);
        assert_eq!(sample_in_region(10, 0, Region::FinishedH, &mut rng), None);
        // Area 2 exists even at k = 0 (whole matrix).
        assert!(sample_in_region(10, 0, Region::Area2, &mut rng).is_some());
    }
}
