//! The completion latch used by [`crate::pool`]'s scoped dispatch.
//!
//! A [`Latch`] is shared between a dispatching caller and the `n` tasks
//! it hands to pool workers: each task calls [`Latch::complete`] exactly
//! once (carrying its panic payload, if it had one), and the caller
//! blocks in [`Latch::wait`] until all `n` completions have arrived. The
//! soundness of the pool's lifetime erasure rests entirely on this
//! wait-before-return discipline, so the latch is the one pool component
//! that is model-checked: `tests/loom_latch.rs` explores every
//! interleaving of racing completions and the waiting caller under
//! `RUSTFLAGS="--cfg loom"` (see DESIGN.md §11).

use crate::sync::{Condvar, Mutex};
use std::any::Any;

/// Completion latch: counts down from `n`, carrying the first panic
/// observed across the completing tasks.
pub struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Latch {
    /// A latch awaiting `count` completions.
    pub fn new(count: usize) -> Latch {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Records one task completion, with its panic payload if it
    /// unwound. The first recorded panic wins; the waiter is woken when
    /// the last completion arrives.
    pub fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        if let Some(p) = panic {
            let mut slot = self.panic.lock().unwrap();
            if slot.is_none() {
                *slot = Some(p);
            }
        }
        let mut remaining = self.remaining.lock().unwrap();
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    /// `true` once every expected completion has arrived; never blocks
    /// beyond the internal mutex.
    pub fn is_resolved(&self) -> bool {
        *self.remaining.lock().unwrap() == 0
    }

    /// Blocks until every expected completion has arrived.
    pub fn wait(&self) {
        let mut remaining = self.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = self.done.wait(remaining).unwrap();
        }
    }

    /// Takes the first panic payload recorded by [`Latch::complete`], if
    /// any. Call after [`Latch::wait`] to re-raise task panics.
    pub fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().unwrap().take()
    }
}
