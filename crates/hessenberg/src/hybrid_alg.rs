//! Algorithm 2 of the paper: the (fault-prone) MAGMA-style hybrid
//! Hessenberg reduction on the simulated platform.
//!
//! Division of labour per panel iteration, as in MAGMA's `dgehrd`:
//!
//! 1. the lower part of the next panel is copied device→host;
//! 2. the host factorizes the panel (`MAGMA_DLAHR2`); the large
//!    per-column `Y = A·v` GEMVs are charged to the device, matching
//!    MAGMA's split of `dlahr2`;
//! 3. `V`/`T` go host→device and the device applies the right update to
//!    `M` (the rows above the panel);
//! 4. the finished `nb × nb` block of `H` is copied device→host
//!    **asynchronously** on a second stream (Algorithm 2 line 6, shown in
//!    red in the paper), overlapping with
//! 5. the right update to `G` and the block left update to the trailing
//!    matrix on the device.
//!
//! Fault hooks fire at iteration boundaries so the propagation study of
//! Figure 2 can corrupt the working matrix mid-factorization.

use ft_fault::{FaultPlan, Phase};
use ft_hybrid::{ExecMode, HybridCtx, OpClass, StreamId, Work};
use ft_lapack::{lahr2, HessFactorization};
use ft_matrix::Matrix;

/// Configuration for the hybrid driver.
#[derive(Clone, Copy, Debug)]
pub struct HybridConfig {
    /// Panel width.
    pub nb: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig { nb: 32 }
    }
}

/// Result of a hybrid factorization run.
#[derive(Debug)]
pub struct HybridOutcome {
    /// The factorization (packed storage + `tau`); `None` in
    /// [`ExecMode::TimingOnly`].
    pub result: Option<HessFactorization>,
    /// Simulated makespan in seconds.
    pub sim_seconds: f64,
    /// Simulated per-resource statistics.
    pub stats: ft_hybrid::ExecStats,
    /// Matrix dimension (for GFLOP/s reporting).
    pub n: usize,
}

impl HybridOutcome {
    /// Simulated GFLOP/s against the nominal `10/3·n³` flops, via the
    /// shared [`ft_blas::gehrd_gflops`] helper.
    pub fn gflops(&self) -> f64 {
        ft_blas::gehrd_gflops(self.n, self.sim_seconds)
    }
}

/// Host/device flop split of one panel factorization, mirroring MAGMA's
/// `dlahr2`: column updates + reflector generation on the host, the big
/// `Y(:, j) = A·v_j` GEMV on the device.
pub(crate) fn panel_costs(n: usize, k: usize, ib: usize) -> (f64, f64) {
    let m = (n - k - 1) as f64;
    let mut host = 0.0;
    let mut dev_gemv = 0.0;
    for j in 0..ib {
        let jf = j as f64;
        // right update (2mj) + left update (≈4mj + j²) + larfg (3m) +
        // T/Y recurrences (≈4mj).
        host += 10.0 * m * jf + jf * jf + 3.0 * m;
        let trailing_cols = (n - k - j - 1) as f64;
        dev_gemv += 2.0 * m * trailing_cols;
    }
    // Y top rows: (k+1) × m × ib GEMM-ish — charge to the device GEMV
    // class (computed on the device in MAGMA).
    dev_gemv += 2.0 * (k + 1) as f64 * m * ib as f64;
    (host, dev_gemv)
}

/// Runs Algorithm 2. `plan` supplies fault injections (use
/// [`FaultPlan::none`] for clean runs). In [`ExecMode::TimingOnly`] no
/// arithmetic is performed and faults are consumed without effect.
pub fn gehrd_hybrid(
    a: &Matrix,
    cfg: &HybridConfig,
    ctx: &mut HybridCtx,
    plan: &mut FaultPlan,
) -> HybridOutcome {
    assert!(a.is_square(), "gehrd_hybrid: matrix must be square");
    let n = a.rows();
    let nb = cfg.nb.max(1);
    let s0 = StreamId(0);
    let s1 = StreamId(1);

    let mut work = match ctx.mode() {
        ExecMode::Full => Some(a.clone()),
        ExecMode::TimingOnly => None,
    };
    let mut tau = vec![0.0f64; n.saturating_sub(2)];

    // Transfer the input matrix to the device (Algorithm 2 line 1).
    ctx.h2d(s0, n * n * 8, || ());

    let total = n.saturating_sub(2);
    let mut k = 0;
    let mut iter = 0usize;
    while k < total {
        let ib = nb.min(total - k);
        let m = n - k - 1;
        let ntrail = n - k - ib;

        // -- fault hook: iteration boundary ------------------------------
        match &mut work {
            Some(w) => {
                plan.apply_due(iter, Phase::IterationStart, w);
            }
            None => {
                plan.consume_due(iter, Phase::IterationStart);
            }
        }

        // (1) panel to host (Algorithm 2 line 3).
        ctx.d2h(s0, (n - k) * ib * 8, || ());
        ctx.sync_stream(s0);

        // (2) panel factorization (line 4): host + device GEMV split.
        let (host_flops, dev_gemv_flops) = panel_costs(n, k, ib);
        let panel = ctx.host(OpClass::HostPanel, Work::Flops(host_flops), || {
            lahr2(work.as_mut().unwrap(), k, ib)
        });
        ctx.device(s0, OpClass::DeviceGemv, Work::Flops(dev_gemv_flops), || ());
        // per-column v/y round trips inside the hybrid dlahr2
        ctx.h2d(s0, m * ib * 8, || ());
        ctx.d2h(s0, m * ib * 8, || ());

        if let Some(p) = &panel {
            tau[k..k + ib].copy_from_slice(&p.tau);
        }

        // (3) V and T to the device for the block updates.
        ctx.h2d(s0, (m * ib + ib * ib) * 8, || ());

        // Right update to M's panel columns (line 5): rows above the panel.
        if ib > 1 {
            ctx.device(
                s0,
                OpClass::DeviceGemm,
                Work::gemm(k + 1, ib - 1, ib),
                || {
                    let p = panel.as_ref().unwrap();
                    let w = work.as_mut().unwrap();
                    ft_blas::gemm(
                        ft_blas::Trans::No,
                        ft_blas::Trans::Yes,
                        -1.0,
                        &p.y.view(0, 0, k + 1, ib),
                        &p.v.view(0, 0, ib - 1, ib),
                        1.0,
                        &mut w.view_mut(0, k + 1, k + 1, ib - 1),
                    );
                },
            );
        }

        // (4) async copy-back of the finished block (line 6) on stream 1,
        // overlapped with the trailing updates on stream 0.
        ctx.stream_wait_stream(s1, s0);
        ctx.d2h(s1, (k + 1 + ib) * ib * 8, || ());

        if ntrail > 0 {
            // (5) right update to G (line 7): all rows × trailing columns.
            ctx.device(s0, OpClass::DeviceGemm, Work::gemm(n, ntrail, ib), || {
                let p = panel.as_ref().unwrap();
                let w = work.as_mut().unwrap();
                ft_blas::gemm(
                    ft_blas::Trans::No,
                    ft_blas::Trans::Yes,
                    -1.0,
                    &p.y.as_view(),
                    &p.v.view(ib - 1, 0, m - ib + 1, ib),
                    1.0,
                    &mut w.view_mut(0, k + ib, n, ntrail),
                );
            });

            // Left update (line 8): W = VᵀA, W = TᵀW, A −= V·W.
            let left_flops = (4.0 * m as f64 + ib as f64) * ntrail as f64 * ib as f64;
            ctx.device(s0, OpClass::DeviceGemm, Work::Flops(left_flops), || {
                let p = panel.as_ref().unwrap();
                let w = work.as_mut().unwrap();
                ft_lapack::larfb(
                    ft_blas::Side::Left,
                    ft_blas::Trans::Yes,
                    &p.v.as_view(),
                    &p.t.as_view(),
                    &mut w.view_mut(k + 1, k + ib, m, ntrail),
                );
            });
        }

        k += ib;
        iter += 1;
    }

    ctx.sync_all();
    let result = work.map(|packed| HessFactorization { packed, tau });
    HybridOutcome {
        result,
        sim_seconds: ctx.elapsed(),
        stats: ctx.stats().clone(),
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_hybrid::CostModel;
    use ft_lapack::{gehrd, GehrdConfig};

    fn full_ctx() -> HybridCtx {
        HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2)
    }

    #[test]
    fn matches_cpu_blocked_gehrd() {
        let n = 40;
        let a = ft_matrix::random::uniform(n, n, 61);
        let mut ctx = full_ctx();
        let out = gehrd_hybrid(
            &a,
            &HybridConfig { nb: 8 },
            &mut ctx,
            &mut FaultPlan::none(),
        );
        let f = out.result.unwrap();

        let mut cpu = a.clone();
        let cpu_tau = gehrd(
            &mut cpu,
            &GehrdConfig {
                nb: 8,
                nx: 1,
                lookahead: false,
            },
        );
        ft_matrix::assert_matrix_eq(&f.packed, &cpu, 1e-11, "hybrid vs CPU packed");
        for (x, y) in f.tau.iter().zip(&cpu_tau) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn residuals_are_backward_stable() {
        let n = 64;
        let a = ft_matrix::random::uniform(n, n, 62);
        let mut ctx = full_ctx();
        let out = gehrd_hybrid(
            &a,
            &HybridConfig { nb: 16 },
            &mut ctx,
            &mut FaultPlan::none(),
        );
        let f = out.result.unwrap();
        let r = ft_lapack::gehrd::factorization_residual(&a, &f.q(), &f.h());
        assert!(r < 1e-15, "residual {r}");
    }

    #[test]
    fn timing_only_costs_match_full_mode() {
        let n = 48;
        let a = ft_matrix::random::uniform(n, n, 63);
        let cfg = HybridConfig { nb: 8 };
        let mut cf = full_ctx();
        let full = gehrd_hybrid(&a, &cfg, &mut cf, &mut FaultPlan::none());
        let mut ct = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::TimingOnly, 2);
        let timing = gehrd_hybrid(&a, &cfg, &mut ct, &mut FaultPlan::none());
        assert!(timing.result.is_none());
        assert!(
            (full.sim_seconds - timing.sim_seconds).abs() < 1e-12,
            "simulated time must be mode-independent: {} vs {}",
            full.sim_seconds,
            timing.sim_seconds
        );
    }

    #[test]
    fn injected_fault_corrupts_result() {
        let n = 48;
        let a = ft_matrix::random::uniform(n, n, 64);
        let cfg = HybridConfig { nb: 8 };

        let mut ctx = full_ctx();
        let clean = gehrd_hybrid(&a, &cfg, &mut ctx, &mut FaultPlan::none())
            .result
            .unwrap();

        let mut plan = FaultPlan::one(1, ft_fault::Fault::add(20, 30, 1.0));
        let mut ctx2 = full_ctx();
        let dirty = gehrd_hybrid(&a, &cfg, &mut ctx2, &mut plan).result.unwrap();
        assert_eq!(plan.applied().len(), 1);
        assert!(
            ft_matrix::max_abs_diff(&clean.packed, &dirty.packed) > 1e-3,
            "fault must visibly corrupt the factorization"
        );
    }

    #[test]
    fn gflops_increase_with_size() {
        // The hybrid pipeline should show the paper's scaling shape:
        // larger problems amortize panel/transfer latency.
        let mut rates = vec![];
        for &n in &[128usize, 256, 512] {
            let a = Matrix::zeros(n, n);
            let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::TimingOnly, 2);
            let out = gehrd_hybrid(
                &a,
                &HybridConfig { nb: 32 },
                &mut ctx,
                &mut FaultPlan::none(),
            );
            rates.push(out.gflops());
        }
        assert!(rates[1] > rates[0] && rates[2] > rates[1], "{rates:?}");
    }
}
