//! The workspace's one sanctioned monotonic clock.
//!
//! Deterministic math crates (`ft-matrix`, `ft-blas`, `ft-lapack`,
//! `ft-hessenberg`) never read `std::time` directly — that is `ft-check`
//! rule FTC005, and it is what keeps their numerics replayable and their
//! timing attribution consistent: every duration in the system, span or
//! report, is measured against the *same* trace epoch, so a report's
//! wall-clock and its span decomposition can be compared without clock
//! skew. Callers that need a coarse elapsed time (e.g. the FT driver's
//! `wall_seconds` report field) use [`Stopwatch`]; everything finer goes
//! through spans.
//!
//! This module is compiled unconditionally — it does not depend on the
//! `enabled` feature, so reports keep real timings even in no-trace
//! builds.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the process's trace epoch (the first clock read
/// anywhere in `ft-trace`). Monotonic, f64 for direct use in [`Event`]
/// timestamps.
///
/// [`Event`]: crate::Event
pub fn now_us() -> f64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64() * 1e6
}

/// A started stopwatch against the trace epoch. The way math crates
/// measure coarse wall-clock without touching `std::time`.
///
/// ```
/// let sw = ft_trace::clock::Stopwatch::start();
/// // ... work ...
/// let secs = sw.elapsed_seconds();
/// assert!(secs >= 0.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start_us: f64,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch { start_us: now_us() }
    }

    /// Seconds elapsed since [`Stopwatch::start`]. Never negative.
    pub fn elapsed_seconds(&self) -> f64 {
        ((now_us() - self.start_us) / 1e6).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
        assert!(a >= 0.0);
    }

    #[test]
    fn stopwatch_measures_nonnegative_elapsed() {
        let sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let secs = sw.elapsed_seconds();
        assert!(secs >= 0.002 - 1e-4, "slept 2ms but measured {secs}");
    }
}
