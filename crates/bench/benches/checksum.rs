//! Criterion bench: checksum-extended block updates vs their plain
//! counterparts — the per-iteration cost of Theorem 1's maintenance, and
//! the reverse computation the recovery path relies on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_blas::{Side, Trans};
use ft_hessenberg::encode::{extend_v, extend_y, ExtMatrix};
use ft_hessenberg::reverse::{
    left_update_ext, reverse_left_update_ext, reverse_right_update_ext, right_update_ext,
};
use ft_lapack::lahr2;

fn bench_checksum_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("checksum_updates");
    group.sample_size(10);
    for &n in &[256usize, 512] {
        let k = 32;
        let ib = 32;
        let a = ft_matrix::random::uniform(n, n, 11);
        let mut work = a.clone();
        let panel = lahr2(&mut work, k, ib);
        let seg: Vec<f64> = (k + 1..n).map(|j| a.col(j).iter().sum()).collect();
        let yx = extend_y(&panel.y, &seg, &panel.v, &panel.t);
        let vx = extend_v(&panel.v);
        let ax0 = ExtMatrix::encode(&a);

        let m = n - k - 1;
        group.bench_with_input(BenchmarkId::new("right_plain", n), &n, |bench, _| {
            bench.iter(|| {
                let mut w = a.clone();
                ft_blas::gemm(
                    Trans::No,
                    Trans::Yes,
                    -1.0,
                    &panel.y.as_view(),
                    &panel.v.view(ib - 1, 0, m - ib + 1, ib),
                    1.0,
                    &mut w.view_mut(0, k + ib, n, n - k - ib),
                );
                std::hint::black_box(w.as_slice()[0]);
            });
        });
        group.bench_with_input(BenchmarkId::new("right_extended", n), &n, |bench, _| {
            bench.iter(|| {
                let mut ax = ax0.clone();
                right_update_ext(&mut ax, k, ib, &yx, &vx);
                std::hint::black_box(ax.corner());
            });
        });
        group.bench_with_input(BenchmarkId::new("left_plain", n), &n, |bench, _| {
            bench.iter(|| {
                let mut w = a.clone();
                ft_lapack::larfb(
                    Side::Left,
                    Trans::Yes,
                    &panel.v.as_view(),
                    &panel.t.as_view(),
                    &mut w.view_mut(k + 1, k + ib, m, n - k - ib),
                );
                std::hint::black_box(w.as_slice()[0]);
            });
        });
        group.bench_with_input(BenchmarkId::new("left_extended", n), &n, |bench, _| {
            bench.iter(|| {
                let mut ax = ax0.clone();
                let w = left_update_ext(&mut ax, k, ib, &vx, &panel.t);
                std::hint::black_box(w.as_slice()[0]);
            });
        });
        group.bench_with_input(BenchmarkId::new("reverse_pair", n), &n, |bench, _| {
            let mut ax = ax0.clone();
            right_update_ext(&mut ax, k, ib, &yx, &vx);
            let w = left_update_ext(&mut ax, k, ib, &vx, &panel.t);
            bench.iter(|| {
                let mut axr = ax.clone();
                reverse_left_update_ext(&mut axr, k, ib, &vx, &panel.t, &w);
                reverse_right_update_ext(&mut axr, k, ib, &yx, &vx);
                std::hint::black_box(axr.corner());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checksum_updates);
criterion_main!(benches);
