//! Regression fixture for the PR-5 scanner's test-region hole: the old
//! line mask only exempted code when `#[cfg(` and `test` appeared on
//! the *same source line*, so a bare `#[test]` fn in a src/ path (the
//! layout below — common for doc-adjacent smoke tests) leaked its
//! `thread::spawn` and unregistered metric name into FTC002/FTC006
//! findings. The token-stream item pass attributes the whole fn to its
//! `#[test]` attribute regardless of line layout; this file must scan
//! clean.

pub fn real_code() -> u64 {
    7
}

#[test]
fn smoke() {
    let h = std::thread::spawn(|| real_code());
    assert_eq!(h.join().unwrap(), 7);
    counter("totally.unregistered.name").incr();
}
