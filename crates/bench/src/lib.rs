#![forbid(unsafe_code)]
//! Shared harness utilities for the experiment binaries that regenerate
//! the paper's tables and figures (see DESIGN.md §4 for the index).

pub mod cli;
pub mod heatmap;
pub mod report;
pub mod serve_report;
pub mod sizes;
pub mod stability;
pub mod table;

pub use cli::Args;
pub use heatmap::{polluted_count, polluted_rows, render_heatmap};
pub use report::{merge_records, parse_bench_json, write_bench_json, Record, Value};
pub use serve_report::{loadgen_records, service_records};
pub use sizes::{paper_sizes, scaled_sizes, smoke};
pub use table::{pct, sci, Table};
