//! Unblocked Hessenberg reduction (LAPACK `DGEHD2`, paper §III-A).
//!
//! Applies `n − 2` elementary similarity transformations
//! `H = Q₁ᵀ⋯Qₙᵀ · A · Q₁⋯Qₙ`, where `Q_i` annihilates column `i` below the
//! first sub-diagonal. Memory-latency bound (level-2 BLAS only); serves as
//! the correctness oracle for the blocked and hybrid variants.

use crate::householder::{larf, larfg, ReflectSide};
use ft_matrix::Matrix;

/// Reduces `a` to upper Hessenberg form in place.
///
/// On return, the upper triangle and first sub-diagonal of `a` hold `H`;
/// column `j` below the sub-diagonal holds the tail of the Householder
/// vector `v_j` (implicit leading 1 at row `j + 1`). Returns the reflector
/// scales `tau` (length `n.saturating_sub(2)`).
pub fn gehd2(a: &mut Matrix) -> Vec<f64> {
    assert!(a.is_square(), "gehd2: matrix must be square");
    let n = a.rows();
    if n < 3 {
        return vec![];
    }
    let mut tau = vec![0.0; n - 2];
    // Workspace for the full reflector vector (explicit leading 1).
    let mut v = vec![0.0; n];

    for i in 0..n - 2 {
        // Generate H_i to annihilate A(i+2.., i).
        let alpha = a[(i + 1, i)];
        let mut tail: Vec<f64> = (i + 2..n).map(|r| a[(r, i)]).collect();
        let refl = larfg(alpha, &mut tail);
        tau[i] = refl.tau;

        // Assemble the full reflector vector over rows i+1..n.
        let m = n - i - 1;
        v[0] = 1.0;
        v[1..m].copy_from_slice(&tail);

        // A ← A·H_i : affects columns i+1..n, all rows.
        larf(
            ReflectSide::Right,
            &v[..m],
            refl.tau,
            &mut a.view_mut(0, i + 1, n, m),
        );
        // A ← H_iᵀ·A : affects rows i+1..n, columns i+1..n.
        larf(
            ReflectSide::Left,
            &v[..m],
            refl.tau,
            &mut a.view_mut(i + 1, i + 1, m, m),
        );

        // Store beta on the sub-diagonal and the vector tail below it.
        a[(i + 1, i)] = refl.beta;
        for (off, &val) in tail.iter().enumerate() {
            a[(i + 2 + off, i)] = val;
        }
    }
    tau
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gehrd::{extract_h, form_q};
    use ft_blas::Trans;
    use ft_matrix::{assert_matrix_eq, Matrix};

    fn verify_reduction(a0: &Matrix, a: &Matrix, tau: &[f64], tol: f64) {
        let n = a0.rows();
        let h = extract_h(a);
        assert!(h.is_upper_hessenberg(), "H not Hessenberg");
        let q = form_q(a, tau);

        // Q orthogonal
        let mut qqt = Matrix::zeros(n, n);
        ft_blas::gemm(
            Trans::No,
            Trans::Yes,
            1.0,
            &q.as_view(),
            &q.as_view(),
            0.0,
            &mut qqt.as_view_mut(),
        );
        assert_matrix_eq(&qqt, &Matrix::identity(n), tol, "QQᵀ = I");

        // A = Q·H·Qᵀ
        let mut qh = Matrix::zeros(n, n);
        ft_blas::gemm(
            Trans::No,
            Trans::No,
            1.0,
            &q.as_view(),
            &h.as_view(),
            0.0,
            &mut qh.as_view_mut(),
        );
        let mut qhqt = Matrix::zeros(n, n);
        ft_blas::gemm(
            Trans::No,
            Trans::Yes,
            1.0,
            &qh.as_view(),
            &q.as_view(),
            0.0,
            &mut qhqt.as_view_mut(),
        );
        assert_matrix_eq(&qhqt, a0, tol * a0.max_abs().max(1.0), "A = QHQᵀ");
    }

    #[test]
    fn reduces_random_matrices() {
        for &n in &[3usize, 4, 5, 8, 13, 32] {
            let a0 = ft_matrix::random::uniform(n, n, n as u64);
            let mut a = a0.clone();
            let tau = gehd2(&mut a);
            assert_eq!(tau.len(), n - 2);
            verify_reduction(&a0, &a, &tau, 1e-12 * n as f64);
        }
    }

    #[test]
    fn small_matrices_are_noops() {
        for n in 0..3 {
            let a0 = ft_matrix::random::uniform(n, n, 100 + n as u64);
            let mut a = a0.clone();
            let tau = gehd2(&mut a);
            assert!(tau.is_empty());
            assert_eq!(a, a0);
        }
    }

    #[test]
    fn already_hessenberg_stays_hessenberg() {
        let a0 = ft_matrix::random::hessenberg(10, 3);
        let mut a = a0.clone();
        let tau = gehd2(&mut a);
        verify_reduction(&a0, &a, &tau, 1e-11);
        let h = extract_h(&a);
        // The reduction of a Hessenberg matrix is itself (reflectors are
        // all near-identity up to sign conventions); at minimum the
        // Hessenberg profile is preserved exactly.
        assert!(h.is_upper_hessenberg());
    }

    #[test]
    fn eigen_spectrum_preserved_trace() {
        // Similarity preserves the trace; quick invariant check.
        let n = 12;
        let a0 = ft_matrix::random::uniform(n, n, 77);
        let trace0: f64 = (0..n).map(|i| a0[(i, i)]).sum();
        let mut a = a0.clone();
        let _tau = gehd2(&mut a);
        let h = extract_h(&a);
        let trace1: f64 = (0..n).map(|i| h[(i, i)]).sum();
        assert!((trace0 - trace1).abs() < 1e-12 * n as f64);
    }
}
