//! Checksum encoding (paper §IV-B): the extended matrix `Afe` and the
//! checksum-extended reflector block `Vce`.
//!
//! The `n × n` input is embedded into an `(n+1) × (n+1)` extended matrix:
//! column `n` holds row checksums (`Ar_chk`), row `n` holds column
//! checksums (`Ac_chk`), and the corner tracks the grand sum. The two-sided
//! block updates are applied to the extended matrix with the reflector
//! block `V` extended by one extra row holding its column sums — the
//! paper's `Vce = eᵀV` — which is exactly what makes Theorem 1 hold:
//! row/column checksums remain valid at the end of every iteration.
//!
//! One subtlety the paper leaves implicit: after a panel is reduced, its
//! columns store Householder tails below the sub-diagonal, while the
//! checksums track the *mathematical* matrix in which those entries are
//! exactly zero. All consistency computations here therefore apply the
//! Hessenberg mask to reduced columns ([`ExtMatrix::math_at`]).

use ft_blas::SumScheme;
use ft_matrix::{MatView, MatViewMut, Matrix};

/// An `(n+1) × (n+1)` checksum-extended matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtMatrix {
    data: Matrix,
    n: usize,
    scheme: SumScheme,
}

impl ExtMatrix {
    /// Encodes `a` (paper Algorithm 3 line 2): appends the row-checksum
    /// column and column-checksum row, plus the grand-sum corner.
    pub fn encode(a: &Matrix) -> Self {
        ExtMatrix::encode_with(a, SumScheme::Naive)
    }

    /// [`ExtMatrix::encode`] with an explicit accumulation scheme for the
    /// checksum sums. Superblock or compensated summation (reference 27
    /// of the paper) reduces the roundoff drift of `Sre`/`Sce` and hence
    /// the smallest corruption the detector can distinguish from noise —
    /// quantified by the `ablations` harness.
    pub fn encode_with(a: &Matrix, scheme: SumScheme) -> Self {
        assert!(a.is_square(), "encode: matrix must be square");
        let n = a.rows();
        let mut data = Matrix::zeros(n + 1, n + 1);
        data.set_sub_matrix(0, 0, a);
        for j in 0..n {
            data[(n, j)] = scheme.sum(a.col(j));
        }
        let mut row = vec![0.0; n];
        for i in 0..n {
            for (j, r) in row.iter_mut().enumerate() {
                *r = a[(i, j)];
            }
            data[(i, n)] = scheme.sum(&row);
        }
        let chk: Vec<f64> = (0..n).map(|j| data[(n, j)]).collect();
        data[(n, n)] = scheme.sum(&chk);
        ExtMatrix { data, n, scheme }
    }

    /// Wraps existing `(n+1) × (n+1)` storage (used by reversal tests).
    pub fn from_raw(data: Matrix) -> Self {
        assert!(
            a_square_ext(&data),
            "from_raw: storage must be square and non-empty"
        );
        let n = data.rows() - 1;
        ExtMatrix {
            data,
            n,
            scheme: SumScheme::Naive,
        }
    }

    /// The accumulation scheme used for the aggregate sums.
    pub fn scheme(&self) -> SumScheme {
        self.scheme
    }

    /// Logical (un-extended) dimension `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The full extended storage.
    pub fn raw(&self) -> &Matrix {
        &self.data
    }

    /// The full extended storage, mutably. Callers are responsible for
    /// keeping the checksum semantics coherent.
    pub fn raw_mut(&mut self) -> &mut Matrix {
        &mut self.data
    }

    /// View of the real `n × n` part.
    pub fn real(&self) -> MatView<'_> {
        self.data.view(0, 0, self.n, self.n)
    }

    /// Mutable view of the real part.
    pub fn real_mut(&mut self) -> MatViewMut<'_> {
        let n = self.n;
        self.data.view_mut(0, 0, n, n)
    }

    /// The real part as an owned matrix.
    pub fn real_to_matrix(&self) -> Matrix {
        self.data.sub_matrix(0, 0, self.n, self.n)
    }

    /// Row-checksum column entries (`Ar_chk`), length `n`.
    pub fn chk_col(&self) -> &[f64] {
        &self.data.col(self.n)[..self.n]
    }

    /// One column-checksum entry (`Ac_chk[j]`).
    pub fn chk_row(&self, j: usize) -> f64 {
        self.data[(self.n, j)]
    }

    /// The column-checksum row as a vector, length `n`.
    pub fn chk_row_to_vec(&self) -> Vec<f64> {
        (0..self.n).map(|j| self.data[(self.n, j)]).collect()
    }

    /// The grand-sum corner entry.
    pub fn corner(&self) -> f64 {
        self.data[(self.n, self.n)]
    }

    /// `Sre` (paper Algorithm 3 line 12): the sum of the row-checksum
    /// column.
    pub fn sre(&self) -> f64 {
        self.scheme.sum(self.chk_col())
    }

    /// `Sce`: the sum of the column-checksum row.
    pub fn sce(&self) -> f64 {
        let row = self.chk_row_to_vec();
        self.scheme.sum(&row)
    }

    /// The *mathematical* value at `(i, j)` when `frontier` columns have
    /// been reduced: reduced columns are zero below the first
    /// sub-diagonal (their storage holds Householder tails instead).
    pub fn math_at(&self, i: usize, j: usize, frontier: usize) -> f64 {
        if j < frontier && i > j + 1 {
            0.0
        } else {
            self.data[(i, j)]
        }
    }

    /// Mathematical row sums (length `n`) under the frontier mask.
    ///
    /// Rows are distributed over the active [`ft_blas::backend`] workers;
    /// each row sum accumulates in ascending column order regardless of
    /// the worker count, so the result is bit-identical to a serial sweep
    /// and error localization behaves the same under every backend.
    pub fn math_row_sums(&self, frontier: usize) -> Vec<f64> {
        let n = self.n;
        let mut sums = vec![0.0; n];
        ft_blas::parallel_map_into(&mut sums, |i| {
            let mut s = 0.0;
            for j in 0..n {
                if !(j < frontier && i > j + 1) {
                    s += self.data[(i, j)];
                }
            }
            s
        });
        sums
    }

    /// Mathematical column sums (length `n`) under the frontier mask;
    /// columns are independent, so the same worker split applies.
    pub fn math_col_sums(&self, frontier: usize) -> Vec<f64> {
        let n = self.n;
        let mut sums = vec![0.0; n];
        ft_blas::parallel_map_into(&mut sums, |j| {
            let lim = if j < frontier { (j + 2).min(n) } else { n };
            self.data.col(j)[..lim].iter().sum()
        });
        sums
    }

    /// Refreshes the column-checksum entries of columns `c0..c1` from the
    /// stored data under the frontier mask (used for just-finished panel
    /// columns, whose storage switched to `H`-plus-reflector form).
    pub fn refresh_chk_row(&mut self, c0: usize, c1: usize, frontier: usize) {
        let n = self.n;
        refresh_chk_row_view(&mut self.data.as_view_mut(), n, c0, c1, frontier);
    }

    /// Extracts the final packed `n × n` factorization output.
    pub fn into_packed(self) -> Matrix {
        self.data.sub_matrix(0, 0, self.n, self.n)
    }
}

fn a_square_ext(data: &Matrix) -> bool {
    data.is_square() && data.rows() >= 1
}

/// The view form of [`ExtMatrix::refresh_chk_row`] — one shared body, so
/// the two call sites cannot drift. `head` must cover columns `0..c1` and
/// all `n + 1` rows of the extended storage; this lets the driver refresh
/// just-finished panel checksums while pool workers own a disjoint view of
/// the trailing columns (the in-flight far update).
pub(crate) fn refresh_chk_row_view(
    head: &mut MatViewMut<'_>,
    n: usize,
    c0: usize,
    c1: usize,
    frontier: usize,
) {
    for j in c0..c1.min(n) {
        let lim = if j < frontier { (j + 2).min(n) } else { n };
        let s: f64 = head.col(j)[..lim].iter().sum();
        head.col_mut(j)[n] = s;
    }
}

/// Extends a reflector block `V` (`m × ib`) by one extra row holding its
/// column sums — the paper's `Vce` (Algorithm 3 line 7). The extra row
/// sits at local row `m`, which corresponds exactly to the checksum
/// row/column index `n` of the extended matrix (since local row `r` maps
/// to global index `k + 1 + r` and `k + 1 + m = n`).
pub fn extend_v(v: &Matrix) -> Matrix {
    let (m, ib) = (v.rows(), v.cols());
    let mut vx = Matrix::zeros(m + 1, ib);
    vx.set_sub_matrix(0, 0, v);
    for j in 0..ib {
        let s: f64 = v.col(j).iter().sum();
        vx[(m, j)] = s;
    }
    vx
}

/// Extends `Y = A·V·T` (`n × ib`) by one extra row holding the checksum
/// row's image — the paper's `Yce` (Algorithm 3 line 6):
/// `Yce = Ac_chk(k+1..n) · V · T`, computed from the *pre-update* checksum
/// row so it provides an independent path for error detection.
pub fn extend_y(y: &Matrix, chk_row_seg: &[f64], v: &Matrix, t: &Matrix) -> Matrix {
    let (n, ib) = (y.rows(), y.cols());
    let m = v.rows();
    assert_eq!(chk_row_seg.len(), m, "extend_y: checksum segment length");
    let mut yx = Matrix::zeros(n + 1, ib);
    yx.set_sub_matrix(0, 0, y);
    // w = Vᵀ · chk_seg, then yce = Tᵀ · w (row-vector times matrix).
    let mut w = vec![0.0; ib];
    ft_blas::gemv(
        ft_blas::Trans::Yes,
        1.0,
        &v.as_view(),
        chk_row_seg,
        0.0,
        &mut w,
    );
    ft_blas::trmv(
        ft_blas::Uplo::Upper,
        ft_blas::Trans::Yes,
        ft_blas::Diag::NonUnit,
        &t.as_view(),
        &mut w,
    );
    for j in 0..ib {
        yx[(n, j)] = w[j];
    }
    yx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        ft_matrix::random::uniform(6, 6, 3)
    }

    #[test]
    fn encode_checksums_correct() {
        let a = sample();
        let e = ExtMatrix::encode(&a);
        assert_eq!(e.n(), 6);
        for i in 0..6 {
            let expect: f64 = (0..6).map(|j| a[(i, j)]).sum();
            assert!((e.chk_col()[i] - expect).abs() < 1e-14);
        }
        for j in 0..6 {
            let expect: f64 = a.col(j).iter().sum();
            assert!((e.chk_row(j) - expect).abs() < 1e-14);
        }
        assert!((e.corner() - a.grand_sum()).abs() < 1e-13);
        assert!(
            (e.sre() - e.sce()).abs() < 1e-13,
            "fresh encoding is consistent"
        );
        assert!((e.sre() - a.grand_sum()).abs() < 1e-13);
    }

    #[test]
    fn real_part_roundtrip() {
        let a = sample();
        let e = ExtMatrix::encode(&a);
        assert_eq!(e.real_to_matrix(), a);
        assert_eq!(e.clone().into_packed(), a);
    }

    #[test]
    fn math_masking() {
        let mut a = Matrix::zeros(4, 4);
        a.fill(1.0);
        let e = ExtMatrix::encode(&a);
        // With frontier 2, storage (3,0), (2,0), (3,1) are masked to 0
        // (below sub-diagonal of reduced columns).
        assert_eq!(e.math_at(3, 0, 2), 0.0);
        assert_eq!(e.math_at(2, 0, 2), 0.0);
        assert_eq!(e.math_at(3, 1, 2), 0.0);
        assert_eq!(e.math_at(1, 0, 2), 1.0); // sub-diagonal kept
        assert_eq!(e.math_at(3, 2, 2), 1.0); // beyond frontier kept
        let rs = e.math_row_sums(2);
        assert_eq!(rs, vec![4.0, 4.0, 3.0, 2.0]);
        let cs = e.math_col_sums(2);
        assert_eq!(cs, vec![2.0, 3.0, 4.0, 4.0]);
    }

    #[test]
    fn refresh_chk_row_uses_mask() {
        let mut a = Matrix::zeros(4, 4);
        a.fill(1.0);
        let mut e = ExtMatrix::encode(&a);
        // Pretend column 0 was reduced: its checksum should become the
        // masked sum 2.0 (rows 0 and 1 only).
        e.refresh_chk_row(0, 1, 1);
        assert_eq!(e.chk_row(0), 2.0);
        assert_eq!(e.chk_row(1), 4.0, "other columns untouched");
    }

    #[test]
    fn extend_v_appends_column_sums() {
        let v = ft_matrix::random::uniform(5, 3, 7);
        let vx = extend_v(&v);
        assert_eq!(vx.rows(), 6);
        assert_eq!(vx.cols(), 3);
        for j in 0..3 {
            let expect: f64 = v.col(j).iter().sum();
            assert!((vx[(5, j)] - expect).abs() < 1e-14);
            for r in 0..5 {
                assert_eq!(vx[(r, j)], v[(r, j)]);
            }
        }
    }

    #[test]
    fn extend_y_matches_direct_columnsums_of_y() {
        // When the checksum segment really is eᵀA over V's support, the
        // extension must equal the column sums of Y = A·V·T.
        let n = 7;
        let k = 1; // V over rows k+1..n, m = 5
        let m = n - k - 1;
        let a = ft_matrix::random::uniform(n, n, 8);
        let v = {
            let mut v = ft_matrix::random::uniform(m, 3, 9);
            for j in 0..3 {
                for r in 0..j {
                    v[(r, j)] = 0.0;
                }
                v[(j, j)] = 1.0;
            }
            v
        };
        let t = {
            let mut t = ft_matrix::random::uniform(3, 3, 10);
            for j in 0..3 {
                for i in j + 1..3 {
                    t[(i, j)] = 0.0;
                }
            }
            t
        };
        // Y = A(:, k+1..n) · V · T
        let mut av = Matrix::zeros(n, 3);
        ft_blas::gemm(
            ft_blas::Trans::No,
            ft_blas::Trans::No,
            1.0,
            &a.view(0, k + 1, n, m),
            &v.as_view(),
            0.0,
            &mut av.as_view_mut(),
        );
        let mut y = Matrix::zeros(n, 3);
        ft_blas::gemm(
            ft_blas::Trans::No,
            ft_blas::Trans::No,
            1.0,
            &av.as_view(),
            &t.as_view(),
            0.0,
            &mut y.as_view_mut(),
        );
        // checksum segment = column sums of A over columns k+1..n.
        let seg: Vec<f64> = (k + 1..n).map(|j| a.col(j).iter().sum()).collect();
        let yx = extend_y(&y, &seg, &v, &t);
        for j in 0..3 {
            let expect: f64 = y.col(j).iter().sum();
            assert!(
                (yx[(n, j)] - expect).abs() < 1e-12,
                "Yce[{j}] = {} vs column sum {expect}",
                yx[(n, j)]
            );
        }
    }
}
