//! Intra-workspace call graph by path-resolved name approximation.
//!
//! From each function body we extract *call sites* (free calls, method
//! calls, macro invocations, turbofish forms), then resolve them to
//! workspace functions by name with a conservative policy: same file
//! first, then unique-in-crate, then unique-in-workspace, and method
//! calls only when the name is workspace-unique and not a common std
//! method. Anything ambiguous resolves to nothing — the semantic rules
//! built on this graph (FTC008 hot-path allocation, FTC011 panic
//! reachability) prefer missing an edge to inventing one, and say so in
//! their documentation.

use crate::items::{FileItems, FnItem};
use crate::lexer::{Lexed, Tok, TokKind};

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (last path segment; macro name without `!`).
    pub name: String,
    /// The path segment before the name (`Vec` in `Vec::new`,
    /// `env_knob` in `env_knob::flag`).
    pub qualifier: Option<String>,
    /// `true` for `receiver.name(...)` method syntax.
    pub method: bool,
    /// `true` for `name!(...)` macro syntax.
    pub is_macro: bool,
    /// 0-based line of the callee name token.
    pub line: u32,
    /// 0-based column of the callee name token.
    pub col: u32,
}

/// Keywords that look like `ident (` but are not calls.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "in"
            | "as"
            | "move"
            | "else"
            | "unsafe"
            | "fn"
            | "let"
            | "mut"
            | "ref"
            | "impl"
            | "where"
            | "pub"
            | "use"
            | "break"
            | "continue"
            | "await"
            | "yield"
            | "dyn"
            | "box"
    )
}

/// Extracts the call sites in the token range `(open, close)`
/// (exclusive of the braces themselves).
pub fn calls_in(toks: &[Tok], open: usize, close: usize) -> Vec<Call> {
    let mut out = Vec::new();
    let mut k = open + 1;
    while k < close {
        let t = &toks[k];
        if t.kind != TokKind::Ident || is_keyword(&t.text) {
            k += 1;
            continue;
        }
        let prev = k.checked_sub(1).map(|p| &toks[p]);
        let method = prev.is_some_and(|p| p.is_punct("."));
        let qualifier = if prev.is_some_and(|p| p.is_punct("::")) {
            k.checked_sub(2)
                .map(|q| &toks[q])
                .filter(|q| q.kind == TokKind::Ident)
                .map(|q| q.text.clone())
        } else {
            None
        };
        let Some(next) = toks.get(k + 1) else { break };
        // Macro call: `name!(…)`, `name![…]`, `name!{…}`.
        if next.is_punct("!") {
            if toks
                .get(k + 2)
                .is_some_and(|t| t.is_punct("(") || t.is_punct("[") || t.is_punct("{"))
            {
                out.push(Call {
                    name: t.text.clone(),
                    qualifier,
                    method: false,
                    is_macro: true,
                    line: t.line,
                    col: t.col,
                });
            }
            k += 2;
            continue;
        }
        // Plain call: `name(…)`.
        if next.is_punct("(") {
            // `Name(` directly after `::` *could* be a tuple-variant
            // constructor; treating it as a call is harmless (variants
            // never resolve to fns).
            out.push(Call {
                name: t.text.clone(),
                qualifier,
                method,
                is_macro: false,
                line: t.line,
                col: t.col,
            });
            k += 1;
            continue;
        }
        // Turbofish: `name::<T>(…)`.
        if next.is_punct("::") && toks.get(k + 2).is_some_and(|t| t.is_punct("<")) {
            let mut depth = 0i32;
            let mut j = k + 2;
            while j < close {
                let tj = &toks[j];
                if tj.is_punct("<") {
                    depth += 1;
                } else if tj.is_punct(">") && !toks[j - 1].is_punct("-") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            if toks.get(j + 1).is_some_and(|t| t.is_punct("(")) {
                out.push(Call {
                    name: t.text.clone(),
                    qualifier,
                    method,
                    is_macro: false,
                    line: t.line,
                    col: t.col,
                });
            }
            k = j + 1;
            continue;
        }
        k += 1;
    }
    out
}

/// A function reference: indices into the workspace model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FnRef {
    /// Index of the file in the model.
    pub file: usize,
    /// Index of the fn within that file's items.
    pub fn_idx: usize,
}

/// One analyzed file: path, tokens, items, and per-fn call sites.
pub struct FileModel {
    /// Repo-relative path.
    pub rel: String,
    /// Lexed source.
    pub lexed: Lexed,
    /// Parsed items.
    pub items: FileItems,
    /// Call sites per fn (same indexing as `items.fns`).
    pub calls: Vec<Vec<Call>>,
    /// Raw source lines (for annotation rules that read layout, like
    /// FTC003's SAFETY-comment walk).
    pub lines: Vec<String>,
}

impl FileModel {
    /// Builds the model for one file.
    pub fn new(rel: String, source: &str) -> FileModel {
        let lexed = crate::lexer::lex(source);
        let items = crate::items::parse(&lexed);
        let calls = items
            .fns
            .iter()
            .map(|f| match f.body {
                Some((open, close)) => calls_in(&lexed.toks, open, close),
                None => Vec::new(),
            })
            .collect();
        FileModel {
            rel,
            lexed,
            items,
            calls,
            lines: source.lines().map(str::to_string).collect(),
        }
    }

    /// The crate prefix of this file (`crates/blas` for
    /// `crates/blas/src/pool.rs`; the leading directory otherwise).
    pub fn crate_prefix(&self) -> &str {
        if let Some(pos) = self.rel.find("/src/") {
            &self.rel[..pos]
        } else {
            self.rel.split('/').next().unwrap_or(&self.rel)
        }
    }

    /// File stem (`pool` for `crates/blas/src/pool.rs`), used to match
    /// module-qualified calls like `pool::run`.
    pub fn stem(&self) -> &str {
        self.rel
            .rsplit('/')
            .next()
            .and_then(|f| f.strip_suffix(".rs"))
            .unwrap_or("")
    }
}

/// Method names too common to resolve by global uniqueness: these are
/// std/container vocabulary where a workspace fn sharing the name is
/// almost never the callee.
fn is_common_method(name: &str) -> bool {
    matches!(
        name,
        "new"
            | "clone"
            | "default"
            | "len"
            | "is_empty"
            | "get"
            | "set"
            | "push"
            | "pop"
            | "insert"
            | "remove"
            | "iter"
            | "next"
            | "lock"
            | "unwrap"
            | "expect"
            | "drop"
            | "into"
            | "from"
            | "as_ref"
            | "as_mut"
            | "to_string"
            | "to_vec"
            | "collect"
            | "wait"
            | "notify_one"
            | "notify_all"
            | "join"
            | "send"
            | "recv"
            | "take"
            | "min"
            | "max"
            | "abs"
            | "clear"
            | "contains"
            | "record"
            | "incr"
            | "fmt"
            | "write"
            | "read"
            | "run"
            | "start"
            | "stop"
            | "close"
            | "index"
    )
}

/// The workspace call graph: a name index plus a resolver.
pub struct Graph<'a> {
    files: &'a [FileModel],
    /// name → every fn with that name.
    by_name: std::collections::HashMap<&'a str, Vec<FnRef>>,
}

impl<'a> Graph<'a> {
    /// Indexes every fn in the model by name.
    pub fn build(files: &'a [FileModel]) -> Graph<'a> {
        let mut by_name: std::collections::HashMap<&str, Vec<FnRef>> =
            std::collections::HashMap::new();
        for (fi, fm) in files.iter().enumerate() {
            for (ki, f) in fm.items.fns.iter().enumerate() {
                by_name.entry(f.name.as_str()).or_default().push(FnRef {
                    file: fi,
                    fn_idx: ki,
                });
            }
        }
        Graph { files, by_name }
    }

    /// The fn item behind a reference.
    pub fn item(&self, r: FnRef) -> &FnItem {
        &self.files[r.file].items.fns[r.fn_idx]
    }

    /// Resolves one call site from `from_file` to a workspace fn, or
    /// `None` when ambiguous (the conservative default).
    pub fn resolve(&self, call: &Call, from_file: usize) -> Option<FnRef> {
        if call.is_macro {
            return None;
        }
        let cands = self.by_name.get(call.name.as_str())?;
        if call.method {
            // Method calls resolve only by global uniqueness, and never
            // for common std vocabulary.
            if cands.len() == 1 && !is_common_method(&call.name) {
                return Some(cands[0]);
            }
            return None;
        }
        if let Some(q) = &call.qualifier {
            // `Type::name` — inherent methods of a workspace type.
            let typed: Vec<&FnRef> = cands
                .iter()
                .filter(|r| self.item(**r).self_ty.as_deref() == Some(q.as_str()))
                .collect();
            if typed.len() == 1 && !is_common_method(&call.name) {
                return Some(*typed[0]);
            }
            // `module::name` — the module file's stem.
            let in_mod: Vec<&FnRef> = cands
                .iter()
                .filter(|r| self.files[r.file].stem() == q)
                .collect();
            if in_mod.len() == 1 {
                return Some(*in_mod[0]);
            }
            // `ft_crate::name` — crate-qualified free fn.
            let crate_dir = q.replace('_', "-");
            let crate_dir = crate_dir.strip_prefix("ft-").unwrap_or(&crate_dir);
            let in_crate: Vec<&FnRef> = cands
                .iter()
                .filter(|r| {
                    self.files[r.file]
                        .crate_prefix()
                        .rsplit('/')
                        .next()
                        .is_some_and(|c| c == crate_dir)
                })
                .collect();
            if in_crate.len() == 1 {
                return Some(*in_crate[0]);
            }
            // `self::name` / `crate::name` fall through to the
            // unqualified policy below.
            if q != "self" && q != "crate" && q != "super" {
                return None;
            }
        }
        // Same file, then unique in crate, then unique in workspace.
        let same_file: Vec<&FnRef> = cands.iter().filter(|r| r.file == from_file).collect();
        if let [one] = same_file.as_slice() {
            return Some(**one);
        }
        if same_file.len() > 1 {
            return None;
        }
        let prefix = self.files[from_file].crate_prefix();
        let same_crate: Vec<&FnRef> = cands
            .iter()
            .filter(|r| self.files[r.file].crate_prefix() == prefix)
            .collect();
        if let [one] = same_crate.as_slice() {
            return Some(**one);
        }
        if same_crate.len() > 1 {
            return None;
        }
        if cands.len() == 1 {
            return Some(cands[0]);
        }
        None
    }

    /// Breadth-first reachability from `root` over resolved call edges,
    /// up to `max_depth` hops (`usize::MAX` for the full closure, which
    /// the visited set keeps finite). Returns `(fn, depth)` pairs, root
    /// included at depth 0.
    pub fn reachable(&self, root: FnRef, max_depth: usize) -> Vec<(FnRef, usize)> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let mut frontier = vec![root];
        seen.insert(root);
        let mut depth = 0usize;
        while !frontier.is_empty() && depth <= max_depth {
            let mut next = Vec::new();
            for r in frontier {
                out.push((r, depth));
                if depth == max_depth {
                    continue;
                }
                for call in &self.files[r.file].calls[r.fn_idx] {
                    if let Some(callee) = self.resolve(call, r.file) {
                        if seen.insert(callee) {
                            next.push(callee);
                        }
                    }
                }
            }
            frontier = next;
            depth += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(rel: &str, src: &str) -> FileModel {
        FileModel::new(rel.to_string(), src)
    }

    #[test]
    fn extracts_free_method_macro_and_turbofish_calls() {
        let fm = model(
            "crates/x/src/lib.rs",
            "fn f() { helper(); obj.method(); panic!(\"x\"); parse::<u32>(\"1\"); v.collect::<Vec<_>>(); }\nfn helper() {}\n",
        );
        let names: Vec<(String, bool, bool)> = fm.calls[0]
            .iter()
            .map(|c| (c.name.clone(), c.method, c.is_macro))
            .collect();
        assert!(names.contains(&("helper".into(), false, false)));
        assert!(names.contains(&("method".into(), true, false)));
        assert!(names.contains(&("panic".into(), false, true)));
        assert!(names.contains(&("parse".into(), false, false)));
        assert!(names.contains(&("collect".into(), true, false)));
    }

    #[test]
    fn resolution_prefers_same_file_then_unique() {
        let files = vec![
            model(
                "crates/a/src/lib.rs",
                "fn top() { shared(); only_b(); }\nfn shared() {}\n",
            ),
            model("crates/b/src/lib.rs", "fn shared() {}\nfn only_b() {}\n"),
        ];
        let g = Graph::build(&files);
        let calls = &files[0].calls[0];
        let shared = calls.iter().find(|c| c.name == "shared").unwrap();
        let only_b = calls.iter().find(|c| c.name == "only_b").unwrap();
        assert_eq!(g.resolve(shared, 0), Some(FnRef { file: 0, fn_idx: 1 }));
        assert_eq!(g.resolve(only_b, 0), Some(FnRef { file: 1, fn_idx: 1 }));
    }

    #[test]
    fn ambiguous_methods_do_not_resolve() {
        let files = vec![model(
            "crates/a/src/lib.rs",
            "fn f() { x.record(0); }\nstruct R;\nimpl R { fn record(&self, v: u64) {} }\n",
        )];
        let g = Graph::build(&files);
        let call = files[0].calls[0]
            .iter()
            .find(|c| c.name == "record")
            .unwrap();
        assert_eq!(
            g.resolve(call, 0),
            None,
            "common method names stay unresolved"
        );
    }

    #[test]
    fn module_qualified_calls_resolve_by_stem() {
        let files = vec![
            model("crates/a/src/lib.rs", "fn f() { pool::run_it(); }\n"),
            model("crates/a/src/pool.rs", "pub fn run_it() {}\n"),
        ];
        let g = Graph::build(&files);
        let call = &files[0].calls[0][0];
        assert_eq!(call.qualifier.as_deref(), Some("pool"));
        assert_eq!(g.resolve(call, 0), Some(FnRef { file: 1, fn_idx: 0 }));
    }

    #[test]
    fn reachability_is_depth_bounded() {
        let files = vec![model(
            "crates/a/src/lib.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() { d(); }\nfn d() {}\n",
        )];
        let g = Graph::build(&files);
        let root = FnRef { file: 0, fn_idx: 0 };
        let two = g.reachable(root, 2);
        assert_eq!(two.len(), 3, "a, b, c at depths 0..=2: {two:?}");
        let all = g.reachable(root, usize::MAX);
        assert_eq!(all.len(), 4);
    }
}
