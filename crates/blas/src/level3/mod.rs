//! Level-3 BLAS: matrix–matrix operations.
//!
//! `gemm` is the performance-critical kernel (the paper's trailing-matrix
//! updates are almost entirely GEMM) and comes in three implementations
//! selected by [`GemmAlgo`]: a reference loop nest (test oracle), a
//! cache-blocked kernel built on the register-tiled [`microkernel`]
//! (AVX2+FMA with runtime detection, bit-identical scalar fallback), and
//! a threaded variant that splits the result into `jc`/`ic` macro-tiles
//! over the persistent worker pool ([`crate::pool`]) — data-race free by
//! construction (each worker owns a disjoint `MatViewMut`) and
//! bit-identical to the serial kernel by the contract in
//! [`crate::backend`]. [`gemm_ft`] fuses an online-ABFT detector into
//! the same kernel ([`abft`]). `trmm`, `trsm` and `syrk` gain the same
//! pooled split when the active [`crate::backend::Backend`] is threaded.

mod abft;
mod gemm;
mod microkernel;
mod syrk;
mod trmm;
mod trsm;

pub use abft::{
    gemm_ft, gemm_ft_with_inject, AbftError, AbftInject, AbftOptions, AbftReport, ABFT_BAND,
};
pub use gemm::{gemm, gemm_blocked, gemm_ref, gemm_threaded, gemm_with_algo, GemmAlgo};
pub use microkernel::{active_simd_path, simd_available, with_simd_path, SimdPath};
pub(crate) use microkernel::{resolve_isa, Isa};
pub use syrk::syrk;
pub use trmm::trmm;
pub use trsm::trsm;
