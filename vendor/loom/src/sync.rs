//! Model-checked drop-ins for `std::sync::{Mutex, Condvar}` (plus a
//! re-exported `Arc`). Construction is free of runtime state: a primitive
//! registers with the current execution lazily, on first use, so types
//! containing these can be built anywhere inside a [`crate::model`]
//! closure.

use crate::rt::current;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock};
use std::time::Duration;

pub use std::sync::Arc;

/// A mutex whose lock/unlock operations are scheduling points of the
/// model. Data is stored in an (uncontended, by construction) `std`
/// mutex; exclusion is enforced logically by the scheduler.
pub struct Mutex<T> {
    data: StdMutex<T>,
    id: OnceLock<usize>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            data: StdMutex::new(value),
            id: OnceLock::new(),
        }
    }

    fn id(&self) -> usize {
        *self.id.get_or_init(|| current().0.alloc_mutex())
    }

    /// Acquires the mutex, blocking (in model time) until it is free.
    /// Never poisoned: a model panic aborts the whole execution instead.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let (rt, me) = current();
        let id = self.id();
        rt.mutex_lock(me, id);
        Ok(MutexGuard {
            inner: Some(
                self.data
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            ),
            mx: self,
        })
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.data.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Guard returned by [`Mutex::lock`]; releasing it (drop) re-enables
/// blocked waiters.
pub struct MutexGuard<'a, T> {
    /// `None` once the guard has been dismantled by a condvar wait (the
    /// logical release then belongs to the wait, not to drop).
    inner: Option<StdMutexGuard<'a, T>>,
    mx: &'a Mutex<T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("loom: guard already released")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("loom: guard already released")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            let (rt, me) = current();
            rt.mutex_unlock(me, self.mx.id());
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed wait: whether the timeout branch was taken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable whose wait/notify operations are scheduling
/// points. Timed waits branch the schedule: the timeout path advances the
/// virtual clock ([`crate::time::Instant`]) to the wait's deadline.
#[derive(Default)]
pub struct Condvar {
    id: OnceLock<usize>,
}

impl Condvar {
    /// A new condition variable.
    pub fn new() -> Condvar {
        Condvar {
            id: OnceLock::new(),
        }
    }

    fn id(&self) -> usize {
        *self.id.get_or_init(|| current().0.alloc_condvar())
    }

    fn wait_inner<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout: Option<Duration>,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let (rt, me) = current();
        let mx = guard.mx;
        let m = mx.id();
        let cv = self.id();
        // Drop the std guard; the *logical* release happens inside
        // `condvar_wait`, atomically with enqueueing as a waiter.
        drop(guard.inner.take());
        drop(guard);
        let timed_out = rt.condvar_wait(me, cv, m, timeout);
        let inner = mx
            .data
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (
            MutexGuard {
                inner: Some(inner),
                mx,
            },
            WaitTimeoutResult { timed_out },
        )
    }

    /// Releases the guard and blocks until notified, then reacquires.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        Ok(self.wait_inner(guard, None).0)
    }

    /// Like [`Condvar::wait`], bounded by `timeout` of virtual time.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        Ok(self.wait_inner(guard, Some(timeout)))
    }

    /// Wakes the longest-waiting thread, if any (lost when none waits).
    pub fn notify_one(&self) {
        let (rt, me) = current();
        let cv = self.id();
        rt.notify_one(me, cv);
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        let (rt, me) = current();
        let cv = self.id();
        rt.notify_all(me, cv);
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Model-checked drop-ins for `std::sync::atomic` under sequential
/// consistency.
///
/// Every operation is a scheduling point: the scheduler may preempt the
/// calling thread immediately before the access, which is exactly the
/// interleaving freedom a sequentially consistent atomic grants. Memory
/// `Ordering` arguments are accepted for API compatibility and ignored —
/// this checker does not model weak memory, so code that is correct here
/// is correct under SC only (the `ft-trace` recorder's seqlock protocol
/// is designed to be SC-correct and strengthened by its Acquire/Release
/// pairs on real hardware).
pub mod atomic {
    use crate::rt::current;
    pub use std::sync::atomic::Ordering;

    /// Memory fence. A no-op under the sequentially consistent model —
    /// every modeled atomic op is already SeqCst — but kept as a
    /// scheduling-neutral marker so fenced code compiles unchanged.
    pub fn fence(_order: Ordering) {}
    use std::sync::atomic::{
        AtomicBool as StdAtomicBool, AtomicU64 as StdAtomicU64, AtomicUsize as StdAtomicUsize,
    };

    macro_rules! atomic {
        ($name:ident, $std:ident, $ty:ty) => {
            /// Model-checked atomic; see the module docs for semantics.
            #[derive(Debug, Default)]
            pub struct $name {
                v: $std,
            }

            impl $name {
                /// A new atomic holding `v`. Construction is not a
                /// scheduling point (matches `std`'s `const fn new`).
                pub fn new(v: $ty) -> $name {
                    $name { v: $std::new(v) }
                }

                fn sched(&self) {
                    let (rt, me) = current();
                    rt.yield_point(me);
                }

                /// Atomic load (scheduling point; ordering ignored).
                pub fn load(&self, _order: Ordering) -> $ty {
                    self.sched();
                    self.v.load(Ordering::SeqCst)
                }

                /// Atomic store (scheduling point; ordering ignored).
                pub fn store(&self, val: $ty, _order: Ordering) {
                    self.sched();
                    self.v.store(val, Ordering::SeqCst)
                }

                /// Atomic swap (scheduling point; ordering ignored).
                pub fn swap(&self, val: $ty, _order: Ordering) -> $ty {
                    self.sched();
                    self.v.swap(val, Ordering::SeqCst)
                }

                /// Atomic compare-exchange (scheduling point; orderings
                /// ignored).
                pub fn compare_exchange(
                    &self,
                    cur: $ty,
                    new: $ty,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.sched();
                    self.v
                        .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
                }
            }
        };
    }

    atomic!(AtomicU64, StdAtomicU64, u64);
    atomic!(AtomicUsize, StdAtomicUsize, usize);
    atomic!(AtomicBool, StdAtomicBool, bool);

    macro_rules! atomic_arith {
        ($name:ident, $ty:ty) => {
            impl $name {
                /// Atomic add, returning the previous value (scheduling
                /// point; ordering ignored).
                pub fn fetch_add(&self, val: $ty, _order: Ordering) -> $ty {
                    self.sched();
                    self.v.fetch_add(val, Ordering::SeqCst)
                }

                /// Atomic max, returning the previous value (scheduling
                /// point; ordering ignored).
                pub fn fetch_max(&self, val: $ty, _order: Ordering) -> $ty {
                    self.sched();
                    self.v.fetch_max(val, Ordering::SeqCst)
                }
            }
        };
    }

    atomic_arith!(AtomicU64, u64);
    atomic_arith!(AtomicUsize, usize);
}
