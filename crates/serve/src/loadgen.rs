//! Closed-loop load generator for the service.
//!
//! `clients` generator threads share one job budget; each thread draws the
//! next job index, builds a deterministic job from it (size, priority,
//! fault injection, protection strength all derive from a seeded hash of
//! the index — two runs with the same config produce the same job mix in
//! some interleaving), submits it with the blocking submit, and waits for
//! the result before drawing the next index. That closed loop is what
//! exercises backpressure: with more clients than queue slots, submissions
//! block until the executors drain.
//!
//! A fraction of the jobs carry an injected fault; half of those
//! (by default) are additionally *weak* — submitted with
//! `max_recovery_attempts = 0`, so the first detection exhausts the
//! in-run recovery budget and the run comes back unrecoverable. Those
//! jobs exist to drive the service's escalated-retry path end to end: the
//! summary's invariant check demands they completed only via a retry
//! (`attempts ≥ 2`).

use crate::job::{FaultSpec, JobResult, JobSpec, JobStatus, Priority};
use crate::scheduler::Service;
use crate::stats::{PriorityLatency, ServiceStats};
use ft_fault::{Fault, FaultPlan};
use ft_hessenberg::FtConfig;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Load mix and loop shape.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Closed-loop client threads.
    pub clients: usize,
    /// Total jobs to push through the service.
    pub jobs: usize,
    /// Matrix sizes to draw from (uniformly, by index hash).
    pub sizes: Vec<usize>,
    /// Panel width for every job.
    pub nb: usize,
    /// Fraction of jobs carrying one injected fault.
    pub fault_fraction: f64,
    /// Fraction of *faulted* jobs submitted weak
    /// (`max_recovery_attempts = 0`, forcing the service's escalated
    /// retry).
    pub weak_fraction: f64,
    /// Per-job deadline handed to the spec (`None` = service default).
    pub deadline: Option<Duration>,
    /// Blocking-submit timeout (generous: a closed loop should wait out
    /// backpressure, not shed load).
    pub submit_timeout: Duration,
    /// Seed for the deterministic job mix.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            clients: 4,
            jobs: 64,
            sizes: vec![24, 32, 48, 64],
            nb: 8,
            fault_fraction: 0.25,
            weak_fraction: 0.5,
            deadline: None,
            submit_timeout: Duration::from_secs(120),
            seed: 0x5EED,
        }
    }
}

/// One generated job, as the load generator saw it end to end.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Generator job index (0-based; **not** the service [`crate::JobId`]).
    pub index: usize,
    /// Matrix dimension.
    pub n: usize,
    /// Priority it was submitted under.
    pub priority: Priority,
    /// Terminal status.
    pub status: JobStatus,
    /// Executed runs (service-side; ≥ 2 means the retry path fired).
    pub attempts: u32,
    /// Whether the generator injected a fault into this job.
    pub injected: bool,
    /// Whether the job was submitted weak (`max_recovery_attempts = 0`).
    pub weak: bool,
    /// Whether the final run's report shows at least one resolved
    /// recovery episode.
    pub recovered_in_run: bool,
    /// Whether a report came back (the contract: every executed job
    /// carries one).
    pub has_report: bool,
    /// Queue wait, µs.
    pub queue_us: u64,
    /// Submit-to-terminal latency, µs.
    pub total_us: u64,
}

/// What one load-generator run produced.
#[derive(Clone, Debug)]
pub struct LoadgenSummary {
    /// The mix that was run (job count, sizes, fractions, seed).
    pub config: LoadgenConfig,
    /// Jobs the service accepted.
    pub accepted: usize,
    /// Submissions that errored (timeout/closed/invalid; a closed loop
    /// with a generous timeout should see zero).
    pub submit_errors: usize,
    /// Accepted jobs that never produced a result. **Must** be zero —
    /// this is the no-lost-jobs invariant.
    pub lost: usize,
    /// Per-job outcomes, in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Wall-clock of the whole run.
    pub wall: Duration,
    /// Completed jobs per wall-clock second.
    pub throughput_jobs_per_s: f64,
    /// Latency summary over completed jobs, indexed by
    /// [`Priority::index`]. Built from per-client HDR histogram shards
    /// merged at the end of the run (quantile error ≤ 2⁻⁵ relative).
    pub latency: [PriorityLatency; 3],
    /// Latency summary over all completed jobs (same histogram basis).
    pub latency_all: PriorityLatency,
    /// Service statistics snapshot taken right after the run.
    pub service: ServiceStats,
}

impl LoadgenSummary {
    /// Count of outcomes with the given status.
    pub fn count(&self, pred: impl Fn(&JobOutcome) -> bool) -> usize {
        self.outcomes.iter().filter(|o| pred(o)).count()
    }

    /// Checks the service-contract invariants over this run; returns every
    /// violation found (empty = all good).
    ///
    /// * no accepted job was lost or duplicated;
    /// * every executed job carries a report;
    /// * every injected-fault job either completed (recovered, in-run or
    ///   via retry) or failed *with* a report — never silently;
    /// * every weak job that completed needed ≥ 2 attempts (the escalated
    ///   retry did the work, not luck);
    /// * deadline misses only occur when a deadline was configured.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.lost != 0 {
            v.push(format!("{} accepted jobs produced no result", self.lost));
        }
        if self.outcomes.len() != self.accepted {
            v.push(format!(
                "outcome count {} != accepted {} (lost or duplicated jobs)",
                self.outcomes.len(),
                self.accepted
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for o in &self.outcomes {
            if !seen.insert(o.index) {
                v.push(format!("job index {} reported twice", o.index));
            }
            let executed = !matches!(o.status, JobStatus::Canceled | JobStatus::DeadlineMissed);
            if executed && !o.has_report {
                v.push(format!("job {} executed without a report", o.index));
            }
            if o.injected && matches!(o.status, JobStatus::Failed(_)) && !o.has_report {
                v.push(format!("faulted job {} failed without a report", o.index));
            }
            if o.weak && o.status == JobStatus::Completed && o.attempts < 2 {
                v.push(format!(
                    "weak job {} completed in {} attempt(s) — escalated retry never ran",
                    o.index, o.attempts
                ));
            }
            if o.status == JobStatus::DeadlineMissed
                && self.config.deadline.is_none()
                && self.service.deadline_missed == 0
            {
                v.push(format!("job {} missed a deadline nobody set", o.index));
            }
        }
        v
    }
}

/// Deterministic per-index hash (splitmix64 over the seed/index pair —
/// the same derivation idiom as the fault campaign's per-cell seeds).
fn mix(seed: u64, lane: u64, i: u64) -> u64 {
    let mut z = seed
        .wrapping_add(lane.wrapping_mul(0xA076_1D64_78BD_642F))
        .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Builds job `i` of the mix (public so the example and tests can inspect
/// the generated spec without running a service).
pub fn job_for_index(cfg: &LoadgenConfig, i: usize) -> (JobSpec, bool, bool) {
    let n = cfg.sizes[mix(cfg.seed, 1, i as u64) as usize % cfg.sizes.len()];
    let priority = Priority::ALL[mix(cfg.seed, 2, i as u64) as usize % 3];
    let injected = unit(mix(cfg.seed, 3, i as u64)) < cfg.fault_fraction;
    let weak = injected && unit(mix(cfg.seed, 4, i as u64)) < cfg.weak_fraction;

    let matrix = ft_matrix::random::uniform(n, n, mix(cfg.seed, 5, i as u64));
    let mut ft = FtConfig::with_nb(cfg.nb);
    if weak {
        ft.max_recovery_attempts = 0;
    }
    let faults = if injected {
        // Strike inside the trailing submatrix of iteration 1 so the
        // checksum detector is responsible for it.
        let lo = cfg.nb.min(n.saturating_sub(2));
        let span = (n - lo).max(1) as u64;
        let row = lo + (mix(cfg.seed, 6, i as u64) % span) as usize;
        let col = lo + (mix(cfg.seed, 7, i as u64) % span) as usize;
        let delta = 0.25 + 0.75 * unit(mix(cfg.seed, 8, i as u64));
        FaultSpec::Plan(FaultPlan::one(1, Fault::add(row, col, delta)))
    } else {
        FaultSpec::None
    };

    let spec = JobSpec {
        cfg: ft,
        faults,
        priority,
        deadline: cfg.deadline,
        ..JobSpec::new(matrix)
    };
    (spec, injected, weak)
}

fn outcome_of(i: usize, n: usize, injected: bool, weak: bool, r: &JobResult) -> JobOutcome {
    JobOutcome {
        index: i,
        n,
        priority: r.priority,
        status: r.status,
        attempts: r.attempts,
        injected,
        weak,
        recovered_in_run: r
            .report
            .as_ref()
            .is_some_and(|rep| rep.recoveries.iter().any(|e| e.resolved)),
        has_report: r.report.is_some(),
        queue_us: r.queue_us,
        total_us: r.total_us,
    }
}

/// Per-client latency shard: one HDR histogram per priority lane plus
/// one over every completed job. Shards merge associatively, so the
/// collection order across client threads does not matter.
#[derive(Clone, Debug, Default)]
struct LatencyShard {
    per_prio: [ft_trace::HistSnapshot; 3],
    all: ft_trace::HistSnapshot,
}

impl LatencyShard {
    fn record(&mut self, priority: Priority, us: u64) {
        self.per_prio[priority.index()].record(us);
        self.all.record(us);
    }

    fn merge(&mut self, other: &LatencyShard) {
        for (mine, theirs) in self.per_prio.iter_mut().zip(&other.per_prio) {
            mine.merge(theirs);
        }
        self.all.merge(&other.all);
    }
}

/// Runs the closed loop against `service` and summarizes the run. The
/// service is left running (shut it down — and pick drain vs. abort —
/// yourself).
pub fn run(service: &Service, cfg: &LoadgenConfig) -> LoadgenSummary {
    let next = AtomicUsize::new(0);
    let accepted = AtomicUsize::new(0);
    let submit_errors = AtomicUsize::new(0);
    let outcomes: Mutex<Vec<JobOutcome>> = Mutex::new(Vec::with_capacity(cfg.jobs));
    let latency: Mutex<LatencyShard> = Mutex::new(LatencyShard::default());
    let start = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..cfg.clients.max(1) {
            scope.spawn(|| {
                // Thread-local shard; merged once when the client drains.
                let mut shard = LatencyShard::default();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cfg.jobs {
                        break;
                    }
                    let (spec, injected, weak) = job_for_index(cfg, i);
                    let n = spec.matrix.rows();
                    match service.submit(spec, cfg.submit_timeout) {
                        Ok(handle) => {
                            accepted.fetch_add(1, Ordering::Relaxed);
                            let r = handle.wait();
                            let o = outcome_of(i, n, injected, weak, &r);
                            if o.status == JobStatus::Completed {
                                shard.record(o.priority, o.total_us);
                            }
                            outcomes.lock().unwrap().push(o);
                        }
                        Err(_) => {
                            submit_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latency.lock().unwrap().merge(&shard);
            });
        }
    });

    let wall = start.elapsed();
    let outcomes = outcomes.into_inner().unwrap();
    let accepted = accepted.into_inner();
    let completed = outcomes
        .iter()
        .filter(|o| o.status == JobStatus::Completed)
        .count();
    let shard = latency.into_inner().unwrap();

    LoadgenSummary {
        config: cfg.clone(),
        accepted,
        submit_errors: submit_errors.into_inner(),
        lost: accepted.saturating_sub(outcomes.len()),
        wall,
        throughput_jobs_per_s: completed as f64 / wall.as_secs_f64().max(1e-9),
        latency: std::array::from_fn(|i| PriorityLatency::from_snapshot(&shard.per_prio[i])),
        latency_all: PriorityLatency::from_snapshot(&shard.all),
        service: service.stats(),
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_mix_is_deterministic_and_in_range() {
        let cfg = LoadgenConfig {
            jobs: 32,
            ..LoadgenConfig::default()
        };
        let mut faulted = 0;
        let mut weak = 0;
        for i in 0..cfg.jobs {
            let (a, inj, wk) = job_for_index(&cfg, i);
            let (b, inj2, wk2) = job_for_index(&cfg, i);
            assert_eq!((inj, wk), (inj2, wk2));
            assert_eq!(a.matrix.rows(), b.matrix.rows());
            assert!(cfg.sizes.contains(&a.matrix.rows()));
            assert!(a.validate().is_ok());
            faulted += usize::from(inj);
            weak += usize::from(wk);
        }
        assert!(faulted > 0, "mix must include faulted jobs");
        assert!(weak > 0, "mix must include weak jobs");
        assert!(weak <= faulted, "weak jobs are a subset of faulted jobs");
    }

    #[test]
    fn shard_merge_matches_combined_recording() {
        // Two client shards merged must summarize identically to one
        // shard that saw every sample (the associative-merge contract).
        let mut a = LatencyShard::default();
        let mut b = LatencyShard::default();
        let mut combined = LatencyShard::default();
        for (i, us) in (1..=100u64).enumerate() {
            let p = Priority::ALL[i % 3];
            if i % 2 == 0 {
                a.record(p, us);
            } else {
                b.record(p, us);
            }
            combined.record(p, us);
        }
        a.merge(&b);
        let merged = PriorityLatency::from_snapshot(&a.all);
        let direct = PriorityLatency::from_snapshot(&combined.all);
        assert_eq!(merged, direct);
        assert_eq!(merged.count, 100);
        assert_eq!(merged.max_us, 100);
        // HDR bounds: estimate ≥ exact, within 2⁻⁵ relative above.
        assert!(merged.p50_us >= 50 && merged.p50_us <= 52, "{merged:?}");
        assert!(merged.p99_us >= 99 && merged.p99_us <= 102, "{merged:?}");
        assert!(merged.p999_us >= 100 && merged.p999_us <= 104, "{merged:?}");
    }

    #[test]
    fn small_closed_loop_run_holds_invariants() {
        let service = Service::start(crate::ServiceConfig {
            workers: 2,
            queue_capacity: 4,
            ..crate::ServiceConfig::default()
        });
        let cfg = LoadgenConfig {
            clients: 3,
            jobs: 10,
            sizes: vec![16, 24],
            fault_fraction: 0.4,
            ..LoadgenConfig::default()
        };
        let summary = run(&service, &cfg);
        service.shutdown(crate::Shutdown::Drain);
        assert_eq!(summary.accepted, 10);
        assert_eq!(summary.lost, 0);
        assert_eq!(summary.submit_errors, 0);
        let violations = summary.violations();
        assert!(violations.is_empty(), "{violations:?}");
    }
}
