//! The execution core: a cooperative scheduler that serializes model
//! threads (exactly one runnable at a time) and drives a depth-first
//! search over scheduling decisions, bounded by a preemption budget.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{panic_any, resume_unwind};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};
use std::time::Duration;

const DEFAULT_PREEMPTION_BOUND: usize = 3;
const DEFAULT_MAX_ITERATIONS: u64 = 250_000;

/// Sentinel panic payload used to unwind parked threads once an execution
/// aborts (deadlock, or a model panic on another thread). Swallowed by the
/// thread wrapper; never surfaced to the user.
struct AbortExecution;

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Rt>, usize)>> = const { RefCell::new(None) };
}

/// The runtime + thread id of the execution the calling OS thread belongs
/// to. Panics when called outside [`model`].
pub(crate) fn current() -> (Arc<Rt>, usize) {
    CURRENT
        .with(|c| c.borrow().clone())
        .expect("loom: sync primitive used outside loom::model")
}

/// What a model thread is doing, from the scheduler's point of view.
enum Run {
    Runnable,
    /// Waiting to acquire the mutex with this id.
    BlockedMutex(usize),
    /// Parked on a condvar. `woken` is set by notify; a `deadline_ns`
    /// makes the thread schedulable even unwoken (the timeout branch).
    CondvarWait {
        cv: usize,
        deadline_ns: Option<u64>,
        woken: bool,
    },
    /// Joining the thread with this id.
    BlockedJoin(usize),
    Finished,
}

struct ThreadSt {
    state: Run,
    /// The closure's return value, boxed for [`crate::thread::JoinHandle`].
    result: Option<Box<dyn Any + Send>>,
}

struct MutexRec {
    held_by: Option<usize>,
}

struct CondvarRec {
    /// FIFO wait queue (see the crate docs for this simplification).
    waiters: VecDeque<usize>,
}

/// One scheduling decision: which thread ran, out of which enabled set.
struct Branch {
    /// Thread ids in exploration order: the previously active thread
    /// first when still enabled (the free, non-preemptive continuation),
    /// then the other enabled threads in id order.
    order: Vec<usize>,
    /// Index into `order` of the choice taken this execution.
    chosen: usize,
    /// Whether choices other than `order[0]` preempt a runnable thread
    /// (and therefore cost one unit of the preemption budget).
    preemptive_tail: bool,
}

impl Branch {
    fn cost(&self) -> usize {
        usize::from(self.preemptive_tail && self.chosen != 0)
    }
}

struct Sched {
    threads: Vec<ThreadSt>,
    mutexes: Vec<MutexRec>,
    condvars: Vec<CondvarRec>,
    /// The one thread allowed to run right now.
    active: usize,
    /// Scheduling decisions: a replayed prefix plus fresh tail.
    path: Vec<Branch>,
    /// Next decision index (< path.len() while replaying).
    pos: usize,
    /// Virtual clock (ns); advanced only by timed-wait timeouts.
    clock_ns: u64,
    abort: bool,
    panic_payload: Option<Box<dyn Any + Send>>,
    unfinished: usize,
}

impl Sched {
    fn enabled(&self, tid: usize) -> bool {
        match &self.threads[tid].state {
            Run::Runnable => true,
            Run::BlockedMutex(m) => self.mutexes[*m].held_by.is_none(),
            Run::CondvarWait {
                woken, deadline_ns, ..
            } => *woken || deadline_ns.is_some(),
            Run::BlockedJoin(t) => matches!(self.threads[*t].state, Run::Finished),
            Run::Finished => false,
        }
    }

    fn choice_order(&self, enabled: &[usize]) -> (Vec<usize>, bool) {
        let cont = enabled.contains(&self.active);
        let mut order = Vec::with_capacity(enabled.len());
        if cont {
            order.push(self.active);
        }
        order.extend(enabled.iter().copied().filter(|&t| t != self.active));
        (order, cont)
    }

    fn state_dump(&self) -> String {
        let mut out = String::new();
        for (tid, t) in self.threads.iter().enumerate() {
            let s = match &t.state {
                Run::Runnable => "runnable".to_string(),
                Run::BlockedMutex(m) => format!("blocked on mutex #{m}"),
                Run::CondvarWait {
                    cv,
                    deadline_ns,
                    woken,
                } => {
                    format!("waiting on condvar #{cv} (deadline: {deadline_ns:?}, woken: {woken})")
                }
                Run::BlockedJoin(t) => format!("joining thread {t}"),
                Run::Finished => "finished".to_string(),
            };
            out.push_str(&format!("\n  thread {tid}: {s}"));
        }
        out
    }
}

pub(crate) struct Rt {
    sched: StdMutex<Sched>,
    cv: StdCondvar,
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Rt {
    fn new(replay: Vec<Branch>) -> Rt {
        Rt {
            sched: StdMutex::new(Sched {
                threads: Vec::new(),
                mutexes: Vec::new(),
                condvars: Vec::new(),
                active: 0,
                path: replay,
                pos: 0,
                clock_ns: 0,
                abort: false,
                panic_payload: None,
                unfinished: 0,
            }),
            cv: StdCondvar::new(),
            handles: StdMutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Sched> {
        self.sched
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub(crate) fn register_thread(&self) -> usize {
        let mut s = self.lock();
        s.threads.push(ThreadSt {
            state: Run::Runnable,
            result: None,
        });
        s.unfinished += 1;
        s.threads.len() - 1
    }

    pub(crate) fn alloc_mutex(&self) -> usize {
        let mut s = self.lock();
        s.mutexes.push(MutexRec { held_by: None });
        s.mutexes.len() - 1
    }

    pub(crate) fn alloc_condvar(&self) -> usize {
        let mut s = self.lock();
        s.condvars.push(CondvarRec {
            waiters: VecDeque::new(),
        });
        s.condvars.len() - 1
    }

    pub(crate) fn clock_ns(&self) -> u64 {
        self.lock().clock_ns
    }

    fn add_handle(&self, h: std::thread::JoinHandle<()>) {
        self.handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(h);
    }

    /// Picks the next thread to run and wakes it. Called with the
    /// scheduler lock held, at every scheduling point.
    fn pick(&self, s: &mut Sched) {
        if s.unfinished == 0 || s.abort {
            self.cv.notify_all();
            return;
        }
        let enabled: Vec<usize> = (0..s.threads.len()).filter(|&t| s.enabled(t)).collect();
        if enabled.is_empty() {
            s.abort = true;
            if s.panic_payload.is_none() {
                s.panic_payload = Some(Box::new(format!(
                    "loom: deadlock — every unfinished thread is blocked:{}",
                    s.state_dump()
                )));
            }
            self.cv.notify_all();
            return;
        }
        let next = if s.pos < s.path.len() {
            // Replay: take the recorded decision, re-deriving the enabled
            // set as a determinism check.
            let (order, _cont) = s.choice_order(&enabled);
            let b = &s.path[s.pos];
            assert_eq!(
                order, b.order,
                "loom: nondeterministic model — scheduling replay diverged at step {}",
                s.pos
            );
            let tid = b.order[b.chosen];
            s.pos += 1;
            tid
        } else {
            let (order, preemptive_tail) = s.choice_order(&enabled);
            let tid = order[0];
            s.path.push(Branch {
                order,
                chosen: 0,
                preemptive_tail,
            });
            s.pos += 1;
            tid
        };
        s.active = next;
        self.cv.notify_all();
    }

    /// A scheduling point: `update` mutates this thread's state (e.g. to
    /// block it), the scheduler picks the next thread, and the calling
    /// thread parks until it is chosen again.
    fn switch(&self, me: usize, update: impl FnOnce(&mut Sched)) {
        let mut s = self.lock();
        update(&mut s);
        self.pick(&mut s);
        loop {
            if s.abort {
                drop(s);
                panic_any(AbortExecution);
            }
            if s.active == me {
                return;
            }
            s = self
                .cv
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Parks a freshly spawned thread until the scheduler first picks it.
    fn wait_until_scheduled(&self, me: usize) {
        let mut s = self.lock();
        loop {
            if s.abort {
                drop(s);
                panic_any(AbortExecution);
            }
            if s.active == me {
                return;
            }
            s = self
                .cv
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Acquire-or-block, without the leading yield (used on resume paths
    /// that already sat at a scheduling point).
    fn mutex_relock(&self, me: usize, m: usize) {
        loop {
            {
                let mut s = self.lock();
                if s.abort {
                    drop(s);
                    panic_any(AbortExecution);
                }
                if s.mutexes[m].held_by.is_none() {
                    s.mutexes[m].held_by = Some(me);
                    s.threads[me].state = Run::Runnable;
                    return;
                }
            }
            self.switch(me, |s| s.threads[me].state = Run::BlockedMutex(m));
        }
    }

    /// Lock acquisition: a visible operation (yield), then acquire or
    /// block until the holder releases.
    pub(crate) fn mutex_lock(&self, me: usize, m: usize) {
        self.switch(me, |_| {});
        self.mutex_relock(me, m);
    }

    /// Release. Not itself a scheduling point: waiters become enabled and
    /// the branch happens at the releasing thread's next visible
    /// operation (or thread exit), which reaches the same schedules.
    pub(crate) fn mutex_unlock(&self, me: usize, m: usize) {
        let mut s = self.lock();
        debug_assert_eq!(s.mutexes[m].held_by, Some(me), "loom: unlock by non-holder");
        s.mutexes[m].held_by = None;
    }

    /// Condvar wait: atomically release the mutex, enqueue as a waiter,
    /// and park. Returns `true` on the timeout branch (timed waits only),
    /// after advancing the virtual clock to the deadline. Reacquires the
    /// mutex before returning either way.
    pub(crate) fn condvar_wait(
        &self,
        me: usize,
        cv: usize,
        m: usize,
        timeout: Option<Duration>,
    ) -> bool {
        let deadline_ns = timeout.map(|d| {
            let s = self.lock();
            s.clock_ns
                .saturating_add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        });
        self.switch(me, |s| {
            assert_eq!(
                s.mutexes[m].held_by,
                Some(me),
                "loom: condvar wait without holding the mutex"
            );
            s.mutexes[m].held_by = None;
            s.condvars[cv].waiters.push_back(me);
            s.threads[me].state = Run::CondvarWait {
                cv,
                deadline_ns,
                woken: false,
            };
        });
        // Scheduled again: either a notify woke this thread, or (timed
        // waits only) the scheduler chose the timeout branch.
        let timed_out = {
            let mut s = self.lock();
            match s.threads[me].state {
                Run::CondvarWait { woken: true, .. } => {
                    s.threads[me].state = Run::Runnable;
                    false
                }
                Run::CondvarWait {
                    deadline_ns: Some(d),
                    ..
                } => {
                    s.condvars[cv].waiters.retain(|&t| t != me);
                    s.clock_ns = s.clock_ns.max(d);
                    s.threads[me].state = Run::Runnable;
                    true
                }
                _ => unreachable!("loom: condvar waiter scheduled in a non-wait state"),
            }
        };
        self.mutex_relock(me, m);
        timed_out
    }

    pub(crate) fn notify_one(&self, me: usize, cv: usize) {
        self.switch(me, |_| {});
        let mut s = self.lock();
        if let Some(t) = s.condvars[cv].waiters.pop_front() {
            if let Run::CondvarWait { woken, .. } = &mut s.threads[t].state {
                *woken = true;
            }
        }
    }

    pub(crate) fn notify_all(&self, me: usize, cv: usize) {
        self.switch(me, |_| {});
        let mut s = self.lock();
        while let Some(t) = s.condvars[cv].waiters.pop_front() {
            if let Run::CondvarWait { woken, .. } = &mut s.threads[t].state {
                *woken = true;
            }
        }
    }

    /// Yield without a state change (spawn is a visible operation).
    pub(crate) fn yield_point(&self, me: usize) {
        self.switch(me, |_| {});
    }

    /// Block until `target` finishes.
    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        self.switch(me, |s| {
            if !matches!(s.threads[target].state, Run::Finished) {
                s.threads[me].state = Run::BlockedJoin(target);
            }
        });
        let mut s = self.lock();
        s.threads[me].state = Run::Runnable;
    }

    pub(crate) fn take_result(&self, tid: usize) -> Option<Box<dyn Any + Send>> {
        self.lock().threads[tid].result.take()
    }

    fn finish(&self, me: usize, result: std::thread::Result<Box<dyn Any + Send>>) {
        let mut s = self.lock();
        match result {
            Ok(v) => s.threads[me].result = Some(v),
            Err(p) => {
                if !p.is::<AbortExecution>() {
                    if s.panic_payload.is_none() {
                        s.panic_payload = Some(p);
                    }
                    s.abort = true;
                }
            }
        }
        s.threads[me].state = Run::Finished;
        s.unfinished -= 1;
        if s.unfinished == 0 || s.abort {
            self.cv.notify_all();
        } else if s.active == me {
            self.pick(&mut s);
        }
    }

    fn wait_execution_done(&self) {
        let mut s = self.lock();
        while s.unfinished > 0 {
            s = self
                .cv
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn join_os_threads(&self) {
        let handles = std::mem::take(
            &mut *self
                .handles
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for h in handles {
            let _ = h.join();
        }
    }

    fn into_results(&self) -> (Vec<Branch>, Option<Box<dyn Any + Send>>) {
        let mut s = self.lock();
        (std::mem::take(&mut s.path), s.panic_payload.take())
    }
}

/// Runs `f` on a fresh model thread of `rt`, catching panics and handing
/// the outcome to the scheduler.
pub(crate) fn spawn_model_thread<F, T>(rt: Arc<Rt>, tid: usize, f: F)
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let rt2 = Arc::clone(&rt);
    let os = std::thread::Builder::new()
        .name(format!("loom-{tid}"))
        .spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&rt2), tid)));
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                rt2.wait_until_scheduled(tid);
                f()
            }));
            rt2.finish(tid, result.map(|v| Box::new(v) as Box<dyn Any + Send>));
        })
        .expect("loom: failed to spawn an OS thread for a model thread");
    rt.add_handle(os);
}

/// Advances `path` to the next unexplored schedule (depth-first): the
/// deepest decision with an untried sibling within the preemption budget.
/// Returns `false` when the schedule tree is exhausted.
fn advance(path: &mut Vec<Branch>, bound: usize) -> bool {
    while let Some(mut b) = path.pop() {
        let used: usize = path.iter().map(Branch::cost).sum();
        let next = b.chosen + 1;
        // Every sibling beyond index 0 has the same cost, so one budget
        // check covers them all.
        if next < b.order.len() && used + usize::from(b.preemptive_tail) <= bound {
            b.chosen = next;
            path.push(b);
            return true;
        }
    }
    false
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Checks `f` under every schedule of its threads, up to the preemption
/// bound (`LOOM_MAX_PREEMPTIONS`, default 3). Panics (re-raising the
/// model's own panic) on the first failing schedule; detects deadlocks.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let bound = env_u64("LOOM_MAX_PREEMPTIONS", DEFAULT_PREEMPTION_BOUND as u64) as usize;
    let max_iters = env_u64("LOOM_MAX_ITERATIONS", DEFAULT_MAX_ITERATIONS);
    let mut replay: Vec<Branch> = Vec::new();
    let mut iters: u64 = 0;
    loop {
        iters += 1;
        assert!(
            iters <= max_iters,
            "loom: exceeded LOOM_MAX_ITERATIONS={max_iters} executions; \
             shrink the model or raise the cap"
        );
        let rt = Arc::new(Rt::new(replay));
        let t0 = rt.register_thread();
        debug_assert_eq!(t0, 0);
        let g = Arc::clone(&f);
        spawn_model_thread(Arc::clone(&rt), t0, move || g());
        rt.wait_execution_done();
        rt.join_os_threads();
        let (path, payload) = rt.into_results();
        if let Some(p) = payload {
            eprintln!("loom: model failed after {iters} execution(s)");
            resume_unwind(p);
        }
        replay = path;
        if !advance(&mut replay, bound) {
            break;
        }
    }
    if std::env::var("LOOM_LOG").is_ok() {
        eprintln!("loom: explored {iters} execution(s)");
    }
}
