//! Model-checked drop-ins for `std::thread::{spawn, JoinHandle}`.

use crate::rt::{current, spawn_model_thread};
use std::marker::PhantomData;

/// Handle to a spawned model thread; [`JoinHandle::join`] is a scheduling
/// point that blocks (in model time) until the thread finishes.
pub struct JoinHandle<T> {
    tid: usize,
    _t: PhantomData<fn() -> T>,
}

/// Spawns a new model thread. A visible operation: the scheduler may run
/// the child (or anyone else) at the very next scheduling point.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (rt, me) = current();
    let tid = rt.register_thread();
    spawn_model_thread(std::sync::Arc::clone(&rt), tid, f);
    rt.yield_point(me);
    JoinHandle {
        tid,
        _t: PhantomData,
    }
}

impl<T: 'static> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. A panic on
    /// the child aborts the whole execution (re-raised from
    /// [`crate::model`]), so unlike `std` this never returns `Err`.
    pub fn join(self) -> std::thread::Result<T> {
        let (rt, me) = current();
        rt.join_thread(me, self.tid);
        let boxed = rt
            .take_result(self.tid)
            .expect("loom: joined thread left no result");
        Ok(*boxed
            .downcast::<T>()
            .expect("loom: join result had an unexpected type"))
    }
}

/// Yields to the scheduler without blocking: an explicit extra
/// interleaving point.
pub fn yield_now() {
    let (rt, me) = current();
    rt.yield_point(me);
}
