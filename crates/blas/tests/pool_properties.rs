//! Regression tests for the persistent worker pool and workspace arena:
//! global-counter based, so every test in this file serializes on one
//! mutex (and the file is its own test binary — counters are
//! process-global and must not race with unrelated tests).
//!
//! What is pinned here:
//!
//! * **pool reuse** — after warm-up, no OS thread is ever spawned again,
//!   no matter how many kernels dispatch (the whole point of replacing
//!   per-call `std::thread::scope`);
//! * **gate consistency** — every parallel kernel consults the documented
//!   gates in `ft_blas::backend` (`PARALLEL_MIN_VOLUME` for level-3,
//!   `PARALLEL_MIN_ELEMS` for level-2): below-gate shapes never dispatch
//!   to the pool, above-gate shapes always do;
//! * **workspace steady state** — repeated kernels stop allocating scratch
//!   once the arena is warm.

use ft_blas::backend::{PARALLEL_MIN_ELEMS, PARALLEL_MIN_VOLUME};
use ft_blas::{gemm, gemv, ger, pool, syrk, trmm, trsm, with_backend, workspace, Backend};
use ft_blas::{Diag, Side, Trans, Uplo};
use std::sync::Mutex;

/// Serializes the tests in this binary: they all read/compare the
/// process-global pool and workspace counters.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // A previous test panicking while holding the lock must not cascade.
    COUNTER_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Smallest cube side whose volume clears the level-3 gate. Sizes are
/// derived from the constant so gate recalibration cannot silently
/// invalidate this suite.
fn side_above_volume() -> usize {
    let mut s = (PARALLEL_MIN_VOLUME as f64).cbrt().ceil() as usize;
    while s * s * s < PARALLEL_MIN_VOLUME {
        s += 1;
    }
    s
}

/// Largest cube side whose volume stays below the level-3 gate.
fn side_below_volume() -> usize {
    let mut s = side_above_volume();
    while s * s * s >= PARALLEL_MIN_VOLUME {
        s -= 1;
    }
    s
}

/// Smallest square side whose element count clears the level-2 gate.
fn side_above_elems() -> usize {
    let mut s = (PARALLEL_MIN_ELEMS as f64).sqrt().ceil() as usize;
    while s * s < PARALLEL_MIN_ELEMS {
        s += 1;
    }
    s
}

/// A square side comfortably below the level-2 gate.
fn side_below_elems() -> usize {
    let mut s = side_above_elems() - 1;
    while s * s >= PARALLEL_MIN_ELEMS {
        s -= 1;
    }
    s
}

fn gemm_above_gate() {
    let n = side_above_volume();
    let a = ft_matrix::random::uniform(n, n, 1);
    let b = ft_matrix::random::uniform(n, n, 2);
    let mut c = ft_matrix::Matrix::zeros(n, n);
    gemm(
        Trans::No,
        Trans::No,
        1.0,
        &a.as_view(),
        &b.as_view(),
        0.0,
        &mut c.as_view_mut(),
    );
}

fn gemv_above_gate() {
    let n = side_above_elems();
    let a = ft_matrix::random::uniform(n, n, 3);
    let x = vec![1.0; n];
    let mut y = vec![0.0; n];
    gemv(Trans::No, 1.0, &a.as_view(), &x, 0.0, &mut y);
}

#[test]
fn no_thread_spawned_per_kernel_after_warmup() {
    let _g = lock();
    with_backend(Backend::Threaded(4), || {
        // Warm-up: force the pool to its full size for this worker count.
        gemm_above_gate();
        let spawned = pool::spawned_worker_count();
        assert!(
            spawned >= 3,
            "warm-up under Threaded(4) should have populated the pool, got {spawned}"
        );
        let dispatched = pool::dispatch_count();

        // 100+ consecutive above-gate kernels: plenty of dispatches, zero
        // new OS threads. Under the old per-call `thread::scope` design
        // this would have been ≥ 300 spawns.
        for _ in 0..60 {
            gemm_above_gate();
        }
        for _ in 0..60 {
            gemv_above_gate();
        }
        assert!(
            pool::dispatch_count() > dispatched,
            "above-gate kernels must dispatch to the pool"
        );
        assert_eq!(
            pool::spawned_worker_count(),
            spawned,
            "steady-state kernels must never spawn OS threads"
        );
    });
}

/// Runs `op` and reports whether it dispatched any task to the pool.
fn dispatches(op: impl FnOnce()) -> bool {
    let before = pool::dispatch_count();
    op();
    pool::dispatch_count() > before
}

#[test]
fn all_kernels_consult_the_unified_gates() {
    let _g = lock();
    let above = side_above_volume();
    let below = side_below_volume();
    with_backend(Backend::Threaded(4), || {
        // gemm: volume gate (m·n·k vs PARALLEL_MIN_VOLUME).
        let a = ft_matrix::random::uniform(above, above, 11);
        let mut c = ft_matrix::Matrix::zeros(above, above);
        assert!(
            dispatches(|| gemm(
                Trans::No,
                Trans::No,
                1.0,
                &a.as_view(),
                &a.as_view(),
                0.0,
                &mut c.as_view_mut(),
            )),
            "gemm {above}^3 is above PARALLEL_MIN_VOLUME and must fork"
        );
        let s = ft_matrix::random::uniform(below, below, 12);
        let mut cs = ft_matrix::Matrix::zeros(below, below);
        assert!(
            !dispatches(|| gemm(
                Trans::No,
                Trans::No,
                1.0,
                &s.as_view(),
                &s.as_view(),
                0.0,
                &mut cs.as_view_mut(),
            )),
            "gemm {below}^3 is below PARALLEL_MIN_VOLUME and must stay serial"
        );

        // trmm / trsm: volume gate on order²·cols.
        let (to, tc) = (above, above + 7);
        let tri = {
            let mut t = ft_matrix::random::uniform(to, to, 13);
            for i in 0..to {
                t[(i, i)] += to as f64;
            }
            t
        };
        let mut b = ft_matrix::random::uniform(to, tc, 14);
        assert!(
            dispatches(|| trmm(
                Side::Left,
                Uplo::Upper,
                Trans::No,
                Diag::NonUnit,
                1.0,
                &tri.as_view(),
                &mut b.as_view_mut(),
            )),
            "trmm {to}^2·{tc} must fork"
        );
        assert!(
            dispatches(|| trsm(
                Side::Left,
                Uplo::Upper,
                Trans::No,
                Diag::NonUnit,
                1.0,
                &tri.as_view(),
                &mut b.as_view_mut(),
            )),
            "trsm {to}^2·{tc} must fork"
        );
        let tri_s = {
            let mut t = ft_matrix::random::uniform(20, 20, 15);
            for i in 0..20 {
                t[(i, i)] += 20.0;
            }
            t
        };
        let mut bs = ft_matrix::random::uniform(20, 10, 16);
        assert!(
            !dispatches(|| trmm(
                Side::Left,
                Uplo::Upper,
                Trans::No,
                Diag::NonUnit,
                1.0,
                &tri_s.as_view(),
                &mut bs.as_view_mut(),
            )),
            "small trmm must stay serial"
        );
        assert!(
            !dispatches(|| trsm(
                Side::Left,
                Uplo::Upper,
                Trans::No,
                Diag::NonUnit,
                1.0,
                &tri_s.as_view(),
                &mut bs.as_view_mut(),
            )),
            "small trsm must stay serial"
        );

        // syrk: volume gate on n²k/2.
        let (sn, sk) = (above, 2 * above + 1);
        let sa = ft_matrix::random::uniform(sn, sk, 17);
        let mut sc = ft_matrix::Matrix::zeros(sn, sn);
        assert!(
            dispatches(|| syrk(
                Uplo::Upper,
                Trans::No,
                1.0,
                &sa.as_view(),
                0.0,
                &mut sc.as_view_mut(),
            )),
            "syrk {sn}^2·{sk}/2 must fork"
        );
        let ss = ft_matrix::random::uniform(40, 40, 18);
        let mut ssc = ft_matrix::Matrix::zeros(40, 40);
        assert!(
            !dispatches(|| syrk(
                Uplo::Upper,
                Trans::No,
                1.0,
                &ss.as_view(),
                0.0,
                &mut ssc.as_view_mut(),
            )),
            "small syrk must stay serial"
        );

        // gemv / ger: element gate (m·n vs PARALLEL_MIN_ELEMS).
        let ea = side_above_elems();
        let eb = side_below_elems();
        let ga = ft_matrix::random::uniform(ea, ea, 19);
        let gx = vec![1.0; ea];
        let mut gy = vec![0.0; ea];
        assert!(
            dispatches(|| gemv(Trans::No, 1.0, &ga.as_view(), &gx, 0.0, &mut gy)),
            "gemv {ea}x{ea} is above PARALLEL_MIN_ELEMS and must fork"
        );
        assert!(
            dispatches(|| gemv(Trans::Yes, 1.0, &ga.as_view(), &gx, 0.0, &mut gy)),
            "gemv^T {ea}x{ea} must fork"
        );
        let sm = ft_matrix::random::uniform(eb, eb, 20);
        let sx = vec![1.0; eb];
        let mut sy = vec![0.0; eb];
        assert!(
            !dispatches(|| gemv(Trans::No, 1.0, &sm.as_view(), &sx, 0.0, &mut sy)),
            "gemv {eb}x{eb} is below the gate and must stay serial"
        );
        let mut gm = ft_matrix::random::uniform(ea, ea, 21);
        let gu = vec![1.0; ea];
        let gv = vec![1.0; ea];
        assert!(
            dispatches(|| ger(0.5, &gu, &gv, &mut gm.as_view_mut())),
            "ger {ea}x{ea} must fork"
        );
        let mut gms = ft_matrix::random::uniform(64, 64, 22);
        let gus = vec![1.0; 64];
        let gvs = vec![1.0; 64];
        assert!(
            !dispatches(|| ger(0.5, &gus, &gvs, &mut gms.as_view_mut())),
            "small ger must stay serial"
        );
    });

    // Under the serial backend nothing may ever reach the pool.
    with_backend(Backend::Serial, || {
        assert!(
            !dispatches(gemm_above_gate),
            "serial backend must never dispatch, even above the gate"
        );
        assert!(
            !dispatches(gemv_above_gate),
            "serial backend must never dispatch a level-2 kernel"
        );
    });
}

#[test]
fn workspace_reaches_steady_state_across_kernels() {
    let _g = lock();
    // Serial keeps all checkouts on this thread, so the arena counter is
    // exercised deterministically.
    with_backend(Backend::Serial, || {
        // Warm-up: same shape as the measured loop.
        gemm_above_gate();
        gemm_above_gate();
        let before = workspace::growth_allocations();
        for _ in 0..100 {
            gemm_above_gate();
        }
        assert_eq!(
            workspace::growth_allocations(),
            before,
            "steady-state gemm calls must not grow the workspace arena"
        );
    });
}
