//! Trace emitters: aggregate summary, JSONL, and `chrome://tracing` JSON.
//!
//! The workspace deliberately carries no serde; the two JSON shapes emitted
//! here are flat enough that hand-rolled string building (with proper
//! escaping) is simpler than a dependency.

use crate::registry::{counters, gauges};
use crate::span::{totals, Event};
use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a duration/timestamp in microseconds with fixed precision,
/// avoiding exponent notation so every JSON consumer parses it.
fn us(v: f64) -> String {
    format!("{v:.3}")
}

/// Renders `events` as a `chrome://tracing` / Perfetto-compatible JSON
/// object (`{"traceEvents": [...]}`). Wall-clock spans land on pid 1 with
/// their recording thread as tid; simulated-clock events land on pid 2 so
/// the simulated schedule displays as a second process next to the real
/// one. Counters and gauges are appended as process-scoped metadata
/// counters ("C" phase) at the end of the timeline.
pub fn to_chrome_json(events: &[Event]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push_str(",\n");
        }
    };

    // Name the two processes so the viewer labels them.
    for (pid, label) in [(1, "wall-clock"), (2, "simulated")] {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
            json_escape(label)
        );
    }

    let mut max_end = 0.0f64;
    for ev in events {
        let pid = if ev.cat == "sim" { 2 } else { 1 };
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{name}\",\"cat\":\"{cat}\",\"ts\":{ts},\"dur\":{dur}",
            tid = ev.tid,
            name = json_escape(ev.name),
            cat = json_escape(ev.cat),
            ts = us(ev.start_us),
            dur = us(ev.dur_us),
        );
        let mut args: Vec<String> = Vec::new();
        if let Some(a) = ev.arg {
            args.push(format!("\"arg\":{a}"));
        }
        if let Some(c) = ev.ctx {
            args.push(format!("\"job\":{},\"attempt\":{}", c.job_id, c.attempt));
        }
        if !args.is_empty() {
            let _ = write!(out, ",\"args\":{{{}}}", args.join(","));
        }
        out.push('}');
        max_end = max_end.max(ev.start_us + ev.dur_us);
    }

    for (name, value) in counters() {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"C\",\"pid\":1,\"name\":\"{}\",\"ts\":{},\"args\":{{\"value\":{value}}}}}",
            json_escape(name),
            us(max_end),
        );
    }
    for (name, value) in gauges() {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"C\",\"pid\":1,\"name\":\"{}\",\"ts\":{},\"args\":{{\"value\":{value}}}}}",
            json_escape(name),
            us(max_end),
        );
    }

    out.push_str("\n]}\n");
    out
}

/// Renders `events` as JSON Lines: one object per span event, then one
/// `{"counter": ...}` / `{"gauge": ...}` object per registry entry.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        let _ = write!(
            out,
            "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"tid\":{tid},\"start_us\":{ts},\"dur_us\":{dur}",
            name = json_escape(ev.name),
            cat = json_escape(ev.cat),
            tid = ev.tid,
            ts = us(ev.start_us),
            dur = us(ev.dur_us),
        );
        if let Some(a) = ev.arg {
            let _ = write!(out, ",\"arg\":{a}");
        }
        if let Some(c) = ev.ctx {
            let _ = write!(out, ",\"job\":{},\"attempt\":{}", c.job_id, c.attempt);
        }
        out.push_str("}\n");
    }
    for (name, value) in counters() {
        let _ = writeln!(
            out,
            "{{\"counter\":\"{}\",\"value\":{value}}}",
            json_escape(name)
        );
    }
    for (name, value) in gauges() {
        let _ = writeln!(
            out,
            "{{\"gauge\":\"{}\",\"value\":{value}}}",
            json_escape(name)
        );
    }
    out
}

/// Renders an aggregated plain-text summary: one row per span name
/// (count, total ms, mean µs), then the counter and gauge registries.
pub fn summary_string(events: &[Event]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== ft-trace summary ==");

    let agg = totals(events);
    if agg.is_empty() {
        let _ = writeln!(out, "(no span events collected)");
    } else {
        let name_w = agg.iter().map(|t| t.name.len()).max().unwrap_or(4).max(4);
        let _ = writeln!(
            out,
            "{:<name_w$} {:>8} {:>12} {:>12}",
            "span", "count", "total_ms", "mean_us"
        );
        for t in &agg {
            let _ = writeln!(
                out,
                "{:<name_w$} {:>8} {:>12.3} {:>12.3}",
                t.name,
                t.count,
                t.total_us / 1e3,
                t.total_us / t.count as f64,
            );
        }
    }

    let cs = counters();
    let gs = gauges();
    if !cs.is_empty() || !gs.is_empty() {
        let name_w = cs
            .iter()
            .chain(gs.iter())
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(7)
            .max(7);
        let _ = writeln!(out, "{:<name_w$} {:>12}", "counter", "value");
        for (n, v) in cs {
            let _ = writeln!(out, "{n:<name_w$} {v:>12}");
        }
        for (n, v) in gs {
            let _ = writeln!(out, "{n:<name_w$} {v:>12} (gauge)");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Event> {
        vec![
            Event {
                name: "ft.panel",
                cat: "wall",
                arg: Some(3),
                tid: 1,
                start_us: 0.0,
                dur_us: 12.5,
                ctx: None,
            },
            Event {
                name: "device",
                cat: "sim",
                arg: None,
                tid: 2,
                start_us: 5.0,
                dur_us: 7.0,
                ctx: None,
            },
        ]
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn chrome_json_shape() {
        let s = to_chrome_json(&sample());
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"name\":\"ft.panel\""));
        // sim events go to pid 2
        assert!(s.contains("\"pid\":2,\"tid\":2,\"name\":\"device\""));
        assert!(s.contains("\"args\":{\"arg\":3}"));
        assert!(s.trim_end().ends_with("]}"));
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let s = to_jsonl(&sample());
        let span_lines: Vec<&str> = s.lines().filter(|l| l.contains("\"cat\"")).collect();
        assert_eq!(span_lines.len(), 2);
        for l in span_lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn summary_lists_spans() {
        let s = summary_string(&sample());
        assert!(s.contains("ft.panel"));
        assert!(s.contains("device"));
        assert!(s.contains("count"));
    }
}
