//! FTC012 fixture: emits one of the two names the driving test
//! declares; the other declaration must be reported as never emitted.

pub fn tick() {
    counter("fixture.used").incr();
}
