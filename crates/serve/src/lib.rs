#![forbid(unsafe_code)]
//! `ft-serve`: a batched, backpressured reduction service over the FT
//! Hessenberg stack.
//!
//! The crates below this one answer "how do we reduce *one* matrix with
//! transient-error resilience". This crate answers the operational
//! question that follows: how does a *stream* of such reductions — of
//! mixed sizes, priorities, protection levels, and fault exposure — share
//! one machine without losing jobs, blowing past deadlines silently, or
//! giving up on a recoverable run?
//!
//! * **Admission & backpressure** — a bounded, priority-laned queue
//!   ([`BoundedQueue`]) at the front door. [`Service::try_submit`] fails
//!   fast with [`SubmitError::QueueFull`]; [`Service::submit`] blocks
//!   (bounded by a timeout) for a slot. Nothing is ever dropped after
//!   admission: every accepted [`JobHandle`] resolves to exactly one
//!   [`JobResult`].
//! * **Execution** — a fixed set of executor workers, each with a
//!   partitioned slice of the machine as its `ft-blas` backend, running
//!   the full FT driver ([`ft_hessenberg::ft_gehrd_hybrid`]) on a fresh
//!   simulator context per job.
//! * **Deadlines** — absolute, resolved at submission; a job whose
//!   deadline passes while queued (or between retries) resolves to
//!   [`JobStatus::DeadlineMissed`] without burning executor time.
//! * **FT-aware retries** — a run that reports unrecoverable corruption
//!   is re-run under escalated protection ([`RetryPolicy`]: TimingOnly →
//!   Full, `protect_q` on, larger recovery budget, compensated checksums)
//!   with capped exponential backoff before the job is failed — and a
//!   failed job always carries its last [`ft_hessenberg::FtReport`].
//! * **Shutdown** — [`Service::shutdown`] with [`Shutdown::Drain`] (run
//!   everything queued) or [`Shutdown::Abort`] (cancel the queue, finish
//!   only in-flight jobs).
//! * **Observability** — [`Service::stats`] snapshots
//!   ([`ServiceStats`]), mirrored into the `ft-trace` registry as the
//!   `serve.*` counters/gauges.
//! * **Load generation** — [`loadgen`]: a closed-loop, deterministic-mix
//!   driver used by the `serve_load` example and the `BENCH_serve.json`
//!   benchmark.
//!
//! ```
//! use ft_serve::{JobSpec, Service, ServiceConfig, Shutdown};
//!
//! let service = Service::start(ServiceConfig::default());
//! let job = JobSpec::new(ft_matrix::random::uniform(32, 32, 7));
//! let result = service.try_submit(job).unwrap().wait();
//! assert!(result.status.is_completed());
//! service.shutdown(Shutdown::Drain);
//! ```

pub mod job;
pub mod loadgen;
pub mod lock_order;
pub mod metrics;
/// The oneshot rendezvous is an implementation detail, but the loom
/// suites model-check it directly, so it is public under `cfg(loom)`.
#[cfg(loom)]
pub mod oneshot;
#[cfg(not(loom))]
mod oneshot;
pub mod queue;
pub mod retry;
pub mod scheduler;
pub mod stats;
mod sync;

pub use job::{FaultSpec, JobHandle, JobId, JobResult, JobSpec, JobStatus, Priority};
pub use loadgen::{JobOutcome, LoadgenConfig, LoadgenSummary};
pub use metrics::MetricsServer;
pub use queue::{BoundedQueue, SubmitError};
pub use retry::RetryPolicy;
pub use scheduler::{Service, ServiceConfig, Shutdown};
pub use stats::{LaneLatencies, PriorityLatency, ServiceStats};
