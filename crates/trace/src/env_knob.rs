//! Shared parsing for the workspace's `FT_*` environment knobs.
//!
//! Every runtime knob in the workspace follows the same contract: unset or
//! empty means "use the default", values are trimmed before parsing, and a
//! typo falls back to the default rather than crashing a production run.
//! Before this module each consumer re-implemented that contract inline
//! (`FT_BLAS_BACKEND` in `ft-blas`, `FT_TRACE` here, `FT_BENCH_SMOKE` in
//! three bench targets); the `FT_SERVE_*` family goes through these
//! helpers from day one.

use std::time::Duration;

/// Every `FT_*` knob the workspace reads, with a one-line description.
///
/// This table is the single source of truth for knob existence: ft-check
/// (FTC010) fails the build when a knob is read through these helpers
/// but missing here, when a row here is never read, or when this table
/// and the README knob tables drift apart in either direction. Keep the
/// rows sorted by name.
pub const KNOBS: &[(&str, &str)] = &[
    (
        "FT_BENCH_SMOKE",
        "shrink bench matrix sizes for CI smoke runs",
    ),
    (
        "FT_BLAS_BACKEND",
        "force the GEMM backend (`naive`/`blocked`/`ft`)",
    ),
    ("FT_BLAS_SIMD", "cap microkernel ISA (`scalar`/`avx2`)"),
    (
        "FT_GEHRD_LOOKAHEAD",
        "panel lookahead depth for pipelined gehrd",
    ),
    ("FT_SERVE_BACKEND", "default backend for submitted jobs"),
    (
        "FT_SERVE_DEADLINE_MS",
        "per-job deadline; 0 or unset disables",
    ),
    (
        "FT_SERVE_METRICS_ADDR",
        "bind address of the Prometheus endpoint",
    ),
    ("FT_SERVE_QUEUE_CAP", "bounded admission-queue capacity"),
    ("FT_SERVE_WORKERS", "executor worker-thread count"),
    ("FT_TRACE", "enable stderr trace output"),
    (
        "FT_TRACE_RECORDER",
        "flight-recorder ring capacity (events)",
    ),
];

/// The trimmed value of `name`, or `None` when unset or empty.
pub fn raw(name: &str) -> Option<String> {
    match std::env::var(name) {
        Ok(v) => {
            let t = v.trim();
            if t.is_empty() {
                None
            } else {
                Some(t.to_string())
            }
        }
        Err(_) => None,
    }
}

/// Parses `name` with `parser`; `None` when unset, empty, or unparseable
/// (the workspace knob contract: a typo must never crash).
pub fn parse_with<T>(name: &str, parser: impl FnOnce(&str) -> Option<T>) -> Option<T> {
    raw(name).and_then(|v| parser(&v))
}

/// Boolean knob: `true` when set to anything except `0`, `off`, `false`
/// or `no` (case-insensitive). Unset means `false`.
pub fn flag(name: &str) -> bool {
    match raw(name) {
        Some(v) => {
            !(v == "0"
                || v.eq_ignore_ascii_case("off")
                || v.eq_ignore_ascii_case("false")
                || v.eq_ignore_ascii_case("no"))
        }
        None => false,
    }
}

/// Unsigned-integer knob with a default for unset/unparseable values.
pub fn usize_or(name: &str, default: usize) -> usize {
    parse_with(name, |v| v.parse::<usize>().ok()).unwrap_or(default)
}

/// Millisecond duration knob: `None` when unset, unparseable, or `0`
/// (zero means "no limit" for every `FT_SERVE_*` deadline/timeout knob).
pub fn ms_or_none(name: &str) -> Option<Duration> {
    parse_with(name, |v| v.parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env mutation is process-global: each test uses its own unique
    // variable name so parallel execution cannot interleave.

    #[test]
    fn knob_table_is_sorted_and_unique() {
        for pair in KNOBS.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "KNOBS must stay sorted and duplicate-free: {} !< {}",
                pair[0].0,
                pair[1].0
            );
        }
        for (name, desc) in KNOBS {
            assert!(name.starts_with("FT_"), "knob {name} missing FT_ prefix");
            assert!(!desc.is_empty(), "knob {name} needs a description");
        }
    }

    #[test]
    fn raw_trims_and_drops_empty() {
        std::env::set_var("FT_TEST_KNOB_RAW", "  hello ");
        assert_eq!(raw("FT_TEST_KNOB_RAW").as_deref(), Some("hello"));
        std::env::set_var("FT_TEST_KNOB_RAW", "   ");
        assert_eq!(raw("FT_TEST_KNOB_RAW"), None);
        assert_eq!(raw("FT_TEST_KNOB_UNSET_XYZ"), None);
    }

    #[test]
    fn parse_with_falls_back_on_garbage() {
        std::env::set_var("FT_TEST_KNOB_PARSE", "12");
        assert_eq!(
            parse_with("FT_TEST_KNOB_PARSE", |v| v.parse::<u32>().ok()),
            Some(12)
        );
        std::env::set_var("FT_TEST_KNOB_PARSE", "twelve");
        assert_eq!(
            parse_with("FT_TEST_KNOB_PARSE", |v| v.parse::<u32>().ok()),
            None
        );
    }

    #[test]
    fn flag_spellings() {
        for (v, want) in [
            ("1", true),
            ("yes", true),
            ("anything", true),
            ("0", false),
            ("off", false),
            ("OFF", false),
            ("false", false),
            ("no", false),
        ] {
            std::env::set_var("FT_TEST_KNOB_FLAG", v);
            assert_eq!(flag("FT_TEST_KNOB_FLAG"), want, "value {v:?}");
        }
        assert!(!flag("FT_TEST_KNOB_FLAG_UNSET"));
    }

    #[test]
    fn usize_and_ms_defaults() {
        std::env::set_var("FT_TEST_KNOB_USIZE", "7");
        assert_eq!(usize_or("FT_TEST_KNOB_USIZE", 3), 7);
        std::env::set_var("FT_TEST_KNOB_USIZE", "bogus");
        assert_eq!(usize_or("FT_TEST_KNOB_USIZE", 3), 3);

        std::env::set_var("FT_TEST_KNOB_MS", "250");
        assert_eq!(
            ms_or_none("FT_TEST_KNOB_MS"),
            Some(Duration::from_millis(250))
        );
        std::env::set_var("FT_TEST_KNOB_MS", "0");
        assert_eq!(ms_or_none("FT_TEST_KNOB_MS"), None);
        assert_eq!(ms_or_none("FT_TEST_KNOB_MS_UNSET"), None);
    }
}
