//! Fixture-driven coverage for the semantic rules (FTC007–FTC012) and
//! the regression fixture for the PR-5 scanner's test-region hole.
//!
//! Each violating fixture must produce exactly the expected rule at the
//! expected position; each clean twin must produce nothing. Rules that
//! need workspace-global context (lock ranks, knob registry, metric
//! declarations) get it through an explicit [`Ctx`].

use ft_check::{analyze, scan_source, Ctx, Finding, LockRank, Registry};
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).expect("read fixture")
}

/// Analyzes one fixture under a pretend path with an explicit context.
fn run(name: &str, pretend_path: &str, ctx: &Ctx) -> Vec<Finding> {
    analyze(&[(pretend_path.to_string(), fixture(name))], ctx)
}

fn assert_rule_at(findings: &[Finding], rule: &str, line: usize, col: usize) {
    assert_eq!(
        findings.len(),
        1,
        "expected exactly one {rule} finding, got: {findings:#?}"
    );
    assert_eq!(findings[0].rule, rule);
    assert_eq!(
        (findings[0].line, findings[0].col),
        (line, col),
        "wrong position for {rule}: {findings:#?}"
    );
    assert!(
        !findings[0].hint.is_empty(),
        "every finding carries a fix hint"
    );
}

// --- FTC007 ---------------------------------------------------------------

#[test]
fn ftc007_missing_scalar_twin() {
    let f = run(
        "ftc007_no_twin.rs",
        "crates/blas/src/fixture.rs",
        &Ctx::default(),
    );
    assert_rule_at(&f, "FTC007", 18, 12);
    assert!(f[0].message.contains("no scalar twin"), "{}", f[0].message);
}

#[test]
fn ftc007_missing_dispatch_site() {
    let f = run(
        "ftc007_no_dispatch.rs",
        "crates/blas/src/fixture.rs",
        &Ctx::default(),
    );
    assert_rule_at(&f, "FTC007", 12, 12);
    assert!(
        f[0].message.contains("no runtime-dispatch site"),
        "{}",
        f[0].message
    );
}

#[test]
fn ftc007_twin_plus_dispatch_is_clean() {
    let f = run(
        "ftc007_clean.rs",
        "crates/blas/src/fixture.rs",
        &Ctx::default(),
    );
    assert!(f.is_empty(), "clean SIMD shape must pass: {f:#?}");
}

// --- FTC008 ---------------------------------------------------------------

#[test]
fn ftc008_allocation_reachable_from_hot_fn() {
    let f = run(
        "ftc008_hot_alloc.rs",
        "crates/blas/src/fixture.rs",
        &Ctx::default(),
    );
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(f[0].rule, "FTC008");
    assert!(f[0].message.contains("vec!"), "{}", f[0].message);
    assert!(
        f[0].message.contains("1 call away"),
        "the finding names the hop distance: {}",
        f[0].message
    );
}

#[test]
fn ftc008_buffer_reuse_is_clean() {
    let f = run(
        "ftc008_clean.rs",
        "crates/blas/src/fixture.rs",
        &Ctx::default(),
    );
    assert!(
        f.is_empty(),
        "allocation outside the hot call tree is fine: {f:#?}"
    );
}

// --- FTC009 ---------------------------------------------------------------

fn pair_registry() -> Vec<LockRank> {
    vec![
        LockRank {
            path: "crates/serve/src/fixture.rs".to_string(),
            name: "first".to_string(),
            rank: 10,
            line: 1,
        },
        LockRank {
            path: "crates/serve/src/fixture.rs".to_string(),
            name: "second".to_string(),
            rank: 20,
            line: 2,
        },
    ]
}

#[test]
fn ftc009_unregistered_mutex_fails_coverage() {
    let f = run(
        "ftc009_unregistered_mutex.rs",
        "crates/serve/src/fixture.rs",
        &Ctx::default(),
    );
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(f[0].rule, "FTC009");
    assert!(f[0].message.contains("`rogue`"), "{}", f[0].message);
}

#[test]
fn ftc009_acquisition_against_declared_order() {
    let ctx = Ctx {
        lock_order: pair_registry(),
        ..Ctx::default()
    };
    let f = run(
        "ftc009_order_violation.rs",
        "crates/serve/src/fixture.rs",
        &ctx,
    );
    // `good` is silent; `bad` acquires rank 10 while holding rank 20.
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(f[0].rule, "FTC009");
    assert!(
        f[0].message.contains("lock-order violation"),
        "{}",
        f[0].message
    );
    assert!(f[0].message.contains("`first`"), "{}", f[0].message);
    assert_eq!(f[0].line, 20, "anchored at the bad acquisition");
}

#[test]
fn ftc009_out_of_scope_crates_are_ignored() {
    let f = run(
        "ftc009_unregistered_mutex.rs",
        "crates/trace/src/fixture.rs",
        &Ctx::default(),
    );
    assert!(
        f.is_empty(),
        "FTC009 covers only serve/blas lock scope: {f:#?}"
    );
}

// --- FTC010 ---------------------------------------------------------------

#[test]
fn ftc010_knob_read_missing_from_registry() {
    let f = run(
        "ftc010_undeclared_knob.rs",
        "crates/serve/src/fixture.rs",
        &Ctx::default(),
    );
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(f[0].rule, "FTC010");
    assert!(
        f[0].message.contains("FT_FIXTURE_PHANTOM_KNOB"),
        "{}",
        f[0].message
    );
}

#[test]
fn ftc010_registry_and_readme_drift_both_directions() {
    let ctx = Ctx {
        knobs: vec![("FT_DEAD_KNOB".to_string(), 3)],
        knobs_rel: "crates/trace/src/env_knob.rs".to_string(),
        readme_knobs: Some(vec![("FT_README_ONLY".to_string(), 9)]),
        readme_rel: "README.md".to_string(),
        ..Ctx::default()
    };
    // An empty source: nothing reads FT_DEAD_KNOB, the README invents
    // FT_README_ONLY, and FT_DEAD_KNOB never reaches the README.
    let f = analyze(
        &[("crates/serve/src/fixture.rs".to_string(), String::new())],
        &ctx,
    );
    let msgs: Vec<&str> = f.iter().map(|f| f.message.as_str()).collect();
    assert_eq!(f.len(), 3, "{f:#?}");
    assert!(f.iter().all(|f| f.rule == "FTC010"), "{f:#?}");
    assert!(
        msgs.iter().any(|m| m.contains("never read")),
        "dead registry row reported: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("missing from the README")),
        "registry → README direction reported: {msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("FT_README_ONLY") && m.contains("does not declare")),
        "README → registry direction reported: {msgs:?}"
    );
}

#[test]
fn ftc010_declared_and_documented_knob_is_clean() {
    let ctx = Ctx {
        knobs: vec![("FT_FIXTURE_DECLARED_KNOB".to_string(), 3)],
        knobs_rel: "crates/trace/src/env_knob.rs".to_string(),
        readme_knobs: Some(vec![("FT_FIXTURE_DECLARED_KNOB".to_string(), 1)]),
        readme_rel: "README.md".to_string(),
        ..Ctx::default()
    };
    let f = run(
        "ftc010_declared_knob.rs",
        "crates/serve/src/fixture.rs",
        &ctx,
    );
    assert!(f.is_empty(), "all four directions agree: {f:#?}");
}

// --- FTC011 ---------------------------------------------------------------

#[test]
fn ftc011_panic_within_worker_radius() {
    let f = run(
        "ftc011_worker_panic.rs",
        "crates/serve/examples/worker.rs",
        &Ctx::default(),
    );
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(f[0].rule, "FTC011");
    assert!(
        f[0].message.contains("2 call hops"),
        "names the distance: {}",
        f[0].message
    );
    assert!(
        f[0].message.contains("`run_job`"),
        "names the root: {}",
        f[0].message
    );
}

#[test]
fn ftc011_radius_is_two_hops() {
    let f = run(
        "ftc011_out_of_radius.rs",
        "crates/serve/examples/worker.rs",
        &Ctx::default(),
    );
    assert!(
        f.is_empty(),
        "three hops out is FTC004's territory, not FTC011's: {f:#?}"
    );
}

// --- FTC012 ---------------------------------------------------------------

#[test]
fn ftc012_declared_but_never_emitted() {
    let mut registry = Registry::default();
    for (name, line) in [("fixture.used", 4), ("fixture.unused", 5)] {
        registry.counters.insert(name.to_string());
        registry
            .declared
            .push(("counter".to_string(), name.to_string(), line));
    }
    let ctx = Ctx {
        registry,
        names_rel: "crates/trace/src/names.rs".to_string(),
        ..Ctx::default()
    };
    let f = run(
        "ftc012_declared_unused.rs",
        "crates/serve/src/fixture.rs",
        &ctx,
    );
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(f[0].rule, "FTC012");
    assert!(f[0].message.contains("fixture.unused"), "{}", f[0].message);
    assert_eq!(
        (f[0].path.as_str(), f[0].line),
        ("crates/trace/src/names.rs", 5),
        "anchored at the dead declaration"
    );
}

#[test]
fn ftc012_every_declared_name_emitted_is_clean() {
    let mut registry = Registry::default();
    registry.counters.insert("fixture.used".to_string());
    registry.histograms.insert("fixture.latency_us".to_string());
    registry
        .declared
        .push(("counter".to_string(), "fixture.used".to_string(), 4));
    registry
        .declared
        .push(("histogram".to_string(), "fixture.latency_us".to_string(), 7));
    let ctx = Ctx {
        registry,
        names_rel: "crates/trace/src/names.rs".to_string(),
        ..Ctx::default()
    };
    let f = run("ftc012_all_emitted.rs", "crates/serve/src/fixture.rs", &ctx);
    assert!(f.is_empty(), "both kinds emitted: {f:#?}");
}

// --- regression: the old scanner's test-region hole -----------------------

#[test]
fn bare_test_attr_exempts_the_fn_regardless_of_layout() {
    // The PR-5 line scanner only exempted code when `#[cfg(` and `test`
    // shared a source line, so this fixture's bare-`#[test]` fn leaked
    // its `thread::spawn` (FTC002), `.unwrap()` (FTC004), and
    // unregistered `counter("…")` (FTC006) into findings. The item pass
    // must keep it silent.
    let f = scan_source(
        "crates/serve/src/fixture.rs",
        &fixture("regression_test_attr_only.rs"),
        &Registry::default(),
    );
    assert!(f.is_empty(), "a #[test] fn is test code: {f:#?}");
}

#[test]
fn tests_flag_lints_the_exempted_code() {
    // The same fixture under `--tests` (include_tests) gives up its
    // exemptions: CI runs this lane warn-only to keep test hygiene
    // visible without gating merges on it.
    let ctx = Ctx {
        include_tests: true,
        ..Ctx::default()
    };
    let f = run(
        "regression_test_attr_only.rs",
        "crates/serve/src/fixture.rs",
        &ctx,
    );
    assert!(
        f.iter().any(|f| f.rule == "FTC002"),
        "thread::spawn surfaces under --tests: {f:#?}"
    );
    assert!(
        f.iter().any(|f| f.rule == "FTC004"),
        "unwrap surfaces under --tests: {f:#?}"
    );
}
