//! FTC008 fixture: a `// ft-check: hot` fn reaching an allocation one
//! call away.

// ft-check: hot
pub fn hot_entry(x: &mut [f64]) {
    helper(x);
}

fn helper(x: &mut [f64]) {
    let scratch = vec![0.0; x.len()];
    for (v, s) in x.iter_mut().zip(&scratch) {
        *v += *s;
    }
}
