//! Live metrics exposition: one consistent snapshot of every registered
//! counter, gauge, and histogram, rendered to the Prometheus text
//! format.
//!
//! The snapshot is pull-model: nothing is aggregated on the hot path
//! beyond what the registry atomics already hold; [`MetricsSnapshot::collect`]
//! reads them all at scrape time. Before reading it folds the flight
//! recorder's internal tallies into the registry (`trace.recorder.dropped`
//! counter, `trace.recorder.occupancy` gauge), so a scrape sees recorder
//! health without the recorder's hot path ever touching the registry.
//!
//! Prometheus naming: registry names are dot-separated (`serve.retries`);
//! the exposition mangles `.` to `_` (`serve_retries`). Histograms render
//! as Prometheus *summaries* — `{quantile="…"}` sample lines from the
//! HDR sketch plus `_sum` / `_count` — because the sketch's bucket edges
//! are not the cumulative `le` buckets a native Prometheus histogram
//! expects.

use crate::hist::HistSnapshot;
use crate::{counter, gauge};
use std::fmt::Write as _;
use std::sync::Mutex;

/// Flight-recorder health at snapshot time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Events currently retained across all rings.
    pub occupancy: usize,
    /// Number of per-thread rings.
    pub rings: usize,
    /// Slots per ring.
    pub capacity: usize,
    /// Total events overwritten (drop-oldest).
    pub dropped: u64,
}

/// A point-in-time copy of the whole metrics surface.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` for every registered gauge.
    pub gauges: Vec<(&'static str, u64)>,
    /// `(name, snapshot)` for every registered histogram.
    pub histograms: Vec<(&'static str, HistSnapshot)>,
    /// Flight-recorder occupancy.
    pub recorder: RecorderStats,
}

// Serializes the recorder→registry sync so two concurrent scrapes
// cannot double-add the dropped delta.
static SYNC: Mutex<()> = Mutex::new(());

impl MetricsSnapshot {
    /// Collects the current value of every registered metric.
    pub fn collect() -> MetricsSnapshot {
        let (occupancy, rings, capacity, dropped) = crate::recorder::stats();
        {
            let _g = SYNC.lock().unwrap();
            let c = counter("trace.recorder.dropped");
            let seen = c.get();
            if dropped > seen {
                c.add(dropped - seen);
            }
            gauge("trace.recorder.occupancy").set(occupancy as u64);
        }
        MetricsSnapshot {
            counters: crate::counters(),
            gauges: crate::gauges(),
            histograms: crate::histograms(),
            recorder: RecorderStats {
                occupancy,
                rings,
                capacity,
                dropped,
            },
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for &(name, value) in &self.counters {
            let fam = mangle(name);
            let _ = writeln!(out, "# TYPE {fam} counter");
            let _ = writeln!(out, "{fam} {value}");
        }
        for &(name, value) in &self.gauges {
            let fam = mangle(name);
            let _ = writeln!(out, "# TYPE {fam} gauge");
            let _ = writeln!(out, "{fam} {value}");
        }
        for (name, h) in &self.histograms {
            let fam = mangle(name);
            let _ = writeln!(out, "# TYPE {fam} summary");
            for (label, q) in [
                ("0.5", 0.50),
                ("0.95", 0.95),
                ("0.99", 0.99),
                ("0.999", 0.999),
            ] {
                let _ = writeln!(out, "{fam}{{quantile=\"{label}\"}} {}", h.quantile(q));
            }
            let _ = writeln!(out, "{fam}_sum {}", h.sum);
            let _ = writeln!(out, "{fam}_count {}", h.count);
        }
        out
    }
}

/// Prometheus metric-name mangling: `.` → `_` (registry names are
/// already `[a-z0-9._]` only, enforced by the `names` tests).
pub fn mangle(name: &str) -> String {
    name.replace('.', "_")
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn snapshot_renders_all_metric_classes() {
        counter("test.metrics.c").add(3);
        gauge("test.metrics.g").set(7);
        let h = crate::histogram("test.metrics.h");
        h.record(100);
        h.record(200);
        let snap = MetricsSnapshot::collect();
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE test_metrics_c counter"));
        assert!(text.contains("test_metrics_g 7"));
        assert!(text.contains("# TYPE test_metrics_h summary"));
        assert!(text.contains("test_metrics_h{quantile=\"0.999\"}"));
        assert!(text.contains("test_metrics_h_count 2"));
        // Recorder health is folded into the registry at collect time.
        assert!(text.contains("trace_recorder_occupancy"));
        assert!(text.contains("trace_recorder_dropped"));
    }

    #[test]
    fn every_family_line_is_well_formed() {
        counter("test.metrics.wf").incr();
        let text = MetricsSnapshot::collect().to_prometheus();
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let name_end = line.find(['{', ' ']).expect("family then value");
            let name = &line[..name_end];
            assert!(
                !name.is_empty() && !name.contains('.'),
                "bad family in {line:?}"
            );
            let value = line.rsplit(' ').next().expect("value");
            assert!(value.parse::<u64>().is_ok(), "bad value in {line:?}");
        }
    }
}
