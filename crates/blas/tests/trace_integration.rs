//! Integration contract between the threaded backend and `ft-trace`:
//! spans opened on pool workers close, the pool/workspace counters are
//! single-sourced from the registry, and disabling tracing keeps the
//! level-3 hot path free of span-sink writes.
//!
//! These tests share process-global trace state (`ft_trace::set_mode`),
//! so each one takes `TRACE_LOCK` to serialize against its siblings.

use ft_blas::{gemm, pool, with_backend, workspace, Backend, Trans};
use ft_trace::TraceMode;
use std::sync::Mutex;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// A gemm big enough to clear `PARALLEL_MIN_VOLUME` (128³), so the
/// threaded backend genuinely forks onto the pool.
fn forking_gemm() {
    let n = 160;
    let a = ft_matrix::random::uniform(n, n, 11);
    let b = ft_matrix::random::uniform(n, n, 12);
    let mut c = ft_matrix::Matrix::zeros(n, n);
    with_backend(Backend::Threaded(4), || {
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            &a.as_view(),
            &b.as_view(),
            0.0,
            &mut c.as_view_mut(),
        );
    });
    std::hint::black_box(c.as_slice()[0]);
}

#[test]
fn spans_open_and_close_across_pool_workers() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    ft_trace::set_mode(TraceMode::Summary);
    let mark = ft_trace::mark();

    forking_gemm();

    let events = ft_trace::events_since(mark);
    ft_trace::set_mode(TraceMode::Off);
    let _ = ft_trace::take_events();

    // Events only reach the sink when a guard *drops*, so every event here
    // is by construction a closed span with a well-formed interval.
    let dispatches: Vec<_> = events
        .iter()
        .filter(|e| e.name == "pool.dispatch")
        .collect();
    let tasks: Vec<_> = events.iter().filter(|e| e.name == "pool.task").collect();
    assert!(
        !dispatches.is_empty(),
        "threaded gemm above the volume gate must dispatch onto the pool"
    );
    assert!(
        !tasks.is_empty(),
        "worker-side pool.task spans must close and land in the sink"
    );
    for ev in &events {
        assert!(ev.dur_us >= 0.0, "negative duration on {}", ev.name);
        assert!(ev.start_us.is_finite());
        assert_eq!(ev.cat, "wall");
    }
    // Worker spans run on pool threads, never on the caller's.
    let caller = ft_trace::current_tid();
    assert!(tasks.iter().all(|e| e.tid != caller));
    assert!(dispatches.iter().all(|e| e.tid == caller));
    // Each dispatch records how many tasks it fanned out (≥ 2 by
    // definition of the threaded path), and those workers all reported in.
    let fanned: i64 = dispatches.iter().map(|e| e.arg.unwrap_or(0)).sum();
    assert!(fanned >= 2);
}

#[test]
fn pool_and_workspace_counters_are_single_sourced() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    ft_trace::set_mode(TraceMode::Off);

    let dispatch_before = ft_trace::counter("pool.dispatch").get();
    forking_gemm();
    let dispatch_after = ft_trace::counter("pool.dispatch").get();

    // The pool's public accessors and the registry are the same storage —
    // the ad-hoc bench probes are gone.
    assert_eq!(pool::dispatch_count(), dispatch_after);
    assert_eq!(
        pool::spawned_worker_count() as u64,
        ft_trace::counter("pool.spawn").get()
    );
    assert!(
        dispatch_after > dispatch_before,
        "a forking gemm must bump the dispatch counter even with tracing off"
    );
    assert_eq!(
        workspace::growth_allocations(),
        ft_trace::counter("workspace.growth").get()
    );
    // And the registry snapshot exposes them under the documented names.
    let names: Vec<&str> = ft_trace::counters().iter().map(|(n, _)| *n).collect();
    for expected in ["pool.spawn", "pool.dispatch", "workspace.growth"] {
        assert!(names.contains(&expected), "missing counter {expected}");
    }
}

#[test]
fn trace_off_means_zero_span_sink_writes_on_hot_path() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    ft_trace::set_mode(TraceMode::Off);

    let events_before = ft_trace::span_event_count();
    for _ in 0..3 {
        forking_gemm();
    }
    assert_eq!(
        ft_trace::span_event_count(),
        events_before,
        "FT_TRACE off must not push a single event from the level-3 hot path"
    );
}
