//! Compile-time trait assertions for every type that crosses the service
//! boundary.
//!
//! The service moves job specs into worker threads and hands results back
//! across them, so the whole configuration vocabulary of the lower crates
//! must be `Send + Sync` (and `Clone + Debug`, so specs can be stamped out
//! and logged). These are compile-time facts — if a later change adds an
//! `Rc` or a raw pointer to any of these types, this file stops
//! compiling, which is the point.

use std::fmt::Debug;

fn send_sync<T: Send + Sync>() {}
fn clone_debug<T: Clone + Debug>() {}
fn send_sync_static<T: Send + Sync + 'static>() {}

#[test]
fn configuration_types_are_send_sync_clone_debug() {
    // The lower-crate configuration vocabulary carried inside a JobSpec.
    send_sync::<ft_hessenberg::FtConfig>();
    clone_debug::<ft_hessenberg::FtConfig>();
    send_sync::<ft_hessenberg::HybridConfig>();
    clone_debug::<ft_hessenberg::HybridConfig>();
    send_sync::<ft_hessenberg::ThresholdPolicy>();
    clone_debug::<ft_hessenberg::ThresholdPolicy>();
    send_sync::<ft_fault::CampaignConfig>();
    clone_debug::<ft_fault::CampaignConfig>();
    send_sync::<ft_fault::FaultPlan>();
    clone_debug::<ft_fault::FaultPlan>();
    send_sync::<ft_hybrid::CostModel>();
    clone_debug::<ft_hybrid::CostModel>();
    send_sync::<ft_blas::Backend>();
    clone_debug::<ft_blas::Backend>();
    send_sync::<ft_matrix::Matrix>();
    clone_debug::<ft_matrix::Matrix>();
}

#[test]
fn service_types_are_send_sync() {
    // What crosses the submission boundary must be movable into workers
    // and waitable from any thread, with no lifetime ties to the caller.
    send_sync_static::<ft_serve::JobSpec>();
    clone_debug::<ft_serve::JobSpec>();
    send_sync_static::<ft_serve::JobHandle>();
    clone_debug::<ft_serve::JobHandle>();
    send_sync_static::<ft_serve::JobResult>();
    send_sync_static::<ft_serve::Service>();
    send_sync_static::<ft_serve::ServiceConfig>();
    clone_debug::<ft_serve::ServiceConfig>();
    send_sync_static::<ft_serve::ServiceStats>();
    clone_debug::<ft_serve::ServiceStats>();
    send_sync_static::<ft_serve::LoadgenSummary>();
    clone_debug::<ft_serve::LoadgenSummary>();
    send_sync_static::<ft_serve::BoundedQueue<ft_serve::JobSpec>>();
    send_sync_static::<ft_serve::SubmitError>();
    clone_debug::<ft_serve::SubmitError>();
}

#[test]
fn report_types_are_send() {
    // Results (including failure reports) travel from worker to caller.
    send_sync_static::<ft_hessenberg::FtReport>();
    clone_debug::<ft_hessenberg::FtReport>();
    send_sync_static::<ft_hessenberg::FailureReason>();
    clone_debug::<ft_hessenberg::FailureReason>();
    send_sync_static::<ft_serve::JobStatus>();
    clone_debug::<ft_serve::JobStatus>();
}
