//! Level-3 BLAS: matrix–matrix operations.
//!
//! `gemm` is the performance-critical kernel (the paper's trailing-matrix
//! updates are almost entirely GEMM) and comes in three implementations
//! selected by [`GemmAlgo`]: a reference triple loop (test oracle), a
//! cache-blocked packed kernel, and a threaded variant that splits the
//! result into row blocks over the persistent worker pool
//! ([`crate::pool`]) — data-race free by construction (each worker owns
//! a disjoint `MatViewMut`) and bit-identical to the serial kernel by
//! the contract in [`crate::backend`]. `trmm`, `trsm` and `syrk` gain
//! the same pooled split when the active [`crate::backend::Backend`] is
//! threaded.

mod gemm;
mod syrk;
mod trmm;
mod trsm;

pub use gemm::{gemm, gemm_ref, gemm_threaded, gemm_with_algo, GemmAlgo};
pub use syrk::syrk;
pub use trmm::trmm;
pub use trsm::trsm;
