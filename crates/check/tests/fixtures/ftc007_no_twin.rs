//! FTC007 fixture: a `#[target_feature]` kernel with a runtime
//! dispatcher but no scalar twin anywhere in the file.

pub enum Isa {
    Scalar,
    Avx2,
}

pub fn dispatch(isa: Isa, x: &mut [f64]) {
    if let Isa::Avx2 = isa {
        // SAFETY: fixture dispatcher, gated on the resolved Isa.
        unsafe { widen_avx2(x) };
    }
}

#[target_feature(enable = "avx2")]
// SAFETY: caller checked the avx2 feature.
pub unsafe fn widen_avx2(x: &mut [f64]) {
    for v in x {
        *v *= 2.0;
    }
}
