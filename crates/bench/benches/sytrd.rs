//! Criterion bench: symmetric tridiagonal reduction — unblocked `sytd2`
//! vs blocked `sytrd` (the §VII extension's substrate), plus the
//! fault-tolerant wrapper's overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ft_fault::FaultPlan;
use ft_hessenberg::tridiag::{ft_sytd2, FtTridiagConfig};
use ft_lapack::sytrd::{sytd2, sytrd};

fn bench_sytrd(c: &mut Criterion) {
    let mut group = c.benchmark_group("sytrd");
    group.sample_size(10);
    for &n in &[96usize, 192] {
        let a = ft_matrix::random::symmetric(n, 7);
        group.throughput(Throughput::Elements((4 * n * n * n / 3) as u64));

        group.bench_with_input(BenchmarkId::new("unblocked", n), &n, |bench, _| {
            bench.iter(|| {
                let mut w = a.clone();
                std::hint::black_box(sytd2(&mut w).d[0]);
            });
        });
        group.bench_with_input(BenchmarkId::new("blocked_nb16", n), &n, |bench, _| {
            bench.iter(|| {
                let mut w = a.clone();
                std::hint::black_box(sytrd(&mut w, 16).d[0]);
            });
        });
        group.bench_with_input(BenchmarkId::new("ft_unblocked", n), &n, |bench, _| {
            bench.iter(|| {
                let out = ft_sytd2(&a, &FtTridiagConfig::default(), &mut FaultPlan::none());
                std::hint::black_box(out.result.d[0]);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sytrd);
criterion_main!(benches);
