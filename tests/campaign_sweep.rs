//! Exhaustive fault-injection sweep: every (area × moment) cell of the
//! paper's evaluation protocol, across panel widths, must end in a
//! correct factorization.

use ft_hess_repro::fault::{Campaign, CampaignConfig};
use ft_hess_repro::hessenberg::verify::ResidualReport;
use ft_hess_repro::prelude::*;

fn run_campaign(n: usize, nb: usize, magnitude: Option<f64>, seed: u64) {
    let config = CampaignConfig {
        n,
        nb,
        regions: vec![Region::Area1, Region::Area2, Region::Area3],
        moments: Moment::ALL.to_vec(),
        trials: 2,
        seed,
        magnitude,
    };
    let campaign = Campaign::generate(config);
    assert!(!campaign.trials.is_empty());
    let a = ft_hess_repro::matrix::random::uniform(n, n, seed ^ 0xABCD);

    for trial in &campaign.trials {
        let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
        let mut plan = trial.plan.clone();
        let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(nb), &mut ctx, &mut plan);
        assert_eq!(plan.applied().len(), 1, "exactly one injection per trial");
        let f = out.result.unwrap();
        let r = ResidualReport::compute(&a, &f.q(), &f.h());
        assert!(
            r.factorization < 1e-11 && r.orthogonality < 1e-11 && r.hessenberg_defect == 0.0,
            "{} {} trial {} at ({},{}): residuals {r:?}, report: recoveries={} q_fixes={}",
            trial.region.label(),
            trial.moment.label(),
            trial.trial_index,
            trial.fault.fault.row,
            trial.fault.fault.col,
            out.report.recoveries.len(),
            out.report.q_corrections.len()
        );
    }
}

#[test]
fn additive_faults_all_cells_nb16() {
    run_campaign(96, 16, Some(0.5), 1);
}

#[test]
fn additive_faults_all_cells_nb32() {
    run_campaign(128, 32, Some(0.25), 2);
}

#[test]
fn additive_faults_odd_nb() {
    // nb that does not divide n - 2: ragged final panel.
    run_campaign(100, 24, Some(0.4), 3);
}

#[test]
fn bitflip_faults_all_cells() {
    // Random mantissa bit flips (20..52): realistic silent corruptions of
    // widely varying magnitude.
    run_campaign(96, 16, None, 4);
}

#[test]
fn tiny_faults_below_threshold_are_harmless() {
    // A perturbation below the detection threshold may go unnoticed — but
    // then it must also be too small to matter. This probes the
    // false-negative edge the paper's threshold discussion worries about.
    let n = 96usize;
    let a = ft_hess_repro::matrix::random::uniform(n, n, 5);
    let mut plan = FaultPlan::one(1, Fault::add(50, 60, 1e-13));
    let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
    let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(16), &mut ctx, &mut plan);
    let f = out.result.unwrap();
    let r = ResidualReport::compute(&a, &f.q(), &f.h());
    assert!(r.factorization < 1e-11, "{r:?}");
}

#[test]
fn faults_in_final_iteration() {
    // The last panel has a degenerate trailing matrix; recovery there
    // exercises the smallest code paths.
    let n = 96usize;
    let nb = 16;
    let iters = (n - 2usize).div_ceil(nb);
    let a = ft_hess_repro::matrix::random::uniform(n, n, 6);
    let mut plan = FaultPlan::one(iters - 1, Fault::add(n - 2, n - 1, 0.9));
    let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
    let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(nb), &mut ctx, &mut plan);
    let f = out.result.unwrap();
    let r = ResidualReport::compute(&a, &f.q(), &f.h());
    assert!(r.acceptable(1e-11), "{r:?}");
}

#[test]
fn q_checksum_ablation_device_placement_still_correct() {
    // The ablation variant (Q checksums on the device stream) changes
    // timing, never numerics.
    let n = 96usize;
    let a = ft_hess_repro::matrix::random::uniform(n, n, 7);
    let cfg = FtConfig {
        q_checksums_on_host: false,
        ..FtConfig::with_nb(16)
    };
    let mut plan = FaultPlan::one(2, Fault::add(70, 30, 0.3)); // Area 3
    let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
    let out = ft_gehrd_hybrid(&a, &cfg, &mut ctx, &mut plan);
    assert!(!out.report.q_corrections.is_empty());
    let f = out.result.unwrap();
    let r = ResidualReport::compute(&a, &f.q(), &f.h());
    assert!(r.acceptable(1e-11), "{r:?}");
}

#[test]
fn protection_can_be_disabled() {
    // With protect_q = false an Area-3 fault goes unrepaired — the
    // negative control that shows the Q checksums are load-bearing.
    let n = 96usize;
    let a = ft_hess_repro::matrix::random::uniform(n, n, 8);
    let cfg = FtConfig {
        protect_q: false,
        ..FtConfig::with_nb(16)
    };
    let mut plan = FaultPlan::one(2, Fault::add(70, 10, 5.0)); // deep in Q storage
    let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
    let out = ft_gehrd_hybrid(&a, &cfg, &mut ctx, &mut plan);
    let f = out.result.unwrap();
    let r = ResidualReport::compute(&a, &f.q(), &f.h());
    assert!(
        r.orthogonality > 1e-12,
        "without Q protection the damage must show: {r:?}"
    );
}
