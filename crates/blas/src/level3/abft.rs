//! Online ABFT: checksum encode and verify fused into the blocked GEMM.
//!
//! The classic ABFT pipeline (encode row/column checksums, run the
//! kernel, re-sum `C`, compare) makes three extra passes over memory.
//! Following FT-GEMM on x86 CPUs (arXiv 2305.02444) and "Anatomy of
//! High-Performance GEMM with Online Fault Tolerance" (arXiv 2305.01024),
//! this module rides those sums on memory traffic the kernel already
//! pays for:
//!
//! * the **base** sums of `β·C` are taken during the `β`-scaling pass;
//! * the **predicted** update sums come for free from the packed panels:
//!   `pack_a` accumulates `asum[p] = Σ_i op(A)(i,p)` during packing and
//!   `bsum[band][p] = Σ_{j ∈ band} op(B)(p,j)` is taken from the packed
//!   (cache-hot) `B` panels, so
//!   `colpred[j] = Σ_p asum[p]·op(B)(p,j)` and
//!   `rowpred[band][i] = Σ_p op(A)(i,p)·bsum[band][p]` fall out of one
//!   extra multiply-add per packed element;
//! * the **fresh** sums of the finished `C` are taken in a block epilogue
//!   on the final `pc` pass, while the block is still cache-warm.
//!
//! In exact arithmetic `colnew = colbase + α·colpred` (and the row
//! analogue); a transient flip in stored `C` breaks exactly one row and
//! one column residual, which [`locate`] resolves to a position and a
//! signed delta — the same deficit-matching scheme as
//! `ft-hessenberg::recovery::locate_errors`.
//!
//! **Determinism.** Verification is per *band* of [`ABFT_BAND`] columns —
//! a fixed partition independent of the worker count. Each band is
//! computed serially by one worker in a fixed loop order, and the
//! cross-band row-sum reduction runs serially in ascending band order, so
//! the residuals (and therefore detection decisions) are bit-identical
//! for every thread count, matching the kernel's own determinism
//! contract. Every fused sum pass dispatches through an `avx2`-enabled
//! wrapper (same safe loop body, so identical bits, just wider code) —
//! measured overhead on one AVX2 core is ≈ 5–7 % at `n = 512` and
//! ≈ 4 % at `n = 1024`, shrinking with size.

use super::gemm::{self, check_dims, op_col_slice, KC};
use super::microkernel::{self, Isa, MR, NR};
use crate::backend;
use crate::flops::{model, record};
use crate::pool::{self, ScopedTask};
use crate::types::Trans;
use crate::workspace::{self, Scratch};
use ft_matrix::{MatView, MatViewMut};

/// Verification band width in columns. Fixed (never derived from the
/// thread count) so detection is deterministic; 256 columns keeps the
/// dominant fused term (`rowpred`, `m·k·n/ABFT_BAND` multiply-adds) near
/// `1/256` of the kernel's work while still bounding how much state a
/// single flip can contaminate and leaving one region per worker at the
/// paper's target sizes.
pub const ABFT_BAND: usize = 256;

/// Options for the fused-ABFT GEMM entry points.
#[derive(Clone, Copy, Debug)]
pub struct AbftOptions {
    /// Residual significance threshold. `None` derives a scale-aware
    /// bound `32·ε·max(m,n,k)·scale` from the checksum magnitudes.
    pub tol: Option<f64>,
    /// Correct located errors in place (`C[i,j] −= delta`). When `false`
    /// the report still carries the located errors.
    pub correct: bool,
}

impl Default for AbftOptions {
    fn default() -> Self {
        AbftOptions {
            tol: None,
            correct: true,
        }
    }
}

/// One located error in the output `C`: position and signed deviation of
/// the stored value from the checksum-consistent value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AbftError {
    /// Row in `C`.
    pub row: usize,
    /// Column in `C`.
    pub col: usize,
    /// `stored − correct`.
    pub delta: f64,
}

/// Outcome of a fused-ABFT GEMM.
#[derive(Clone, Debug)]
pub struct AbftReport {
    /// Number of residual deficits that fired (0 on a clean run). When
    /// the pattern was resolvable this equals `errors.len()`.
    pub detected: usize,
    /// Number of elements corrected in place.
    pub corrected: usize,
    /// `false` when deficits fired but the pattern was ambiguous (the
    /// rectangle case) or one-sided; the caller must fall back to a
    /// heavier recovery path (re-execution or the driver's iteration
    ///-level reversal).
    pub resolved: bool,
    /// The located errors (empty when unresolved or clean).
    pub errors: Vec<AbftError>,
    /// The residual threshold actually used.
    pub tol: f64,
}

impl AbftReport {
    fn clean(tol: f64) -> AbftReport {
        AbftReport {
            detected: 0,
            corrected: 0,
            resolved: true,
            errors: Vec::new(),
            tol,
        }
    }
}

/// A fault to inject into stored `C` *between* the final microkernel
/// store and the fused fresh-sum epilogue — the exact window a transient
/// memory flip occupies. Test-only in spirit, but kept in the public API
/// so integration suites and benches can drive the detector end to end.
#[derive(Clone, Copy, Debug)]
pub struct AbftInject {
    /// Row in `C`.
    pub row: usize,
    /// Column in `C`.
    pub col: usize,
    /// Added to the stored value.
    pub delta: f64,
}

/// The fused checksum accumulator threaded through
/// [`gemm::gemm_block_serial`]. One sink covers one *region* — a
/// band-aligned run of columns handled by one worker — so the kernel
/// packs `A` once per `pc` block no matter how many verification bands
/// the region spans. Row aggregates stay partitioned per fixed
/// [`ABFT_BAND`] band *inside* the region (the determinism granularity);
/// `asum`/`bsum` are small per-`pc`-block buffers owned by the sink.
pub(super) struct AbftSink<'s> {
    /// Runtime-detected ISA: the fused sum passes dispatch through
    /// `avx2`-enabled wrappers exactly like the microkernel, so the same
    /// safe loop bodies compile to 256-bit code (identical per-lane
    /// operations, hence identical bits — only wider).
    isa: Isa,
    /// Global column offset of this region within the full `C` (always a
    /// multiple of [`ABFT_BAND`]; injection coordinates are global,
    /// everything else is region-local).
    col0: usize,
    /// Rows of `C` — the length of each row-aggregate segment.
    m: usize,
    colbase: &'s mut [f64],
    colnew: &'s mut [f64],
    colpred: &'s mut [f64],
    /// Row aggregates: one `3·m` segment per band covered by the region,
    /// laid out `[base | new | pred]` in ascending band order (the same
    /// global layout the verify tail reduces over).
    rows: &'s mut [f64],
    /// Per-`pc`-block packed-operand sums: `asum` spans the block's inner
    /// dimension, `bsum` holds one `KC` segment per band of the region.
    asum: Scratch,
    bsum: Scratch,
    inject: &'s [AbftInject],
}

impl<'s> AbftSink<'s> {
    /// Offset of band-local `bl`'s row segment (`+0` base, `+m` new,
    /// `+2m` pred).
    #[inline(always)]
    fn band_rows(&self, bl: usize) -> usize {
        bl * 3 * self.m
    }

    /// Scales `C ← β·C` exactly as `gemm::scale_c` would (same elementwise
    /// operations, hence the same bits) while accumulating the base row
    /// and column sums of the scaled matrix, row sums per band.
    pub(super) fn scale_and_base(&mut self, beta: f64, c: &mut MatViewMut<'_>) {
        #[cfg(target_arch = "x86_64")]
        if matches!(self.isa, Isa::Avx2) {
            // SAFETY: `Isa::Avx2` is only produced by `resolve` after
            // runtime detection confirmed the `avx2` CPU feature.
            return unsafe { self.scale_and_base_avx2(beta, c) };
        }
        self.scale_and_base_body(beta, c);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    // SAFETY: caller must ensure the CPU supports `avx2`; only the
    // `Isa::Avx2` dispatch arm (runtime-detected) calls this.
    unsafe fn scale_and_base_avx2(&mut self, beta: f64, c: &mut MatViewMut<'_>) {
        self.scale_and_base_body(beta, c);
    }

    #[inline(always)]
    fn scale_and_base_body(&mut self, beta: f64, c: &mut MatViewMut<'_>) {
        if beta == 0.0 {
            // Base sums are identically zero (the aggregate scratch is
            // checked out zero-filled), so only `C` needs clearing.
            c.fill(0.0);
            self.colbase.fill(0.0);
            return;
        }
        for j in 0..c.cols() {
            let seg = self.band_rows(j / ABFT_BAND);
            let col = c.col_mut(j);
            if beta == 1.0 {
                let mut s = 0.0;
                for (i, &v) in col.iter().enumerate() {
                    s += v;
                    self.rows[seg + i] += v;
                }
                self.colbase[j] = s;
            } else {
                let mut s = 0.0;
                for (i, v) in col.iter_mut().enumerate() {
                    *v *= beta;
                    let x = *v;
                    s += x;
                    self.rows[seg + i] += x;
                }
                self.colbase[j] = s;
            }
        }
    }

    /// Resets the per-`pc`-block packed-panel sums.
    pub(super) fn begin_block(&mut self, kc: usize) {
        self.asum[..kc].fill(0.0);
        self.bsum.fill(0.0);
    }

    /// Accumulates the packed-`A` column sums for this `pc` block:
    /// `asum[p] += Σ_r op(A)(i,p)` over the rows of the just-packed
    /// block, read back cache-hot (accumulates across `ic` blocks).
    /// Per-panel `MR` chains in ascending panel order — the same
    /// association as summing during the pack itself.
    pub(super) fn accum_asum(&mut self, mc: usize, kc: usize, abuf: &[f64]) {
        #[cfg(target_arch = "x86_64")]
        if matches!(self.isa, Isa::Avx2) {
            // SAFETY: see `scale_and_base` — runtime-detected feature.
            return unsafe { self.accum_asum_avx2(mc, kc, abuf) };
        }
        self.accum_asum_body(mc, kc, abuf);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    // SAFETY: caller must ensure the CPU supports `avx2`; only the
    // `Isa::Avx2` dispatch arm (runtime-detected) calls this.
    unsafe fn accum_asum_avx2(&mut self, mc: usize, kc: usize, abuf: &[f64]) {
        self.accum_asum_body(mc, kc, abuf);
    }

    #[inline(always)]
    fn accum_asum_body(&mut self, mc: usize, kc: usize, abuf: &[f64]) {
        for pi in 0..mc.div_ceil(MR) {
            let panel = &abuf[pi * MR * kc..(pi + 1) * MR * kc];
            let seg = &mut self.asum[..kc];
            for (sp, row) in seg.iter_mut().zip(panel.chunks_exact(MR)) {
                let mut s = 0.0;
                for &v in row {
                    s += v;
                }
                *sp += s;
            }
        }
    }

    /// Accumulates the packed-`B` row sums per verification band:
    /// `bsum[band][p] += Σ_{j ∈ band} op(B)(p,j)`, read from the packed
    /// panels while they are cache-hot.
    ///
    /// **Canonical grouping.** The floating-point association is fixed as
    /// groups of `NR` columns anchored at each *band's* start — never at
    /// the packed panels, whose alignment shifts with the region
    /// partition (i.e. with the worker count). A canonical group
    /// straddling a packed-panel boundary is reassembled from both
    /// panels, element order strictly `j`-ascending, so `bsum` is
    /// bit-identical for every region partition.
    pub(super) fn accum_bsum(&mut self, jc: usize, nc: usize, kc: usize, bbuf: &[f64]) {
        #[cfg(target_arch = "x86_64")]
        if matches!(self.isa, Isa::Avx2) {
            // SAFETY: see `scale_and_base` — runtime-detected feature.
            return unsafe { self.accum_bsum_avx2(jc, nc, kc, bbuf) };
        }
        self.accum_bsum_body(jc, nc, kc, bbuf);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    // SAFETY: caller must ensure the CPU supports `avx2`; only the
    // `Isa::Avx2` dispatch arm (runtime-detected) calls this.
    unsafe fn accum_bsum_avx2(&mut self, jc: usize, nc: usize, kc: usize, bbuf: &[f64]) {
        self.accum_bsum_body(jc, nc, kc, bbuf);
    }

    #[inline(always)]
    fn accum_bsum_body(&mut self, jc: usize, nc: usize, kc: usize, bbuf: &[f64]) {
        let b0 = jc / ABFT_BAND;
        let b1 = (jc + nc - 1) / ABFT_BAND;
        for bl in b0..=b1 {
            let band_lo = (bl * ABFT_BAND).max(jc);
            let band_hi = ((bl + 1) * ABFT_BAND).min(jc + nc);
            let seg = &mut self.bsum[bl * KC..bl * KC + kc];
            let mut g0 = band_lo;
            while g0 < band_hi {
                let g1 = (g0 + NR).min(band_hi);
                // Region-local panel coordinates of the group's columns
                // (`jc`-relative panel grid). A canonical group spans at
                // most two packed panels because both grids have pitch NR;
                // `chunks_exact(NR)` walks the `p` rows with a
                // compile-time row length, so the short fold chains
                // unroll without per-`p` bounds checks.
                let lj0 = g0 - jc;
                let lj1 = g1 - 1 - jc;
                let pj_a = lj0 / NR;
                let pj_b = lj1 / NR;
                let ca = lj0 % NR;
                if pj_a == pj_b {
                    let width = g1 - g0;
                    let panel = &bbuf[pj_a * NR * kc..(pj_a + 1) * NR * kc];
                    if width == NR {
                        for (sp, row) in seg.iter_mut().zip(panel.chunks_exact(NR)) {
                            let mut s = 0.0;
                            for &v in row {
                                s += v;
                            }
                            *sp += s;
                        }
                    } else {
                        for (sp, row) in seg.iter_mut().zip(panel.chunks_exact(NR)) {
                            let mut s = 0.0;
                            for &v in &row[ca..ca + width] {
                                s += v;
                            }
                            *sp += s;
                        }
                    }
                } else {
                    let tail = (g1 - g0) - (NR - ca);
                    let pa = &bbuf[pj_a * NR * kc..(pj_a + 1) * NR * kc];
                    let pb = &bbuf[pj_b * NR * kc..(pj_b + 1) * NR * kc];
                    for ((sp, ra), rb) in seg
                        .iter_mut()
                        .zip(pa.chunks_exact(NR))
                        .zip(pb.chunks_exact(NR))
                    {
                        let mut s = 0.0;
                        for &v in &ra[ca..] {
                            s += v;
                        }
                        for &v in &rb[..tail] {
                            s += v;
                        }
                        *sp += s;
                    }
                }
                g0 = g1;
            }
        }
    }

    /// Folds one packed-`A` block into the predicted row sums of every
    /// band in the current `jc` window:
    /// `rowpred[band][i] += Σ_p op(A)(i,p)·bsum[band][p]`. The loop runs
    /// `p` outermost with an `MR`-lane accumulator — the lanes are
    /// independent FMA chains, so this vectorizes while performing the
    /// exact additions (in the exact order) of the naive `r`-outer nest.
    pub(super) fn accum_rowpred(
        &mut self,
        ic: usize,
        mc: usize,
        kc: usize,
        abuf: &[f64],
        jc: usize,
        nc: usize,
    ) {
        #[cfg(target_arch = "x86_64")]
        if matches!(self.isa, Isa::Avx2) {
            // SAFETY: see `scale_and_base` — runtime-detected feature.
            return unsafe { self.accum_rowpred_avx2(ic, mc, kc, abuf, jc, nc) };
        }
        self.accum_rowpred_body(ic, mc, kc, abuf, jc, nc);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    // SAFETY: caller must ensure the CPU supports `avx2`; only the
    // `Isa::Avx2` dispatch arm (runtime-detected) calls this.
    unsafe fn accum_rowpred_avx2(
        &mut self,
        ic: usize,
        mc: usize,
        kc: usize,
        abuf: &[f64],
        jc: usize,
        nc: usize,
    ) {
        self.accum_rowpred_body(ic, mc, kc, abuf, jc, nc);
    }

    #[inline(always)]
    fn accum_rowpred_body(
        &mut self,
        ic: usize,
        mc: usize,
        kc: usize,
        abuf: &[f64],
        jc: usize,
        nc: usize,
    ) {
        let b0 = jc / ABFT_BAND;
        let b1 = (jc + nc - 1) / ABFT_BAND;
        // Bands are folded in pairs so each pass over the packed block
        // feeds two accumulator sets — half the cache traffic of one
        // band-at-a-time sweeps. Per (band, row) the additions still run
        // in ascending `p`, so the result is bit-identical either way.
        let mut bl = b0;
        while bl <= b1 {
            let paired = bl < b1;
            let pred0 = self.band_rows(bl) + 2 * self.m;
            let pred1 = if paired {
                self.band_rows(bl + 1) + 2 * self.m
            } else {
                pred0
            };
            for pi in 0..mc.div_ceil(MR) {
                let ib = pi * MR;
                let h = MR.min(mc - ib);
                let panel = &abuf[pi * MR * kc..(pi + 1) * MR * kc];
                let mut acc0 = [0.0f64; MR];
                let mut acc1 = [0.0f64; MR];
                if paired {
                    let bs0 = &self.bsum[bl * KC..bl * KC + kc];
                    let bs1 = &self.bsum[(bl + 1) * KC..(bl + 1) * KC + kc];
                    for (p, (&bv0, &bv1)) in bs0.iter().zip(bs1).enumerate() {
                        let row = &panel[p * MR..p * MR + MR];
                        for (r, &av) in row.iter().enumerate() {
                            acc0[r] += av * bv0;
                            acc1[r] += av * bv1;
                        }
                    }
                } else {
                    let bs0 = &self.bsum[bl * KC..bl * KC + kc];
                    for (p, &bv0) in bs0.iter().enumerate() {
                        let row = &panel[p * MR..p * MR + MR];
                        for (a, &av) in acc0.iter_mut().zip(row) {
                            *a += av * bv0;
                        }
                    }
                }
                for (r, &a) in acc0.iter().take(h).enumerate() {
                    self.rows[pred0 + ic + ib + r] += a;
                }
                if paired {
                    for (r, &a) in acc1.iter().take(h).enumerate() {
                        self.rows[pred1 + ic + ib + r] += a;
                    }
                }
            }
            bl += if paired { 2 } else { 1 };
        }
    }

    /// Folds one packed-`B` block into the predicted column sums:
    /// `colpred[j] += Σ_p asum[p]·op(B)(p,j)`. Called after the `ic` loop,
    /// when `asum` covers every row block of this `pc` block. Same
    /// `p`-outer / `NR`-lane interchange as [`Self::accum_rowpred`]
    /// (zero-padded lanes accumulate zeros and are discarded).
    pub(super) fn accum_colpred(&mut self, jc: usize, nc: usize, kc: usize, bbuf: &[f64]) {
        #[cfg(target_arch = "x86_64")]
        if matches!(self.isa, Isa::Avx2) {
            // SAFETY: see `scale_and_base` — runtime-detected feature.
            return unsafe { self.accum_colpred_avx2(jc, nc, kc, bbuf) };
        }
        self.accum_colpred_body(jc, nc, kc, bbuf);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    // SAFETY: caller must ensure the CPU supports `avx2`; only the
    // `Isa::Avx2` dispatch arm (runtime-detected) calls this.
    unsafe fn accum_colpred_avx2(&mut self, jc: usize, nc: usize, kc: usize, bbuf: &[f64]) {
        self.accum_colpred_body(jc, nc, kc, bbuf);
    }

    #[inline(always)]
    fn accum_colpred_body(&mut self, jc: usize, nc: usize, kc: usize, bbuf: &[f64]) {
        for pj in 0..nc.div_ceil(NR) {
            let jb = pj * NR;
            let w = NR.min(nc - jb);
            let panel = &bbuf[pj * NR * kc..(pj + 1) * NR * kc];
            let mut acc = [0.0f64; NR];
            for (p, &av) in self.asum[..kc].iter().enumerate() {
                let row = &panel[p * NR..p * NR + NR];
                for (a, &bv) in acc.iter_mut().zip(row) {
                    *a += av * bv;
                }
            }
            for (cx, &a) in acc.iter().take(w).enumerate() {
                self.colpred[jc + jb + cx] += a;
            }
        }
    }

    /// Fresh-sum epilogue for one finished `mc × nc` block of `C` (final
    /// `pc` block only): re-reads the block while it is still cache-warm
    /// and folds it into the fresh row/column sums. Row sums ride
    /// contiguous `mc`-long vector adds; the column fold uses a striped
    /// 4-lane accumulator with a fixed combine tree, so the association
    /// is identical in the scalar and AVX2 builds and independent of the
    /// region partition. Injected faults landing in this block are
    /// written to memory *first*, so the fused detector sees exactly what
    /// a post-store flip would produce.
    pub(super) fn block_fresh_sums(
        &mut self,
        c: &mut MatViewMut<'_>,
        ic: usize,
        mc: usize,
        jc: usize,
        nc: usize,
    ) {
        #[cfg(target_arch = "x86_64")]
        if matches!(self.isa, Isa::Avx2) {
            // SAFETY: see `scale_and_base` — runtime-detected feature.
            return unsafe { self.block_fresh_sums_avx2(c, ic, mc, jc, nc) };
        }
        self.block_fresh_sums_body(c, ic, mc, jc, nc);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    // SAFETY: caller must ensure the CPU supports `avx2`; only the
    // `Isa::Avx2` dispatch arm (runtime-detected) calls this.
    unsafe fn block_fresh_sums_avx2(
        &mut self,
        c: &mut MatViewMut<'_>,
        ic: usize,
        mc: usize,
        jc: usize,
        nc: usize,
    ) {
        self.block_fresh_sums_body(c, ic, mc, jc, nc);
    }

    #[inline(always)]
    fn block_fresh_sums_body(
        &mut self,
        c: &mut MatViewMut<'_>,
        ic: usize,
        mc: usize,
        jc: usize,
        nc: usize,
    ) {
        for inj in self.inject {
            if inj.col < self.col0 {
                continue;
            }
            let lj = inj.col - self.col0;
            if lj >= jc && lj < jc + nc && inj.row >= ic && inj.row < ic + mc {
                let old = c.at(inj.row, lj);
                c.set(inj.row, lj, old + inj.delta);
            }
        }
        for lj in jc..jc + nc {
            let seg = self.band_rows(lj / ABFT_BAND) + self.m;
            let col = &c.col(lj)[ic..ic + mc];
            let rseg = &mut self.rows[seg + ic..seg + ic + mc];
            for (r, &v) in rseg.iter_mut().zip(col) {
                *r += v;
            }
            let mut acc = [0.0f64; 4];
            let mut chunks = col.chunks_exact(4);
            for ch in chunks.by_ref() {
                for (a, &v) in acc.iter_mut().zip(ch) {
                    *a += v;
                }
            }
            let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
            for &v in chunks.remainder() {
                s += v;
            }
            self.colnew[lj] += s;
        }
    }

    /// Degenerate update (`α = 0` or an empty inner dimension): `C` is
    /// unchanged past the `β` scaling, so the fresh sums equal the base
    /// sums by definition.
    pub(super) fn finish_no_update(&mut self) {
        self.colnew.copy_from_slice(self.colbase);
        let m = self.m;
        for bl in 0..self.rows.len() / (3 * m) {
            let seg = &mut self.rows[bl * 3 * m..bl * 3 * m + 2 * m];
            let (base, new) = seg.split_at_mut(m);
            new.copy_from_slice(base);
        }
    }
}

/// Everything one worker region needs: a band-aligned run of columns of
/// `C` plus its disjoint slices of the shared aggregate scratch (`rows`
/// holds the region's per-band `[base|new|pred]` segments).
struct RegionUnit<'s> {
    col0: usize,
    view: MatViewMut<'s>,
    colbase: &'s mut [f64],
    colnew: &'s mut [f64],
    colpred: &'s mut [f64],
    rows: &'s mut [f64],
}

#[allow(clippy::too_many_arguments)]
fn run_region(
    unit: RegionUnit<'_>,
    isa: Isa,
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &MatView<'_>,
    b: &MatView<'_>,
    beta: f64,
    m: usize,
    k: usize,
    inject: &[AbftInject],
) {
    let RegionUnit {
        col0,
        mut view,
        colbase,
        colnew,
        colpred,
        rows,
    } = unit;
    let bw = view.cols();
    let nbands = bw.div_ceil(ABFT_BAND);
    let mut sink = AbftSink {
        isa,
        col0,
        m,
        colbase,
        colnew,
        colpred,
        rows,
        asum: workspace::scratch(KC),
        bsum: workspace::scratch(nbands * KC),
        inject,
    };
    let bv = op_col_slice(transb, b, col0, bw, k);
    gemm::gemm_block_serial(
        isa,
        transa,
        transb,
        alpha,
        a,
        &bv,
        beta,
        &mut view,
        Some(&mut sink),
    );
}

/// `C ← α·op(A)·op(B) + β·C` with the online-ABFT detector fused into the
/// blocked kernel. The numerical result is **bit-identical** to
/// [`gemm::gemm_blocked`] / `gemm_threaded` on a clean run — the fused
/// sums only read values the plain kernel also produces.
#[allow(clippy::too_many_arguments)] // standard BLAS gemm signature + options
pub fn gemm_ft(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &MatView<'_>,
    b: &MatView<'_>,
    beta: f64,
    c: &mut MatViewMut<'_>,
    opts: AbftOptions,
) -> AbftReport {
    gemm_ft_with_inject(transa, transb, alpha, a, b, beta, c, opts, &[])
}

/// [`gemm_ft`] with fault injection into stored `C` between the final
/// store and the fused fresh-sum epilogue (see [`AbftInject`]).
#[allow(clippy::too_many_arguments)] // standard BLAS gemm signature + options
pub fn gemm_ft_with_inject(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &MatView<'_>,
    b: &MatView<'_>,
    beta: f64,
    c: &mut MatViewMut<'_>,
    opts: AbftOptions,
    inject: &[AbftInject],
) -> AbftReport {
    let (m, n, k) = check_dims(transa, transb, a, b, c);
    record(model::gemm(m, n, k));
    if m == 0 || n == 0 {
        return AbftReport::clean(opts.tol.unwrap_or(0.0));
    }
    let isa = microkernel::resolve_isa();
    let bands = n.div_ceil(ABFT_BAND);
    let workers = backend::fork_threads(m.saturating_mul(n).saturating_mul(k.max(1)));

    // One scratch checkout holds every aggregate: three `n`-length column
    // arrays (base / new / predicted) followed by three `m`-length row
    // arrays *per band* (row sums are partial per band and reduced
    // serially afterwards).
    let mut ws = workspace::scratch(3 * n + 3 * bands * m);
    {
        let (colws, rowws) = ws.split_at_mut(3 * n);
        let (colbase_all, colrest) = colws.split_at_mut(n);
        let (colnew_all, colpred_all) = colrest.split_at_mut(n);

        // Carve one band-aligned region per worker: a run of whole
        // verification bands of `C`, the matching column-aggregate
        // slices, and the run's private per-band row segments. Each
        // region runs the blocked kernel once, so `A` is packed once per
        // `pc` block regardless of how many bands the region spans —
        // the region → worker split affects scheduling only, never
        // results: every band's aggregates are computed by exactly one
        // worker in a fixed loop order.
        let ntasks = workers.min(bands).max(1);
        let nb_base = bands / ntasks;
        let nb_rem = bands % ntasks;
        let mut units: Vec<RegionUnit<'_>> = Vec::with_capacity(ntasks);
        let mut crest = c.rb_mut();
        let mut cb_rest: &mut [f64] = colbase_all;
        let mut cn_rest: &mut [f64] = colnew_all;
        let mut cp_rest: &mut [f64] = colpred_all;
        let mut row_rest: &mut [f64] = rowws;
        let mut j0 = 0usize;
        for r in 0..ntasks {
            let nb = nb_base + usize::from(r < nb_rem);
            let bw = (nb * ABFT_BAND).min(n - j0);
            let (view, ctail) = crest.split_at_col(bw);
            crest = ctail;
            let (colbase, t1) = cb_rest.split_at_mut(bw);
            cb_rest = t1;
            let (colnew, t2) = cn_rest.split_at_mut(bw);
            cn_rest = t2;
            let (colpred, t3) = cp_rest.split_at_mut(bw);
            cp_rest = t3;
            let (rows, r1) = row_rest.split_at_mut(3 * nb * m);
            row_rest = r1;
            units.push(RegionUnit {
                col0: j0,
                view,
                colbase,
                colnew,
                colpred,
                rows,
            });
            j0 += bw;
        }

        let tasks: Vec<ScopedTask<'_>> = units
            .into_iter()
            .map(|unit| -> ScopedTask<'_> {
                Box::new(move || {
                    run_region(unit, isa, transa, transb, alpha, a, b, beta, m, k, inject);
                })
            })
            .collect();
        pool::run_scoped(tasks);
    }

    // ---- Verify / locate / correct (serial tail) --------------------
    let _span = ft_trace::span!("blas.abft");
    let (colws, rowws) = ws.split_at_mut(3 * n);
    let (colbase, colrest) = colws.split_at(n);
    let (colnew, colpred) = colrest.split_at(n);

    // Reduce the per-band row aggregates in ascending band order; the
    // residual is additive across bands, so partial residuals sum to the
    // full-row residual deterministically.
    let row_resid = |i: usize| -> f64 {
        let mut d = 0.0;
        for bi in 0..bands {
            let seg = &rowws[bi * 3 * m..(bi + 1) * 3 * m];
            d += seg[m + i] - alpha.mul_add(seg[2 * m + i], seg[i]);
        }
        d
    };
    let col_resid = |j: usize| -> f64 { colnew[j] - alpha.mul_add(colpred[j], colbase[j]) };

    let tol = opts.tol.unwrap_or_else(|| {
        let mut scale = 1.0f64;
        for j in 0..n {
            scale = scale
                .max(colnew[j].abs())
                .max(alpha.mul_add(colpred[j], colbase[j]).abs());
        }
        32.0 * f64::EPSILON * (m.max(n).max(k)) as f64 * scale
    });

    let mut row_def: Vec<(usize, f64)> = Vec::new();
    let mut col_def: Vec<(usize, f64)> = Vec::new();
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // deliberate: NaN counts as exceeded
    for i in 0..m {
        let d = row_resid(i);
        if !(d.abs() <= tol) {
            row_def.push((i, d));
        }
    }
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // deliberate: NaN counts as exceeded
    for j in 0..n {
        let d = col_resid(j);
        if !(d.abs() <= tol) {
            col_def.push((j, d));
        }
    }

    if row_def.is_empty() && col_def.is_empty() {
        return AbftReport::clean(tol);
    }
    let detected = row_def.len().max(col_def.len());
    let (errors, resolved) = locate(row_def, col_def, tol);
    ft_trace::counter("abft.detected").add(detected as u64);

    let mut corrected = 0usize;
    if opts.correct && resolved {
        for e in &errors {
            let old = c.at(e.row, e.col);
            c.set(e.row, e.col, old - e.delta);
        }
        corrected = errors.len();
        ft_trace::counter("abft.corrected").add(corrected as u64);
    }
    AbftReport {
        detected,
        corrected,
        resolved,
        errors,
        tol,
    }
}

/// Matches row deficits against column deficits — the same scheme as
/// `ft-hessenberg::recovery::locate_errors`: a single deficient row (or
/// column) attributes every error on the other axis to it; scattered
/// errors are peeled by unique magnitude matches; equal-magnitude
/// rectangles are unresolvable by construction.
fn locate(
    row_def: Vec<(usize, f64)>,
    col_def: Vec<(usize, f64)>,
    tol: f64,
) -> (Vec<AbftError>, bool) {
    match (row_def.len(), col_def.len()) {
        (0, 0) => (Vec::new(), true),
        (1, _) => {
            let (r, rd) = row_def[0];
            let errors: Vec<AbftError> = col_def
                .iter()
                .map(|&(j, d)| AbftError {
                    row: r,
                    col: j,
                    delta: d,
                })
                .collect();
            let sum: f64 = errors.iter().map(|e| e.delta).sum();
            let resolved = !col_def.is_empty() && (sum - rd).abs() <= tol.max(1e-8 * rd.abs());
            (errors, resolved)
        }
        (_, 1) => {
            let (cj, cd) = col_def[0];
            let errors: Vec<AbftError> = row_def
                .iter()
                .map(|&(i, d)| AbftError {
                    row: i,
                    col: cj,
                    delta: d,
                })
                .collect();
            let sum: f64 = errors.iter().map(|e| e.delta).sum();
            let resolved = !row_def.is_empty() && (sum - cd).abs() <= tol.max(1e-8 * cd.abs());
            (errors, resolved)
        }
        // One-sided deficits cannot be attributed to an element.
        (0, _) | (_, 0) => (Vec::new(), false),
        _ => peel_matches(row_def, col_def, tol),
    }
}

fn peel_matches(
    mut rows: Vec<(usize, f64)>,
    mut cols: Vec<(usize, f64)>,
    tol: f64,
) -> (Vec<AbftError>, bool) {
    let mut errors = Vec::new();
    let match_tol = |a: f64, b: f64| (a - b).abs() <= tol.max(1e-9 * a.abs().max(b.abs()));
    loop {
        if rows.is_empty() && cols.is_empty() {
            return (errors, true);
        }
        if rows.is_empty() != cols.is_empty() {
            return (errors, false);
        }
        let mut progress = false;
        'outer: for ri in 0..rows.len() {
            let (r, rd) = rows[ri];
            let candidates: Vec<usize> = (0..cols.len())
                .filter(|&ci| match_tol(rd, cols[ci].1))
                .collect();
            if candidates.len() == 1 {
                let ci = candidates[0];
                let (cj, _cd) = cols[ci];
                errors.push(AbftError {
                    row: r,
                    col: cj,
                    delta: rd,
                });
                rows.remove(ri);
                cols.remove(ci);
                progress = true;
                break 'outer;
            }
        }
        if !progress {
            // The rectangle ambiguity: every row deficit matches 0 or ≥2
            // column deficits.
            return (errors, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level3::{gemm_blocked, gemm_threaded};
    use ft_matrix::Matrix;

    fn bits_eq(a: &Matrix, b: &Matrix) -> bool {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn clean_run_is_bit_identical_to_plain_kernel() {
        for &(m, n, k) in &[(30usize, 40usize, 50usize), (257, 300, 70), (64, 129, 5)] {
            let a = ft_matrix::random::uniform(m, k, 31);
            let b = ft_matrix::random::uniform(k, n, 32);
            let c0 = ft_matrix::random::uniform(m, n, 33);
            let mut c_plain = c0.clone();
            gemm_blocked(
                Trans::No,
                Trans::No,
                1.25,
                &a.as_view(),
                &b.as_view(),
                -0.5,
                &mut c_plain.as_view_mut(),
            );
            let mut c_ft = c0.clone();
            let report = gemm_ft(
                Trans::No,
                Trans::No,
                1.25,
                &a.as_view(),
                &b.as_view(),
                -0.5,
                &mut c_ft.as_view_mut(),
                AbftOptions::default(),
            );
            assert!(report.resolved && report.detected == 0, "{report:?}");
            assert!(bits_eq(&c_plain, &c_ft), "{m}x{n}x{k}");
        }
    }

    #[test]
    fn single_injected_flip_is_located_and_corrected() {
        let (m, n, k) = (90usize, 150usize, 60usize);
        let a = ft_matrix::random::uniform(m, k, 41);
        let b = ft_matrix::random::uniform(k, n, 42);
        let c0 = ft_matrix::random::uniform(m, n, 43);
        let mut truth = c0.clone();
        gemm_blocked(
            Trans::No,
            Trans::No,
            1.0,
            &a.as_view(),
            &b.as_view(),
            1.0,
            &mut truth.as_view_mut(),
        );
        let mut c = c0.clone();
        let report = gemm_ft_with_inject(
            Trans::No,
            Trans::No,
            1.0,
            &a.as_view(),
            &b.as_view(),
            1.0,
            &mut c.as_view_mut(),
            AbftOptions::default(),
            &[AbftInject {
                row: 37,
                col: 141,
                delta: 0.75,
            }],
        );
        assert!(report.resolved, "{report:?}");
        assert_eq!(report.detected, 1);
        assert_eq!(report.corrected, 1);
        assert_eq!(report.errors.len(), 1);
        assert_eq!((report.errors[0].row, report.errors[0].col), (37, 141));
        assert!((report.errors[0].delta - 0.75).abs() < 1e-9, "{report:?}");
        // The located delta absorbs the clean-run rounding residue of the
        // checksums, so correction restores the element to within that
        // residue — not bitwise.
        assert!(
            ft_matrix::max_abs_diff(&truth, &c) < 1e-9,
            "correction must restore the flipped element"
        );
    }

    #[test]
    fn scattered_flips_across_bands_are_corrected() {
        let (m, n, k) = (70usize, 300usize, 40usize);
        let a = ft_matrix::random::uniform(m, k, 51);
        let b = ft_matrix::random::uniform(k, n, 52);
        let mut truth = Matrix::zeros(m, n);
        gemm_blocked(
            Trans::No,
            Trans::No,
            1.0,
            &a.as_view(),
            &b.as_view(),
            0.0,
            &mut truth.as_view_mut(),
        );
        let mut c = Matrix::zeros(m, n);
        let inject = [
            AbftInject {
                row: 3,
                col: 10,
                delta: 0.5,
            },
            AbftInject {
                row: 40,
                col: 200,
                delta: -0.875,
            },
            AbftInject {
                row: 66,
                col: 299,
                delta: 0.3125,
            },
        ];
        let report = gemm_ft_with_inject(
            Trans::No,
            Trans::No,
            1.0,
            &a.as_view(),
            &b.as_view(),
            0.0,
            &mut c.as_view_mut(),
            AbftOptions::default(),
            &inject,
        );
        assert!(report.resolved, "{report:?}");
        assert_eq!(report.corrected, 3);
        assert!(ft_matrix::max_abs_diff(&truth, &c) < 1e-9);
    }

    #[test]
    fn rectangle_pattern_reports_unresolved() {
        let (m, n, k) = (40usize, 60usize, 30usize);
        let a = ft_matrix::random::uniform(m, k, 61);
        let b = ft_matrix::random::uniform(k, n, 62);
        let mut c = Matrix::zeros(m, n);
        let inject = [
            AbftInject {
                row: 5,
                col: 7,
                delta: 0.5,
            },
            AbftInject {
                row: 5,
                col: 20,
                delta: 0.5,
            },
            AbftInject {
                row: 30,
                col: 7,
                delta: 0.5,
            },
            AbftInject {
                row: 30,
                col: 20,
                delta: 0.5,
            },
        ];
        let report = gemm_ft_with_inject(
            Trans::No,
            Trans::No,
            1.0,
            &a.as_view(),
            &b.as_view(),
            0.0,
            &mut c.as_view_mut(),
            AbftOptions::default(),
            &inject,
        );
        assert!(!report.resolved, "{report:?}");
        assert_eq!(report.corrected, 0);
    }

    #[test]
    fn detection_is_deterministic_across_thread_counts() {
        let (m, n, k) = (50usize, 280usize, 35usize);
        let a = ft_matrix::random::uniform(m, k, 71);
        let b = ft_matrix::random::uniform(k, n, 72);
        let c0 = ft_matrix::random::uniform(m, n, 73);
        let inject = [AbftInject {
            row: 11,
            col: 250,
            delta: 1e-3,
        }];
        let mut reports = Vec::new();
        let mut outputs = Vec::new();
        for t in [1usize, 2, 4] {
            let mut c = c0.clone();
            let r = crate::backend::with_backend(crate::backend::Backend::Threaded(t), || {
                gemm_ft_with_inject(
                    Trans::No,
                    Trans::No,
                    0.9,
                    &a.as_view(),
                    &b.as_view(),
                    0.4,
                    &mut c.as_view_mut(),
                    AbftOptions::default(),
                    &inject,
                )
            });
            reports.push(r);
            outputs.push(c);
        }
        for r in &reports[1..] {
            assert_eq!(r.detected, reports[0].detected);
            assert_eq!(r.corrected, reports[0].corrected);
            assert_eq!(r.errors, reports[0].errors);
            assert_eq!(r.tol.to_bits(), reports[0].tol.to_bits());
        }
        for c in &outputs[1..] {
            assert!(bits_eq(c, &outputs[0]));
        }
    }

    #[test]
    fn clean_run_matches_threaded_kernel_bits() {
        let (m, n, k) = (80usize, 260usize, 45usize);
        let b = ft_matrix::random::uniform(k, n, 82);
        let c0 = ft_matrix::random::uniform(m, n, 83);
        let mut c_thr = c0.clone();
        gemm_threaded(
            3,
            Trans::Yes,
            Trans::No,
            -1.0,
            &ft_matrix::random::uniform(k, m, 84).as_view(),
            &b.as_view(),
            1.0,
            &mut c_thr.as_view_mut(),
        );
        // Same operands through gemm_ft.
        let at = ft_matrix::random::uniform(k, m, 84);
        let mut c_ft = c0.clone();
        let report = gemm_ft(
            Trans::Yes,
            Trans::No,
            -1.0,
            &at.as_view(),
            &b.as_view(),
            1.0,
            &mut c_ft.as_view_mut(),
            AbftOptions::default(),
        );
        assert!(report.resolved && report.detected == 0, "{report:?}");
        assert!(bits_eq(&c_thr, &c_ft));
    }
}
