//! Live metrics exposition: a minimal, read-only Prometheus text
//! endpoint over a std `TcpListener`.
//!
//! The server is one named thread running a nonblocking accept loop.
//! Every connection receives the same response — the current
//! [`ft_trace::MetricsSnapshot`] rendered to Prometheus text exposition
//! format — regardless of method or path, so there is no request
//! parsing to get wrong and nothing a client can mutate. The accept loop
//! polls a stop flag every 10 ms; [`MetricsServer::stop`] (and drop)
//! sets the flag and joins the thread, bounding shutdown latency.
//!
//! The endpoint address comes from `FT_SERVE_METRICS_ADDR`
//! (e.g. `127.0.0.1:9823`); binding port 0 picks an ephemeral port,
//! reported by [`MetricsServer::local_addr`] — the test/CI idiom.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running exposition endpoint. Dropping it stops the serving thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` and starts the serving thread.
    pub fn start(addr: &str) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("ft-serve-metrics".to_string())
            .spawn(move || accept_loop(&listener, &stop_flag))?;
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the serving thread and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Best-effort: a client that disconnects mid-response is
                // its own problem; the endpoint must keep serving.
                let _ = respond(stream);
            }
            Err(_) => {
                // WouldBlock (idle) and transient accept errors alike:
                // sleep a poll tick and re-check the stop flag.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Writes one HTTP/1.0 response carrying the metrics snapshot.
fn respond(mut stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(250)))?;
    stream.set_write_timeout(Some(Duration::from_millis(250)))?;
    // Drain whatever request bytes arrived; the response is the same for
    // every method and path (read-only endpoint, nothing to parse).
    let mut buf = [0u8; 1024];
    let _ = stream.read(&mut buf);
    let body = ft_trace::MetricsSnapshot::collect().to_prometheus();
    let header = format!(
        "HTTP/1.0 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("send");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_prometheus_text_until_stopped() {
        ft_trace::counter("serve.submitted").add(0); // ensure registered
        let srv = MetricsServer::start("127.0.0.1:0").expect("bind");
        let addr = srv.local_addr();
        let resp = scrape(addr);
        assert!(resp.starts_with("HTTP/1.0 200 OK"), "{resp}");
        assert!(resp.contains("text/plain"), "{resp}");
        assert!(resp.contains("# TYPE serve_submitted counter"), "{resp}");
        // A second scrape works (the loop keeps serving)…
        assert!(scrape(addr).contains("serve_submitted"));
        srv.stop();
        // …and after stop the listener is gone: the join inside `stop`
        // dropped it, so fresh connections are refused.
        assert!(TcpStream::connect(addr).is_err());
    }
}
