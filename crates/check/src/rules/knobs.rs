//! FTC010 — `FT_*` environment knobs stay in sync with the `KNOBS`
//! registry in `crates/trace/src/env_knob.rs` and with the README
//! tables. Four drift directions, each its own finding:
//!
//! 1. a knob read in code (`env_knob::helper("FT_…")`) missing from the
//!    `KNOBS` registry;
//! 2. a registry entry no knob read uses (dead documentation);
//! 3. a registry entry absent from the README;
//! 4. an `FT_*` token in the README that the registry doesn't declare.
//!
//! README extraction skips tokens ending in `_` (prose wildcards like
//! `FT_SERVE_*` are rendered `FT_SERVE_…`/`FT_SERVE_` in text) and
//! anything that isn't SCREAMING_SNAKE after the prefix, so type names
//! like `FtBand` or display labels never count.

use super::Analysis;
use crate::lexer::TokKind;
use crate::Finding;
use std::collections::BTreeSet;

/// Helper names in `env_knob` whose first argument is a knob name.
const HELPERS: [&str; 5] = ["raw", "parse_with", "flag", "usize_or", "ms_or_none"];

/// Runs FTC010.
pub fn run(a: &Analysis<'_>, findings: &mut Vec<Finding>) {
    // 1. Collect every knob-read site: `env_knob :: helper ( "FT_…"`.
    //    (name, file idx, line, col)
    let mut reads: Vec<(String, usize, u32, u32)> = Vec::new();
    for (fi, fm) in a.files.iter().enumerate() {
        let toks = &fm.lexed.toks;
        for k in 0..toks.len() {
            if !toks[k].is_ident("env_knob") {
                continue;
            }
            let Some(p) = toks.get(k + 1) else { continue };
            if !p.is_punct("::") {
                continue;
            }
            let Some(h) = toks.get(k + 2) else { continue };
            if h.kind != TokKind::Ident || !HELPERS.contains(&h.text.as_str()) {
                continue;
            }
            if !toks.get(k + 3).is_some_and(|t| t.is_punct("(")) {
                continue;
            }
            let Some(arg) = toks.get(k + 4) else { continue };
            if arg.kind != TokKind::Str || !arg.text.starts_with("FT_") {
                continue;
            }
            reads.push((arg.text.clone(), fi, arg.line, arg.col));
        }
        // Inside env_knob.rs itself the helpers are called unqualified
        // by the `KNOBS` unit test only; the registry is the source of
        // truth there, so no extra pattern is needed.
    }

    let declared: BTreeSet<&str> = a.ctx.knobs.iter().map(|(n, _)| n.as_str()).collect();
    let read_names: BTreeSet<&str> = reads.iter().map(|(n, _, _, _)| n.as_str()).collect();

    // Direction 1: read but undeclared.
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for (name, fi, line, col) in &reads {
        if declared.contains(name.as_str()) || !seen.insert(name) {
            continue;
        }
        findings.push(a.finding(
            *fi,
            *line,
            *col,
            "FTC010",
            format!("env knob \"{name}\" is not declared in the KNOBS registry"),
            "add the knob (sorted) to KNOBS in crates/trace/src/env_knob.rs with \
             a one-line description, then mirror it into the README knob tables",
        ));
    }

    // Direction 2: declared but never read.
    for (name, line) in &a.ctx.knobs {
        if !read_names.contains(name.as_str()) {
            findings.push(Finding {
                path: a.ctx.knobs_rel.clone(),
                line: *line,
                col: 1,
                rule: "FTC010",
                message: format!("KNOBS entry \"{name}\" is never read through env_knob"),
                hint: "delete the stale registry row (and its README row), or wire \
                       the knob up — documented-but-dead knobs mislead operators",
            });
        }
    }

    // README directions only when a README was parsed (workspace mode).
    let Some(readme) = &a.ctx.readme_knobs else {
        return;
    };
    let in_readme: BTreeSet<&str> = readme.iter().map(|(n, _)| n.as_str()).collect();

    // Direction 3: declared but missing from the README.
    for (name, line) in &a.ctx.knobs {
        if !in_readme.contains(name.as_str()) {
            findings.push(Finding {
                path: a.ctx.knobs_rel.clone(),
                line: *line,
                col: 1,
                rule: "FTC010",
                message: format!("KNOBS entry \"{name}\" is missing from the README"),
                hint: "add the knob to the matching README table (Trace/serve/BLAS) \
                       so the registry and the operator docs agree",
            });
        }
    }

    // Direction 4: in the README but undeclared.
    let mut seen_rm: BTreeSet<&str> = BTreeSet::new();
    for (name, line) in readme {
        if declared.contains(name.as_str()) || !seen_rm.insert(name) {
            continue;
        }
        findings.push(Finding {
            path: a.ctx.readme_rel.clone(),
            line: *line,
            col: 1,
            rule: "FTC010",
            message: format!(
                "README documents env knob \"{name}\" which the KNOBS registry does not declare"
            ),
            hint: "either the README row is stale (delete it) or the knob exists \
                   and belongs in KNOBS in crates/trace/src/env_knob.rs",
        });
    }
}

/// Extracts `FT_*` knob tokens from README text: `(name, 1-based line)`.
/// Skips wildcard-ish tokens ending in `_` and anything with lowercase
/// after the prefix.
pub fn readme_knob_tokens(text: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let bytes = line.as_bytes();
        let mut j = 0;
        while let Some(pos) = line[j..].find("FT_") {
            let start = j + pos;
            // Must not be preceded by an identifier character.
            if start > 0 {
                let c = bytes[start - 1];
                if c.is_ascii_alphanumeric() || c == b'_' {
                    j = start + 3;
                    continue;
                }
            }
            let mut end = start + 3;
            while end < line.len()
                && (bytes[end].is_ascii_uppercase()
                    || bytes[end].is_ascii_digit()
                    || bytes[end] == b'_')
            {
                end += 1;
            }
            let tok = &line[start..end];
            if tok.len() > 3 && !tok.ends_with('_') {
                out.push((tok.to_string(), i + 1));
            }
            j = end;
        }
    }
    out
}
