//! Execution statistics: per-resource busy time, per-class accounting,
//! and the makespan the performance figures report.

use crate::cost::OpClass;
use std::collections::HashMap;

/// Accumulated accounting for one simulated execution.
#[derive(Clone, Debug, Default)]
pub struct ExecStats {
    /// Simulated seconds each op class spent busy on its resource.
    pub class_seconds: HashMap<OpClass, f64>,
    /// Number of operations issued per class.
    pub class_counts: HashMap<OpClass, u64>,
    /// Total host busy seconds.
    pub host_busy: f64,
    /// Total device busy seconds (all streams).
    pub device_busy: f64,
    /// Total link busy seconds.
    pub link_busy: f64,
}

impl ExecStats {
    /// Records one operation.
    pub fn record(&mut self, class: OpClass, seconds: f64) {
        *self.class_seconds.entry(class).or_insert(0.0) += seconds;
        *self.class_counts.entry(class).or_insert(0) += 1;
        if class.is_host() {
            self.host_busy += seconds;
        } else if class.is_device() {
            self.device_busy += seconds;
        } else {
            self.link_busy += seconds;
        }
    }

    /// Busy seconds for one class (0 if never used).
    pub fn seconds(&self, class: OpClass) -> f64 {
        self.class_seconds.get(&class).copied().unwrap_or(0.0)
    }

    /// Operation count for one class.
    pub fn count(&self, class: OpClass) -> u64 {
        self.class_counts.get(&class).copied().unwrap_or(0)
    }

    /// Sum of all busy time across resources (an upper bound on the
    /// makespan; the gap between the two is the overlap win).
    pub fn total_busy(&self) -> f64 {
        self.host_busy + self.device_busy + self.link_busy
    }

    /// Renders a small table for reports.
    pub fn summary(&self) -> String {
        let mut out = String::from("class            count      seconds\n");
        for class in OpClass::ALL {
            if self.count(class) > 0 {
                out.push_str(&format!(
                    "{:<16} {:>6} {:>12.6}\n",
                    format!("{class:?}"),
                    self.count(class),
                    self.seconds(class)
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_by_resource() {
        let mut s = ExecStats::default();
        s.record(OpClass::HostPanel, 1.0);
        s.record(OpClass::DeviceGemm, 2.0);
        s.record(OpClass::DeviceGemv, 3.0);
        s.record(OpClass::Transfer, 4.0);
        assert_eq!(s.host_busy, 1.0);
        assert_eq!(s.device_busy, 5.0);
        assert_eq!(s.link_busy, 4.0);
        assert_eq!(s.total_busy(), 10.0);
        assert_eq!(s.count(OpClass::DeviceGemm), 1);
        assert_eq!(s.seconds(OpClass::DeviceGemv), 3.0);
        assert_eq!(s.count(OpClass::HostGemm), 0);
    }

    #[test]
    fn summary_contains_used_classes_only() {
        let mut s = ExecStats::default();
        s.record(OpClass::Transfer, 1.5);
        let text = s.summary();
        assert!(text.contains("Transfer"));
        assert!(!text.contains("HostPanel"));
    }
}
