//! Loom models of the pool's dispatch latch: racing completions against
//! the waiting dispatcher, and panic-payload propagation. Run with
//! `RUSTFLAGS="--cfg loom" cargo test -p ft-blas --test loom_latch`.

#![cfg(loom)]

use ft_blas::latch::Latch;
use loom::sync::Arc;

#[test]
fn racing_completions_release_the_waiter() {
    loom::model(|| {
        let l = Arc::new(Latch::new(2));
        let l1 = Arc::clone(&l);
        let l2 = Arc::clone(&l);
        let t1 = loom::thread::spawn(move || l1.complete(None));
        let t2 = loom::thread::spawn(move || l2.complete(None));
        // A missed final-completion wakeup would deadlock this wait.
        l.wait();
        assert!(l.take_panic().is_none());
        t1.join().unwrap();
        t2.join().unwrap();
    });
}

#[test]
fn panic_payload_survives_the_completion_race() {
    loom::model(|| {
        let l = Arc::new(Latch::new(2));
        let l1 = Arc::clone(&l);
        let l2 = Arc::clone(&l);
        let t1 = loom::thread::spawn(move || l1.complete(Some(Box::new("boom"))));
        let t2 = loom::thread::spawn(move || l2.complete(None));
        l.wait();
        let p = l.take_panic().expect("the panic payload must survive");
        assert_eq!(*p.downcast::<&str>().expect("payload type"), "boom");
        t1.join().unwrap();
        t2.join().unwrap();
    });
}

#[test]
fn first_of_two_panics_wins_and_none_is_lost() {
    loom::model(|| {
        let l = Arc::new(Latch::new(2));
        let l1 = Arc::clone(&l);
        let l2 = Arc::clone(&l);
        let t1 = loom::thread::spawn(move || l1.complete(Some(Box::new("a"))));
        let t2 = loom::thread::spawn(move || l2.complete(Some(Box::new("b"))));
        l.wait();
        let p = l.take_panic().expect("one payload must survive");
        let s = *p.downcast::<&str>().expect("payload type");
        assert!(s == "a" || s == "b", "unexpected payload {s}");
        assert!(l.take_panic().is_none(), "exactly one payload is kept");
        t1.join().unwrap();
        t2.join().unwrap();
    });
}
