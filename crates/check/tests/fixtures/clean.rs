//! Fixture: a file every rule accepts — annotated unsafe, registered
//! metric names, no clocks, no panics, no threads, no env reads.

/// Reads one element with a written safety argument.
pub fn read_first(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    // SAFETY: the emptiness check above proves index 0 is in bounds.
    Some(unsafe { *xs.get_unchecked(0) })
}

/// Records progress under a registered counter name.
pub fn record_dispatch() {
    ft_trace::counter("pool.dispatch").incr();
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        assert_eq!(super::read_first(&[2.0]).unwrap(), 2.0);
    }
}
