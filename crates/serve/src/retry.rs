//! FT-aware retry: escalate protection before giving up.
//!
//! A job whose run reports unrecoverable corruption
//! ([`ft_hessenberg::FailureReason`]: recovery-attempt exhaustion or an
//! unresolvable final check) is not failed immediately — it is re-run with
//! *escalated* protection under capped exponential backoff. Escalation is
//! monotone along every protection axis the driver exposes:
//!
//! * `TimingOnly → Full` execution (a timing-only estimate that signalled
//!   trouble is re-run with real numerics so detection and correction
//!   actually operate on data);
//! * `protect_q` forced on (host-side `Q`/`tau` checksums);
//! * `max_recovery_attempts` raised (the exhaustion that triggered the
//!   retry gets more rollback/repair/re-execute budget);
//! * the checksum accumulation scheme upgraded to the compensated
//!   (Neumaier) summation, which tightens `Sre`/`Sce` drift and with it
//!   the effective detection resolution.

use ft_hessenberg::FtConfig;
use ft_hybrid::ExecMode;
use std::time::Duration;

/// Retry policy for unrecoverable jobs.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Extra attempts after the first run (0 disables retries).
    pub max_retries: u32,
    /// Backoff before retry attempt 1.
    pub backoff_base: Duration,
    /// Ceiling for the exponential backoff.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based): `base · 2^(retry−1)`,
    /// capped.
    pub fn backoff(&self, retry: u32) -> Duration {
        let shift = retry.saturating_sub(1).min(32);
        let d = self
            .backoff_base
            .saturating_mul(1u32.checked_shl(shift).unwrap_or(u32::MAX));
        d.min(self.backoff_cap)
    }

    /// The escalated `(config, exec mode)` for the next attempt.
    pub fn escalate(cfg: &FtConfig, _exec: ExecMode) -> (FtConfig, ExecMode) {
        let mut next = *cfg;
        next.protect_q = true;
        next.q_checksums_on_host = true;
        next.max_recovery_attempts = next.max_recovery_attempts.saturating_add(2).max(3);
        next.checksum_scheme = ft_blas::SumScheme::Compensated;
        (next, ExecMode::Full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy {
            max_retries: 5,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(10),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(2), Duration::from_millis(4));
        assert_eq!(p.backoff(3), Duration::from_millis(8));
        assert_eq!(p.backoff(4), Duration::from_millis(10), "capped");
        assert_eq!(p.backoff(40), Duration::from_millis(10), "shift-safe");
    }

    #[test]
    fn escalation_is_monotone() {
        let weak = FtConfig {
            protect_q: false,
            max_recovery_attempts: 0,
            checksum_scheme: ft_blas::SumScheme::Naive,
            ..FtConfig::with_nb(16)
        };
        let (esc, exec) = RetryPolicy::escalate(&weak, ExecMode::TimingOnly);
        assert_eq!(exec, ExecMode::Full);
        assert!(esc.protect_q);
        assert!(esc.max_recovery_attempts >= 3);
        assert_eq!(esc.checksum_scheme, ft_blas::SumScheme::Compensated);
        assert_eq!(esc.nb, weak.nb, "shape knobs are preserved");
        // Escalating an already-strong config never weakens it.
        let (esc2, _) = RetryPolicy::escalate(&esc, ExecMode::Full);
        assert!(esc2.max_recovery_attempts >= esc.max_recovery_attempts);
    }
}
