#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `ft-trace` — the observability spine of the FT-Hess pipeline.
//!
//! The paper's entire value proposition is a *quantified* overhead claim
//! (< 2 % for ABFT detection + recovery), so every layer of this workspace
//! needs per-phase attribution: how long did the panel factorizations take
//! versus the trailing updates, what did a detection episode cost, how much
//! wall-clock went into a reverse-computation rollback. This crate provides
//! that attribution with a strict cost contract:
//!
//! * **spans** — [`SpanGuard`] RAII guards (usually created through the
//!   [`span!`] macro) record a monotonic start on construction and push one
//!   [`Event`] to the process-wide sink on drop. When tracing is off the
//!   constructor is a single relaxed atomic load: no clock read, no lock,
//!   no allocation.
//! * **counters / gauges** — a process-wide registry of named atomics
//!   ([`counter`], [`gauge`]). These are *always on* (a relaxed
//!   `fetch_add`, exactly what the ad-hoc probes they replaced cost) so
//!   regression tests can pin exact counts without enabling tracing; only
//!   the *event sink* is gated.
//! * **simulated-clock events** — [`record_sim`] lets the `ft-hybrid`
//!   discrete-event simulator mirror its host/stream/link timelines into
//!   the same trace (they render as a second process in `chrome://tracing`,
//!   so the simulated schedule sits next to the real one).
//!
//! # Runtime gate: the `FT_TRACE` environment variable
//!
//! | value            | behavior                                           |
//! |------------------|----------------------------------------------------|
//! | unset / `off`/`0`| sink off — span construction is one atomic load |
//! | `summary` / `1`  | collect; [`finish`] prints an aggregate table to stderr |
//! | `jsonl:<path>`   | collect; [`finish`] writes one JSON object per event |
//! | `chrome:<path>`  | collect; [`finish`] writes a `chrome://tracing` / Perfetto file |
//! | `prom:<path>`    | sink off; [`finish`] writes a Prometheus metrics snapshot |
//!
//! The mode is parsed once, on first use; tests and benches can override it
//! programmatically with [`set_mode`].
//!
//! Independent of the sink, the [`recorder`] flight recorder retains the
//! last N span/counter/recovery events in bounded per-thread rings
//! (`FT_TRACE_RECORDER=<events>[,dump:<path>]`, on by default) for
//! post-mortem dumps; the [`ctx`] module carries job/attempt trace
//! context across pool dispatch, the [`journal`] records fault recovery
//! episodes, and [`metrics::MetricsSnapshot`] exposes the whole registry
//! (counters, gauges, [`hist`] HDR histograms) for live exposition. With
//! both the sink and the recorder off, span construction is still a
//! single relaxed atomic load ([`recording`]).
//!
//! # Compile-time gate: the `enabled` cargo feature
//!
//! Building with `--no-default-features` compiles every span, counter write
//! and writer to a no-op (guards are inert unit-like values, [`counter`]
//! returns a shared dummy). This is the hard floor beneath the runtime
//! gate for deployments that want the instrumentation erased entirely.
//!
//! # Span taxonomy
//!
//! Names are dot-separated, coarsest domain first. The conventions used by
//! the workspace (see DESIGN.md §9 for the full table):
//!
//! * `ft.*` — FT-driver phases (`ft.encode`, `ft.panel`, `ft.trailing`,
//!   `ft.detect`, `ft.reverse`, `ft.locate`, `ft.correct`,
//!   `ft.qprotect`). These are **disjoint leaf spans**: their durations
//!   sum to (just under) the run's wall-clock, which is what lets
//!   `FtReport` turn them into the paper's Figure 6 decomposition.
//! * `gehrd.*` / `lahr2` — the plain LAPACK-layer blocked reduction.
//! * `pool.*` — threaded-backend internals (`pool.dispatch` on the
//!   caller, `pool.task` on workers).
//! * `serve.*` — the reduction service: a `serve.run` span per executed
//!   attempt, plus the `serve.submitted` / `serve.completed` /
//!   `serve.failed` / `serve.retries` … counter family and the
//!   `serve.queue_depth` / `serve.in_flight` gauges (registered through
//!   [`counter`] / [`gauge`] by `ft-serve`).

pub mod clock;
pub mod ctx;
pub mod env_knob;
pub mod hist;
pub mod journal;
pub mod metrics;
pub mod names;
pub mod recorder;
mod registry;
mod span;
mod writer;

pub use ctx::TraceCtx;
pub use hist::{HistSnapshot, Histogram, SUB_BITS};
pub use metrics::MetricsSnapshot;
pub use registry::{counter, counters, gauge, gauges, histogram, histograms, Counter, Gauge};
pub use span::{
    current_tid, events_since, mark, record_sim, span_event_count, take_events, totals, Event,
    SpanGuard, SpanTotal,
};
pub use writer::{summary_string, to_chrome_json, to_jsonl};

use std::path::PathBuf;

/// What the process does with collected trace data (parsed from
/// `FT_TRACE`; see the crate docs for the accepted spellings).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// No collection: span construction is a single relaxed atomic load.
    #[default]
    Off,
    /// Collect events; [`finish`] prints an aggregated summary to stderr.
    Summary,
    /// Collect events; [`finish`] writes one JSON object per line.
    Jsonl(PathBuf),
    /// Collect events; [`finish`] writes a `chrome://tracing` JSON file.
    Chrome(PathBuf),
    /// No span collection; [`finish`] writes a Prometheus text-format
    /// snapshot of every counter/gauge/histogram (the file-dump twin of
    /// `ft-serve`'s live `FT_SERVE_METRICS_ADDR` endpoint).
    Prom(PathBuf),
}

impl TraceMode {
    /// Parses an `FT_TRACE` value. Unknown strings fall back to
    /// [`TraceMode::Off`] (a typo must never crash a production run).
    pub fn parse(s: &str) -> TraceMode {
        let t = s.trim();
        if t.is_empty() || t.eq_ignore_ascii_case("off") || t == "0" {
            TraceMode::Off
        } else if t.eq_ignore_ascii_case("summary") || t == "1" {
            TraceMode::Summary
        } else if let Some(p) = t.strip_prefix("jsonl:") {
            TraceMode::Jsonl(PathBuf::from(p))
        } else if let Some(p) = t.strip_prefix("chrome:") {
            TraceMode::Chrome(PathBuf::from(p))
        } else if let Some(p) = t.strip_prefix("prom:") {
            TraceMode::Prom(PathBuf::from(p))
        } else {
            TraceMode::Off
        }
    }

    /// `true` if this mode collects span events ([`TraceMode::Prom`]
    /// does not: metrics snapshots read the always-on registry).
    pub fn collects(&self) -> bool {
        !matches!(self, TraceMode::Off | TraceMode::Prom(_))
    }
}

#[cfg(feature = "enabled")]
mod gate {
    use super::TraceMode;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    pub(super) static COLLECT: AtomicBool = AtomicBool::new(false);
    /// Sink collection OR flight recorder: the single hot-path gate.
    /// When both are off, span construction is one relaxed load of this
    /// atomic — the same one-load contract the sink alone used to have.
    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static INITTED: AtomicBool = AtomicBool::new(false);
    static MODE: Mutex<Option<TraceMode>> = Mutex::new(None);

    #[cold]
    fn init_from_env() {
        let mut m = MODE.lock().unwrap();
        if m.is_none() {
            let parsed = super::env_knob::parse_with("FT_TRACE", |v| Some(TraceMode::parse(v)))
                .unwrap_or(TraceMode::Off);
            COLLECT.store(parsed.collects(), Ordering::Relaxed);
            *m = Some(parsed);
        }
        super::recorder::ensure_init();
        recompute_active();
        INITTED.store(true, Ordering::Release);
    }

    pub(super) fn recompute_active() {
        ACTIVE.store(
            COLLECT.load(Ordering::Relaxed) || super::recorder::is_on_raw(),
            Ordering::Relaxed,
        );
    }

    #[inline]
    pub(super) fn enabled() -> bool {
        if !INITTED.load(Ordering::Acquire) {
            init_from_env();
        }
        COLLECT.load(Ordering::Relaxed)
    }

    #[inline]
    pub(super) fn recording() -> bool {
        if !INITTED.load(Ordering::Acquire) {
            init_from_env();
        }
        ACTIVE.load(Ordering::Relaxed)
    }

    pub(super) fn mode() -> TraceMode {
        enabled();
        MODE.lock().unwrap().clone().unwrap_or_default()
    }

    pub(super) fn set_mode(mode: TraceMode) {
        COLLECT.store(mode.collects(), Ordering::Relaxed);
        *MODE.lock().unwrap() = Some(mode);
        super::recorder::ensure_init();
        recompute_active();
        INITTED.store(true, Ordering::Release);
    }
}

/// `true` when span events are being collected (the hot-path check every
/// guard constructor performs — one relaxed atomic load once initialized).
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "enabled")]
    {
        gate::enabled()
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// `true` when *anything* retains span events — the `FT_TRACE` sink or
/// the flight recorder. This is the guard constructors' hot-path check:
/// one relaxed atomic load once initialized, whichever consumers are on.
#[inline]
pub fn recording() -> bool {
    #[cfg(feature = "enabled")]
    {
        gate::recording()
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Recomputes the combined recording gate after a recorder reconfigure
/// (crate-internal; [`set_mode`] and the gate's init do it themselves).
pub(crate) fn refresh_recording_gate() {
    #[cfg(feature = "enabled")]
    gate::recompute_active();
}

/// The active trace mode (initialized from `FT_TRACE` on first use).
pub fn mode() -> TraceMode {
    #[cfg(feature = "enabled")]
    {
        gate::mode()
    }
    #[cfg(not(feature = "enabled"))]
    {
        TraceMode::Off
    }
}

/// Overrides the trace mode programmatically (benches force collection
/// around a measured run; tests pin `Off` to prove the zero-write
/// contract). With the `enabled` feature off this is a no-op.
pub fn set_mode(mode: TraceMode) {
    #[cfg(feature = "enabled")]
    {
        gate::set_mode(mode)
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = mode;
    }
}

/// Drains the event sink and emits it according to the active mode:
/// summary table to stderr, or a `jsonl`/`chrome` file at the configured
/// path (returned on success). [`TraceMode::Off`] drains nothing and
/// returns `None`.
///
/// Call this once at the end of a binary / example / bench; the library
/// never writes files behind the caller's back.
pub fn finish() -> std::io::Result<Option<PathBuf>> {
    match mode() {
        TraceMode::Off => Ok(None),
        TraceMode::Summary => {
            eprint!("{}", summary_string(&take_events()));
            Ok(None)
        }
        TraceMode::Jsonl(path) => {
            std::fs::write(&path, to_jsonl(&take_events()))?;
            Ok(Some(path))
        }
        TraceMode::Chrome(path) => {
            std::fs::write(&path, to_chrome_json(&take_events()))?;
            Ok(Some(path))
        }
        TraceMode::Prom(path) => {
            std::fs::write(&path, MetricsSnapshot::collect().to_prometheus())?;
            Ok(Some(path))
        }
    }
}

/// Opens an RAII span: records a monotonic start now, pushes one
/// [`Event`] to the sink when the returned guard drops. Inert (one atomic
/// load, nothing else) when tracing is off.
///
/// ```
/// # ft_trace::set_mode(ft_trace::TraceMode::Summary);
/// let _span = ft_trace::span!("ft.panel", 3);
/// // ... the panel factorization ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::new($name, None)
    };
    ($name:expr, $arg:expr) => {
        $crate::SpanGuard::new($name, Some($arg as i64))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing() {
        assert_eq!(TraceMode::parse(""), TraceMode::Off);
        assert_eq!(TraceMode::parse("off"), TraceMode::Off);
        assert_eq!(TraceMode::parse("0"), TraceMode::Off);
        assert_eq!(TraceMode::parse("summary"), TraceMode::Summary);
        assert_eq!(TraceMode::parse("SUMMARY"), TraceMode::Summary);
        assert_eq!(TraceMode::parse("1"), TraceMode::Summary);
        assert_eq!(
            TraceMode::parse("jsonl:/tmp/t.jsonl"),
            TraceMode::Jsonl(PathBuf::from("/tmp/t.jsonl"))
        );
        assert_eq!(
            TraceMode::parse("chrome:trace.json"),
            TraceMode::Chrome(PathBuf::from("trace.json"))
        );
        assert_eq!(
            TraceMode::parse("prom:metrics.prom"),
            TraceMode::Prom(PathBuf::from("metrics.prom"))
        );
        assert_eq!(TraceMode::parse("bogus"), TraceMode::Off);
    }

    #[test]
    fn collects_matches_variant() {
        assert!(!TraceMode::Off.collects());
        assert!(TraceMode::Summary.collects());
        assert!(TraceMode::Jsonl(PathBuf::from("x")).collects());
        assert!(TraceMode::Chrome(PathBuf::from("x")).collects());
        assert!(
            !TraceMode::Prom(PathBuf::from("x")).collects(),
            "prom snapshots read the always-on registry, not the span sink"
        );
    }
}
