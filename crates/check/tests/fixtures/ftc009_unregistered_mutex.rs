//! FTC009 fixture: a `Mutex` declared in a lock-scope crate with no
//! entry in the lock-order registry.

use std::sync::Mutex;

pub struct State {
    pub rogue: Mutex<u64>,
}
