//! `--json` report coverage: an exact golden rendering, escaping of
//! every special character class, and a schema check of the real
//! binary's output on the real workspace.
//!
//! The schema is the one DESIGN.md and README document:
//!
//! ```json
//! {"version": 1, "tool": "ft-check", "files_scanned": N,
//!  "finding_count": M,
//!  "findings": [{"path", "line", "col", "rule", "message", "hint"}]}
//! ```

use ft_check::{to_json, Finding};

fn finding(path: &str, line: usize, col: usize, message: &str) -> Finding {
    Finding {
        path: path.to_string(),
        line,
        col,
        rule: "FTC004",
        message: message.to_string(),
        hint: "audit it",
    }
}

#[test]
fn golden_empty_report() {
    assert_eq!(
        to_json(&[], 154),
        r#"{"version":1,"tool":"ft-check","files_scanned":154,"finding_count":0,"findings":[]}"#
    );
}

#[test]
fn golden_two_findings() {
    let f = vec![
        finding(
            "crates/serve/src/pool.rs",
            10,
            5,
            "panicking call `.unwrap()`",
        ),
        finding("crates/trace/src/lib.rs", 3, 1, "second"),
    ];
    assert_eq!(
        to_json(&f, 2),
        concat!(
            r#"{"version":1,"tool":"ft-check","files_scanned":2,"finding_count":2,"findings":["#,
            r#"{"path":"crates/serve/src/pool.rs","line":10,"col":5,"rule":"FTC004","message":"panicking call `.unwrap()`","hint":"audit it"},"#,
            r#"{"path":"crates/trace/src/lib.rs","line":3,"col":1,"rule":"FTC004","message":"second","hint":"audit it"}"#,
            r#"]}"#
        )
    );
}

#[test]
fn escapes_every_special_class() {
    let f = vec![finding("a\"b\\c.rs", 1, 1, "tab\there\nline\rret\u{1}ctl")];
    let out = to_json(&f, 1);
    assert!(
        out.contains(r#""path":"a\"b\\c.rs""#),
        "quote and backslash: {out}"
    );
    assert!(
        out.contains(r#""message":"tab\there\nline\rret\u0001ctl""#),
        "tab/newline/return/control: {out}"
    );
}

// --- the real binary, end to end ------------------------------------------

/// A minimal JSON value, parsed by the test's own recursive-descent
/// parser below — the crate stays dependency-free, and the parser
/// doubles as an independent check that the emitted report is
/// well-formed JSON (not merely golden-string-shaped).
#[derive(Debug, PartialEq)]
enum Json {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kvs) => kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut kvs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(kvs));
            }
            loop {
                skip_ws(b, pos);
                let Json::Str(k) = parse_value(b, pos)? else {
                    return Err(format!("non-string key at {pos}"));
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at {pos}"));
                }
                *pos += 1;
                kvs.push((k, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(kvs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'u') => {
                                let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5])
                                    .map_err(|e| e.to_string())?;
                                let n = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                                s.push(char::from_u32(n).ok_or("bad \\u escape")?);
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Multi-byte UTF-8 passes through unchanged.
                        let start = *pos;
                        while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                            *pos += 1;
                        }
                        s.push_str(
                            std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?,
                        );
                    }
                    None => return Err("unterminated string".to_string()),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .map_err(|e| e.to_string())?
                .parse::<f64>()
                .map(Json::Num)
                .map_err(|e| e.to_string())
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        other => Err(format!("unexpected {other:?} at {pos}")),
    }
}

#[test]
fn parser_roundtrips_the_golden_report() {
    let f = vec![finding("a\"b.rs", 2, 7, "msg\nwith\tescapes")];
    let v = parse_json(&to_json(&f, 1)).expect("well-formed");
    let findings = match v.get("findings") {
        Some(Json::Arr(a)) => a,
        other => panic!("findings not an array: {other:?}"),
    };
    assert_eq!(findings[0].get("path").unwrap().as_str(), Some("a\"b.rs"));
    assert_eq!(
        findings[0].get("message").unwrap().as_str(),
        Some("msg\nwith\tescapes")
    );
}

#[test]
fn binary_json_report_matches_documented_schema() {
    // Run the actual binary over the actual workspace: the tree must be
    // clean, and the report must carry every documented field with the
    // documented type.
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ft-check"))
        .arg("--json")
        .arg(&root)
        .output()
        .expect("run ft-check --json");
    let stdout = String::from_utf8(out.stdout).expect("utf8 report");
    let v = parse_json(stdout.trim()).expect("well-formed JSON report");

    assert_eq!(v.get("version").and_then(Json::as_num), Some(1.0));
    assert_eq!(v.get("tool").and_then(Json::as_str), Some("ft-check"));
    let scanned = v
        .get("files_scanned")
        .and_then(Json::as_num)
        .expect("files_scanned is a number");
    assert!(scanned > 50.0, "the workspace has many files: {scanned}");
    let count = v
        .get("finding_count")
        .and_then(Json::as_num)
        .expect("finding_count is a number");
    let findings = match v.get("findings") {
        Some(Json::Arr(a)) => a,
        other => panic!("findings not an array: {other:?}"),
    };
    assert_eq!(count as usize, findings.len(), "finding_count consistency");
    for f in findings {
        for key in ["path", "rule", "message", "hint"] {
            assert!(
                f.get(key).and_then(Json::as_str).is_some(),
                "finding missing string field {key}: {f:?}"
            );
        }
        for key in ["line", "col"] {
            assert!(
                f.get(key).and_then(Json::as_num).is_some(),
                "finding missing numeric field {key}: {f:?}"
            );
        }
    }
    assert!(
        out.status.success() == findings.is_empty(),
        "exit status mirrors findings: status={:?} findings={}",
        out.status,
        findings.len()
    );
    assert!(
        findings.is_empty(),
        "the committed tree must scan clean: {stdout}"
    );
}
