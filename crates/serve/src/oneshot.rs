//! A minimal one-shot rendezvous cell (the workspace carries no async
//! runtime or channel crates; a mutex + condvar is all a job completion
//! needs).

use crate::sync::{Condvar, Instant, Mutex};
use std::time::Duration;

/// A write-once cell a consumer can block on.
#[derive(Debug, Default)]
pub struct OneShot<T> {
    slot: Mutex<State<T>>,
    cv: Condvar,
}

#[derive(Debug, Default)]
enum State<T> {
    #[default]
    Empty,
    Set(T),
    Taken,
}

impl<T> OneShot<T> {
    /// An empty cell.
    pub fn new() -> OneShot<T> {
        OneShot {
            slot: Mutex::new(State::Empty),
            cv: Condvar::new(),
        }
    }

    /// Stores the value and wakes waiters. Panics on double-set (a
    /// scheduler bug: each job completes exactly once).
    pub fn set(&self, value: T) {
        let mut s = self.slot.lock().unwrap();
        match *s {
            State::Empty => *s = State::Set(value),
            _ => panic!("OneShot::set called twice"),
        }
        drop(s);
        self.cv.notify_all();
    }

    /// `true` once a value has been stored (and not yet taken).
    pub fn is_set(&self) -> bool {
        matches!(*self.slot.lock().unwrap(), State::Set(_))
    }

    /// Blocks until a value is stored, then takes it. Panics if the value
    /// was already taken (one consumer per cell).
    pub fn take_blocking(&self) -> T {
        let mut s = self.slot.lock().unwrap();
        loop {
            match std::mem::replace(&mut *s, State::Taken) {
                State::Set(v) => return v,
                State::Empty => {
                    *s = State::Empty;
                    s = self.cv.wait(s).unwrap();
                }
                State::Taken => panic!("OneShot::take_blocking: value already taken"),
            }
        }
    }

    /// Waits up to `timeout` for a value to become available without
    /// taking it; `true` if one is there.
    pub fn wait_until_set(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut s = self.slot.lock().unwrap();
        loop {
            match *s {
                State::Set(_) => return true,
                State::Taken => return false,
                State::Empty => {
                    let now = Instant::now();
                    if now >= deadline {
                        return false;
                    }
                    let (guard, _res) = self.cv.wait_timeout(s, deadline - now).unwrap();
                    s = guard;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn set_then_take() {
        let c = OneShot::new();
        assert!(!c.is_set());
        c.set(7);
        assert!(c.is_set());
        assert_eq!(c.take_blocking(), 7);
        assert!(!c.is_set());
    }

    #[test]
    fn cross_thread_wakeup() {
        let c = Arc::new(OneShot::new());
        let c2 = Arc::clone(&c);
        let t = std::thread::spawn(move || c2.take_blocking());
        std::thread::sleep(Duration::from_millis(10));
        c.set("done");
        assert_eq!(t.join().unwrap(), "done");
    }

    #[test]
    fn wait_times_out_when_empty() {
        let c: OneShot<i32> = OneShot::new();
        assert!(!c.wait_until_set(Duration::from_millis(5)));
    }

    #[test]
    #[should_panic(expected = "set called twice")]
    fn double_set_panics() {
        let c = OneShot::new();
        c.set(1);
        c.set(2);
    }
}
