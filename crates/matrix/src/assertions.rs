//! Floating-point comparison helpers shared by tests across the workspace.

use crate::Matrix;

/// Relative difference `|a - b| / max(|a|, |b|, 1)`.
pub fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1.0)
}

/// `true` iff the relative difference is at most `tol`.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    rel_diff(a, b) <= tol
}

/// Largest absolute element-wise difference between two same-shape matrices.
pub fn max_abs_diff(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(
        (a.rows(), a.cols()),
        (b.rows(), b.cols()),
        "max_abs_diff: shape mismatch"
    );
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Panics with a diagnostic if the two matrices differ anywhere by more than
/// `tol` (absolute).
pub fn assert_matrix_eq(a: &Matrix, b: &Matrix, tol: f64, context: &str) {
    assert_eq!(
        (a.rows(), a.cols()),
        (b.rows(), b.cols()),
        "{context}: shape mismatch {}x{} vs {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    for j in 0..a.cols() {
        for i in 0..a.rows() {
            let (x, y) = (a[(i, j)], b[(i, j)]);
            assert!(
                (x - y).abs() <= tol,
                "{context}: element ({i},{j}) differs: {x} vs {y} (|diff|={}, tol={tol})",
                (x - y).abs()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_diff_behaviour() {
        assert_eq!(rel_diff(1.0, 1.0), 0.0);
        assert!(rel_diff(1.0, 1.0 + 1e-12) < 1e-11);
        // Small numbers are compared absolutely (denominator clamped at 1).
        assert!(rel_diff(1e-300, 2e-300) < 1e-299);
    }

    #[test]
    fn max_abs_diff_finds_worst() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut b = a.clone();
        b[(1, 0)] += 0.5;
        b[(0, 1)] -= 0.25;
        assert_eq!(max_abs_diff(&a, &b), 0.5);
    }

    #[test]
    #[should_panic(expected = "differs")]
    fn assert_matrix_eq_panics_on_mismatch() {
        let a = Matrix::zeros(2, 2);
        let mut b = a.clone();
        b[(0, 0)] = 1.0;
        assert_matrix_eq(&a, &b, 1e-9, "test");
    }

    #[test]
    fn assert_matrix_eq_passes_within_tol() {
        let a = Matrix::zeros(2, 2);
        let mut b = a.clone();
        b[(0, 0)] = 1e-12;
        assert_matrix_eq(&a, &b, 1e-9, "test");
    }
}
