#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index-based loops mirror the LAPACK reference codes
//! From-scratch BLAS kernels for the FT-Hess reproduction.
//!
//! This crate stands in for the vendor BLAS the paper relies on (Intel MKL
//! on the host, CUBLAS on the device). It provides:
//!
//! * **level 1** — `dot`, `axpy`, `scal`, `nrm2`, … on contiguous and
//!   strided vectors (rows of a column-major matrix are strided);
//! * **level 2** — `gemv`, `ger`, `trmv`, `trsv` on [`ft_matrix`] views;
//! * **level 3** — `gemm` (reference, cache-blocked packed, and
//!   threaded), `trmm`, `trsm`, `syrk`;
//! * **execution backends** — a [`backend`] knob selecting between the
//!   serial kernels and a threaded path built on a lazily-initialized
//!   persistent worker [`pool`], bit-identical to serial for every thread
//!   count;
//! * **workspace arena** — a thread-local scratch cache ([`workspace`]) so
//!   hot kernels allocate their pack buffers once instead of per call;
//! * **FLOP accounting** — an optional global counter ([`flops`]) that the
//!   overhead analysis of the paper's §V is verified against.
//!
//! All kernels follow BLAS argument conventions (`alpha`/`beta` scalars,
//! `Trans`/`Uplo`/`Diag`/`Side` selectors) and operate in place on
//! [`MatViewMut`](ft_matrix::MatViewMut) windows, so they compose into
//! LAPACK-style panel factorizations without copying.

pub mod accurate;
pub mod backend;
pub mod flops;
pub mod latch;
pub mod level1;
pub mod level2;
pub mod level3;
pub mod pool;
mod sync;
pub mod types;
pub mod workspace;

pub use accurate::{dot_compensated, dot_superblock, sum_compensated, sum_superblock, SumScheme};
pub use backend::{
    current_backend, parallel_map_into, set_backend, spawn_col_chunks, with_backend, Backend,
};
pub use flops::{
    flop_count, gehrd_gflops, gehrd_nominal_flops, reset_flops, set_flop_counting, FlopGuard,
};
pub use level1::{asum, axpy, copy, dot, iamax, nrm2, scal, swap};
pub use level2::{gemv, ger, symv, syr, syr2, trmv, trsv};
pub use level3::{
    active_simd_path, gemm, gemm_blocked, gemm_ft, gemm_ft_with_inject, gemm_ref, gemm_threaded,
    gemm_with_algo, simd_available, syrk, trmm, trsm, with_simd_path, AbftError, AbftInject,
    AbftOptions, AbftReport, GemmAlgo, SimdPath, ABFT_BAND,
};
pub use pool::AsyncHandle;
pub use types::{Diag, Side, Trans, Uplo};
