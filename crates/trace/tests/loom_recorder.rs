//! Loom model of the flight recorder's seqlock ring
//! ([`ft_trace::recorder::ring`]): a writer overwriting the oldest slot
//! races any number of snapshot readers, and no schedule may surface a
//! torn payload — every event a snapshot accepts is byte-for-byte one
//! generation's record. Run with
//! `RUSTFLAGS="--cfg loom" cargo test -p ft-trace --test loom_recorder`.
//!
//! Torn-payload detection works by construction: every payload word of
//! generation `i` is a distinct function of `i`, so a slot mixing words
//! from an overwritten generation and its overwriter cannot equal
//! `event(g)` for any `g`.

#![cfg(loom)]

use ft_trace::recorder::ring::{RawEvent, Ring, KIND_COUNTER, KIND_RECOVERY, KIND_SPAN};
use loom::sync::Arc;

/// Generation-`i` event with every field a distinct function of `i`.
fn event(i: u64) -> RawEvent {
    RawEvent {
        kind: [KIND_SPAN, KIND_COUNTER, KIND_RECOVERY][(i % 3) as usize],
        name_id: (i * 7 + 1) as u32,
        has_arg: i % 2 == 0,
        attempt: (i * 3 + 2) as u16,
        tid: i * 11 + 3,
        job: i * 13 + 5,
        arg: i * 0x1111 + 9,
        t0: i * 17 + 4,
        t1: i * 19 + 6,
    }
}

/// Writer overwrites the oldest slot of a full ring while a reader
/// snapshots: the reader sees either the old generation's payload intact
/// or nothing from that slot — never a mix — and generations come out
/// oldest-first.
#[test]
fn overwrite_racing_snapshot_is_never_torn() {
    loom::model(|| {
        let ring = Arc::new(Ring::new(8));
        // Fill to the wrap boundary before the race: generations 0..8
        // land one per slot (single-threaded, so no schedule branching).
        for i in 0..8 {
            ring.record(&event(i));
        }
        let w = Arc::clone(&ring);
        let writer = loom::thread::spawn(move || {
            // Generation 8 claims slot 0, overwriting generation 0.
            w.record(&event(8));
        });
        let r = Arc::clone(&ring);
        let reader = loom::thread::spawn(move || {
            let mut out = Vec::new();
            r.snapshot_into(&mut out);
            out
        });
        writer.join().unwrap();
        let seen = reader.join().unwrap();
        for (gen, ev) in &seen {
            assert_eq!(ev, &event(*gen), "torn payload at generation {gen}");
        }
        for pair in seen.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "snapshot not oldest-first: {} then {}",
                pair[0].0,
                pair[1].0
            );
        }

        // Quiescent snapshot after the race: exactly the last 8
        // generations, intact, with the overwrite accounted as dropped.
        let mut fin = Vec::new();
        ring.snapshot_into(&mut fin);
        let gens: Vec<u64> = fin.iter().map(|(g, _)| *g).collect();
        assert_eq!(gens, (1..=8).collect::<Vec<_>>());
        for (gen, ev) in &fin {
            assert_eq!(ev, &event(*gen));
        }
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.len(), 8);
    });
}

/// Append (no wraparound) racing a snapshot: the reader either skips the
/// in-progress slot (odd sequence or head not yet advanced past it) or
/// sees the committed event whole — never a partial payload. Readers
/// perform no stores, so this single-reader model also covers any number
/// of concurrent readers: their validation loads cannot affect each
/// other or the writer.
#[test]
fn append_racing_snapshot_skips_or_sees_whole_events() {
    loom::model(|| {
        let ring = Arc::new(Ring::new(8));
        ring.record(&event(0));
        let w = Arc::clone(&ring);
        let writer = loom::thread::spawn(move || w.record(&event(1)));
        let r = Arc::clone(&ring);
        let reader = loom::thread::spawn(move || {
            let mut out = Vec::new();
            r.snapshot_into(&mut out);
            out
        });
        writer.join().unwrap();
        let seen = reader.join().unwrap();
        assert!(!seen.is_empty(), "the committed generation 0 must appear");
        assert_eq!(seen[0], (0, event(0)));
        assert!(seen.len() <= 2);
        if let Some((gen, ev)) = seen.get(1) {
            assert_eq!((*gen, ev), (1, &event(1)), "torn in-progress slot");
        }
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.len(), 2);
    });
}
