//! Property-based tests of the view system: LDA-carrying windows must be
//! indistinguishable from materialized copies under every composition.

use proptest::prelude::*;

/// Strategy: a matrix plus a valid sub-window.
fn window() -> impl Strategy<Value = (usize, usize, usize, usize, usize, usize, u64)> {
    (1usize..24, 1usize..24, any::<u64>()).prop_flat_map(|(rows, cols, seed)| {
        (0..rows, 0..cols, Just(rows), Just(cols), Just(seed)).prop_flat_map(
            move |(r0, c0, rows, cols, seed)| {
                (
                    Just(rows),
                    Just(cols),
                    Just(r0),
                    Just(c0),
                    0..=(rows - r0),
                    0..=(cols - c0),
                    Just(seed),
                )
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// view → to_owned equals sub_matrix for any window.
    #[test]
    fn view_equals_submatrix((rows, cols, r0, c0, m, n, seed) in window()) {
        let a = ft_matrix::random::uniform(rows, cols, seed);
        let v = a.view(r0, c0, m, n).to_owned_matrix();
        let s = a.sub_matrix(r0, c0, m, n);
        prop_assert_eq!(v, s);
    }

    /// Nested subviews compose like index arithmetic.
    #[test]
    fn subview_composition((rows, cols, r0, c0, m, n, seed) in window()) {
        prop_assume!(m >= 1 && n >= 1);
        let a = ft_matrix::random::uniform(rows, cols, seed);
        let outer = a.view(r0, c0, m, n);
        // Take the lower-right quadrant of the window twice over.
        let (hr, hc) = (m / 2, n / 2);
        let inner = outer.subview(hr, hc, m - hr, n - hc);
        for i in 0..inner.rows() {
            for j in 0..inner.cols() {
                prop_assert_eq!(inner.at(i, j), a[(r0 + hr + i, c0 + hc + j)]);
            }
        }
    }

    /// Split + mutate through both halves touches disjoint elements and
    /// reaches every element exactly once.
    #[test]
    fn split_partition(rows in 1usize..16, cols in 1usize..16, cut in 0usize..16, seed in any::<u64>(), by_col in prop::bool::ANY) {
        let mut a = ft_matrix::random::uniform(rows, cols, seed);
        let limit = if by_col { cols } else { rows };
        let cut = cut.min(limit);
        {
            let v = a.as_view_mut();
            let (mut l, mut r) = if by_col { v.split_at_col(cut) } else { v.split_at_row(cut) };
            for j in 0..l.cols() {
                for i in 0..l.rows() {
                    let old = l.at(i, j);
                    l.set(i, j, old + 1000.0);
                }
            }
            for j in 0..r.cols() {
                for i in 0..r.rows() {
                    let old = r.at(i, j);
                    r.set(i, j, old + 1000.0);
                }
            }
        }
        // Every element incremented exactly once.
        let b = ft_matrix::random::uniform(rows, cols, seed);
        for j in 0..cols {
            for i in 0..rows {
                prop_assert!((a[(i, j)] - b[(i, j)] - 1000.0).abs() < 1e-12);
            }
        }
    }

    /// Transpose is an involution and swaps norms.
    #[test]
    fn transpose_involution(rows in 0usize..16, cols in 0usize..16, seed in any::<u64>()) {
        let a = ft_matrix::random::uniform(rows, cols, seed);
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        prop_assert!((a.one_norm() - a.transpose().inf_norm()).abs() < 1e-12);
    }

    /// Grand sum is invariant under row/column swaps.
    #[test]
    fn grand_sum_swap_invariant(n in 2usize..16, seed in any::<u64>(), i in 0usize..16, j in 0usize..16) {
        let a = ft_matrix::random::uniform(n, n, seed);
        let (i, j) = (i % n, j % n);
        let mut b = a.clone();
        b.swap_rows(i, j);
        b.swap_cols(i, j);
        prop_assert!((a.grand_sum() - b.grand_sum()).abs() < 1e-11);
        prop_assert!((a.fro_norm() - b.fro_norm()).abs() < 1e-11);
    }
}
