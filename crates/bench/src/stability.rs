//! Shared driver for Tables II and III: real-arithmetic fault-injection
//! runs measuring the factorization and orthogonality residuals.

use ft_fault::{sample_in_region, Fault, FaultPlan, Moment, Phase, Region, ScheduledFault};
use ft_hessenberg::{ft_gehrd_hybrid, gehrd_hybrid, FtConfig, HybridConfig};
use ft_hybrid::{CostModel, ExecMode, HybridCtx};
use ft_lapack::gehrd::{factorization_residual, orthogonality_residual};
use ft_lapack::HessFactorization;
use ft_matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Both residuals of one run.
#[derive(Clone, Copy, Debug)]
pub struct Residuals {
    /// `‖A − QHQᵀ‖₁ / (N‖A‖₁)` (Table II).
    pub factorization: f64,
    /// `‖QQᵀ − I‖₁ / N` (Table III).
    pub orthogonality: f64,
}

/// One row of the tables: the clean MAGMA baseline plus FT runs with one
/// fault per (area, moment) cell.
#[derive(Clone, Debug)]
pub struct StabilityRow {
    pub n: usize,
    pub magma: Residuals,
    /// `cells[area][moment]` with areas ordered 1, 2, 3 and moments
    /// B, M, E. `None` when the region is empty at that moment.
    pub cells: [[Option<Residuals>; 3]; 3],
    /// Detection/correction counts observed (sanity telemetry).
    pub recoveries: usize,
}

fn residuals(a0: &Matrix, f: &HessFactorization) -> Residuals {
    let q = f.q();
    let h = f.h();
    Residuals {
        factorization: factorization_residual(a0, &q, &h),
        orthogonality: orthogonality_residual(&q),
    }
}

/// Runs the full (area × moment) grid at one size.
pub fn run_stability(n: usize, nb: usize, seed: u64) -> StabilityRow {
    let a = ft_matrix::random::uniform(n, n, seed);
    let iters = (n - 2).div_ceil(nb);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD15EA5E);

    // Baseline: the fault-prone hybrid algorithm, clean run.
    let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
    let base = gehrd_hybrid(&a, &HybridConfig { nb }, &mut ctx, &mut FaultPlan::none())
        .result
        .unwrap();
    let magma = residuals(&a, &base);

    let mut cells: [[Option<Residuals>; 3]; 3] = Default::default();
    let mut recoveries = 0usize;
    for (ai, region) in [Region::Area1, Region::Area2, Region::Area3]
        .iter()
        .enumerate()
    {
        for (mi, moment) in Moment::ALL.iter().enumerate() {
            // Area 1/3 need at least one finished panel.
            let iteration = match region {
                Region::Area2 => moment.iteration(iters),
                _ => moment.iteration(iters).max(1),
            };
            let k = (iteration * nb).min(n - 1);
            let Some((row, col)) = sample_in_region(n, k, *region, &mut rng) else {
                continue;
            };
            let mut plan = FaultPlan::new(vec![ScheduledFault {
                iteration,
                phase: Phase::IterationStart,
                fault: Fault::add(row, col, 0.5),
            }]);
            let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
            let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(nb), &mut ctx, &mut plan);
            recoveries += out.report.recoveries.len() + out.report.q_corrections.len();
            cells[ai][mi] = Some(residuals(&a, &out.result.unwrap()));
        }
    }

    StabilityRow {
        n,
        magma,
        cells,
        recoveries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_grid_produces_sane_residuals() {
        let row = run_stability(96, 16, 3);
        assert!(row.magma.factorization < 1e-14);
        assert!(row.magma.orthogonality < 1e-14);
        assert!(
            row.recoveries > 0,
            "at least some faults must trigger recovery"
        );
        for (ai, area) in row.cells.iter().enumerate() {
            for cell in area.iter().flatten() {
                // Area 3 (ai == 2) tolerates the paper's ~100× larger
                // residuals from encode/recover dot products.
                let tol = if ai == 2 { 1e-11 } else { 1e-13 };
                assert!(
                    cell.factorization < tol && cell.orthogonality < tol,
                    "area {} residuals too large: {cell:?}",
                    ai + 1
                );
            }
        }
    }
}
