//! Owned dense matrix in column-major (Fortran) order.

use crate::view::{MatView, MatViewMut};
use std::fmt;
use std::ops::{Index, IndexMut};

/// An owned, heap-allocated, column-major `rows × cols` matrix of `f64`.
///
/// Element `(i, j)` lives at linear offset `i + j * rows`; the leading
/// dimension of an owned matrix always equals its row count. Use
/// [`Matrix::view`] / [`Matrix::view_mut`] to obtain LDA-carrying views of
/// rectangular sub-blocks for in-place kernels.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Creates a `rows × cols` matrix with every element set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            data: vec![value; rows * cols],
            rows,
            cols,
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a function of the index: `a[(i, j)] = f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Matrix { data, rows, cols }
    }

    /// Wraps an existing column-major buffer. `data.len()` must equal
    /// `rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_col_major: buffer length {} != {rows}x{cols}",
            data.len()
        );
        Matrix { data, rows, cols }
    }

    /// Builds a matrix from row-major data (convenient for literals in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "from_rows: row {i} has ragged length");
        }
        Matrix::from_fn(r, c, |i, j| rows[i][j])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` iff the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// `true` iff the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// The underlying column-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The underlying column-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its column-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Unchecked read. Caller must guarantee `i < rows && j < cols`.
    ///
    /// # Safety
    /// Out-of-bounds indices are undefined behaviour.
    #[inline(always)]
    pub unsafe fn get_unchecked(&self, i: usize, j: usize) -> f64 {
        // SAFETY: the caller contract above is exactly the in-bounds proof.
        unsafe { *self.data.get_unchecked(i + j * self.rows) }
    }

    /// Unchecked write. Caller must guarantee `i < rows && j < cols`.
    ///
    /// # Safety
    /// Out-of-bounds indices are undefined behaviour.
    #[inline(always)]
    pub unsafe fn set_unchecked(&mut self, i: usize, j: usize, v: f64) {
        // SAFETY: the caller contract above is exactly the in-bounds proof.
        unsafe { *self.data.get_unchecked_mut(i + j * self.rows) = v };
    }

    /// Column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(
            j < self.cols,
            "col index {j} out of bounds ({} cols)",
            self.cols
        );
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Column `j` as a contiguous mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(
            j < self.cols,
            "col index {j} out of bounds ({} cols)",
            self.cols
        );
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Copies row `i` into a freshly allocated vector.
    pub fn row_to_vec(&self, i: usize) -> Vec<f64> {
        assert!(
            i < self.rows,
            "row index {i} out of bounds ({} rows)",
            self.rows
        );
        (0..self.cols).map(|j| self[(i, j)]).collect()
    }

    /// An immutable view of the whole matrix.
    #[inline]
    pub fn as_view(&self) -> MatView<'_> {
        MatView::new(&self.data, self.rows, self.cols, self.rows.max(1))
    }

    /// A mutable view of the whole matrix.
    #[inline]
    pub fn as_view_mut(&mut self) -> MatViewMut<'_> {
        let (rows, cols) = (self.rows, self.cols);
        MatViewMut::new(&mut self.data, rows, cols, rows.max(1))
    }

    /// An immutable view of the `m × n` sub-block whose top-left corner is
    /// `(r0, c0)`.
    pub fn view(&self, r0: usize, c0: usize, m: usize, n: usize) -> MatView<'_> {
        self.as_view().subview(r0, c0, m, n)
    }

    /// A mutable view of the `m × n` sub-block whose top-left corner is
    /// `(r0, c0)`.
    pub fn view_mut(&mut self, r0: usize, c0: usize, m: usize, n: usize) -> MatViewMut<'_> {
        self.as_view_mut().into_subview(r0, c0, m, n)
    }

    /// Copies the `m × n` sub-block at `(r0, c0)` into a new owned matrix.
    pub fn sub_matrix(&self, r0: usize, c0: usize, m: usize, n: usize) -> Matrix {
        self.view(r0, c0, m, n).to_owned_matrix()
    }

    /// Writes `block` into this matrix with its top-left corner at `(r0, c0)`.
    pub fn set_sub_matrix(&mut self, r0: usize, c0: usize, block: &Matrix) {
        self.view_mut(r0, c0, block.rows, block.cols)
            .copy_from(&block.as_view());
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Element-wise map in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        self.map_inplace(|v| alpha * v);
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// `self += alpha * other`, element-wise. Panics on shape mismatch.
    pub fn axpy_matrix(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy_matrix: shape mismatch"
        );
        for (d, s) in self.data.iter_mut().zip(other.data.iter()) {
            *d += alpha * s;
        }
    }

    /// Returns `self - other` as a new matrix. Panics on shape mismatch.
    pub fn diff(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "diff: shape mismatch"
        );
        let mut out = self.clone();
        out.axpy_matrix(-1.0, other);
        out
    }

    /// Swaps rows `i1` and `i2` in place.
    pub fn swap_rows(&mut self, i1: usize, i2: usize) {
        assert!(
            i1 < self.rows && i2 < self.rows,
            "swap_rows: index out of bounds"
        );
        if i1 == i2 {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(i1 + j * self.rows, i2 + j * self.rows);
        }
    }

    /// Swaps columns `j1` and `j2` in place.
    pub fn swap_cols(&mut self, j1: usize, j2: usize) {
        assert!(
            j1 < self.cols && j2 < self.cols,
            "swap_cols: index out of bounds"
        );
        if j1 == j2 {
            return;
        }
        let rows = self.rows;
        for i in 0..rows {
            self.data.swap(i + j1 * rows, i + j2 * rows);
        }
    }

    /// `true` iff every element below the first sub-diagonal is exactly zero,
    /// i.e. the matrix is in upper Hessenberg form.
    pub fn is_upper_hessenberg(&self) -> bool {
        self.is_upper_hessenberg_tol(0.0)
    }

    /// `true` iff every element below the first sub-diagonal has absolute
    /// value at most `tol`.
    pub fn is_upper_hessenberg_tol(&self, tol: f64) -> bool {
        for j in 0..self.cols {
            for i in (j + 2)..self.rows {
                if self[(i, j)].abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// `true` iff every element below the main diagonal has absolute value at
    /// most `tol` (upper triangular).
    pub fn is_upper_triangular_tol(&self, tol: f64) -> bool {
        for j in 0..self.cols {
            for i in (j + 1)..self.rows {
                if self[(i, j)].abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// `true` iff any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[i + j * self.rows]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[i + j * self.rows]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_show = 8;
        for i in 0..self.rows.min(max_show) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(max_show) {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            if self.cols > max_show {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 5);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 5);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        assert!(!m.is_square());
        assert!(!m.is_empty());
        assert!(Matrix::zeros(0, 4).is_empty());
    }

    #[test]
    fn column_major_layout() {
        // a = [1 3; 2 4] stored as [1, 2, 3, 4].
        let a = Matrix::from_col_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a[(0, 0)], 1.0);
        assert_eq!(a[(1, 0)], 2.0);
        assert_eq!(a[(0, 1)], 3.0);
        assert_eq!(a[(1, 1)], 4.0);
    }

    #[test]
    fn from_rows_matches_indexing() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 3);
        assert_eq!(a[(0, 2)], 3.0);
        assert_eq!(a[(1, 0)], 4.0);
        assert_eq!(a.row_to_vec(1), vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn identity_is_identity() {
        let i3 = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(i3[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_and_transpose() {
        let a = Matrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        let at = a.transpose();
        assert_eq!(at.rows(), 2);
        assert_eq!(at.cols(), 3);
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(a[(i, j)], at[(j, i)]);
            }
        }
    }

    #[test]
    fn col_slices() {
        let a = Matrix::from_fn(4, 3, |i, j| (i + j * 4) as f64);
        assert_eq!(a.col(1), &[4.0, 5.0, 6.0, 7.0]);
        let mut b = a.clone();
        b.col_mut(2)[0] = -1.0;
        assert_eq!(b[(0, 2)], -1.0);
    }

    #[test]
    fn sub_matrix_roundtrip() {
        let a = Matrix::from_fn(5, 5, |i, j| (i * 5 + j) as f64);
        let block = a.sub_matrix(1, 2, 3, 2);
        assert_eq!(block.rows(), 3);
        assert_eq!(block.cols(), 2);
        assert_eq!(block[(0, 0)], a[(1, 2)]);
        assert_eq!(block[(2, 1)], a[(3, 3)]);

        let mut b = Matrix::zeros(5, 5);
        b.set_sub_matrix(1, 2, &block);
        assert_eq!(b[(1, 2)], a[(1, 2)]);
        assert_eq!(b[(3, 3)], a[(3, 3)]);
        assert_eq!(b[(0, 0)], 0.0);
    }

    #[test]
    fn swap_rows_cols() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        a.swap_rows(0, 1);
        assert_eq!(a, Matrix::from_rows(&[&[3.0, 4.0], &[1.0, 2.0]]));
        a.swap_cols(0, 1);
        assert_eq!(a, Matrix::from_rows(&[&[4.0, 3.0], &[2.0, 1.0]]));
    }

    #[test]
    fn hessenberg_predicate() {
        let h = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[0.0, 7.0, 8.0]]);
        assert!(h.is_upper_hessenberg());
        let mut nh = h.clone();
        nh[(2, 0)] = 1e-13;
        assert!(!nh.is_upper_hessenberg());
        assert!(nh.is_upper_hessenberg_tol(1e-12));
    }

    #[test]
    fn axpy_and_diff() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let mut c = a.clone();
        c.axpy_matrix(2.0, &b);
        assert_eq!(c, Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]));
        let d = c.diff(&a);
        assert_eq!(d, Matrix::from_rows(&[&[2.0, 2.0], &[2.0, 2.0]]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = a[(2, 0)];
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Matrix::zeros(2, 2);
        assert!(!a.has_non_finite());
        a[(0, 1)] = f64::NAN;
        assert!(a.has_non_finite());
    }
}
