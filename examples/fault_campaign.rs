//! Randomized fault-injection campaign: areas × moments × trials, with
//! bit-flip corruptions — the experimental protocol behind the paper's
//! evaluation, including the multi-error capability of §VII.
//!
//! Run with: `cargo run --release --example fault_campaign`

use ft_hess_repro::fault::{Campaign, CampaignConfig};
use ft_hess_repro::hessenberg::verify::ResidualReport;
use ft_hess_repro::prelude::*;

fn main() {
    let n = 160;
    let nb = 32;
    let config = CampaignConfig {
        n,
        nb,
        regions: vec![Region::Area1, Region::Area2, Region::Area3],
        moments: Moment::ALL.to_vec(),
        trials: 3,
        seed: 2024,
        magnitude: Some(0.25),
    };
    let campaign = Campaign::generate(config);
    let a = ft_hess_repro::matrix::random::uniform(n, n, 99);

    println!(
        "fault campaign: N = {n}, nb = {nb}, {} single-fault trials + 1 multi-fault trial",
        campaign.trials.len()
    );

    let mut survived = 0;
    let mut detected = 0;
    for trial in &campaign.trials {
        let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
        let mut plan = trial.plan.clone();
        let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(nb), &mut ctx, &mut plan);
        let f = out.result.unwrap();
        let r = ResidualReport::compute(&a, &f.q(), &f.h());
        let ok = r.factorization < 1e-11 && r.orthogonality < 1e-11;
        if ok {
            survived += 1;
        }
        if !out.report.recoveries.is_empty() || !out.report.q_corrections.is_empty() {
            detected += 1;
        }
        println!(
            "  {:>6} {} trial {}: fault at ({:>3},{:>3})  recoveries={} q_fixes={}  \
             residual={:.1e}  {}",
            trial.region.label(),
            trial.moment.label(),
            trial.trial_index,
            trial.fault.fault.row,
            trial.fault.fault.col,
            out.report.recoveries.len(),
            out.report.q_corrections.len(),
            r.factorization,
            if ok { "OK" } else { "DAMAGED" }
        );
    }

    // Simultaneous multi-error trial (non-rectangle positions).
    let mut plan = FaultPlan::new(vec![
        ScheduledFault {
            iteration: 1,
            phase: Phase::IterationStart,
            fault: Fault::add(60, 80, 0.5),
        },
        ScheduledFault {
            iteration: 1,
            phase: Phase::IterationStart,
            fault: Fault::add(90, 45, 0.3),
        },
        ScheduledFault {
            iteration: 1,
            phase: Phase::IterationStart,
            fault: Fault::add(120, 130, 0.7),
        },
    ]);
    let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
    let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(nb), &mut ctx, &mut plan);
    let f = out.result.unwrap();
    let r = ResidualReport::compute(&a, &f.q(), &f.h());
    let multi_ok = r.factorization < 1e-11;
    println!(
        "  3 simultaneous errors: corrected {} elements, residual = {:.1e}  {}",
        out.report.corrections(),
        r.factorization,
        if multi_ok { "OK" } else { "DAMAGED" }
    );

    println!(
        "\nsummary: {survived}/{} single-fault trials survived ({} detected on-line), \
         multi-fault trial {}",
        campaign.trials.len(),
        detected,
        if multi_ok { "survived" } else { "FAILED" }
    );
    assert_eq!(survived, campaign.trials.len(), "every trial must survive");
    assert!(multi_ok);
}
