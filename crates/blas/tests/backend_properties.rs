//! The backend determinism contract (see `ft_blas::backend`): for every
//! level-3 kernel, the threaded backend must be **bit-identical** — not
//! merely close — to the serial backend, for every thread count. This is
//! what lets the FT driver's checksum aggregates (`Sre`/`Sce`) keep their
//! serial drift under threading, so detection thresholds never depend on
//! the parallelism knob.
//!
//! Two regimes are covered:
//!
//! * **small/odd shapes** (including ones echoing the checked-in panel
//!   regression `(n, k, ib) = (8, 0, 3)`), which sit below
//!   [`ft_blas::backend::PARALLEL_MIN_VOLUME`] for the auto-gated kernels
//!   but are driven through the explicit chunked paths where possible;
//! * **above-gate shapes**, sized past the fork threshold so the threaded
//!   backend demonstrably splits the work across OS threads.

use ft_blas::backend::{PARALLEL_MIN_ELEMS, PARALLEL_MIN_VOLUME};
use ft_blas::{gemm, gemm_threaded, syrk, trmm, trsm, with_backend, Backend};
use ft_blas::{Diag, Side, Trans, Uplo};
use ft_matrix::Matrix;
use proptest::prelude::*;

const THREADS: [usize; 3] = [1, 2, 4];

/// Smallest cube side clearing the level-3 fork gate — derived from the
/// constant so gate recalibration keeps the "above gate" tests honest.
fn side_above_volume() -> usize {
    let mut s = (PARALLEL_MIN_VOLUME as f64).cbrt().ceil() as usize;
    while s * s * s < PARALLEL_MIN_VOLUME {
        s += 1;
    }
    s
}

/// Smallest square side clearing the level-2 element gate.
fn side_above_elems() -> usize {
    let mut s = (PARALLEL_MIN_ELEMS as f64).sqrt().ceil() as usize;
    while s * s < PARALLEL_MIN_ELEMS {
        s += 1;
    }
    s
}

fn bits(m: &Matrix) -> Vec<u64> {
    let mut out = Vec::with_capacity(m.rows() * m.cols());
    for j in 0..m.cols() {
        for i in 0..m.rows() {
            out.push(m[(i, j)].to_bits());
        }
    }
    out
}

fn assert_bit_identical(label: &str, serial: &Matrix, threaded: &Matrix, t: usize) {
    assert_eq!(
        bits(serial),
        bits(threaded),
        "{label}: threaded({t}) differs from serial"
    );
}

/// Runs `op` once under `Backend::Serial` and once under each threaded
/// worker count, asserting the output matrix is bitwise identical.
fn check_backends(label: &str, init: &Matrix, op: impl Fn(&mut Matrix)) {
    let mut reference = init.clone();
    with_backend(Backend::Serial, || op(&mut reference));
    for &t in &THREADS {
        let mut out = init.clone();
        with_backend(Backend::Threaded(t), || op(&mut out));
        assert_bit_identical(label, &reference, &out, t);
    }
}

#[test]
fn gemm_threaded_is_bit_identical_for_any_worker_count() {
    // Odd shapes, including the regression panel's ib = 3 inner dimension
    // and shapes larger than one chunk per worker.
    for &(m, n, k) in &[
        (8usize, 8usize, 3usize),
        (5, 7, 3),
        (1, 9, 4),
        (13, 1, 13),
        (33, 17, 29),
        (64, 48, 31),
    ] {
        let a = ft_matrix::random::uniform(m, k, 1);
        let b = ft_matrix::random::uniform(k, n, 2);
        let c0 = ft_matrix::random::uniform(m, n, 3);
        let mut reference = c0.clone();
        gemm_threaded(
            1,
            Trans::No,
            Trans::No,
            1.25,
            &a.as_view(),
            &b.as_view(),
            -0.5,
            &mut reference.as_view_mut(),
        );
        for workers in [2usize, 3, 4, 7] {
            let mut c = c0.clone();
            gemm_threaded(
                workers,
                Trans::No,
                Trans::No,
                1.25,
                &a.as_view(),
                &b.as_view(),
                -0.5,
                &mut c.as_view_mut(),
            );
            assert_bit_identical(&format!("gemm {m}x{n}x{k}"), &reference, &c, workers);
        }
    }
}

#[test]
fn gemm_above_fork_gate_is_bit_identical() {
    // Above PARALLEL_MIN_VOLUME: the Auto path genuinely forks under a
    // threaded backend and must still match the serial result exactly.
    let s = side_above_volume();
    let (m, n, k) = (s, s + 2, s);
    let a = ft_matrix::random::uniform(m, k, 11);
    let b = ft_matrix::random::uniform(k, n, 12);
    let init = ft_matrix::random::uniform(m, n, 13);
    check_backends("gemm auto above gate", &init, |c| {
        gemm(
            Trans::Yes,
            Trans::No,
            0.75,
            &a.transpose().as_view(),
            &b.as_view(),
            1.0,
            &mut c.as_view_mut(),
        )
    });
}

#[test]
fn trmm_is_bit_identical_across_backends() {
    // Left and Right at a shape clearing the fork gate; plus an odd
    // small shape that stays serial under every backend.
    let s = side_above_volume();
    for &(rows, cols) in &[(s, s + 7), (9usize, 5usize)] {
        let tri = ft_matrix::random::uniform(rows, rows, 21);
        let init = ft_matrix::random::uniform(rows, cols, 22);
        for uplo in [Uplo::Upper, Uplo::Lower] {
            for trans in [Trans::No, Trans::Yes] {
                check_backends(&format!("trmm left {rows}x{cols}"), &init, |b| {
                    trmm(
                        Side::Left,
                        uplo,
                        trans,
                        Diag::NonUnit,
                        1.5,
                        &tri.as_view(),
                        &mut b.as_view_mut(),
                    )
                });
            }
        }
        let tri_r = ft_matrix::random::uniform(cols, cols, 23);
        check_backends(&format!("trmm right {rows}x{cols}"), &init, |b| {
            trmm(
                Side::Right,
                Uplo::Upper,
                Trans::No,
                Diag::Unit,
                0.5,
                &tri_r.as_view(),
                &mut b.as_view_mut(),
            )
        });
    }
}

#[test]
fn trsm_is_bit_identical_across_backends() {
    let s = side_above_volume();
    for &(rows, cols) in &[(s, s + 7), (7usize, 3usize)] {
        // Diagonally dominant triangle: a well-posed solve.
        let mut tri = ft_matrix::random::uniform(rows, rows, 31);
        for i in 0..rows {
            tri[(i, i)] += rows as f64;
        }
        let init = ft_matrix::random::uniform(rows, cols, 32);
        for uplo in [Uplo::Upper, Uplo::Lower] {
            check_backends(&format!("trsm left {rows}x{cols}"), &init, |b| {
                trsm(
                    Side::Left,
                    uplo,
                    Trans::No,
                    Diag::NonUnit,
                    2.0,
                    &tri.as_view(),
                    &mut b.as_view_mut(),
                )
            });
        }
        let mut tri_r = ft_matrix::random::uniform(cols, cols, 33);
        for i in 0..cols {
            tri_r[(i, i)] += cols as f64;
        }
        check_backends(&format!("trsm right {rows}x{cols}"), &init, |b| {
            trsm(
                Side::Right,
                Uplo::Lower,
                Trans::Yes,
                Diag::NonUnit,
                1.0,
                &tri_r.as_view(),
                &mut b.as_view_mut(),
            )
        });
    }
}

#[test]
fn syrk_is_bit_identical_across_backends() {
    // n²·k/2 clears the fork gate at the derived shape; 9 × 3 stays
    // serial everywhere.
    let s = side_above_volume();
    for &(n, k) in &[(s, 2 * s + 1), (9usize, 3usize)] {
        let a = ft_matrix::random::uniform(n, k, 41);
        let at = a.transpose();
        let init = ft_matrix::random::uniform(n, n, 42);
        for uplo in [Uplo::Upper, Uplo::Lower] {
            check_backends(&format!("syrk no-trans n={n}"), &init, |c| {
                syrk(
                    uplo,
                    Trans::No,
                    1.1,
                    &a.as_view(),
                    0.3,
                    &mut c.as_view_mut(),
                )
            });
            check_backends(&format!("syrk trans n={n}"), &init, |c| {
                syrk(
                    uplo,
                    Trans::Yes,
                    1.1,
                    &at.as_view(),
                    0.3,
                    &mut c.as_view_mut(),
                )
            });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random odd shapes and scalars: `gemm_threaded` never depends on the
    /// worker count, chunk boundaries included.
    #[test]
    fn gemm_worker_count_invariance(
        m in 1usize..24,
        n in 1usize..24,
        k in 1usize..24,
        workers in 2usize..6,
        seed in any::<u64>(),
        alpha in -2.0f64..2.0,
        beta in -1.0f64..1.0,
    ) {
        let a = ft_matrix::random::uniform(m, k, seed);
        let b = ft_matrix::random::uniform(k, n, seed ^ 0x9e37);
        let c0 = ft_matrix::random::uniform(m, n, seed ^ 0x79b9);
        let mut serial = c0.clone();
        gemm_threaded(1, Trans::No, Trans::No, alpha, &a.as_view(), &b.as_view(), beta, &mut serial.as_view_mut());
        let mut par = c0.clone();
        gemm_threaded(workers, Trans::No, Trans::No, alpha, &a.as_view(), &b.as_view(), beta, &mut par.as_view_mut());
        prop_assert!(
            bits(&serial) == bits(&par),
            "{m}x{n}x{k} workers={workers}: threaded differs from serial"
        );
    }
}

#[test]
fn gemv_is_bit_identical_across_backends() {
    // The derived square clears PARALLEL_MIN_ELEMS (the level-2 gate), so
    // the threaded backend genuinely splits `y`; the smaller shapes stay
    // serial under every backend. All must match serial bitwise.
    let e = side_above_elems();
    for &(m, n) in &[(e, e), (300, 220), (48, 48), (7, 300)] {
        let a = ft_matrix::random::uniform(m, n, 51);
        let x: Vec<f64> = ft_matrix::random::uniform(n, 1, 52).col(0).to_vec();
        let xt: Vec<f64> = ft_matrix::random::uniform(m, 1, 53).col(0).to_vec();
        let y0 = ft_matrix::random::uniform(m, 1, 54);
        let yt0 = ft_matrix::random::uniform(n, 1, 55);

        check_backends(&format!("gemv {m}x{n}"), &y0, |y| {
            ft_blas::gemv(Trans::No, 1.25, &a.as_view(), &x, -0.5, y.col_mut(0))
        });
        check_backends(&format!("gemv^T {m}x{n}"), &yt0, |y| {
            ft_blas::gemv(Trans::Yes, -0.75, &a.as_view(), &xt, 1.0, y.col_mut(0))
        });
    }
}

#[test]
fn ger_is_bit_identical_across_backends() {
    let e = side_above_elems();
    for &(m, n) in &[(e, e), (190, 345), (31, 17)] {
        let x: Vec<f64> = ft_matrix::random::uniform(m, 1, 61).col(0).to_vec();
        let y: Vec<f64> = ft_matrix::random::uniform(n, 1, 62).col(0).to_vec();
        let a0 = ft_matrix::random::uniform(m, n, 63);
        check_backends(&format!("ger {m}x{n}"), &a0, |a| {
            ft_blas::ger(0.35, &x, &y, &mut a.as_view_mut())
        });
    }
}

#[test]
fn nested_with_backend_restores_each_level() {
    // threaded → serial → threaded nesting: every kernel call sees the
    // innermost backend, and unwinding restores the outer one each time.
    let s = side_above_volume();
    let (m, n, k) = (s, s + 2, s);
    let a = ft_matrix::random::uniform(m, k, 71);
    let b = ft_matrix::random::uniform(k, n, 72);
    let c0 = ft_matrix::random::uniform(m, n, 73);
    let run = || {
        let mut c = c0.clone();
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            &a.as_view(),
            &b.as_view(),
            0.5,
            &mut c.as_view_mut(),
        );
        c
    };
    let reference = with_backend(Backend::Serial, run);

    let (outer, mid, inner) = with_backend(Backend::Threaded(4), || {
        let outer = run();
        let (mid, inner) = with_backend(Backend::Serial, || {
            let mid = run();
            let inner = with_backend(Backend::Threaded(2), run);
            assert_eq!(
                ft_blas::current_backend(),
                Backend::Serial,
                "inner with_backend must restore the serial level"
            );
            (mid, inner)
        });
        assert_eq!(
            ft_blas::current_backend(),
            Backend::Threaded(4),
            "middle with_backend must restore the threaded level"
        );
        (outer, mid, inner)
    });

    assert_bit_identical("nested outer threaded(4)", &reference, &outer, 4);
    assert_bit_identical("nested middle serial", &reference, &mid, 1);
    assert_bit_identical("nested inner threaded(2)", &reference, &inner, 2);
}
