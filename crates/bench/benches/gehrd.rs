//! Criterion bench: Hessenberg reduction variants — unblocked (`gehd2`)
//! vs blocked (`gehrd`) vs the simulated hybrid driver (Algorithm 2) —
//! plus the FT driver under the serial vs threaded level-3 backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ft_bench::{write_bench_json, Record};
use ft_blas::Backend;
use ft_fault::FaultPlan;
use ft_hessenberg::{ft_gehrd_hybrid, gehrd_hybrid, FtConfig, HybridConfig};
use ft_hybrid::{CostModel, ExecMode, HybridCtx};
use ft_lapack::{gehd2, gehrd, GehrdConfig};
use std::time::Instant;

fn bench_gehrd(c: &mut Criterion) {
    let mut group = c.benchmark_group("gehrd");
    group.sample_size(10);
    for &n in &[96usize, 192] {
        let a = ft_matrix::random::uniform(n, n, 7);
        group.throughput(Throughput::Elements((10 * n * n * n / 3) as u64));

        group.bench_with_input(BenchmarkId::new("unblocked", n), &n, |bench, _| {
            bench.iter(|| {
                let mut w = a.clone();
                std::hint::black_box(gehd2(&mut w));
            });
        });
        group.bench_with_input(BenchmarkId::new("blocked_nb32", n), &n, |bench, _| {
            bench.iter(|| {
                let mut w = a.clone();
                std::hint::black_box(gehrd(&mut w, &GehrdConfig { nb: 32, nx: 4 }));
            });
        });
        group.bench_with_input(BenchmarkId::new("hybrid_sim", n), &n, |bench, _| {
            bench.iter(|| {
                let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
                let out = gehrd_hybrid(
                    &a,
                    &HybridConfig { nb: 32 },
                    &mut ctx,
                    &mut FaultPlan::none(),
                );
                std::hint::black_box(out.sim_seconds);
            });
        });
    }
    group.finish();
}

/// The FT driver's wall-clock time under the serial vs threaded level-3
/// backend. `n` and `nb` are sized so the trailing updates clear
/// `ft_blas::backend::PARALLEL_MIN_VOLUME` and the threaded backend
/// genuinely forks (the smoke run uses a smaller, sub-gate size).
fn bench_ft_backend(c: &mut Criterion) {
    let smoke = ft_bench::smoke();
    let (n, nb) = if smoke {
        (96usize, 16usize)
    } else {
        (384usize, 64usize)
    };
    let a = ft_matrix::random::uniform(n, n, 7);
    let mut group = c.benchmark_group("ft_gehrd_backend");
    group.sample_size(10);
    group.throughput(Throughput::Elements((10 * n * n * n / 3) as u64));
    for backend in [Backend::Serial, Backend::Threaded(4)] {
        let label = match backend {
            Backend::Serial => "serial".to_string(),
            Backend::Threaded(t) => format!("threaded{t}"),
        };
        let cfg = FtConfig {
            backend,
            ..FtConfig::with_nb(nb)
        };
        group.bench_with_input(BenchmarkId::new(label, n), &n, |bench, _| {
            bench.iter(|| {
                let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
                let out = ft_gehrd_hybrid(&a, &cfg, &mut ctx, &mut FaultPlan::none());
                std::hint::black_box(out.report.sim_seconds);
            });
        });
    }
    group.finish();
    // Direct wall-clock speedup report.
    let iters = if smoke { 1 } else { 2 };
    let time = |backend: Backend| {
        let cfg = FtConfig {
            backend,
            ..FtConfig::with_nb(nb)
        };
        let t0 = Instant::now();
        for _ in 0..iters {
            let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
            let out = ft_gehrd_hybrid(&a, &cfg, &mut ctx, &mut FaultPlan::none());
            std::hint::black_box(out.report.sim_seconds);
        }
        t0.elapsed().as_secs_f64() / iters as f64
    };
    let ts = time(Backend::Serial);
    let tt = time(Backend::Threaded(4));
    println!(
        "ft_gehrd backend speedup @ n={n}, nb={nb}: serial {:.1} ms, threaded(4) {:.1} ms -> {:.2}x",
        ts * 1e3,
        tt * 1e3,
        ts / tt
    );
    // 10n³/3 flops for the reduction (Q formation excluded) — the shared
    // nominal-flop helper, not a re-derivation.
    let gflops = |secs: f64| ft_blas::gehrd_gflops(n, secs);
    write_bench_json(
        "gehrd",
        &[
            Record::new()
                .str("kind", "ft_gehrd_backend")
                .int("n", n as u64)
                .int("nb", nb as u64)
                .num("serial_ms", ts * 1e3)
                .num("threaded4_ms", tt * 1e3)
                .num("speedup", ts / tt)
                .num("serial_gflops", gflops(ts))
                .num("threaded4_gflops", gflops(tt))
                .bool("smoke", smoke),
            phase_breakdown_record(&a, n, nb, smoke),
        ],
    );
}

/// One traced (unmeasured) run of the FT driver under the threaded
/// backend, with span collection forced on, producing the per-phase
/// wall-clock breakdown record embedded in BENCH_gehrd.json — the paper's
/// Figure 6 decomposition. The previous trace mode is restored afterwards
/// so the measured loops above stay un-instrumented.
fn phase_breakdown_record(a: &ft_matrix::Matrix, n: usize, nb: usize, smoke: bool) -> Record {
    let prev_mode = ft_trace::mode();
    ft_trace::set_mode(ft_trace::TraceMode::Summary);
    let cfg = FtConfig {
        backend: Backend::Threaded(4),
        ..FtConfig::with_nb(nb)
    };
    let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
    let out = ft_gehrd_hybrid(a, &cfg, &mut ctx, &mut FaultPlan::none());
    ft_trace::set_mode(prev_mode);
    let _ = ft_trace::take_events(); // drain: keep the shared sink bounded

    let ph = &out.report.phases;
    let wall = out.report.wall_seconds;
    let mut rec = Record::new()
        .str("kind", "ft_gehrd_phase_breakdown")
        .int("n", n as u64)
        .int("nb", nb as u64)
        .num("wall_ms", wall * 1e3)
        .num("phase_total_ms", ph.total() * 1e3)
        .num("phase_cover_ratio", ph.total() / wall.max(1e-12))
        .num("ft_overhead_ms", ph.ft_overhead() * 1e3)
        .num(
            "ft_overhead_pct",
            100.0 * ph.ft_overhead() / wall.max(1e-12),
        );
    for (name, secs) in ph.rows() {
        rec = rec.num(&format!("phase_{name}_ms"), secs * 1e3);
    }
    rec.bool("smoke", smoke)
}

criterion_group!(benches, bench_gehrd, bench_ft_backend);
criterion_main!(benches);
