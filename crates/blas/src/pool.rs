//! Lazily-initialized persistent worker pool behind the threaded backend.
//!
//! PR 1's threaded backend spawned fresh OS threads inside
//! `std::thread::scope` on **every** kernel call. That is correct but pays
//! thread-creation latency (tens of microseconds) per call — measurable
//! once the gates in [`crate::backend`] let medium-sized kernels fork, and
//! fatal to the paper's "< 2 % overhead" pitch if the baseline kernels are
//! not running at hardware speed. This module replaces per-call spawning
//! with a process-lifetime pool:
//!
//! * workers are spawned **once**, on first threaded dispatch, and grown on
//!   demand up to the largest worker count any kernel requests;
//! * between kernels the workers **park** on a condvar — zero CPU burn, no
//!   spinning;
//! * dispatch is a mutex-protected queue push plus a condvar notify: the
//!   per-kernel cost is a few hundred nanoseconds instead of a spawn/join
//!   cycle (measured by `BENCH_gemm.json`'s dispatch-overhead records);
//! * the caller always executes the first chunk inline, exactly as the
//!   `std::thread::scope` code did, so worker counts and chunk shapes are
//!   unchanged — and with them the bit-identity contract.
//!
//! # Scoped dispatch without `'static`
//!
//! Kernel chunks borrow matrix views with stack lifetimes. [`run_scoped`]
//! erases those lifetimes to hand the closures to pool threads, which is
//! sound because the function **always waits** for every submitted task
//! before returning — including when the inline chunk panics (a drop guard
//! performs the wait during unwinding). Worker panics are caught, carried
//! back across the latch, and re-raised on the calling thread, mirroring
//! `std::thread::scope` semantics.
//!
//! # Re-entrancy
//!
//! A task running *on* a pool worker never dispatches back into the pool:
//! [`in_worker`] is true there, [`crate::backend::fork_threads`] returns 1,
//! and [`run_scoped`] falls back to inline execution. This makes nested
//! kernels (`with_backend(threaded, || …)` inside a chunk, or a kernel
//! calling another kernel) deadlock-free by construction: blocked waiters
//! can never exhaust the worker supply.
//!
//! # Asynchronous dispatch ([`dispatch_async`])
//!
//! The lookahead pipeline in `ft-lapack::gehrd` needs the *caller to keep
//! computing* while workers apply a far trailing update, so it cannot use
//! [`run_scoped`]'s dispatch-and-wait shape. [`dispatch_async`] enqueues
//! every task (the caller runs none inline — continuing on the critical
//! path is the point) and returns an [`AsyncHandle`] completion token
//! built on the same [`Latch`]. The token restores the wait-before-return
//! discipline one frame up: [`AsyncHandle::wait`] blocks until every task
//! completed and re-raises the first task panic; merely *dropping* the
//! handle performs the same wait (panics are re-raised unless the thread
//! is already unwinding), so an early `return` or a panic between
//! dispatch and wait cannot leave tasks running against dead borrows. The
//! handle's `'scope` parameter pins the borrows captured by the tasks
//! until the handle dies, which is what lets the borrow checker order
//! "wait, then re-borrow the matrix" without unsafe code at the call
//! site. The one obligation the type system cannot enforce is that the
//! handle must not be *leaked* (`std::mem::forget`): a leaked handle
//! skips the wait and the erased borrows would dangle. The handle is
//! `#[must_use]` and every in-tree caller waits explicitly; the loom
//! model `tests/loom_async_dispatch.rs` checks the token protocol itself
//! (completion, panic carry, drop-before-wait).

use crate::latch::Latch;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A type-erased unit of work owned by the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A borrowed task as produced by the chunk helpers in
/// [`crate::backend`]: may capture non-`'static` matrix views.
pub(crate) type ScopedTask<'scope> = Box<dyn FnOnce() + Send + 'scope>;

struct PoolState {
    queue: VecDeque<Job>,
    workers: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    job_ready: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// Registry counter `pool.spawn`: total OS threads ever spawned by the
/// pool (monotonic). After warm-up this must stay constant no matter how
/// many kernels run — the regression tests in
/// `crates/blas/tests/pool_properties.rs` pin that.
fn spawn_counter() -> &'static ft_trace::Counter {
    static C: OnceLock<&'static ft_trace::Counter> = OnceLock::new();
    C.get_or_init(|| ft_trace::counter("pool.spawn"))
}

/// Registry counter `pool.dispatch`: total tasks handed to pool workers
/// (monotonic; excludes the chunks the callers run inline). Used by tests
/// to prove a kernel did (or did not) consult the parallel gate.
fn dispatch_counter() -> &'static ft_trace::Counter {
    static C: OnceLock<&'static ft_trace::Counter> = OnceLock::new();
    C.get_or_init(|| ft_trace::counter("pool.dispatch"))
}

/// Registry counter `pool.inline_fallback`: multi-task dispatches that ran
/// inline because the caller was already a pool worker (the re-entrancy
/// guard documented in the module docs).
fn inline_fallback_counter() -> &'static ft_trace::Counter {
    static C: OnceLock<&'static ft_trace::Counter> = OnceLock::new();
    C.get_or_init(|| ft_trace::counter("pool.inline_fallback"))
}

/// Registry counter `pool.dispatch_async`: tasks handed to workers through
/// the asynchronous path (monotonic; a subset of `pool.dispatch`). Lets
/// tests prove the lookahead schedule genuinely overlapped instead of
/// silently degrading to the synchronous path.
fn dispatch_async_counter() -> &'static ft_trace::Counter {
    static C: OnceLock<&'static ft_trace::Counter> = OnceLock::new();
    C.get_or_init(|| ft_trace::counter("pool.dispatch_async"))
}

/// Registry gauge `pool.async_inflight`: asynchronously dispatched tasks
/// currently enqueued or executing. Raised by the full batch size at
/// dispatch, lowered by one as each task finishes — guaranteed back to
/// its prior level once the corresponding [`AsyncHandle`] resolves.
fn async_inflight_gauge() -> &'static ft_trace::Gauge {
    static G: OnceLock<&'static ft_trace::Gauge> = OnceLock::new();
    G.get_or_init(|| ft_trace::gauge("pool.async_inflight"))
}

thread_local! {
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// `true` on threads owned by the pool; used to suppress nested forking.
pub fn in_worker() -> bool {
    IS_WORKER.with(|w| w.get())
}

/// Number of OS threads the pool has ever spawned (monotonic; the pool
/// never shrinks, so this is also its current size). Reads the
/// `pool.spawn` registry counter.
pub fn spawned_worker_count() -> usize {
    spawn_counter().get() as usize
}

/// Number of tasks dispatched to pool workers since process start. Reads
/// the `pool.dispatch` registry counter.
pub fn dispatch_count() -> u64 {
    dispatch_counter().get()
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            workers: 0,
        }),
        job_ready: Condvar::new(),
    })
}

fn worker_loop(pool: &'static Pool) {
    IS_WORKER.with(|w| w.set(true));
    loop {
        let job = {
            let mut st = pool.state.lock().unwrap();
            loop {
                if let Some(j) = st.queue.pop_front() {
                    break j;
                }
                st = pool.job_ready.wait(st).unwrap();
            }
        };
        let _span = ft_trace::span!("pool.task");
        job();
    }
}

/// Grows the pool to at least `target` workers (holding the state lock).
fn ensure_workers(pool: &'static Pool, target: usize) {
    let mut st = pool.state.lock().unwrap();
    while st.workers < target {
        std::thread::Builder::new()
            .name(format!("ft-blas-pool-{}", st.workers))
            .spawn(move || worker_loop(pool))
            .expect("ft-blas: failed to spawn pool worker");
        st.workers += 1;
        spawn_counter().incr();
    }
}

/// Raw latch pointer made `Send` so it can travel inside a `Job`. The
/// pointee is a stack-pinned [`Latch`] that [`run_scoped`] keeps alive
/// until every task has completed (see the safety comments there).
#[derive(Clone, Copy)]
struct LatchPtr(*const Latch);

// SAFETY: the pointee is a stack-pinned Latch that outlives every Job
// carrying this pointer (run_scoped waits before returning), so sending
// the raw pointer across threads cannot produce a dangling access.
unsafe impl Send for LatchPtr {}

impl LatchPtr {
    /// # Safety
    /// The caller must guarantee the pointee latch is still alive
    /// (upheld by [`run_scoped`]'s wait-before-return discipline).
    unsafe fn latch(self) -> &'static Latch {
        // SAFETY: the caller contract above keeps the pointee alive; the
        // 'static lifetime never escapes the pool's job plumbing.
        unsafe { &*self.0 }
    }
}

/// Waits for the latch even if the enclosing scope unwinds: dropping this
/// guard (normally or during a panic) blocks until every dispatched task
/// has finished, which is what makes the lifetime erasure in
/// [`run_scoped`] sound.
struct WaitGuard<'a>(&'a Latch);

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        self.0.wait();
    }
}

/// Runs every task to completion, the first inline on the calling thread
/// and the rest on pool workers, then returns. Panics from any task are
/// propagated to the caller (the first observed wins).
///
/// On a pool worker thread all tasks run inline (see the module docs on
/// re-entrancy).
pub(crate) fn run_scoped(tasks: Vec<ScopedTask<'_>>) {
    let mut tasks = tasks;
    if tasks.len() <= 1 || in_worker() {
        if tasks.len() > 1 {
            inline_fallback_counter().incr();
        }
        for task in tasks {
            task();
        }
        return;
    }
    let _span = ft_trace::span!("pool.dispatch", tasks.len());
    let local = tasks.remove(0);
    let extra = tasks.len();
    let pool = pool();
    ensure_workers(pool, extra);

    // Workers inherit the dispatcher's trace context (job/attempt) so
    // their spans and counter deltas stay attributable to the job.
    let trace_ctx = ft_trace::ctx::current();
    let latch = Latch::new(extra);
    {
        let mut st = pool.state.lock().unwrap();
        for task in tasks {
            // Carry a raw latch pointer instead of an `Arc`: the wait
            // guard below keeps this stack frame — and with it the latch —
            // alive until every task has called `complete`.
            let latch_ptr = LatchPtr(&latch);
            let job: ScopedTask<'_> = Box::new(move || {
                let _ctx = ft_trace::ctx::push_opt(trace_ctx);
                let result = catch_unwind(AssertUnwindSafe(task));
                // SAFETY: the dispatching frame cannot return or unwind
                // past `latch` before `complete` runs (WaitGuard blocks on
                // the latch in both paths), so the pointee is alive.
                unsafe { latch_ptr.latch().complete(result.err()) };
            });
            // SAFETY: lifetime erasure of the borrowed task. The calling
            // frame waits on the latch before returning (normally via the
            // explicit wait, during unwinding via WaitGuard::drop), so
            // every borrow inside the task strictly outlives its
            // execution on the worker.
            let job: Job = unsafe { std::mem::transmute::<ScopedTask<'_>, Job>(job) };
            st.queue.push_back(job);
        }
        dispatch_counter().add(extra as u64);
        pool.job_ready.notify_all();
    }

    {
        let guard = WaitGuard(&latch);
        local();
        drop(guard); // blocks until all workers finish
    }
    if let Some(p) = latch.take_panic() {
        resume_unwind(p);
    }
}

/// Completion token returned by [`dispatch_async`]: once [`AsyncHandle::wait`]
/// returns (or the handle is dropped), every dispatched task has finished
/// and its effects are visible to the calling thread.
///
/// The `'scope` lifetime ties the handle to the borrows captured by the
/// dispatched tasks: the borrow checker keeps those borrows live until
/// the handle dies, and the handle's wait-on-drop makes "dies" imply
/// "tasks finished". See the module docs for the (single) obligation this
/// leaves with the caller: the handle must not be leaked.
#[must_use = "the dispatched tasks run until this handle is waited or dropped; \
              leaking it would let them outlive their borrows"]
pub struct AsyncHandle<'scope> {
    latch: Option<Arc<Latch>>,
    _borrows: PhantomData<&'scope mut ()>,
}

impl<'scope> AsyncHandle<'scope> {
    /// A handle whose tasks already completed (empty or inline dispatch).
    fn resolved() -> AsyncHandle<'scope> {
        AsyncHandle {
            latch: None,
            _borrows: PhantomData,
        }
    }

    /// Blocks until every dispatched task has completed, then re-raises
    /// the first task panic (if any) on the calling thread.
    pub fn wait(mut self) {
        self.finish();
    }

    /// `true` once every dispatched task has completed; never blocks.
    pub fn is_resolved(&self) -> bool {
        match &self.latch {
            None => true,
            Some(latch) => latch.is_resolved(),
        }
    }

    fn finish(&mut self) {
        if let Some(latch) = self.latch.take() {
            latch.wait();
            if let Some(p) = latch.take_panic() {
                if !std::thread::panicking() {
                    resume_unwind(p);
                }
            }
        }
    }
}

impl Drop for AsyncHandle<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Enqueues every task onto pool workers and returns immediately with an
/// [`AsyncHandle`] the caller must later wait on (or drop). Unlike
/// [`run_scoped`], the caller executes *no* chunk inline — the entire
/// batch runs on workers so the calling thread can keep working on the
/// critical path (the lookahead panel factorization).
///
/// On a pool worker thread, or with an empty batch, the tasks run inline
/// and the returned handle is already resolved (same re-entrancy guard as
/// [`run_scoped`]).
pub(crate) fn dispatch_async<'scope>(tasks: Vec<ScopedTask<'scope>>) -> AsyncHandle<'scope> {
    if tasks.is_empty() || in_worker() {
        if !tasks.is_empty() {
            inline_fallback_counter().incr();
        }
        for task in tasks {
            task();
        }
        return AsyncHandle::resolved();
    }
    let count = tasks.len();
    let _span = ft_trace::span!("pool.dispatch", count);
    let pool = pool();
    ensure_workers(pool, count);
    let latch = Arc::new(Latch::new(count));
    async_inflight_gauge().add(count as u64);
    // Same context inheritance as `run_scoped`: async batches belong to
    // the dispatching job until the handle resolves.
    let trace_ctx = ft_trace::ctx::current();
    {
        let mut st = pool.state.lock().unwrap();
        for task in tasks {
            let task_latch = Arc::clone(&latch);
            let job: ScopedTask<'_> = Box::new(move || {
                let _ctx = ft_trace::ctx::push_opt(trace_ctx);
                let result = catch_unwind(AssertUnwindSafe(task));
                async_inflight_gauge().sub(1);
                task_latch.complete(result.err());
            });
            // SAFETY: lifetime erasure of the borrowed task, with the
            // wait obligation moved into the returned AsyncHandle: its
            // `wait` and its Drop both block on the latch, and its
            // `'scope` parameter keeps every borrow inside the task alive
            // until then. The module docs state the caller's no-leak
            // obligation; all in-tree callers wait explicitly.
            let job: Job = unsafe { std::mem::transmute::<ScopedTask<'_>, Job>(job) };
            st.queue.push_back(job);
        }
        dispatch_counter().add(count as u64);
        dispatch_async_counter().add(count as u64);
        pool.job_ready.notify_all();
    }
    AsyncHandle {
        latch: Some(latch),
        _borrows: PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_tasks_see_borrowed_data() {
        let mut data = vec![0usize; 64];
        {
            let chunks: Vec<&mut [usize]> = data.chunks_mut(16).collect();
            let tasks: Vec<ScopedTask<'_>> = chunks
                .into_iter()
                .enumerate()
                .map(|(ci, chunk)| {
                    Box::new(move || {
                        for (off, v) in chunk.iter_mut().enumerate() {
                            *v = ci * 16 + off;
                        }
                    }) as ScopedTask<'_>
                })
                .collect();
            run_scoped(tasks);
        }
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let result = catch_unwind(|| {
            let tasks: Vec<ScopedTask<'_>> = vec![
                Box::new(|| {}),
                Box::new(|| panic!("worker boom")),
                Box::new(|| {}),
            ];
            run_scoped(tasks);
        });
        assert!(result.is_err(), "worker panic must reach the caller");
        // The pool must still be usable afterwards.
        let counter = AtomicUsize::new(0);
        let tasks: Vec<ScopedTask<'_>> = (0..3)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as ScopedTask<'_>
            })
            .collect();
        run_scoped(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn empty_and_single_task_run_inline() {
        run_scoped(vec![]);
        let ran = AtomicUsize::new(0);
        let spawned_before = spawned_worker_count();
        let dispatched_before = dispatch_count();
        run_scoped(vec![Box::new(|| {
            ran.fetch_add(1, Ordering::Relaxed);
        }) as ScopedTask<'_>]);
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        assert_eq!(spawned_worker_count(), spawned_before);
        assert_eq!(dispatch_count(), dispatched_before);
    }

    #[test]
    fn async_dispatch_completes_and_tracks_inflight() {
        let counter = AtomicUsize::new(0);
        let tasks: Vec<ScopedTask<'_>> = (0..3)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as ScopedTask<'_>
            })
            .collect();
        let before = dispatch_async_counter().get();
        let handle = dispatch_async(tasks);
        handle.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 3);
        assert_eq!(dispatch_async_counter().get(), before + 3);
        assert_eq!(
            async_inflight_gauge().get(),
            0,
            "gauge must return to zero once the handle resolves"
        );
    }

    #[test]
    fn async_panic_propagates_on_wait() {
        let result = catch_unwind(|| {
            let tasks: Vec<ScopedTask<'_>> =
                vec![Box::new(|| {}), Box::new(|| panic!("async boom"))];
            dispatch_async(tasks).wait();
        });
        assert!(result.is_err(), "task panic must surface through wait()");
        // The pool must still be usable afterwards.
        let counter = AtomicUsize::new(0);
        let tasks: Vec<ScopedTask<'_>> = (0..2)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as ScopedTask<'_>
            })
            .collect();
        dispatch_async(tasks).wait();
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn async_panic_propagates_on_drop() {
        let result = catch_unwind(|| {
            let tasks: Vec<ScopedTask<'_>> =
                vec![Box::new(|| panic!("drop boom")) as ScopedTask<'_>];
            let _handle = dispatch_async(tasks);
            // Handle dropped without wait: the drop must still block and
            // re-raise the task panic.
        });
        assert!(result.is_err(), "task panic must surface through drop");
    }

    #[test]
    fn async_from_worker_runs_inline() {
        let outer: Vec<ScopedTask<'_>> = (0..2)
            .map(|_| {
                Box::new(|| {
                    if in_worker() {
                        let ran = AtomicUsize::new(0);
                        let inner: Vec<ScopedTask<'_>> = (0..2)
                            .map(|_| {
                                Box::new(|| {
                                    ran.fetch_add(1, Ordering::Relaxed);
                                }) as ScopedTask<'_>
                            })
                            .collect();
                        let handle = dispatch_async(inner);
                        // Inline execution: resolved before wait.
                        assert!(handle.is_resolved());
                        handle.wait();
                        assert_eq!(ran.load(Ordering::Relaxed), 2);
                    }
                }) as ScopedTask<'_>
            })
            .collect();
        run_scoped(outer);
    }

    #[test]
    fn nested_dispatch_counts_inline_fallback() {
        let before = inline_fallback_counter().get();
        let outer: Vec<ScopedTask<'_>> = (0..2)
            .map(|_| {
                Box::new(|| {
                    if in_worker() {
                        // A nested multi-task dispatch from a worker must
                        // fall back to inline execution and count it.
                        let inner: Vec<ScopedTask<'_>> =
                            (0..2).map(|_| Box::new(|| {}) as ScopedTask<'_>).collect();
                        run_scoped(inner);
                    }
                }) as ScopedTask<'_>
            })
            .collect();
        run_scoped(outer);
        assert!(
            inline_fallback_counter().get() > before,
            "worker-side nested dispatch must increment pool.inline_fallback"
        );
    }
}
