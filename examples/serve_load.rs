//! Closed-loop load test of the reduction service — the end-to-end proof
//! that a stream of mixed-size, mixed-priority, fault-injected reduction
//! jobs flows through `ft-serve` with nothing lost: every weak job
//! (submitted with a zero in-run recovery budget plus an injected fault)
//! is rescued by the service's escalated retry, every failure carries its
//! detection report, and the run exits non-zero if any service-contract
//! invariant breaks. CI runs this under `FT_BLAS_BACKEND=threaded:4`.
//!
//! Knobs (all via the shared `env_knob` parsing — unset/empty = default):
//! `FT_SERVE_WORKERS`, `FT_SERVE_QUEUE_CAP`, `FT_SERVE_DEADLINE_MS`
//! configure the service; `SERVE_LOAD_JOBS` / `SERVE_LOAD_CLIENTS`
//! scale the mix. With `FT_SERVE_METRICS_ADDR` set the run also scrapes
//! the live Prometheus endpoint and fails if any exposed family does
//! not resolve against the declared `names.rs` registry; with
//! `FT_TRACE_RECORDER=<events>,dump:<path>` it forces a flight-recorder
//! dump at the end of the load (the CI artifact).
//!
//! Run with: `cargo run --release --example serve_load`

use ft_hess_repro::serve::{loadgen, JobStatus, LoadgenConfig, Service, ServiceConfig, Shutdown};
use ft_hess_repro::trace::{env_knob, names, recorder};
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One GET against the exposition endpoint, returning the response body.
fn scrape(addr: SocketAddr) -> std::io::Result<String> {
    let mut s = TcpStream::connect(addr)?;
    s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")?;
    let mut out = String::new();
    s.read_to_string(&mut out)?;
    match out.split_once("\r\n\r\n") {
        Some((_headers, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::other("malformed HTTP response")),
    }
}

/// Scrapes the endpoint and checks every `# TYPE` family against the
/// declared registry, returning violation strings.
fn validate_scrape(addr: SocketAddr) -> Vec<String> {
    let declared: BTreeSet<String> = names::COUNTERS
        .iter()
        .chain(names::GAUGES)
        .chain(names::HISTOGRAMS)
        .map(|n| n.replace('.', "_"))
        .collect();
    let body = match scrape(addr) {
        Ok(b) => b,
        Err(e) => return vec![format!("metrics scrape at {addr} failed: {e}")],
    };
    let mut violations = Vec::new();
    let mut families = 0;
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            families += 1;
            let name = rest.split_whitespace().next().unwrap_or("");
            if !declared.contains(name) {
                violations.push(format!("scraped family {name} is not declared in names.rs"));
            }
        }
    }
    if families == 0 {
        violations.push("metrics scrape exposed no families".to_string());
    } else {
        println!("metrics scrape: {families} families at {addr}, all declared");
    }
    violations
}

fn main() {
    let service_cfg = ServiceConfig::from_env();
    let service = Service::start(service_cfg);
    println!(
        "service: {} workers x {:?}, queue capacity {}",
        service.worker_count(),
        service.worker_backend(),
        service.queue_capacity()
    );

    let cfg = LoadgenConfig {
        clients: env_knob::usize_or("SERVE_LOAD_CLIENTS", 4).max(1),
        jobs: env_knob::usize_or("SERVE_LOAD_JOBS", 64).max(1),
        sizes: vec![24, 32, 48, 64],
        nb: 8,
        fault_fraction: 0.25,
        weak_fraction: 0.5,
        deadline: None,
        submit_timeout: Duration::from_secs(300),
        seed: 0x5EED,
    };
    println!(
        "load: {} clients, {} jobs, sizes {:?}, {:.0}% faulted ({:.0}% of those weak)\n",
        cfg.clients,
        cfg.jobs,
        cfg.sizes,
        cfg.fault_fraction * 100.0,
        cfg.weak_fraction * 100.0
    );

    let summary = loadgen::run(&service, &cfg);

    // Scrape the live endpoint (if configured) while the service is
    // still up, then force a flight-recorder dump of the run's tail
    // (written only when FT_TRACE_RECORDER configured a dump path).
    let mut scrape_violations = Vec::new();
    if let Some(addr) = service.metrics_addr() {
        scrape_violations = validate_scrape(addr);
    }
    match recorder::dump("load-complete") {
        Ok(Some(path)) => println!("flight recorder dumped to {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("flight recorder dump failed: {e}"),
    }

    let stats = service.shutdown(Shutdown::Drain);

    let completed = summary.count(|o| o.status == JobStatus::Completed);
    let failed = summary.count(|o| matches!(o.status, JobStatus::Failed(_)));
    let missed = summary.count(|o| o.status == JobStatus::DeadlineMissed);
    let injected = summary.count(|o| o.injected);
    let weak = summary.count(|o| o.weak);
    let rescued = summary.count(|o| o.weak && o.status == JobStatus::Completed);
    let recovered_in_run = summary.count(|o| o.injected && !o.weak && o.recovered_in_run);

    println!("== outcome ==");
    println!("accepted             {}", summary.accepted);
    println!("completed            {completed}");
    println!("failed               {failed}");
    println!("deadline missed      {missed}");
    println!("lost                 {}", summary.lost);
    println!("injected-fault jobs  {injected}");
    println!("  recovered in-run   {recovered_in_run}");
    println!("  weak (retry path)  {weak}, rescued by escalation {rescued}");
    println!("service retries      {}", stats.retries);
    println!();
    println!("== latency (completed jobs, HDR, ≤ 2⁻⁵ relative error) ==");
    let l = &summary.latency_all;
    println!(
        "all: n={} mean={}us p50={}us p95={}us p99={}us p99.9={}us max={}us",
        l.count, l.mean_us, l.p50_us, l.p95_us, l.p99_us, l.p999_us, l.max_us
    );
    for p in ft_hess_repro::serve::Priority::ALL {
        let l = &summary.latency[p.index()];
        if l.count > 0 {
            println!(
                "{:>6}: n={} mean={}us p50={}us p95={}us p99={}us p99.9={}us",
                p.name(),
                l.count,
                l.mean_us,
                l.p50_us,
                l.p95_us,
                l.p99_us,
                l.p999_us
            );
        }
    }
    println!(
        "\nthroughput: {:.2} jobs/s over {:.2}s wall",
        summary.throughput_jobs_per_s,
        summary.wall.as_secs_f64()
    );

    // The hard checks CI keys off: the generic service contract, plus the
    // mix-specific guarantees of this load shape.
    let mut violations = summary.violations();
    violations.extend(scrape_violations);
    if summary.accepted != cfg.jobs {
        violations.push(format!(
            "accepted {} of {} jobs (closed loop with generous timeout must admit all)",
            summary.accepted, cfg.jobs
        ));
    }
    if rescued != weak {
        violations.push(format!(
            "only {rescued} of {weak} weak jobs rescued by escalated retry"
        ));
    }
    if injected > 0 && completed + failed < injected {
        violations.push("some injected-fault jobs neither completed nor failed".to_string());
    }
    if !violations.is_empty() {
        eprintln!("\nSERVICE CONTRACT VIOLATIONS:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    println!("\nall service-contract invariants held");
}
