//! FTC009 — consistent lock-acquisition order in `crates/serve` and
//! `crates/blas`.
//!
//! The loom models (DESIGN.md §11.2) prove the queue, oneshot, and
//! latch deadlock-free *dynamically*, per component. This rule is the
//! static complement across components: every `Mutex` in the two
//! concurrency crates must be declared in the partial-order registry
//! (`crates/serve/src/lock_order.rs`), and within any function body, a
//! lock may only be acquired while holding locks of strictly lower
//! rank.
//!
//! Guard liveness is approximated lexically: a let-bound guard
//! (`let g = x.lock()…`) lives to the end of its enclosing brace block
//! (minus an explicit `drop(g)`); a transient guard (`x.lock()` used in
//! place) lives to the end of its statement. `if let`/`match` heads
//! count as transient — an under-approximation, traded for zero false
//! positives; the loom models cover the dynamic side.

use super::{Analysis, LockRank};
use crate::lexer::{Tok, TokKind};
use crate::Finding;

/// Runs FTC009.
pub fn run(a: &Analysis<'_>, findings: &mut Vec<Finding>) {
    for (fi, fm) in a.files.iter().enumerate() {
        if !super::LOCK_SCOPE.iter().any(|p| fm.rel.starts_with(p)) {
            continue;
        }
        coverage(a, fi, findings);
        for (ki, f) in fm.items.fns.iter().enumerate() {
            if a.fn_in_test(fi, ki) {
                continue;
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            order_in_body(a, fi, open, close, findings);
        }
    }
}

fn rank_of<'c>(a: &'c Analysis<'_>, rel: &str, name: &str) -> Option<&'c LockRank> {
    a.ctx
        .lock_order
        .iter()
        .find(|r| r.name == name && (rel.ends_with(&r.path) || r.path == rel))
}

/// Every Mutex *declaration* in scope must be registered.
fn coverage(a: &Analysis<'_>, fi: usize, findings: &mut Vec<Finding>) {
    let fm = &a.files[fi];
    let toks = &fm.lexed.toks;
    let mut reported: std::collections::HashSet<String> = std::collections::HashSet::new();
    for k in 0..toks.len() {
        if !toks[k].is_ident("Mutex") {
            continue;
        }
        // `name: Mutex<…>` (field/static/let-typed) or `name: Mutex::new`
        // (struct-literal init). Walk back over the type path to the `:`.
        let shape_ok = toks.get(k + 1).is_some_and(|t| t.is_punct("<"))
            || (toks.get(k + 1).is_some_and(|t| t.is_punct("::"))
                && toks.get(k + 2).is_some_and(|t| t.is_ident("new")));
        if !shape_ok {
            continue;
        }
        let mut j = k;
        while j >= 1 && (toks[j - 1].is_punct("::") || toks[j - 1].kind == TokKind::Ident) {
            j -= 1;
        }
        if j < 2 || !toks[j - 1].is_punct(":") || toks[j - 2].kind != TokKind::Ident {
            continue;
        }
        let name = toks[j - 2].text.clone();
        if a.tok_in_test(fi, k) || !reported.insert(name.clone()) {
            continue;
        }
        if rank_of(a, &fm.rel, &name).is_none() {
            findings.push(a.finding(
                fi,
                toks[j - 2].line,
                toks[j - 2].col,
                "FTC009",
                format!(
                    "Mutex `{name}` has no entry in the lock-order registry \
                     (crates/serve/src/lock_order.rs)"
                ),
                "declare (path, name, rank) in LOCK_ORDER — a lock outside the \
                 declared partial order cannot be checked for deadlock-freedom",
            ));
        }
    }
}

/// Tracks guard liveness through one body and checks acquisition edges.
fn order_in_body(
    a: &Analysis<'_>,
    fi: usize,
    open: usize,
    close: usize,
    findings: &mut Vec<Finding>,
) {
    let fm = &a.files[fi];
    let toks = &fm.lexed.toks;
    // Per-brace-scope held guards: (lock name, binding name if let-bound).
    let mut scopes: Vec<Vec<(String, Option<String>)>> = vec![Vec::new()];
    let mut transients: Vec<String> = Vec::new();
    let mut stmt_start = open + 1;
    let mut k = open + 1;
    while k < close {
        let t = &toks[k];
        if t.is_punct("{") {
            scopes.push(Vec::new());
            transients.clear();
            stmt_start = k + 1;
        } else if t.is_punct("}") {
            scopes.pop();
            if scopes.is_empty() {
                scopes.push(Vec::new());
            }
            transients.clear();
            stmt_start = k + 1;
        } else if t.is_punct(";") {
            transients.clear();
            stmt_start = k + 1;
        } else if t.is_ident("drop")
            && toks.get(k + 1).is_some_and(|n| n.is_punct("("))
            && toks.get(k + 2).is_some_and(|n| n.kind == TokKind::Ident)
            && toks.get(k + 3).is_some_and(|n| n.is_punct(")"))
        {
            let binding = &toks[k + 2].text;
            for scope in scopes.iter_mut() {
                scope.retain(|(_, b)| b.as_deref() != Some(binding.as_str()));
            }
        } else if t.is_ident("lock")
            && k >= 2
            && toks[k - 1].is_punct(".")
            && toks.get(k + 1).is_some_and(|n| n.is_punct("("))
            && toks[k - 2].kind == TokKind::Ident
            && toks[k - 2].text != "self"
        {
            let lock = toks[k - 2].text.clone();
            // Only check locks the registry knows about on the edge's
            // *held* side too — an unregistered lock already produced a
            // coverage finding at its declaration.
            let held: Vec<String> = scopes
                .iter()
                .flat_map(|s| s.iter().map(|(l, _)| l.clone()))
                .chain(transients.iter().cloned())
                .filter(|h| h != &lock)
                .collect();
            for h in held {
                check_edge(a, fi, &h, &lock, t, findings);
            }
            // Let-bound or transient?
            if toks.get(stmt_start).is_some_and(|s| s.is_ident("let")) {
                let mut b = stmt_start + 1;
                while toks
                    .get(b)
                    .is_some_and(|t| t.is_ident("mut") || t.is_punct("(") || t.is_ident("ref"))
                {
                    b += 1;
                }
                let binding = toks
                    .get(b)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone());
                if let Some(scope) = scopes.last_mut() {
                    scope.push((lock, binding));
                }
            } else {
                transients.push(lock);
            }
        }
        k += 1;
    }
}

fn check_edge(
    a: &Analysis<'_>,
    fi: usize,
    held: &str,
    acquired: &str,
    at: &Tok,
    findings: &mut Vec<Finding>,
) {
    let rel = &a.files[fi].rel;
    let (Some(rh), Some(ra)) = (rank_of(a, rel, held), rank_of(a, rel, acquired)) else {
        // Unregistered locks are reported by the coverage pass; an edge
        // over them cannot be ordered, so say so once per site.
        findings.push(a.finding(
            fi,
            at.line,
            at.col,
            "FTC009",
            format!(
                "lock `{acquired}` acquired while holding `{held}`, but the pair \
                 is not fully declared in the lock-order registry"
            ),
            "add both locks to LOCK_ORDER in crates/serve/src/lock_order.rs so \
             the acquisition edge can be checked against the partial order",
        ));
        return;
    };
    if rh.rank >= ra.rank {
        findings.push(a.finding(
            fi,
            at.line,
            at.col,
            "FTC009",
            format!(
                "lock-order violation: `{acquired}` (rank {}) acquired while \
                 holding `{held}` (rank {})",
                ra.rank, rh.rank
            ),
            "acquire locks in ascending declared rank (release the held lock \
             first, or swap the ranks in lock_order.rs with a deadlock review)",
        ));
    }
}
