//! Table III — orthogonality of `Q`: `‖QQᵀ − I‖₁ / N` for the original
//! hybrid algorithm and the fault-tolerant algorithm with one soft error
//! per area × moment. Same protocol as Table II.

use ft_bench::stability::run_stability;
use ft_bench::{paper_sizes, scaled_sizes, sci, Args, Table};

fn main() {
    let args = Args::from_env();
    let nb = args.nb.unwrap_or(32);
    let sizes = args.sizes.clone().unwrap_or_else(|| {
        if args.full {
            paper_sizes()
        } else {
            scaled_sizes()
        }
    });

    println!("Table III — orthogonality of Q (‖QQᵀ − I‖₁ / N), nb = {nb}\n");
    let mut t = Table::new(vec![
        "Matrix Size",
        "MAGMA Hess",
        "FT-Hess B (A1)",
        "FT-Hess M (A1)",
        "FT-Hess E (A1)",
        "FT-Hess B (A2)",
        "FT-Hess M (A2)",
        "FT-Hess E (A2)",
        "FT-Hess (A3)",
    ]);

    for &n in &sizes {
        let row = run_stability(n, nb, args.seed + n as u64);
        let cell = |a: usize, m: usize| -> String {
            row.cells[a][m]
                .map(|r| sci(r.orthogonality))
                .unwrap_or_else(|| "-".into())
        };
        t.row(vec![
            n.to_string(),
            sci(row.magma.orthogonality),
            cell(0, 0),
            cell(0, 1),
            cell(0, 2),
            cell(1, 0),
            cell(1, 1),
            cell(1, 2),
            cell(2, 0),
        ]);
        eprintln!("  done N = {n} ({} recovery events)", row.recoveries);
    }
    println!("{}", t.render());
    println!(
        "\nPaper's pattern: all areas ~1e-17 except Area 3 (~1e-14..-16),\n\
         still acceptable — recovery does not damage Q's orthogonality."
    );
}
