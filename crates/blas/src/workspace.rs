//! Thread-local workspace arena for kernel scratch buffers.
//!
//! The packed GEMM allocated its A/B pack buffers with `vec!` on **every**
//! call — ~2.3 MiB of fresh pages per kernel, ~n/nb times per Hessenberg
//! panel sweep. This arena keeps a small per-thread cache of `f64` buffers
//! that are checked out for the duration of one kernel and returned on
//! drop, so after warm-up the hot path performs **zero heap allocations**:
//! the same pages (already faulted in, already in cache) are reused across
//! the whole factorization. Pool workers (see [`crate::pool`]) each own
//! their own cache, so no locking is involved anywhere.
//!
//! Buffer contents are zeroed at checkout. Reuse therefore cannot leak one
//! kernel's data into the next, and — more importantly for this codebase —
//! cannot perturb results: a scratch checkout behaves exactly like the
//! `vec![0.0; len]` it replaces, keeping the backend bit-identity contract
//! trivially intact.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::OnceLock;

/// Per-thread cache depth: enough for the deepest checkout chain in the
/// codebase (GEMM's two pack buffers plus a couple of driver vectors),
/// small enough that idle threads hold at most a few MiB.
const MAX_CACHED: usize = 8;

thread_local! {
    static CACHE: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

/// Registry counter `workspace.growth`: checkouts whose capacity had to be
/// (re)allocated — i.e. arena misses. After warm-up this must stop moving;
/// the regression tests in `crates/blas/tests/pool_properties.rs` assert
/// exactly that.
fn growth_counter() -> &'static ft_trace::Counter {
    static C: OnceLock<&'static ft_trace::Counter> = OnceLock::new();
    C.get_or_init(|| ft_trace::counter("workspace.growth"))
}

/// Number of scratch checkouts that had to allocate (or grow) backing
/// storage since process start. Monotonic; steady state is flat. Reads the
/// `workspace.growth` registry counter.
pub fn growth_allocations() -> u64 {
    growth_counter().get()
}

/// A checked-out scratch buffer; dereferences to `[f64]` of the requested
/// length, zero-filled. Returns its storage to the thread's cache on drop.
pub struct Scratch {
    buf: Vec<f64>,
}

impl Deref for Scratch {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.buf
    }
}

impl DerefMut for Scratch {
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.buf
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        CACHE.with(|c| {
            let mut cache = c.borrow_mut();
            if cache.len() < MAX_CACHED {
                cache.push(buf);
            }
        });
    }
}

/// Checks out a zero-filled scratch buffer of exactly `len` elements from
/// the calling thread's arena, allocating only if no cached buffer has the
/// capacity (counted by [`growth_allocations`]).
pub fn scratch(len: usize) -> Scratch {
    // Prefer the cached buffer with the largest capacity so differently
    // sized checkouts converge onto a stable set of buffers instead of
    // repeatedly growing small ones.
    let mut buf = CACHE
        .with(|c| {
            let mut cache = c.borrow_mut();
            let best = (0..cache.len()).max_by_key(|&i| cache[i].capacity())?;
            Some(cache.swap_remove(best))
        })
        .unwrap_or_default();
    if buf.capacity() < len {
        growth_counter().incr();
    }
    buf.clear();
    buf.resize(len, 0.0);
    Scratch { buf }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_is_zeroed_and_sized() {
        {
            let mut s = scratch(16);
            assert_eq!(s.len(), 16);
            assert!(s.iter().all(|&v| v == 0.0));
            s[3] = 42.0;
        }
        // The dirty buffer comes back zeroed.
        let s = scratch(16);
        assert!(s.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn steady_state_stops_allocating() {
        // Warm up with the same checkout pattern as the measured loop.
        {
            let a = scratch(512);
            let b = scratch(128);
            drop(a);
            drop(b);
        }
        let before = growth_allocations();
        for _ in 0..100 {
            let a = scratch(512);
            let b = scratch(128);
            drop(a);
            drop(b);
        }
        assert_eq!(
            growth_allocations(),
            before,
            "steady-state checkouts must not allocate"
        );
    }

    #[test]
    fn nested_checkouts_are_distinct() {
        let mut a = scratch(8);
        let mut b = scratch(8);
        a[0] = 1.0;
        b[0] = 2.0;
        assert_eq!(a[0], 1.0);
        assert_eq!(b[0], 2.0);
    }
}
