//! Related-work comparison (paper §II): the **on-line** detect/correct
//! scheme of FT-Hess vs the **post-processing** checksum scheme of the
//! FT-QR line of work (Du et al., the paper's references 6–8).
//!
//! The paper's argument: post-processing corrects "up to two soft errors
//! total during the course of the entire factorization", while the
//! on-line scheme corrects errors at every iteration boundary and is
//! then "ready to detect and correct subsequent soft errors". This
//! binary quantifies both claims as a success-rate-vs-error-count sweep.
//!
//! Protocols (each cell: `--trials` seeded repetitions):
//! * *on-line FT-Hess*: k errors injected at k distinct iteration
//!   boundaries of the fault-tolerant hybrid Hessenberg reduction;
//!   success = final residual at the fault-free level.
//! * *post-processing FT-QR (best case)*: k errors injected into `R`
//!   *after* the factorization — the scheme's most favourable scenario —
//!   success = all corrected and residual restored.
//! * *post-processing FT-QR (mid-run)*: one error injected into the
//!   matrix before factorization (modelling a strike during the run):
//!   structurally unrecoverable post hoc.

use ft_bench::{Args, Table};
use ft_fault::{Fault, FaultPlan, Phase, ScheduledFault};
use ft_hessenberg::verify::ResidualReport;
use ft_hessenberg::{ft_gehrd_hybrid, ftqr_factorize, FtConfig};
use ft_hybrid::{CostModel, ExecMode, HybridCtx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args = Args::from_env();
    let n = 96;
    let nb = 16;
    let trials = args.trials.unwrap_or(8);
    let iters = (n - 2usize).div_ceil(nb);
    let a = ft_matrix::random::uniform(n, n, args.seed);

    println!(
        "Related-work comparison: on-line FT-Hess vs post-processing FT-QR\n\
         (n = {n}, nb = {nb}, {trials} trials per cell)\n"
    );

    let mut t = Table::new(vec![
        "errors k",
        "FT-Hess on-line: recovered",
        "FT-QR post (best case): recovered",
    ]);

    for k in 1..=6usize {
        let mut rng = StdRng::seed_from_u64(args.seed ^ (k as u64) << 8);

        // --- on-line FT-Hess: k errors at k distinct iterations -------
        let mut hess_ok = 0;
        for _ in 0..trials {
            let mut its: Vec<usize> = (0..iters).collect();
            // random distinct iterations
            for i in (1..its.len()).rev() {
                let j = rng.gen_range(0..=i);
                its.swap(i, j);
            }
            let faults: Vec<ScheduledFault> = its
                .iter()
                .take(k)
                .map(|&it| ScheduledFault {
                    iteration: it,
                    phase: Phase::IterationStart,
                    fault: Fault::add(
                        rng.gen_range(0..n),
                        rng.gen_range(0..n),
                        0.5 + rng.gen_range(0.0..1.0),
                    ),
                })
                .collect();
            let mut plan = FaultPlan::new(faults);
            let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
            let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(nb), &mut ctx, &mut plan);
            let f = out.result.unwrap();
            let r = ResidualReport::compute(&a, &f.q(), &f.h());
            if r.factorization < 1e-11 && r.orthogonality < 1e-11 {
                hess_ok += 1;
            }
        }

        // --- post-processing FT-QR, best case: k errors in final R ----
        let mut qr_ok = 0;
        for _ in 0..trials {
            let mut f = ftqr_factorize(&a, nb);
            for _ in 0..k {
                let i = rng.gen_range(0..n - 1);
                let j = rng.gen_range(i + 1..n);
                let old = f.packed_mut()[(i, j)];
                f.packed_mut()[(i, j)] = old + 0.5 + rng.gen_range(0.0..1.0);
            }
            let rep = f.post_process(1e-9);
            if rep.fully_recovered() && f.residual(&a) < 1e-11 {
                qr_ok += 1;
            }
        }

        t.row(vec![
            k.to_string(),
            format!("{hess_ok}/{trials}"),
            format!("{qr_ok}/{trials}"),
        ]);
    }
    println!("{}", t.render());

    // --- the structural gap: a mid-run error -------------------------
    let mut corrupted = a.clone();
    corrupted[(60, 70)] += 1.0;
    let mut fq = ftqr_factorize(&corrupted, nb);
    let rep = fq.post_process(1e-9);
    println!(
        "\nmid-run error (injected before dependent computation):\n\
         FT-QR post-processing: corrected {} elements, residual vs true A = {:.2e}  → {}",
        rep.corrected.len(),
        fq.residual(&a),
        if fq.residual(&a) < 1e-11 {
            "recovered"
        } else {
            "NOT recoverable post hoc"
        }
    );
    let mut plan = FaultPlan::one(2, Fault::add(60, 70, 1.0));
    let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
    let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(nb), &mut ctx, &mut plan);
    let fh = out.result.unwrap();
    let r = ResidualReport::compute(&a, &fh.q(), &fh.h());
    println!(
        "FT-Hess on-line:       {} recovery episode(s), residual = {:.2e}  → {}",
        out.report.recoveries.len(),
        r.factorization,
        if r.factorization < 1e-11 {
            "recovered"
        } else {
            "failed"
        }
    );
    println!(
        "\nreading: post-processing handles errors that strike *finished* data (≤1 per\n\
         row of R here, ≤2 total in the published scheme); the on-line scheme corrects\n\
         an unbounded sequence of errors because each is caught before propagating."
    );
}
