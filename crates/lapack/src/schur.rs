//! Real Schur decomposition of an upper Hessenberg matrix with
//! accumulated Schur vectors (EISPACK `HQR2` / LAPACK `DHSEQR` job `'S'`
//! organization), plus eigenvector extraction for real eigenvalues.
//!
//! `H = Z·T·Zᵀ` with `Z` orthogonal and `T` quasi-upper-triangular
//! (1×1 blocks for real eigenvalues, 2×2 blocks for complex pairs).
//! Combined with the Hessenberg reduction `A = Q·H·Qᵀ` this yields the
//! full similarity `A = (QZ)·T·(QZ)ᵀ` — the complete dense nonsymmetric
//! eigensolver pipeline the paper's introduction motivates.

use crate::hseqr::{Eigenvalue, NoConvergence};
use ft_matrix::Matrix;

/// Result of the Schur decomposition.
#[derive(Clone, Debug)]
pub struct SchurDecomposition {
    /// Quasi-upper-triangular real Schur factor.
    pub t: Matrix,
    /// Orthogonal Schur vectors (`H = Z·T·Zᵀ`).
    pub z: Matrix,
    /// Eigenvalues in deflation order (complex pairs adjacent).
    pub eigenvalues: Vec<Eigenvalue>,
}

#[inline]
fn sign(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

/// Computes the real Schur form of the upper Hessenberg matrix `h`,
/// accumulating the transformations into `Z` (initialized to `z0`, or the
/// identity if `None` — pass the `Q` of a Hessenberg reduction to obtain
/// the Schur vectors of the original matrix directly).
pub fn real_schur(h: &Matrix, z0: Option<Matrix>) -> Result<SchurDecomposition, NoConvergence> {
    assert!(h.is_square(), "real_schur: matrix must be square");
    let n = h.rows();
    let mut a = h.clone();
    // Clear below the sub-diagonal (callers may pass packed storage).
    for j in 0..n {
        for i in j + 2..n {
            a[(i, j)] = 0.0;
        }
    }
    let mut z = z0.unwrap_or_else(|| Matrix::identity(n));
    assert_eq!(z.rows(), n, "real_schur: Z shape");
    assert_eq!(z.cols(), n, "real_schur: Z shape");
    let mut wr = vec![0.0f64; n];
    let mut wi = vec![0.0f64; n];
    if n == 0 {
        return Ok(SchurDecomposition {
            t: a,
            z,
            eigenvalues: vec![],
        });
    }

    let mut anorm = 0.0f64;
    for i in 0..n {
        for j in i.saturating_sub(1)..n {
            anorm += a[(i, j)].abs();
        }
    }
    if anorm == 0.0 {
        return Ok(SchurDecomposition {
            t: a,
            z,
            eigenvalues: vec![Eigenvalue::real(0.0); n],
        });
    }

    let mut nn = n as isize - 1;
    while nn >= 0 {
        let mut its = 0;
        loop {
            let nnu = nn as usize;
            // Deflation scan.
            let mut l = 0usize;
            for ll in (1..=nnu).rev() {
                let mut s = a[(ll - 1, ll - 1)].abs() + a[(ll, ll)].abs();
                if s == 0.0 {
                    s = anorm;
                }
                if a[(ll, ll - 1)].abs() <= f64::EPSILON * s {
                    a[(ll, ll - 1)] = 0.0;
                    l = ll;
                    break;
                }
            }
            let x = a[(nnu, nnu)];
            if l == nnu {
                wr[nnu] = x;
                wi[nnu] = 0.0;
                nn -= 1;
                break;
            }
            let y = a[(nnu - 1, nnu - 1)];
            let w = a[(nnu, nnu - 1)] * a[(nnu - 1, nnu)];
            if l + 1 == nnu {
                // 2×2 block: classify and (for a real pair) rotate it to
                // upper triangular form so T exposes the eigenvalues.
                let p = 0.5 * (y - x);
                let q = p * p + w;
                let mut zz = q.abs().sqrt();
                if q >= 0.0 {
                    zz = p + sign(zz, p);
                    wr[nnu - 1] = x + zz;
                    wr[nnu] = wr[nnu - 1];
                    if zz != 0.0 {
                        wr[nnu] = x - w / zz;
                    }
                    wi[nnu - 1] = 0.0;
                    wi[nnu] = 0.0;
                    // Givens rotation triangularizing the block.
                    let xx = a[(nnu, nnu - 1)];
                    let s = xx.abs() + zz.abs();
                    let mut pp = xx / s;
                    let mut qq = zz / s;
                    let r = (pp * pp + qq * qq).sqrt();
                    pp /= r;
                    qq /= r;
                    // Row modification.
                    for j in nnu - 1..n {
                        let t1 = a[(nnu - 1, j)];
                        a[(nnu - 1, j)] = qq * t1 + pp * a[(nnu, j)];
                        a[(nnu, j)] = qq * a[(nnu, j)] - pp * t1;
                    }
                    // Column modification.
                    for i in 0..=nnu {
                        let t1 = a[(i, nnu - 1)];
                        a[(i, nnu - 1)] = qq * t1 + pp * a[(i, nnu)];
                        a[(i, nnu)] = qq * a[(i, nnu)] - pp * t1;
                    }
                    // Accumulate into Z.
                    for i in 0..n {
                        let t1 = z[(i, nnu - 1)];
                        z[(i, nnu - 1)] = qq * t1 + pp * z[(i, nnu)];
                        z[(i, nnu)] = qq * z[(i, nnu)] - pp * t1;
                    }
                    a[(nnu, nnu - 1)] = 0.0;
                } else {
                    wr[nnu - 1] = x + p;
                    wr[nnu] = x + p;
                    wi[nnu - 1] = -zz;
                    wi[nnu] = zz;
                }
                nn -= 2;
                break;
            }
            if its == 60 {
                return Err(NoConvergence { index: nnu });
            }
            // Shift selection (LAPACK-style exceptional shifts: the shift
            // values change, the matrix does not).
            let (mut x, mut y, mut w) = (x, y, w);
            if its == 10 || its == 20 || its == 30 || its == 40 || its == 50 {
                let s = a[(nnu, nnu - 1)].abs() + a[(nnu - 1, nnu - 2)].abs();
                x = 0.75 * s + a[(nnu, nnu)];
                y = x;
                w = -0.4375 * s * s;
            }
            its += 1;

            // Two consecutive small sub-diagonals.
            let mut m = l;
            let (mut p, mut q, mut r) = (0.0f64, 0.0f64, 0.0f64);
            for mm in (l..=nnu - 2).rev() {
                let zz = a[(mm, mm)];
                let rr = x - zz;
                let ss = y - zz;
                p = (rr * ss - w) / a[(mm + 1, mm)] + a[(mm, mm + 1)];
                q = a[(mm + 1, mm + 1)] - zz - rr - ss;
                r = a[(mm + 2, mm + 1)];
                let s = p.abs() + q.abs() + r.abs();
                p /= s;
                q /= s;
                r /= s;
                m = mm;
                if mm == l {
                    break;
                }
                let u = a[(mm, mm - 1)].abs() * (q.abs() + r.abs());
                let v =
                    p.abs() * (a[(mm - 1, mm - 1)].abs() + zz.abs() + a[(mm + 1, mm + 1)].abs());
                if u <= f64::EPSILON * v {
                    break;
                }
            }
            for i in m + 2..=nnu {
                a[(i, i - 2)] = 0.0;
                if i != m + 2 {
                    a[(i, i - 3)] = 0.0;
                }
            }

            // Double QR sweep with full-row/column updates + Z.
            for k in m..nnu {
                if k != m {
                    p = a[(k, k - 1)];
                    q = a[(k + 1, k - 1)];
                    r = if k != nnu - 1 { a[(k + 2, k - 1)] } else { 0.0 };
                    x = p.abs() + q.abs() + r.abs();
                    if x != 0.0 {
                        p /= x;
                        q /= x;
                        r /= x;
                    }
                }
                let s = sign((p * p + q * q + r * r).sqrt(), p);
                if s == 0.0 {
                    continue;
                }
                if k == m {
                    if l != m {
                        a[(k, k - 1)] = -a[(k, k - 1)];
                    }
                } else {
                    a[(k, k - 1)] = -s * x;
                    // The reflector annihilates the bulge entries below;
                    // zero their storage explicitly so T comes out clean
                    // (LAPACK dlahqr does the same).
                    a[(k + 1, k - 1)] = 0.0;
                    if k != nnu - 1 {
                        a[(k + 2, k - 1)] = 0.0;
                    }
                }
                p += s;
                x = p / s;
                y = q / s;
                let zz = r / s;
                q /= p;
                r /= p;
                // Row modification over ALL columns right of k.
                for j in k..n {
                    let mut pp = a[(k, j)] + q * a[(k + 1, j)];
                    if k != nnu - 1 {
                        pp += r * a[(k + 2, j)];
                        a[(k + 2, j)] -= pp * zz;
                    }
                    a[(k + 1, j)] -= pp * y;
                    a[(k, j)] -= pp * x;
                }
                // Column modification from the top row.
                let mmin = nnu.min(k + 3);
                for i in 0..=mmin {
                    let mut pp = x * a[(i, k)] + y * a[(i, k + 1)];
                    if k != nnu - 1 {
                        pp += zz * a[(i, k + 2)];
                        a[(i, k + 2)] -= pp * r;
                    }
                    a[(i, k + 1)] -= pp * q;
                    a[(i, k)] -= pp;
                }
                // Accumulate into Z.
                for i in 0..n {
                    let mut pp = x * z[(i, k)] + y * z[(i, k + 1)];
                    if k != nnu - 1 {
                        pp += zz * z[(i, k + 2)];
                        z[(i, k + 2)] -= pp * r;
                    }
                    z[(i, k + 1)] -= pp * q;
                    z[(i, k)] -= pp;
                }
            }
        }
    }

    let eigenvalues = (0..n)
        .map(|i| Eigenvalue {
            re: wr[i],
            im: wi[i],
        })
        .collect();
    Ok(SchurDecomposition {
        t: a,
        z,
        eigenvalues,
    })
}

impl SchurDecomposition {
    /// `true` iff `T` is quasi-upper-triangular: zero below the first
    /// sub-diagonal and no two consecutive non-zero sub-diagonal entries.
    pub fn t_is_quasi_triangular(&self, tol: f64) -> bool {
        let n = self.t.rows();
        for j in 0..n {
            for i in j + 2..n {
                if self.t[(i, j)].abs() > tol {
                    return false;
                }
            }
        }
        let mut prev = false;
        for i in 1..n {
            let nz = self.t[(i, i - 1)].abs() > tol;
            if nz && prev {
                return false;
            }
            prev = nz;
        }
        true
    }

    /// Right eigenvectors for the **real** eigenvalues, as columns of an
    /// `n × k` matrix paired with their eigenvalues: solves
    /// `(T − λI)·y = 0` by back-substitution and maps through `Z`.
    ///
    /// Complex pairs are skipped (their invariant subspace is spanned by
    /// the corresponding two Schur vector columns).
    pub fn real_eigenvectors(&self) -> (Vec<f64>, Matrix) {
        let n = self.t.rows();
        let t = &self.t;
        let mut lambdas = vec![];
        let mut cols: Vec<Vec<f64>> = vec![];
        let small = f64::EPSILON * self.t.one_norm().max(1.0);

        for k in 0..n {
            let ev = self.eigenvalues[k];
            if !ev.is_real() {
                continue;
            }
            let lambda = ev.re;
            // Back-substitute y over rows k−1..0, with y[k] = 1. Walking
            // upward, a 2×2 block is met at its *second* row
            // (`t[i, i−1] ≠ 0`), in which case rows i−1 and i are solved
            // jointly.
            let mut y = vec![0.0; n];
            y[k] = 1.0;
            let mut row = k as isize - 1;
            while row >= 0 {
                let i = row as usize;
                let second_of_block = i > 0 && t[(i, i - 1)].abs() > small;
                if second_of_block {
                    let p = i - 1;
                    // Solve the 2×2 system for (y[p], y[p+1]).
                    let a11 = t[(p, p)] - lambda;
                    let a12 = t[(p, p + 1)];
                    let a21 = t[(p + 1, p)];
                    let a22 = t[(p + 1, p + 1)] - lambda;
                    let mut b1 = 0.0;
                    let mut b2 = 0.0;
                    for j in p + 2..=k {
                        b1 -= t[(p, j)] * y[j];
                        b2 -= t[(p + 1, j)] * y[j];
                    }
                    let det = a11 * a22 - a12 * a21;
                    let det = if det.abs() < small * small {
                        small * small
                    } else {
                        det
                    };
                    y[p] = (b1 * a22 - a12 * b2) / det;
                    y[p + 1] = (a11 * b2 - b1 * a21) / det;
                    row -= 2;
                } else {
                    let mut b = 0.0;
                    for j in i + 1..=k {
                        b -= t[(i, j)] * y[j];
                    }
                    let mut d = t[(i, i)] - lambda;
                    if d.abs() < small {
                        d = small; // perturb to avoid division blow-up
                    }
                    y[i] = b / d;
                    row -= 1;
                }
            }
            // v = Z·y, normalized.
            let mut v = vec![0.0; n];
            ft_blas::gemv(ft_blas::Trans::No, 1.0, &self.z.as_view(), &y, 0.0, &mut v);
            let norm = ft_blas::nrm2(&v);
            if norm > 0.0 {
                for x in &mut v {
                    *x /= norm;
                }
            }
            lambdas.push(lambda);
            cols.push(v);
        }

        let k = cols.len();
        let mut m = Matrix::zeros(n, k);
        for (j, col) in cols.iter().enumerate() {
            m.col_mut(j).copy_from_slice(col);
        }
        (lambdas, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hseqr::{eigenvalues_hessenberg, sort_eigenvalues};
    use ft_blas::Trans;

    fn check_schur(h: &Matrix, tol: f64) -> SchurDecomposition {
        let n = h.rows();
        let s = real_schur(h, None).unwrap();
        assert!(
            s.t_is_quasi_triangular(1e-10 * (1.0 + h.max_abs())),
            "T not quasi-triangular"
        );
        // Z orthogonal.
        let mut zzt = Matrix::identity(n);
        ft_blas::gemm(
            Trans::No,
            Trans::Yes,
            1.0,
            &s.z.as_view(),
            &s.z.as_view(),
            -1.0,
            &mut zzt.as_view_mut(),
        );
        assert!(zzt.max_abs() < tol, "ZZᵀ − I = {}", zzt.max_abs());
        // H = Z T Zᵀ.
        let mut zt = Matrix::zeros(n, n);
        ft_blas::gemm(
            Trans::No,
            Trans::No,
            1.0,
            &s.z.as_view(),
            &s.t.as_view(),
            0.0,
            &mut zt.as_view_mut(),
        );
        let mut res = h.clone();
        ft_blas::gemm(
            Trans::No,
            Trans::Yes,
            -1.0,
            &zt.as_view(),
            &s.z.as_view(),
            1.0,
            &mut res.as_view_mut(),
        );
        assert!(
            res.max_abs() < tol * h.max_abs().max(1.0),
            "H − ZTZᵀ = {}",
            res.max_abs()
        );
        s
    }

    #[test]
    fn schur_of_random_hessenberg() {
        for &n in &[2usize, 5, 12, 30, 60] {
            let h = ft_matrix::random::hessenberg(n, n as u64 + 1);
            let s = check_schur(&h, 1e-11 * n as f64);
            // Eigenvalues agree with the eigenvalues-only path.
            let mut e1 = s.eigenvalues.clone();
            let mut e2 = eigenvalues_hessenberg(&h).unwrap();
            sort_eigenvalues(&mut e1);
            sort_eigenvalues(&mut e2);
            for (a, b) in e1.iter().zip(&e2) {
                assert!(
                    (a.re - b.re).abs() < 1e-7 && (a.im - b.im).abs() < 1e-7,
                    "{a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn schur_diagonal_matches_real_eigenvalues() {
        let h = ft_matrix::random::hessenberg(24, 3);
        let s = real_schur(&h, None).unwrap();
        // Every real eigenvalue appears on T's diagonal.
        let tol = 1e-8;
        for (k, ev) in s.eigenvalues.iter().enumerate() {
            if ev.is_real() {
                assert!(
                    (s.t[(k, k)] - ev.re).abs() < tol,
                    "T[{k},{k}] = {} vs λ = {}",
                    s.t[(k, k)],
                    ev.re
                );
            }
        }
    }

    #[test]
    fn schur_with_initial_q_gives_full_similarity() {
        // A = Q H Qᵀ, then H = Z' T Z'ᵀ with Z seeded by Q ⇒ A = Z T Zᵀ.
        let n = 20;
        let a0 = ft_matrix::random::uniform(n, n, 9);
        let mut packed = a0.clone();
        let tau = crate::gehrd(&mut packed, &crate::GehrdConfig::default());
        let f = crate::HessFactorization { packed, tau };
        let s = real_schur(&f.h(), Some(f.q())).unwrap();
        let mut zt = Matrix::zeros(n, n);
        ft_blas::gemm(
            Trans::No,
            Trans::No,
            1.0,
            &s.z.as_view(),
            &s.t.as_view(),
            0.0,
            &mut zt.as_view_mut(),
        );
        let mut res = a0.clone();
        ft_blas::gemm(
            Trans::No,
            Trans::Yes,
            -1.0,
            &zt.as_view(),
            &s.z.as_view(),
            1.0,
            &mut res.as_view_mut(),
        );
        assert!(res.max_abs() < 1e-11, "A − ZTZᵀ = {}", res.max_abs());
    }

    #[test]
    fn real_eigenvectors_satisfy_defining_equation() {
        // Symmetric ⇒ all eigenvalues real; check A v = λ v through the
        // whole pipeline.
        let n = 16;
        let a0 = ft_matrix::random::symmetric(n, 11);
        let mut packed = a0.clone();
        let tau = crate::gehrd(&mut packed, &crate::GehrdConfig::default());
        let f = crate::HessFactorization { packed, tau };
        let s = real_schur(&f.h(), Some(f.q())).unwrap();
        let (lambdas, v) = s.real_eigenvectors();
        assert_eq!(lambdas.len(), n, "symmetric matrix: all eigenvalues real");
        for (j, &lambda) in lambdas.iter().enumerate() {
            let vj: Vec<f64> = v.col(j).to_vec();
            let mut av = vec![0.0; n];
            ft_blas::gemv(Trans::No, 1.0, &a0.as_view(), &vj, 0.0, &mut av);
            for i in 0..n {
                assert!(
                    (av[i] - lambda * vj[i]).abs() < 1e-9,
                    "λ = {lambda}: residual {} at {i}",
                    (av[i] - lambda * vj[i]).abs()
                );
            }
        }
    }

    #[test]
    fn complex_pairs_left_as_blocks() {
        // Rotation-like matrix: one complex pair, one real eigenvalue.
        let h = Matrix::from_rows(&[&[0.5, -1.0, 0.3], &[1.0, 0.5, -0.2], &[0.0, 0.0, 2.0]]);
        let s = check_schur(&h, 1e-12);
        let pairs = s.eigenvalues.iter().filter(|e| !e.is_real()).count();
        assert_eq!(pairs, 2, "one conjugate pair expected");
        let (lambdas, _v) = s.real_eigenvectors();
        assert_eq!(lambdas.len(), 1);
        assert!((lambdas[0] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn empty_and_single() {
        let s = real_schur(&Matrix::zeros(0, 0), None).unwrap();
        assert!(s.eigenvalues.is_empty());
        let s = real_schur(&Matrix::from_rows(&[&[7.5]]), None).unwrap();
        assert_eq!(s.eigenvalues[0], Eigenvalue::real(7.5));
        assert_eq!(s.t[(0, 0)], 7.5);
    }
}
