//! Sync primitives behind a loom-switchable facade.
//!
//! Only the dispatch latch ([`crate::latch`]) is model-checked — the pool
//! itself is a process-lifetime singleton (workers never exit), which is
//! incompatible with per-execution model state, so [`crate::pool`] stays
//! on `std` types and its latch interactions are verified through the
//! latch models in `tests/loom_latch.rs` (see DESIGN.md §11). Built with
//! `RUSTFLAGS="--cfg loom"`, these aliases resolve to the vendored `loom`
//! model checker's types; normal builds resolve to `std`.

#[cfg(loom)]
pub(crate) use loom::sync::{Condvar, Mutex};

#[cfg(not(loom))]
pub(crate) use std::sync::{Condvar, Mutex};
