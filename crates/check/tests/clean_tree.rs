//! The acceptance gate: the workspace itself scans clean. Any rule
//! violation introduced anywhere in the repo fails this test (and the
//! `cargo run -p ft-check` CI step) until it is fixed or audited in
//! `check_allow.toml`.

use std::path::PathBuf;

#[test]
fn workspace_scans_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = ft_check::scan_workspace(&root).expect("workspace scan");
    assert!(
        findings.is_empty(),
        "ft-check findings in the tree:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn registry_declares_the_names_the_tree_uses() {
    // Sanity on the parsed registry itself: a handful of load-bearing
    // names must be present (guards against a names.rs refactor that
    // silently empties the registry and turns FTC006 into a no-op).
    let names = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../trace/src/names.rs");
    let reg = ft_check::parse_registry(&std::fs::read_to_string(names).expect("read"));
    for c in ["pool.dispatch", "ft.recoveries", "serve.submitted"] {
        assert!(reg.counters.contains(c), "missing counter {c}");
    }
    assert!(reg.gauges.contains("serve.queue_depth"));
    for h in [
        "serve.latency_high",
        "serve.queue_wait_normal",
        "serve.backoff_low",
    ] {
        assert!(reg.histograms.contains(h), "missing histogram {h}");
    }
    for s in ["ft.panel", "gehrd.tail", "serve.run"] {
        assert!(reg.spans.contains(s), "missing span {s}");
    }
}
