//! The always-on flight recorder: a bounded, lock-free ring of recent
//! span / counter / recovery events, dumped for post-mortem when a job
//! dies.
//!
//! # Shape
//!
//! Each recording thread owns one [`ring::Ring`] — a fixed bank of
//! seqlock slots claimed by a monotonically increasing head index, so
//! the ring holds the *last `capacity` events* and overwrites the oldest
//! (each overwrite counts toward the `trace.recorder.dropped` counter).
//! The owning thread is the ring's only writer; snapshot readers (dump,
//! metrics exposition) validate each slot's sequence word before and
//! after reading and simply skip slots that a concurrent write tears —
//! recording never blocks, never allocates after ring setup, and never
//! perturbs the computation it observes (the bit-identity contract).
//!
//! Memory is bounded at `capacity × 56 B` per recording thread
//! (`FT_TRACE_RECORDER=<events>[,dump:<path>]`, default 4096 events,
//! ≈ 224 KiB); rings are leaked (threads are long-lived pool/service
//! workers) and registered in a global list the readers walk.
//!
//! # Dumps
//!
//! [`dump`] renders a self-contained JSONL snapshot — a header line, one
//! line per retained event (with job/attempt context), then the fault
//! journal — but only when a `dump:<path>` destination was configured;
//! with no destination the recorder still retains events in memory (so a
//! debugger or the metrics endpoint can see occupancy) and `dump`
//! reports `None`. `ft-serve` triggers dumps on unrecoverable job
//! failure, deadline miss, shutdown, and (via
//! [`install_panic_dump_hook`]) panic. [`parse_dump`] turns a dump back
//! into [`Event`]s so a snapshot can be replayed into the chrome-trace
//! sink.
//!
//! Names are interned to small ids at record time by binary-searching
//! the static [`crate::names`] registry (lock-free); names outside the
//! registry (tests) fall back to a mutex-guarded side table.

use crate::ctx::TraceCtx;
use crate::names;
use crate::span::Event;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The seqlock ring protocol, kept dependency-free so the loom model in
/// `tests/loom_recorder.rs` can drive it directly. Under `--cfg loom`
/// the atomics come from the vendored model checker; the global recorder
/// wiring in this module is compiled out there (model executions must
/// not share leaked rings).
pub mod ring {
    #[cfg(loom)]
    use loom::sync::atomic::{fence, AtomicU64, Ordering};
    #[cfg(not(loom))]
    use std::sync::atomic::{fence, AtomicU64, Ordering};

    /// Event kind discriminant carried in a slot's meta word.
    pub const KIND_SPAN: u8 = 0;
    /// Counter-delta event.
    pub const KIND_COUNTER: u8 = 1;
    /// Recovery / correction event mirrored from the fault journal.
    pub const KIND_RECOVERY: u8 = 2;

    /// One event in wire form: every field fits a relaxed `AtomicU64`
    /// store, which is what lets the ring stay free of `unsafe`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RawEvent {
        /// One of the `KIND_*` discriminants.
        pub kind: u8,
        /// Interned name id (see the parent module's intern table).
        pub name_id: u32,
        /// Whether `arg` carries a span payload.
        pub has_arg: bool,
        /// Trace-context attempt number (meaningful when `job != 0`).
        pub attempt: u16,
        /// Recording thread id.
        pub tid: u64,
        /// Trace-context job id + 1; 0 means "no context".
        pub job: u64,
        /// Span payload bits (`i64` as `u64`) or counter/recovery value.
        pub arg: u64,
        /// `f64` bits: span start / counter timestamp, µs.
        pub t0: u64,
        /// `f64` bits: span duration, µs (0 otherwise).
        pub t1: u64,
    }

    impl RawEvent {
        fn meta(&self) -> u64 {
            u64::from(self.name_id)
                | (u64::from(self.kind) << 32)
                | (u64::from(self.has_arg) << 40)
                | (u64::from(self.attempt) << 48)
        }

        fn from_words(meta: u64, tid: u64, job: u64, arg: u64, t0: u64, t1: u64) -> RawEvent {
            RawEvent {
                kind: (meta >> 32) as u8,
                name_id: meta as u32,
                has_arg: (meta >> 40) & 1 == 1,
                attempt: (meta >> 48) as u16,
                tid,
                job,
                arg,
                t0,
                t1,
            }
        }
    }

    struct Slot {
        /// 0 = never written; `2i+1` = generation-`i` write in progress;
        /// `2i+2` = generation-`i` committed.
        seq: AtomicU64,
        meta: AtomicU64,
        tid: AtomicU64,
        job: AtomicU64,
        arg: AtomicU64,
        t0: AtomicU64,
        t1: AtomicU64,
    }

    impl Slot {
        fn new() -> Slot {
            Slot {
                seq: AtomicU64::new(0),
                meta: AtomicU64::new(0),
                tid: AtomicU64::new(0),
                job: AtomicU64::new(0),
                arg: AtomicU64::new(0),
                t0: AtomicU64::new(0),
                t1: AtomicU64::new(0),
            }
        }
    }

    /// A bounded drop-oldest event ring: single writer (the owning
    /// thread), any number of concurrent snapshot readers.
    pub struct Ring {
        slots: Box<[Slot]>,
        /// Next generation to claim; also the total number of events
        /// ever recorded.
        head: AtomicU64,
        /// Events overwritten by wraparound (drop-oldest policy).
        dropped: AtomicU64,
    }

    impl Ring {
        /// A ring retaining the last `capacity` events (floor 8).
        pub fn new(capacity: usize) -> Ring {
            let cap = capacity.max(8);
            Ring {
                slots: (0..cap).map(|_| Slot::new()).collect(),
                head: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }
        }

        // ft-check: hot
        /// Records one event. Claim/commit protocol: claim generation
        /// `i` from `head`, mark the slot in-progress (odd sequence),
        /// publish the payload, commit (even sequence, release). Must
        /// only be called by the ring's owning thread.
        pub fn record(&self, ev: &RawEvent) {
            let cap = self.slots.len() as u64;
            let i = self.head.fetch_add(1, Ordering::Relaxed);
            if i >= cap {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            let slot = &self.slots[(i % cap) as usize];
            slot.seq.store(2 * i + 1, Ordering::Relaxed);
            // Order the in-progress mark before the payload stores so a
            // reader that observes new payload words also observes the
            // odd sequence and discards the slot.
            fence(Ordering::Release);
            slot.meta.store(ev.meta(), Ordering::Relaxed);
            slot.tid.store(ev.tid, Ordering::Relaxed);
            slot.job.store(ev.job, Ordering::Relaxed);
            slot.arg.store(ev.arg, Ordering::Relaxed);
            slot.t0.store(ev.t0, Ordering::Relaxed);
            slot.t1.store(ev.t1, Ordering::Relaxed);
            slot.seq.store(2 * i + 2, Ordering::Release);
        }

        /// Copies every committed event into `out` as
        /// `(generation, event)`, oldest first. Slots torn by a
        /// concurrent write fail sequence validation and are skipped —
        /// a snapshot is always a consistent subset.
        pub fn snapshot_into(&self, out: &mut Vec<(u64, RawEvent)>) {
            let head = self.head.load(Ordering::Acquire);
            let cap = self.slots.len() as u64;
            let lo = head.saturating_sub(cap);
            for i in lo..head {
                let slot = &self.slots[(i % cap) as usize];
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 != 2 * i + 2 {
                    continue; // in progress, or already overwritten
                }
                let ev = RawEvent::from_words(
                    slot.meta.load(Ordering::Relaxed),
                    slot.tid.load(Ordering::Relaxed),
                    slot.job.load(Ordering::Relaxed),
                    slot.arg.load(Ordering::Relaxed),
                    slot.t0.load(Ordering::Relaxed),
                    slot.t1.load(Ordering::Relaxed),
                );
                // Order the payload loads before the validation load.
                fence(Ordering::Acquire);
                if slot.seq.load(Ordering::Relaxed) == s1 {
                    out.push((i, ev));
                }
            }
        }

        /// Events currently retained.
        pub fn len(&self) -> usize {
            (self.head.load(Ordering::Relaxed)).min(self.slots.len() as u64) as usize
        }

        /// `true` when nothing has been recorded.
        pub fn is_empty(&self) -> bool {
            self.head.load(Ordering::Relaxed) == 0
        }

        /// Events overwritten by wraparound.
        pub fn dropped(&self) -> u64 {
            self.dropped.load(Ordering::Relaxed)
        }

        /// Slot count.
        pub fn capacity(&self) -> usize {
            self.slots.len()
        }
    }
}

/// A resolved (name + context) snapshot event.
#[derive(Clone, Debug, PartialEq)]
pub struct RecordedEvent {
    /// `"span"`, `"counter"`, or `"recovery"`.
    pub kind: &'static str,
    /// Resolved event name.
    pub name: &'static str,
    /// Recording thread id.
    pub tid: u64,
    /// Ambient trace context at record time.
    pub ctx: Option<TraceCtx>,
    /// Span payload, if any.
    pub arg: Option<i64>,
    /// Counter delta / recovery correction count (0 for spans).
    pub value: u64,
    /// Start (span) or record (counter/recovery) timestamp, µs.
    pub start_us: f64,
    /// Span duration, µs (0 otherwise).
    pub dur_us: f64,
}

// ---------------------------------------------------------------------
// Name interning: static names resolve by binary search over the
// `names` registry slices (lock-free); anything else (tests) goes to a
// mutex-guarded side table.
// ---------------------------------------------------------------------

#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
const DYN_BASE: u32 = 1 << 24;
static DYN_NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

fn static_tables() -> [&'static [&'static str]; 4] {
    [
        names::SPANS,
        names::COUNTERS,
        names::GAUGES,
        names::HISTOGRAMS,
    ]
}

#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
pub(crate) fn intern(name: &'static str) -> u32 {
    let mut base = 0u32;
    for table in static_tables() {
        if let Ok(i) = table.binary_search(&name) {
            return base + i as u32;
        }
        base += table.len() as u32;
    }
    let mut dy = DYN_NAMES.lock().unwrap();
    let idx = match dy.iter().position(|&n| n == name) {
        Some(i) => i,
        None => {
            dy.push(name);
            dy.len() - 1
        }
    };
    DYN_BASE + idx as u32
}

#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
pub(crate) fn resolve(id: u32) -> &'static str {
    if id >= DYN_BASE {
        return DYN_NAMES
            .lock()
            .unwrap()
            .get((id - DYN_BASE) as usize)
            .copied()
            .unwrap_or("unknown");
    }
    let mut base = 0u32;
    for table in static_tables() {
        if id - base < table.len() as u32 {
            return table[(id - base) as usize];
        }
        base += table.len() as u32;
    }
    "unknown"
}

/// Resolves a dump-file name back to a `'static` str: registry names map
/// to their static slice entry; unknown names are leaked (dump parsing
/// is a tooling path, bounded by the dump's size).
fn leak_or_static(name: &str) -> &'static str {
    for table in static_tables() {
        if let Ok(i) = table.binary_search(&name) {
            return table[i];
        }
    }
    let mut dy = DYN_NAMES.lock().unwrap();
    if let Some(&n) = dy.iter().find(|&&n| n == name) {
        return n;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    dy.push(leaked);
    leaked
}

// ---------------------------------------------------------------------
// Global recorder wiring (per-thread rings, config, dumps). Compiled
// out under `--cfg loom` (model executions own their rings directly)
// and inert without the `enabled` feature.
// ---------------------------------------------------------------------

/// Default per-thread ring capacity (events).
pub const DEFAULT_CAPACITY: usize = 4096;

#[cfg(all(feature = "enabled", not(loom)))]
mod global {
    use super::ring::{RawEvent, Ring, KIND_COUNTER, KIND_RECOVERY, KIND_SPAN};
    use super::{intern, RecordedEvent};
    use crate::clock::now_us;
    use crate::ctx;
    use std::cell::Cell;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Mutex;

    pub(super) static ON: AtomicBool = AtomicBool::new(false);
    static CAPACITY: AtomicUsize = AtomicUsize::new(super::DEFAULT_CAPACITY);
    static DUMP_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);
    static RINGS: Mutex<Vec<&'static Ring>> = Mutex::new(Vec::new());

    thread_local! {
        static RING: Cell<Option<&'static Ring>> = const { Cell::new(None) };
    }

    pub(super) fn apply(on: bool, capacity: usize, dump: Option<PathBuf>) {
        CAPACITY.store(capacity.max(8), Ordering::Relaxed);
        *DUMP_PATH.lock().unwrap() = dump;
        ON.store(on, Ordering::Relaxed);
    }

    pub(super) fn dump_path() -> Option<PathBuf> {
        DUMP_PATH.lock().unwrap().clone()
    }

    fn thread_ring() -> &'static Ring {
        RING.with(|r| match r.get() {
            Some(ring) => ring,
            None => {
                let ring: &'static Ring =
                    Box::leak(Box::new(Ring::new(CAPACITY.load(Ordering::Relaxed))));
                RINGS.lock().unwrap().push(ring);
                r.set(Some(ring));
                ring
            }
        })
    }

    fn ctx_words() -> (u64, u16) {
        match ctx::current() {
            Some(c) => (c.job_id + 1, c.attempt.min(u16::MAX as u32) as u16),
            None => (0, 0),
        }
    }

    pub(super) fn note_span(
        name: &'static str,
        arg: Option<i64>,
        tid: u64,
        start_us: f64,
        dur_us: f64,
    ) {
        let (job, attempt) = ctx_words();
        thread_ring().record(&RawEvent {
            kind: KIND_SPAN,
            name_id: intern(name),
            has_arg: arg.is_some(),
            attempt,
            tid,
            job,
            arg: arg.unwrap_or(0) as u64,
            t0: start_us.to_bits(),
            t1: dur_us.to_bits(),
        });
    }

    pub(super) fn note_value(kind: u8, name: &'static str, value: u64) {
        let (job, attempt) = ctx_words();
        thread_ring().record(&RawEvent {
            kind,
            name_id: intern(name),
            has_arg: false,
            attempt,
            tid: crate::span::current_tid(),
            job,
            arg: value,
            t0: now_us().to_bits(),
            t1: 0f64.to_bits(),
        });
    }

    pub(super) fn snapshot() -> Vec<RecordedEvent> {
        let mut raw: Vec<(u64, RawEvent)> = Vec::new();
        for ring in RINGS.lock().unwrap().iter() {
            ring.snapshot_into(&mut raw);
        }
        let mut out: Vec<RecordedEvent> = raw
            .iter()
            .map(|(_, ev)| RecordedEvent {
                kind: match ev.kind {
                    KIND_COUNTER => "counter",
                    KIND_RECOVERY => "recovery",
                    _ => "span",
                },
                name: super::resolve(ev.name_id),
                tid: ev.tid,
                ctx: if ev.job == 0 {
                    None
                } else {
                    Some(crate::ctx::TraceCtx {
                        job_id: ev.job - 1,
                        attempt: u32::from(ev.attempt),
                    })
                },
                arg: if ev.kind == KIND_SPAN && ev.has_arg {
                    Some(ev.arg as i64)
                } else {
                    None
                },
                value: if ev.kind == KIND_SPAN { 0 } else { ev.arg },
                start_us: f64::from_bits(ev.t0),
                dur_us: f64::from_bits(ev.t1),
            })
            .collect();
        out.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
        out
    }

    /// (retained events, ring count, capacity per ring, total dropped)
    pub(super) fn stats() -> (usize, usize, usize, u64) {
        let rings = RINGS.lock().unwrap();
        let retained = rings.iter().map(|r| r.len()).sum();
        let dropped = rings.iter().map(|r| r.dropped()).sum();
        (
            retained,
            rings.len(),
            CAPACITY.load(Ordering::Relaxed),
            dropped,
        )
    }
}

/// Parsed `FT_TRACE_RECORDER` knob: `(on, capacity, dump path)`.
/// Grammar: comma-separated tokens — `0`/`off` disables, a bare integer
/// sets the per-thread event capacity, `dump:<path>` sets the dump
/// destination. Unset or unknown tokens keep the defaults (on,
/// [`DEFAULT_CAPACITY`], no dump file).
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
pub(crate) fn parse_knob(s: &str) -> (bool, usize, Option<PathBuf>) {
    let mut on = true;
    let mut capacity = DEFAULT_CAPACITY;
    let mut dump = None;
    for tok in s.split(',') {
        let t = tok.trim();
        if t.is_empty() {
            continue;
        }
        if t == "0" || t.eq_ignore_ascii_case("off") {
            on = false;
        } else if let Some(p) = t.strip_prefix("dump:") {
            if !p.is_empty() {
                dump = Some(PathBuf::from(p));
            }
        } else if let Ok(n) = t.parse::<usize>() {
            capacity = n;
        }
        // Unknown tokens fall through: a typo must never crash.
    }
    (on, capacity, dump)
}

static INITTED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Initializes the recorder from `FT_TRACE_RECORDER` if neither the env
/// path nor [`configure`] ran yet (called by the trace gate's cold init
/// and by `set_mode`). Idempotent; a racing duplicate init applies the
/// same parsed config twice, which is harmless.
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
pub(crate) fn ensure_init() {
    use std::sync::atomic::Ordering;
    if INITTED.load(Ordering::Acquire) {
        return;
    }
    let (on, capacity, dump) = match crate::env_knob::raw("FT_TRACE_RECORDER") {
        Some(v) => parse_knob(&v),
        None => (true, DEFAULT_CAPACITY, None),
    };
    #[cfg(all(feature = "enabled", not(loom)))]
    global::apply(on, capacity, dump);
    #[cfg(not(all(feature = "enabled", not(loom))))]
    let _ = (on, capacity, dump);
    INITTED.store(true, Ordering::Release);
}

/// Recorder state without triggering gate init (gate-internal).
pub(crate) fn is_on_raw() -> bool {
    #[cfg(all(feature = "enabled", not(loom)))]
    {
        global::ON.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(all(feature = "enabled", not(loom))))]
    {
        false
    }
}

/// `true` when the flight recorder is retaining events (initializes the
/// trace gate on first call).
#[inline]
pub fn is_on() -> bool {
    crate::recording(); // ensures the env knobs were parsed
    is_on_raw()
}

/// Reconfigures the recorder programmatically (tests/benches): enable
/// flag, per-thread capacity for rings created *after* this call, and
/// dump destination. Takes precedence over `FT_TRACE_RECORDER`.
pub fn configure(on: bool, capacity: usize, dump: Option<PathBuf>) {
    #[cfg(all(feature = "enabled", not(loom)))]
    global::apply(on, capacity, dump);
    #[cfg(not(all(feature = "enabled", not(loom))))]
    let _ = (on, capacity, dump);
    INITTED.store(true, std::sync::atomic::Ordering::Release);
    crate::refresh_recording_gate();
}

/// Records a span event (called by the span guard's drop path).
#[inline]
pub(crate) fn note_span(
    name: &'static str,
    arg: Option<i64>,
    tid: u64,
    start_us: f64,
    dur_us: f64,
) {
    #[cfg(all(feature = "enabled", not(loom)))]
    global::note_span(name, arg, tid, start_us, dur_us);
    #[cfg(not(all(feature = "enabled", not(loom))))]
    let _ = (name, arg, tid, start_us, dur_us);
}

/// Records a counter delta (called by `Counter::add` when the recorder
/// is on).
#[inline]
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
pub(crate) fn note_counter(name: &'static str, delta: u64) {
    #[cfg(all(feature = "enabled", not(loom)))]
    global::note_value(ring::KIND_COUNTER, name, delta);
    #[cfg(not(all(feature = "enabled", not(loom))))]
    let _ = (name, delta);
}

/// Records a recovery event mirrored from the fault journal.
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
pub(crate) fn note_recovery(name: &'static str, corrected: u64) {
    #[cfg(all(feature = "enabled", not(loom)))]
    global::note_value(ring::KIND_RECOVERY, name, corrected);
    #[cfg(not(all(feature = "enabled", not(loom))))]
    let _ = (name, corrected);
}

/// A resolved snapshot of every ring, oldest event first.
pub fn snapshot() -> Vec<RecordedEvent> {
    #[cfg(all(feature = "enabled", not(loom)))]
    {
        global::snapshot()
    }
    #[cfg(not(all(feature = "enabled", not(loom))))]
    {
        Vec::new()
    }
}

/// Recorder occupancy: `(retained events, rings, capacity per ring,
/// total dropped)`.
pub fn stats() -> (usize, usize, usize, u64) {
    #[cfg(all(feature = "enabled", not(loom)))]
    {
        global::stats()
    }
    #[cfg(not(all(feature = "enabled", not(loom))))]
    {
        (0, 0, 0, 0)
    }
}

/// Renders the flight-recorder snapshot as self-contained JSONL: a
/// header object, one object per retained event, then the fault
/// journal's records.
pub fn dump_string(reason: &str) -> String {
    use std::fmt::Write as _;
    let events = snapshot();
    let (retained, rings, capacity, dropped) = stats();
    let _ = retained;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"flight_recorder\":{{\"reason\":\"{}\",\"events\":{},\"rings\":{},\"capacity\":{},\"dropped\":{}}}}}",
        crate::writer::json_escape(reason),
        events.len(),
        rings,
        capacity,
        dropped,
    );
    for ev in &events {
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"kind\":\"{}\",\"tid\":{}",
            crate::writer::json_escape(ev.name),
            ev.kind,
            ev.tid,
        );
        if let Some(c) = ev.ctx {
            let _ = write!(out, ",\"job\":{},\"attempt\":{}", c.job_id, c.attempt);
        }
        if ev.kind == "span" {
            let _ = write!(
                out,
                ",\"start_us\":{:.3},\"dur_us\":{:.3}",
                ev.start_us, ev.dur_us
            );
            if let Some(a) = ev.arg {
                let _ = write!(out, ",\"arg\":{a}");
            }
        } else {
            let _ = write!(out, ",\"ts_us\":{:.3},\"value\":{}", ev.start_us, ev.value);
        }
        out.push_str("}\n");
    }
    for rec in crate::journal::snapshot() {
        out.push_str(&crate::journal::to_jsonl_line(&rec));
        out.push('\n');
    }
    out
}

/// Writes a dump to the configured `dump:<path>` destination, returning
/// the path. `Ok(None)` when the recorder is off or no destination is
/// configured (the recorder never writes files it was not pointed at).
pub fn dump(reason: &str) -> std::io::Result<Option<PathBuf>> {
    if !is_on() {
        return Ok(None);
    }
    #[cfg(all(feature = "enabled", not(loom)))]
    {
        match global::dump_path() {
            Some(path) => {
                dump_to(&path, reason)?;
                Ok(Some(path))
            }
            None => Ok(None),
        }
    }
    #[cfg(not(all(feature = "enabled", not(loom))))]
    {
        let _ = reason;
        Ok(None)
    }
}

/// Writes a dump to an explicit path regardless of configuration.
pub fn dump_to(path: &Path, reason: &str) -> std::io::Result<()> {
    std::fs::write(path, dump_string(reason))
}

/// Installs a panic hook (once, chaining any existing hook) that writes
/// a flight-recorder dump with reason `"panic"` before the default
/// handler runs. `ft-serve` calls this when a service starts.
pub fn install_panic_dump_hook() {
    #[cfg(all(feature = "enabled", not(loom)))]
    {
        use std::sync::Once;
        static HOOK: Once = Once::new();
        HOOK.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let _ = dump("panic");
                prev(info);
            }));
        });
    }
}

/// Parses a dump produced by [`dump_string`] back into span [`Event`]s
/// (counter/recovery/journal lines are skipped) so a flight-recorder
/// snapshot can be replayed into the chrome-trace sink via
/// [`crate::to_chrome_json`].
pub fn parse_dump(dump: &str) -> Vec<Event> {
    let mut out = Vec::new();
    for line in dump.lines() {
        if json_str_field(line, "kind") != Some("span".to_string()) {
            continue;
        }
        let Some(name) = json_str_field(line, "name") else {
            continue;
        };
        out.push(Event {
            name: leak_or_static(&name),
            cat: "wall",
            arg: json_num_field(line, "arg").map(|v| v as i64),
            tid: json_num_field(line, "tid").map(|v| v as u64).unwrap_or(0),
            start_us: json_num_field(line, "start_us").unwrap_or(0.0),
            dur_us: json_num_field(line, "dur_us").unwrap_or(0.0),
            ctx: json_num_field(line, "job").map(|j| TraceCtx {
                job_id: j as u64,
                attempt: json_num_field(line, "attempt")
                    .map(|v| v as u32)
                    .unwrap_or(0),
            }),
        });
    }
    out
}

/// Extracts a string field from one of our own flat JSONL lines (the
/// emitter never nests objects on event lines, so a scan suffices).
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extracts a numeric field from one of our own flat JSONL lines.
fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse::<f64>().ok()
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::ring::{RawEvent, Ring, KIND_SPAN};
    use super::*;

    fn raw(i: u64) -> RawEvent {
        RawEvent {
            kind: KIND_SPAN,
            name_id: i as u32,
            has_arg: true,
            attempt: (i % 7) as u16,
            tid: i,
            job: i + 1,
            arg: i * 3,
            t0: (i as f64).to_bits(),
            t1: 1f64.to_bits(),
        }
    }

    #[test]
    fn ring_retains_last_capacity_events() {
        let ring = Ring::new(8);
        for i in 0..20u64 {
            ring.record(&raw(i));
        }
        assert_eq!(ring.len(), 8);
        assert_eq!(ring.dropped(), 12);
        let mut out = Vec::new();
        ring.snapshot_into(&mut out);
        let gens: Vec<u64> = out.iter().map(|(g, _)| *g).collect();
        assert_eq!(gens, (12..20).collect::<Vec<_>>(), "drop-oldest order");
        for (g, ev) in &out {
            assert_eq!(*ev, raw(*g), "payload matches generation");
        }
    }

    #[test]
    fn knob_grammar() {
        assert_eq!(parse_knob("0"), (false, DEFAULT_CAPACITY, None));
        assert_eq!(parse_knob("off"), (false, DEFAULT_CAPACITY, None));
        assert_eq!(parse_knob("512"), (true, 512, None));
        assert_eq!(
            parse_knob("512,dump:/tmp/fr.jsonl"),
            (true, 512, Some(PathBuf::from("/tmp/fr.jsonl")))
        );
        assert_eq!(
            parse_knob("dump:fr.jsonl"),
            (true, DEFAULT_CAPACITY, Some(PathBuf::from("fr.jsonl")))
        );
        assert_eq!(parse_knob("bogus"), (true, DEFAULT_CAPACITY, None));
    }

    #[test]
    fn intern_roundtrips_static_and_dynamic_names() {
        let id = intern("ft.panel");
        assert_eq!(resolve(id), "ft.panel");
        assert!(id < DYN_BASE);
        let dyn_id = intern("test.recorder.dynamic_name");
        assert_eq!(resolve(dyn_id), "test.recorder.dynamic_name");
        assert!(dyn_id >= DYN_BASE);
        assert_eq!(intern("test.recorder.dynamic_name"), dyn_id);
    }

    #[test]
    fn dump_parses_back_into_span_events() {
        let dump = "{\"flight_recorder\":{\"reason\":\"test\",\"events\":2}}\n\
                    {\"name\":\"ft.panel\",\"kind\":\"span\",\"tid\":3,\"job\":9,\"attempt\":1,\"start_us\":10.000,\"dur_us\":4.500,\"arg\":32}\n\
                    {\"name\":\"pool.dispatch\",\"kind\":\"counter\",\"tid\":3,\"ts_us\":11.000,\"value\":2}\n\
                    {\"name\":\"serve.run\",\"kind\":\"span\",\"tid\":4,\"start_us\":1.000,\"dur_us\":2.000}\n";
        let events = parse_dump(dump);
        assert_eq!(events.len(), 2, "counter and header lines are skipped");
        assert_eq!(events[0].name, "ft.panel");
        assert_eq!(events[0].arg, Some(32));
        assert_eq!(
            events[0].ctx,
            Some(TraceCtx {
                job_id: 9,
                attempt: 1
            })
        );
        assert_eq!(events[1].name, "serve.run");
        assert_eq!(events[1].ctx, None);
        // The parsed events feed the chrome sink.
        let chrome = crate::to_chrome_json(&events);
        assert!(chrome.contains("\"name\":\"ft.panel\""));
    }
}
