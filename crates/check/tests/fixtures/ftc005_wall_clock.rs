//! Fixture: exactly one FTC005 violation (wall clock in a deterministic
//! math crate) on line 6. Scanned under a pretend ft-blas path.

/// Times a kernel with a raw clock instead of ft_trace spans.
pub fn timed_kernel() -> f64 {
    let start = std::time::Instant::now();
    start.elapsed().as_secs_f64()
}
