//! Runtime-dispatched `MR × NR` register-tiled GEMM microkernel.
//!
//! The kernel computes one `MR × NR` tile of `C += α · Apanel · Bpanel`
//! from packed operand panels (see `pack_a`/`pack_b` in
//! [`super::gemm`]). Three implementations share **one accumulation
//! contract** so they are bit-identical:
//!
//! * for every element, each `KC` block contributes
//!   `acc = fma(a, b, acc)` over `p` ascending, starting from `acc = 0`;
//! * the block is folded in with `c = fma(α, acc, c)`.
//!
//! Because `_mm256_fmadd_pd` performs the same single-rounding fused
//! multiply-add per lane as `f64::mul_add` (which in turn matches the
//! correctly-rounded soft `fma` used on targets without the instruction),
//! the AVX2 path, the hardware-FMA scalar path, and the plain scalar path
//! all produce the **same bits** — the property suite in
//! `crates/blas/tests/simd_properties.rs` pins this down. The selected ISA
//! therefore changes throughput only, never results, and the backend
//! determinism contract (see [`crate::backend`]) extends to SIMD choice.
//!
//! Selection: the `FT_BLAS_SIMD` environment knob (`auto` | `avx2` |
//! `portable`, read once through [`ft_trace::env_knob`]) combined with
//! runtime CPU feature detection; [`with_simd_path`] overrides it per
//! thread for tests and benches. Under Miri the portable path is forced —
//! results are identical by the contract above.

use ft_matrix::MatViewMut;
use std::cell::Cell;
use std::sync::OnceLock;

/// Microkernel tile height (rows of `C` per tile): two 4-lane AVX2
/// registers.
pub(crate) const MR: usize = 8;
/// Microkernel tile width (columns of `C` per tile): with `MR = 8` this
/// fills 12 of the 16 `ymm` registers with accumulators, leaving room for
/// two `A` vectors and a `B` broadcast.
pub(crate) const NR: usize = 6;

/// User-facing SIMD path selection (the `FT_BLAS_SIMD` knob and the
/// [`with_simd_path`] override).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdPath {
    /// Use the best instruction set the CPU supports (the default).
    Auto,
    /// Force the AVX2+FMA vector kernel; falls back to the portable path
    /// if the CPU lacks the features.
    Avx2,
    /// Force the portable scalar kernel (still uses the hardware `fma`
    /// *instruction* where available — the result bits never change, only
    /// the speed).
    Portable,
}

/// The concrete instruction mix a kernel invocation runs with. All three
/// produce bit-identical results; see the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Isa {
    /// AVX2 vector loads/stores with `vfmadd` accumulation.
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    Avx2,
    /// Scalar loop compiled with the `fma` target feature enabled, so
    /// `f64::mul_add` lowers to the hardware instruction.
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    ScalarFma,
    /// Scalar loop with `f64::mul_add` as the compiler lowers it for the
    /// baseline target (a correctly-rounded library call when the CPU has
    /// no FMA — same bits, much slower; exists so exotic targets still
    /// work).
    Scalar,
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
fn cpu_avx2_fma() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
fn cpu_fma() -> bool {
    std::arch::is_x86_feature_detected!("fma")
}

#[cfg(not(all(target_arch = "x86_64", not(miri))))]
fn cpu_avx2_fma() -> bool {
    false
}

#[cfg(not(all(target_arch = "x86_64", not(miri))))]
fn cpu_fma() -> bool {
    false
}

/// `true` when the vector (AVX2+FMA) kernel is available on this CPU.
pub fn simd_available() -> bool {
    cpu_avx2_fma()
}

fn parse_simd_path(s: &str) -> Option<SimdPath> {
    let s = s.trim();
    if s.eq_ignore_ascii_case("auto") || s.is_empty() {
        Some(SimdPath::Auto)
    } else if s.eq_ignore_ascii_case("avx2") {
        Some(SimdPath::Avx2)
    } else if s.eq_ignore_ascii_case("portable") || s.eq_ignore_ascii_case("scalar") {
        Some(SimdPath::Portable)
    } else {
        None
    }
}

/// The process-wide default path from the `FT_BLAS_SIMD` knob
/// (unset/unrecognized → `Auto`), read once.
fn env_path() -> SimdPath {
    static PATH: OnceLock<SimdPath> = OnceLock::new();
    *PATH.get_or_init(|| {
        ft_trace::env_knob::parse_with("FT_BLAS_SIMD", parse_simd_path).unwrap_or(SimdPath::Auto)
    })
}

thread_local! {
    static OVERRIDE: Cell<Option<SimdPath>> = const { Cell::new(None) };
}

/// Runs `f` with the calling thread's SIMD path forced to `path`,
/// restoring the previous override afterwards (also on panic). The forced
/// path is captured at each GEMM entry point and carried into pool
/// workers, so it covers the threaded backend too. Intended for tests and
/// benches that must exercise both codepaths in one process; production
/// code should rely on the `FT_BLAS_SIMD` knob.
pub fn with_simd_path<R>(path: SimdPath, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<SimdPath>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.get()));
    OVERRIDE.with(|c| c.set(Some(path)));
    f()
}

fn resolve(path: SimdPath) -> Isa {
    match path {
        SimdPath::Auto | SimdPath::Avx2 => {
            if cpu_avx2_fma() {
                Isa::Avx2
            } else if cpu_fma() {
                Isa::ScalarFma
            } else {
                Isa::Scalar
            }
        }
        SimdPath::Portable => {
            if cpu_fma() {
                Isa::ScalarFma
            } else {
                Isa::Scalar
            }
        }
    }
}

/// The ISA the next kernel invocation on this thread will use. Captured
/// once per GEMM call and passed down, so one call never mixes ISAs (not
/// that mixing would change results — see the module docs).
pub(crate) fn resolve_isa() -> Isa {
    resolve(OVERRIDE.with(|c| c.get()).unwrap_or_else(env_path))
}

/// Human-readable name of the path [`resolve_isa`] currently selects
/// (`"avx2+fma"`, `"scalar+fma"` or `"scalar"`); benches record it.
pub fn active_simd_path() -> &'static str {
    match resolve_isa() {
        Isa::Avx2 => "avx2+fma",
        Isa::ScalarFma => "scalar+fma",
        Isa::Scalar => "scalar",
    }
}

/// Shared scalar tile body: the accumulation-contract reference that the
/// vector kernel reproduces lane-for-lane. `#[inline(always)]` so the
/// `ScalarFma` wrapper compiles it with the `fma` target feature and
/// `mul_add` becomes a single instruction.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn scalar_tile(
    kc: usize,
    alpha: f64,
    apanel: &[f64],
    bpanel: &[f64],
    c: &mut MatViewMut<'_>,
    i0: usize,
    j0: usize,
    h: usize,
    w: usize,
) {
    let mut acc = [[0.0f64; MR]; NR];
    for p in 0..kc {
        let av = &apanel[p * MR..p * MR + MR];
        let bv = &bpanel[p * NR..p * NR + NR];
        for (jj, accj) in acc.iter_mut().enumerate() {
            let bj = bv[jj];
            for (ii, s) in accj.iter_mut().enumerate() {
                *s = av[ii].mul_add(bj, *s);
            }
        }
    }
    for (jj, accj) in acc.iter().enumerate().take(w) {
        let col = &mut c.col_mut(j0 + jj)[i0..i0 + h];
        for (ii, cij) in col.iter_mut().enumerate() {
            *cij = alpha.mul_add(accj[ii], *cij);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "fma")]
fn scalar_tile_fma(
    kc: usize,
    alpha: f64,
    apanel: &[f64],
    bpanel: &[f64],
    c: &mut MatViewMut<'_>,
    i0: usize,
    j0: usize,
    h: usize,
    w: usize,
) {
    scalar_tile(kc, alpha, apanel, bpanel, c, i0, j0, h, w);
}

/// AVX2+FMA tile kernel: 12 accumulator registers (`2 × NR`), one
/// broadcast `B` register, two `A` vectors. The per-lane operation stream
/// is exactly [`scalar_tile`]'s per-element stream.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
fn avx2_tile(
    kc: usize,
    alpha: f64,
    apanel: &[f64],
    bpanel: &[f64],
    c: &mut MatViewMut<'_>,
    i0: usize,
    j0: usize,
    h: usize,
    w: usize,
) {
    use std::arch::x86_64::*;
    debug_assert!(apanel.len() >= kc * MR && bpanel.len() >= kc * NR);
    let ap = apanel.as_ptr();
    let bp = bpanel.as_ptr();
    let mut acc = [[_mm256_setzero_pd(); 2]; NR];
    for p in 0..kc {
        // SAFETY: `apanel` holds at least `kc * MR` elements (asserted
        // above), so lanes `p*MR .. p*MR+8` are in bounds; `loadu` has no
        // alignment requirement.
        let (a0, a1) = unsafe {
            (
                _mm256_loadu_pd(ap.add(p * MR)),
                _mm256_loadu_pd(ap.add(p * MR + 4)),
            )
        };
        for (jj, accj) in acc.iter_mut().enumerate() {
            // SAFETY: `bpanel` holds at least `kc * NR` elements and
            // `jj < NR`, so `p*NR + jj` is in bounds.
            let b = unsafe { _mm256_set1_pd(*bp.add(p * NR + jj)) };
            accj[0] = _mm256_fmadd_pd(a0, b, accj[0]);
            accj[1] = _mm256_fmadd_pd(a1, b, accj[1]);
        }
    }
    let alpha_v = _mm256_set1_pd(alpha);
    for (jj, accj) in acc.iter().enumerate().take(w) {
        let col = &mut c.col_mut(j0 + jj)[i0..i0 + h];
        if h == MR {
            let ptr = col.as_mut_ptr();
            // SAFETY: `col` is a unique `&mut [f64]` of exactly `MR = 8`
            // elements in this branch, so both 4-lane loads/stores are in
            // bounds and non-overlapping with any other borrow.
            unsafe {
                let c0 = _mm256_loadu_pd(ptr);
                let c1 = _mm256_loadu_pd(ptr.add(4));
                _mm256_storeu_pd(ptr, _mm256_fmadd_pd(alpha_v, accj[0], c0));
                _mm256_storeu_pd(ptr.add(4), _mm256_fmadd_pd(alpha_v, accj[1], c1));
            }
        } else {
            // Ragged tile bottom: spill the accumulator and fold in with
            // scalar fma — identical bits, partial store.
            let mut tmp = [0.0f64; MR];
            // SAFETY: `tmp` is exactly `MR = 8` contiguous f64 slots.
            unsafe {
                _mm256_storeu_pd(tmp.as_mut_ptr(), accj[0]);
                _mm256_storeu_pd(tmp.as_mut_ptr().add(4), accj[1]);
            }
            for (ii, cij) in col.iter_mut().enumerate() {
                *cij = alpha.mul_add(tmp[ii], *cij);
            }
        }
    }
}

// ft-check: hot
/// Dispatches one `h × w` tile update (`h ≤ MR`, `w ≤ NR`) at
/// `C(i0.., j0..)` from packed panels for one `kc` block.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn tile(
    isa: Isa,
    kc: usize,
    alpha: f64,
    apanel: &[f64],
    bpanel: &[f64],
    c: &mut MatViewMut<'_>,
    i0: usize,
    j0: usize,
    h: usize,
    w: usize,
) {
    debug_assert!(h <= MR && w <= NR);
    debug_assert!(apanel.len() >= kc * MR && bpanel.len() >= kc * NR);
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Isa::Avx2` is only ever produced by `resolve` after
        // runtime detection confirmed the `avx2` and `fma` CPU features.
        Isa::Avx2 => unsafe { avx2_tile(kc, alpha, apanel, bpanel, c, i0, j0, h, w) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Isa::ScalarFma` is only produced when runtime detection
        // confirmed the `fma` CPU feature.
        Isa::ScalarFma => unsafe { scalar_tile_fma(kc, alpha, apanel, bpanel, c, i0, j0, h, w) },
        _ => scalar_tile(kc, alpha, apanel, bpanel, c, i0, j0, h, w),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_parse_forms() {
        assert_eq!(parse_simd_path("auto"), Some(SimdPath::Auto));
        assert_eq!(parse_simd_path(" AVX2 "), Some(SimdPath::Avx2));
        assert_eq!(parse_simd_path("portable"), Some(SimdPath::Portable));
        assert_eq!(parse_simd_path("scalar"), Some(SimdPath::Portable));
        assert_eq!(parse_simd_path("neon"), None);
    }

    #[test]
    fn override_restores_on_exit_and_panic() {
        let base = resolve_isa();
        with_simd_path(SimdPath::Portable, || {
            assert_ne!(resolve_isa(), Isa::Avx2);
        });
        assert_eq!(resolve_isa(), base);
        let r = std::panic::catch_unwind(|| {
            with_simd_path(SimdPath::Portable, || panic!("boom"));
        });
        assert!(r.is_err());
        assert_eq!(resolve_isa(), base);
    }

    #[test]
    fn forced_portable_never_vectorizes() {
        with_simd_path(SimdPath::Portable, || {
            assert_ne!(resolve_isa(), Isa::Avx2);
            assert!(matches!(active_simd_path(), "scalar+fma" | "scalar"));
        });
    }

    #[test]
    fn tile_paths_bit_identical() {
        // Direct microkernel-level check; the integration suite covers the
        // full GEMM paths.
        let kc = 37;
        let apanel: Vec<f64> = (0..kc * MR)
            .map(|i| ((i * 7919) % 1000) as f64 * 1e-3)
            .collect();
        let bpanel: Vec<f64> = (0..kc * NR)
            .map(|i| ((i * 104729) % 997) as f64 * 1e-3)
            .collect();
        let mut isas = vec![Isa::Scalar];
        if cpu_fma() {
            isas.push(Isa::ScalarFma);
        }
        if cpu_avx2_fma() {
            isas.push(Isa::Avx2);
        }
        let mut results: Vec<ft_matrix::Matrix> = vec![];
        for &isa in &isas {
            for (h, w) in [(MR, NR), (5, 3), (1, 1), (MR, 2), (3, NR)] {
                let mut c = ft_matrix::Matrix::from_fn(MR, NR, |i, j| (i + 10 * j) as f64 * 0.5);
                tile(
                    isa,
                    kc,
                    1.25,
                    &apanel,
                    &bpanel,
                    &mut c.as_view_mut(),
                    0,
                    0,
                    h,
                    w,
                );
                results.push(c);
            }
        }
        let per = 5;
        for group in 1..isas.len() {
            for t in 0..per {
                assert_eq!(
                    results[t].as_slice(),
                    results[group * per + t].as_slice(),
                    "{:?} vs {:?} tile {t}",
                    isas[0],
                    isas[group]
                );
            }
        }
    }
}
