//! Elementary Householder reflectors (LAPACK `DLARFG` / `DLARF`).

use ft_blas::{gemv, ger, Trans};
use ft_matrix::MatViewMut;

/// Result of generating an elementary reflector.
#[derive(Clone, Copy, Debug)]
pub struct Reflector {
    /// The value the pivot element is mapped to (`beta`).
    pub beta: f64,
    /// The reflector scale (`tau`); `0` means `H = I`.
    pub tau: f64,
}

/// Generates an elementary reflector `H = I − τ·[1; v]·[1; v]ᵀ` such that
/// `Hᵀ·[α; x] = [β; 0]` (LAPACK `DLARFG`).
///
/// On return `x` holds the tail `v` and the result carries `β` and `τ`.
/// Follows LAPACK's conventions: `τ ∈ [1, 2]` for a non-trivial reflector,
/// `β` takes the sign opposite to `α`, and inputs so small they would
/// underflow are rescaled before the arithmetic (the `safmin` loop).
pub fn larfg(alpha: f64, x: &mut [f64]) -> Reflector {
    let mut xnorm = ft_blas::nrm2(x);
    if xnorm == 0.0 {
        // H = I. LAPACK also returns beta = alpha.
        return Reflector {
            beta: alpha,
            tau: 0.0,
        };
    }

    let mut alpha = alpha;
    let safmin = f64::MIN_POSITIVE / f64::EPSILON;
    let rsafmn = 1.0 / safmin;
    let mut knt = 0u32;
    let mut beta = -alpha.signum() * hypot2(alpha, xnorm);
    // Rescale if beta would be subnormal-small.
    while beta.abs() < safmin && knt < 20 {
        knt += 1;
        ft_blas::scal(rsafmn, x);
        alpha *= rsafmn;
        xnorm = ft_blas::nrm2(x);
        beta = -alpha.signum() * hypot2(alpha, xnorm);
    }
    let tau = (beta - alpha) / beta;
    ft_blas::scal(1.0 / (alpha - beta), x);
    for _ in 0..knt {
        beta *= safmin;
    }
    Reflector { beta, tau }
}

/// `sqrt(a² + b²)` without intermediate overflow (LAPACK `DLAPY2`).
fn hypot2(a: f64, b: f64) -> f64 {
    let (a, b) = (a.abs(), b.abs());
    let (hi, lo) = if a > b { (a, b) } else { (b, a) };
    if hi == 0.0 {
        0.0
    } else {
        hi * (1.0 + (lo / hi).powi(2)).sqrt()
    }
}

/// Which side an elementary reflector is applied from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReflectSide {
    /// `C ← H·C` (H is symmetric, so this is also `Hᵀ·C`).
    Left,
    /// `C ← C·H`.
    Right,
}

/// Applies an elementary reflector `H = I − τ·v·vᵀ` to `C` (LAPACK `DLARF`).
///
/// `v` is the **full** reflector vector (leading 1 included explicitly);
/// its length must equal `C.rows()` for [`ReflectSide::Left`] and
/// `C.cols()` for [`ReflectSide::Right`].
pub fn larf(side: ReflectSide, v: &[f64], tau: f64, c: &mut MatViewMut<'_>) {
    if tau == 0.0 || c.is_empty() {
        return;
    }
    match side {
        ReflectSide::Left => {
            assert_eq!(
                v.len(),
                c.rows(),
                "larf(Left): v length {} != rows {}",
                v.len(),
                c.rows()
            );
            // w = Cᵀ v;  C ← C − τ·v·wᵀ
            let mut w = vec![0.0; c.cols()];
            gemv(Trans::Yes, 1.0, &c.as_view(), v, 0.0, &mut w);
            ger(-tau, v, &w, c);
        }
        ReflectSide::Right => {
            assert_eq!(
                v.len(),
                c.cols(),
                "larf(Right): v length {} != cols {}",
                v.len(),
                c.cols()
            );
            // w = C v;  C ← C − τ·w·vᵀ
            let mut w = vec![0.0; c.rows()];
            gemv(Trans::No, 1.0, &c.as_view(), v, 0.0, &mut w);
            ger(-tau, &w, v, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_matrix::Matrix;

    /// Builds the dense n×n reflector matrix `I − τ·u·uᵀ` with `u = [1; v]`.
    fn dense_reflector(v_tail: &[f64], tau: f64) -> Matrix {
        let n = v_tail.len() + 1;
        let mut u = vec![1.0];
        u.extend_from_slice(v_tail);
        Matrix::from_fn(n, n, |i, j| {
            let delta = if i == j { 1.0 } else { 0.0 };
            delta - tau * u[i] * u[j]
        })
    }

    #[test]
    fn larfg_annihilates() {
        let alpha = 3.0;
        let mut x = vec![1.0, -2.0, 0.5];
        let orig = [alpha, 1.0, -2.0, 0.5];
        let r = larfg(alpha, &mut x);

        // Hᵀ·[α; x] must equal [β; 0; 0; 0]; H is symmetric so use H.
        let h = dense_reflector(&x, r.tau);
        let mut result = vec![0.0; 4];
        ft_blas::gemv(Trans::No, 1.0, &h.as_view(), &orig, 0.0, &mut result);
        assert!(
            (result[0] - r.beta).abs() < 1e-14,
            "pivot: {} vs {}",
            result[0],
            r.beta
        );
        for &v in &result[1..] {
            assert!(v.abs() < 1e-14, "tail not annihilated: {result:?}");
        }
        // norm preservation: |beta| = ||[alpha; x_orig]||
        let norm = (orig.iter().map(|v| v * v).sum::<f64>()).sqrt();
        assert!((r.beta.abs() - norm).abs() < 1e-14);
        // LAPACK sign convention: beta opposes alpha's sign.
        assert!(r.beta < 0.0);
        assert!((1.0..=2.0).contains(&r.tau));
    }

    #[test]
    fn larfg_reflector_is_orthogonal() {
        let mut x = vec![0.3, 0.7, -0.2, 0.9];
        let r = larfg(-1.2, &mut x);
        let h = dense_reflector(&x, r.tau);
        let mut hht = Matrix::zeros(5, 5);
        ft_blas::gemm(
            Trans::No,
            Trans::Yes,
            1.0,
            &h.as_view(),
            &h.as_view(),
            0.0,
            &mut hht.as_view_mut(),
        );
        ft_matrix::assert_matrix_eq(&hht, &Matrix::identity(5), 1e-14, "H·Hᵀ = I");
    }

    #[test]
    fn larfg_zero_tail_is_identity() {
        let mut x = vec![0.0, 0.0];
        let r = larfg(5.0, &mut x);
        assert_eq!(r.tau, 0.0);
        assert_eq!(r.beta, 5.0);
    }

    #[test]
    fn larfg_empty_tail() {
        let mut x: Vec<f64> = vec![];
        let r = larfg(2.5, &mut x);
        assert_eq!(r.tau, 0.0);
        assert_eq!(r.beta, 2.5);
    }

    #[test]
    fn larfg_tiny_values_rescaled() {
        let tiny = 1e-300;
        let mut x = vec![tiny, tiny];
        let r = larfg(tiny, &mut x);
        assert!(r.beta.is_finite());
        assert!(r.beta != 0.0);
        assert!(x.iter().all(|v| v.is_finite()));
        // |beta| = norm of the input vector
        let norm = (3.0f64).sqrt() * tiny;
        assert!((r.beta.abs() - norm).abs() / norm < 1e-12);
    }

    #[test]
    fn larf_left_matches_dense() {
        let mut x = vec![0.5, -1.0];
        let r = larfg(1.0, &mut x);
        let mut v = vec![1.0];
        v.extend_from_slice(&x);

        let c0 = ft_matrix::random::uniform(3, 4, 9);
        let h = dense_reflector(&x, r.tau);
        let mut expect = Matrix::zeros(3, 4);
        ft_blas::gemm(
            Trans::No,
            Trans::No,
            1.0,
            &h.as_view(),
            &c0.as_view(),
            0.0,
            &mut expect.as_view_mut(),
        );

        let mut c = c0.clone();
        larf(ReflectSide::Left, &v, r.tau, &mut c.as_view_mut());
        ft_matrix::assert_matrix_eq(&c, &expect, 1e-13, "larf left");
    }

    #[test]
    fn larf_right_matches_dense() {
        let mut x = vec![0.5, -1.0, 2.0];
        let r = larfg(-0.7, &mut x);
        let mut v = vec![1.0];
        v.extend_from_slice(&x);

        let c0 = ft_matrix::random::uniform(2, 4, 10);
        let h = dense_reflector(&x, r.tau);
        let mut expect = Matrix::zeros(2, 4);
        ft_blas::gemm(
            Trans::No,
            Trans::No,
            1.0,
            &c0.as_view(),
            &h.as_view(),
            0.0,
            &mut expect.as_view_mut(),
        );

        let mut c = c0.clone();
        larf(ReflectSide::Right, &v, r.tau, &mut c.as_view_mut());
        ft_matrix::assert_matrix_eq(&c, &expect, 1e-13, "larf right");
    }

    #[test]
    fn larf_tau_zero_is_noop() {
        let c0 = ft_matrix::random::uniform(3, 3, 11);
        let mut c = c0.clone();
        larf(
            ReflectSide::Left,
            &[1.0, 2.0, 3.0],
            0.0,
            &mut c.as_view_mut(),
        );
        assert_eq!(c, c0);
    }
}
