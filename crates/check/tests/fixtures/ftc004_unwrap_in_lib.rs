//! Fixture: exactly one FTC004 violation (unwrap in library code) on
//! line 6.

/// Unwraps an Option in non-test library code.
pub fn first(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
