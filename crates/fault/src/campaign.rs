//! Seeded random fault campaigns: sweep areas × moments with reproducible
//! fault placements, the experimental protocol behind Figure 6's gray
//! uncertainty bands and Tables II/III.

use crate::injector::{Fault, FaultKind, FaultPlan, Phase, ScheduledFault};
use crate::region::{sample_in_region, Moment, Region};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Matrix dimension.
    pub n: usize,
    /// Panel width of the factorization under test.
    pub nb: usize,
    /// Regions to target.
    pub regions: Vec<Region>,
    /// Moments to inject at.
    pub moments: Vec<Moment>,
    /// Independent trials per (region, moment) cell.
    pub trials: usize,
    /// Base RNG seed; each trial derives its own stream.
    pub seed: u64,
    /// Corruption magnitude for additive faults; `None` uses random
    /// mantissa bit flips instead.
    pub magnitude: Option<f64>,
}

impl CampaignConfig {
    /// Number of panel iterations of the target factorization.
    pub fn iterations(&self) -> usize {
        if self.n < 3 {
            0
        } else {
            (self.n - 2).div_ceil(self.nb)
        }
    }

    /// Generates one trial of the `(region, moment)` cell deterministically
    /// from the config seed — the unit [`Campaign::generate`] iterates, and
    /// the hook per-job consumers (the `ft-serve` load generator) use to
    /// derive a fresh [`FaultPlan`] per job without materializing a whole
    /// campaign. Returns `None` when the region does not exist at the
    /// moment's frontier (e.g. Area 1 at the very beginning).
    ///
    /// The derived RNG stream depends only on `(seed, region, moment,
    /// trial_index)`, never on iteration order, so a trial generated here
    /// is bit-identical to the same cell of a full campaign.
    pub fn trial(&self, region: Region, moment: Moment, trial_index: usize) -> Option<Trial> {
        let iters = self.iterations();
        let seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((region as u64) << 32)
            .wrapping_add((moment as u64) << 16)
            .wrapping_add(trial_index as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let iteration = moment.iteration(iters);
        // Frontier when the fault strikes: `iteration` full panels are
        // complete (fault at IterationStart of the next one).
        let k = (iteration * self.nb).min(self.n.saturating_sub(1));
        let (row, col) = sample_in_region(self.n, k, region, &mut rng)?;
        let kind = match self.magnitude {
            Some(mag) => {
                // Random sign.
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                FaultKind::Add(sign * mag)
            }
            None => FaultKind::BitFlip(rng.gen_range(20..52)),
        };
        let fault = ScheduledFault {
            iteration,
            phase: Phase::IterationStart,
            fault: Fault { row, col, kind },
        };
        Some(Trial {
            region,
            moment,
            trial_index,
            plan: FaultPlan::new(vec![fault]),
            fault,
        })
    }
}

/// One trial of a campaign: a fault plan plus its provenance.
#[derive(Clone, Debug)]
pub struct Trial {
    /// Targeted region.
    pub region: Region,
    /// Injection moment.
    pub moment: Moment,
    /// Index within the (region, moment) cell.
    pub trial_index: usize,
    /// Ready-to-use plan for the factorization driver.
    pub plan: FaultPlan,
    /// The raw fault for reporting.
    pub fault: ScheduledFault,
}

/// A generated campaign: the cross product regions × moments × trials.
#[derive(Clone, Debug)]
pub struct Campaign {
    /// The generating configuration.
    pub config: CampaignConfig,
    /// All generated trials.
    pub trials: Vec<Trial>,
}

impl Campaign {
    /// Generates the campaign deterministically from the config seed.
    ///
    /// The fault is placed relative to the frontier *at the moment of
    /// injection* (`k = iteration × nb`), so Area 1/3 faults are only
    /// generated for moments where those regions exist.
    pub fn generate(config: CampaignConfig) -> Campaign {
        let mut trials = vec![];
        for &region in &config.regions {
            for &moment in &config.moments {
                for t in 0..config.trials {
                    if let Some(trial) = config.trial(region, moment, t) {
                        trials.push(trial);
                    }
                }
            }
        }
        Campaign { config, trials }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::classify;

    fn cfg() -> CampaignConfig {
        CampaignConfig {
            n: 96,
            nb: 16,
            regions: vec![Region::Area1, Region::Area2, Region::Area3],
            moments: Moment::ALL.to_vec(),
            trials: 5,
            seed: 42,
            magnitude: Some(1.0),
        }
    }

    #[test]
    fn deterministic() {
        let c1 = Campaign::generate(cfg());
        let c2 = Campaign::generate(cfg());
        assert_eq!(c1.trials.len(), c2.trials.len());
        for (a, b) in c1.trials.iter().zip(&c2.trials) {
            assert_eq!(a.fault, b.fault);
        }
    }

    #[test]
    fn faults_land_in_their_region() {
        let c = Campaign::generate(cfg());
        assert!(!c.trials.is_empty());
        for t in &c.trials {
            let k = (t.fault.iteration * c.config.nb).min(c.config.n - 1);
            assert_eq!(
                classify(c.config.n, k, t.fault.fault.row, t.fault.fault.col),
                t.region,
                "trial {t:?}"
            );
        }
    }

    #[test]
    fn area1_at_beginning_skipped_when_frontier_empty() {
        // Moment::Beginning → iteration 0 → k = 0: Area 1/3 do not exist.
        let mut config = cfg();
        config.moments = vec![Moment::Beginning];
        let c = Campaign::generate(config);
        assert!(c.trials.iter().all(|t| t.region == Region::Area2));
    }

    #[test]
    fn single_trial_matches_campaign_cell() {
        // The per-job hook must reproduce exactly the trial the full
        // campaign generates for the same cell.
        let config = cfg();
        let c = Campaign::generate(config.clone());
        for t in &c.trials {
            let solo = config
                .trial(t.region, t.moment, t.trial_index)
                .expect("cell exists in the generated campaign");
            assert_eq!(solo.fault, t.fault);
        }
        // Nonexistent cell: Area 1 at the beginning has an empty frontier.
        assert!(config.trial(Region::Area1, Moment::Beginning, 0).is_none());
    }

    #[test]
    fn bitflip_mode() {
        let mut config = cfg();
        config.magnitude = None;
        let c = Campaign::generate(config);
        for t in &c.trials {
            assert!(matches!(t.fault.fault.kind, FaultKind::BitFlip(b) if b < 52));
        }
    }

    #[test]
    fn iteration_count() {
        let c = cfg();
        assert_eq!(c.iterations(), 94usize.div_ceil(16));
        let tiny = CampaignConfig { n: 2, ..cfg() };
        assert_eq!(tiny.iterations(), 0);
    }
}
