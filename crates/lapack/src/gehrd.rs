//! Blocked Hessenberg reduction (LAPACK `DGEHRD`, Algorithm 1 of the
//! paper), plus `Q` formation (`DORGHR`) and residual helpers.
//!
//! Per panel of `nb` columns: factorize with [`crate::lahr2::lahr2`]
//! (producing `V`, `T`, `Y = A·V·T`), then
//!
//! 1. right-update the rows above the panel: `A ← A − Y·V₁ᵀ` on the panel
//!    columns (the part `DGEHRD` does with `TRMM`+`AXPY`);
//! 2. right-update the trailing columns: `A ← A − Y·V₂ᵀ` (`DGEMM`,
//!    Algorithm 1 line 3);
//! 3. left-update the trailing matrix: `A ← A − V·Tᵀ·Vᵀ·A` (`DLARFB`,
//!    Algorithm 1 line 4).
//!
//! # Lookahead pipeline (`FT_GEHRD_LOOKAHEAD`)
//!
//! With [`GehrdConfig::lookahead`] set, steps 2–3 are split at the next
//! panel's right edge into a *near* update (the next panel's `nb`
//! columns, applied synchronously — they are the critical path) and a
//! *far* update (everything to its right), and the far part is dispatched
//! asynchronously onto pool workers while the calling thread starts the
//! next panel with [`crate::lahr2::lahr2_prefix`]. The far token is
//! waited exactly at the next panel's first far-region read (the far
//! segment of its first `Y` column), after which
//! [`crate::lahr2::lahr2_finish`] completes the panel. The schedule is
//! bit-identical to the sequential one by construction — see DESIGN.md
//! §8.2 for the determinism contract and why the overlap window is
//! bounded by the panel's own data dependencies.

use crate::householder::{larf, ReflectSide};
use crate::lahr2::{lahr2, lahr2_finish, lahr2_prefix, Panel};
use ft_blas::{gemm, spawn_col_chunks, Side, Trans};
use ft_matrix::Matrix;

/// Tuning knobs for the blocked reduction.
#[derive(Clone, Copy, Debug)]
pub struct GehrdConfig {
    /// Panel width (the paper uses `nb = 32` for its N = 158 propagation
    /// study and MAGMA's defaults for performance runs).
    pub nb: usize,
    /// Crossover: trailing problems at most this large use the unblocked
    /// algorithm (LAPACK's `NX`).
    pub nx: usize,
    /// Depth-1 lookahead: overlap each panel's far trailing update with
    /// the next panel factorization (see the module docs). Defaults to
    /// the `FT_GEHRD_LOOKAHEAD` environment knob; bit-identical to the
    /// sequential schedule either way.
    pub lookahead: bool,
}

impl Default for GehrdConfig {
    fn default() -> Self {
        GehrdConfig {
            nb: 32,
            nx: 48,
            lookahead: lookahead_from_env(),
        }
    }
}

/// The `FT_GEHRD_LOOKAHEAD` environment knob (`1`/`true` enables).
pub fn lookahead_from_env() -> bool {
    ft_trace::env_knob::flag("FT_GEHRD_LOOKAHEAD")
}

impl GehrdConfig {
    /// Config with a given panel width and the default crossover.
    pub fn with_nb(nb: usize) -> Self {
        assert!(nb >= 1, "gehrd: nb must be positive");
        GehrdConfig {
            nb,
            nx: 0,
            lookahead: lookahead_from_env(),
        }
    }

    /// Same config with lookahead forced on or off.
    pub fn with_lookahead(mut self, on: bool) -> Self {
        self.lookahead = on;
        self
    }
}

/// The result of a Hessenberg reduction in LAPACK packed storage.
#[derive(Clone, Debug)]
pub struct HessFactorization {
    /// Packed output: `H` on and above the sub-diagonal, reflector tails
    /// below it.
    pub packed: Matrix,
    /// Reflector scales, length `max(n − 2, 0)`.
    pub tau: Vec<f64>,
}

impl HessFactorization {
    /// The upper Hessenberg factor `H`.
    pub fn h(&self) -> Matrix {
        extract_h(&self.packed)
    }

    /// The orthogonal factor `Q` (dense), with `A = Q·H·Qᵀ` (blocked
    /// accumulation; level-3 dominated).
    pub fn q(&self) -> Matrix {
        form_q_blocked(&self.packed, &self.tau, 32)
    }
}

/// Blocked Hessenberg reduction in place; returns `tau`.
///
/// `a` is overwritten in LAPACK packed storage (see
/// [`HessFactorization`]).
pub fn gehrd(a: &mut Matrix, cfg: &GehrdConfig) -> Vec<f64> {
    assert!(a.is_square(), "gehrd: matrix must be square");
    let n = a.rows();
    if n < 3 {
        return vec![];
    }
    let total = n - 2; // reflectors for columns 0..n-3
    let mut tau = vec![0.0; total];
    let mut k = 0;
    // Panel already factorized inside the previous iteration's overlap
    // window (lookahead only; always consumed by the very next panel).
    let mut prefetched: Option<Panel> = None;

    while k < total {
        let remaining = total - k;
        // Fall back to unblocked for small remainders (latency-bound).
        if remaining <= cfg.nx.max(1) || cfg.nb == 1 {
            debug_assert!(prefetched.is_none(), "tail cannot follow a lookahead panel");
            let _span = ft_trace::span!("gehrd.tail", k);
            unblocked_tail(a, k, &mut tau[k..]);
            break;
        }
        let ib = cfg.nb.min(remaining);
        let panel = match prefetched.take() {
            Some(p) => p,
            None => {
                let _span = ft_trace::span!("gehrd.panel", k);
                lahr2(a, k, ib)
            }
        };
        let m = panel.m(); // n - k - 1

        // (1) Right update to the rows above the panel, panel columns
        // k+1 ..= k+ib−1 (column k needs none):
        // A(0..=k, k+1..k+ib) −= Y(0..=k, :) · V(0..ib−1, :)ᵀ
        if ib > 1 {
            let _span = ft_trace::span!("gehrd.right_update", k);
            gemm(
                Trans::No,
                Trans::Yes,
                -1.0,
                &panel.y.view(0, 0, k + 1, ib),
                &panel.v.view(0, 0, ib - 1, ib),
                1.0,
                &mut a.view_mut(0, k + 1, k + 1, ib - 1),
            );
        }

        // (2)+(3) Right and left updates to the trailing columns:
        // A(:, k+ib..n) −= Y · V₂ᵀ  (V₂ = V rows ib−1..m), then
        // A(k+1..n, k+ib..n) ← (I − V·T·Vᵀ)ᵀ · A(k+1..n, k+ib..n).
        let ntrail = n - k - ib;
        if ntrail > 0 {
            // Width of the next blocked panel if the next iteration will
            // factorize one (0 when the unblocked tail is next).
            let k2 = k + ib;
            let rem2 = total - k2;
            let ib2 = if rem2 > cfg.nx.max(1) && cfg.nb > 1 {
                cfg.nb.min(rem2)
            } else {
                0
            };
            if cfg.lookahead && ib2 > 0 && ntrail > ib2 {
                lookahead_step(a, &panel, k, ib, ib2, &mut prefetched);
            } else {
                {
                    let _span = ft_trace::span!("gehrd.right_update", k);
                    gemm(
                        Trans::No,
                        Trans::Yes,
                        -1.0,
                        &panel.y.as_view(),
                        &panel.v.view(ib - 1, 0, m - ib + 1, ib),
                        1.0,
                        &mut a.view_mut(0, k + ib, n, ntrail),
                    );
                }
                let _span = ft_trace::span!("gehrd.left_update", k);
                crate::wy::larfb(
                    Side::Left,
                    Trans::Yes,
                    &panel.v.as_view(),
                    &panel.t.as_view(),
                    &mut a.view_mut(k + 1, k + ib, m, ntrail),
                );
            }
        }

        tau[k..k + ib].copy_from_slice(&panel.tau);
        k += ib;
    }
    tau
}

/// One pipelined iteration step: applies the near trailing update (the
/// next panel's `ib2` columns) synchronously, dispatches the far update
/// (everything right of the next panel) onto pool workers, factorizes the
/// next panel's lookahead prefix while that runs, waits for the far token
/// at the prefix's first far-region read, and finishes the next panel.
///
/// Bit-identity with the sequential schedule holds by construction:
/// * both trailing updates are **column-separable** — the right-update
///   GEMM's k-dimension (`ib ≤ nb`) fits one `KC` block and `larfb`
///   computes `W`, `T·W` and `C −= V·W` independently per column of `C` —
///   so splitting the columns into near + per-worker far chunks executes
///   exactly the serial per-element reduction chains;
/// * the panel itself runs the same code body in both schedules
///   ([`lahr2_prefix`] + [`lahr2_finish`]), differing only in where
///   column 0's `Y` GEMV splits its (order-preserving, ascending-column)
///   accumulation.
fn lookahead_step(
    a: &mut Matrix,
    panel: &Panel,
    k: usize,
    ib: usize,
    ib2: usize,
    prefetched: &mut Option<Panel>,
) {
    let n = a.rows();
    let m = n - k - 1;
    let k2 = k + ib;
    let f = k2 + ib2; // far boundary: first column of the far update
    let workers = ft_blas::current_backend().threads().max(1);
    let (mut head, far) = a.as_view_mut().split_at_col(f);

    // Dispatch the far update first so workers start immediately; the
    // near update and the panel prefix overlap with it on this thread.
    let (y, v, t) = (&panel.y, &panel.v, &panel.t);
    let handle = {
        let _span = ft_trace::span!("gehrd.far", k);
        spawn_col_chunks(far, workers, move |j0, mut chunk| {
            let w = chunk.cols();
            let toff = ib2 + j0; // chunk start within the trailing columns
            gemm(
                Trans::No,
                Trans::Yes,
                -1.0,
                &y.as_view(),
                &v.view(ib - 1 + toff, 0, w, ib),
                1.0,
                &mut chunk,
            );
            crate::wy::larfb(
                Side::Left,
                Trans::Yes,
                &v.as_view(),
                &t.as_view(),
                &mut chunk.subview_mut(k + 1, 0, m, w),
            );
        })
    };

    // Near update: the next panel's own columns, on the critical path.
    {
        let _span = ft_trace::span!("gehrd.near", k);
        gemm(
            Trans::No,
            Trans::Yes,
            -1.0,
            &panel.y.as_view(),
            &panel.v.view(ib - 1, 0, ib2, ib),
            1.0,
            &mut head.subview_mut(0, k2, n, ib2),
        );
        crate::wy::larfb(
            Side::Left,
            Trans::Yes,
            &panel.v.as_view(),
            &panel.t.as_view(),
            &mut head.subview_mut(k + 1, k2, m, ib2),
        );
    }

    // The hidden work: the next panel's lookahead prefix reads only
    // columns left of `f`.
    let state = {
        let _span = ft_trace::span!("gehrd.overlap", k2);
        lahr2_prefix(head, n, k2, ib2, f)
    };

    // First far-region read is next — resolve the token here. The span
    // duration is the pipeline stall (zero when the panel fully hid the
    // far update).
    {
        let _span = ft_trace::span!("gehrd.far", k);
        handle.wait();
    }

    let p2 = {
        let _span = ft_trace::span!("gehrd.panel", k2);
        lahr2_finish(a, state)
    };
    *prefetched = Some(p2);
}

/// Unblocked reduction of the remaining columns `k..n−2` (matches
/// `DGEHD2` restricted to a trailing range).
fn unblocked_tail(a: &mut Matrix, k: usize, tau: &mut [f64]) {
    let n = a.rows();
    let mut v = vec![0.0; n];
    // Single reflector-tail buffer reused across columns (every element is
    // overwritten before use), so the column loop is allocation-free.
    let mut tailbuf = vec![0.0; n];
    for (off, t) in tau.iter_mut().enumerate() {
        let i = k + off;
        let alpha = a[(i + 1, i)];
        let tail = &mut tailbuf[..n - i - 2];
        for (dst, r) in tail.iter_mut().zip(i + 2..n) {
            *dst = a[(r, i)];
        }
        let refl = crate::householder::larfg(alpha, tail);
        *t = refl.tau;

        let m = n - i - 1;
        v[0] = 1.0;
        v[1..m].copy_from_slice(tail);

        larf(
            ReflectSide::Right,
            &v[..m],
            refl.tau,
            &mut a.view_mut(0, i + 1, n, m),
        );
        larf(
            ReflectSide::Left,
            &v[..m],
            refl.tau,
            &mut a.view_mut(i + 1, i + 1, m, m),
        );

        a[(i + 1, i)] = refl.beta;
        for (off2, &val) in tail.iter().enumerate() {
            a[(i + 2 + off2, i)] = val;
        }
    }
}

/// Extracts the upper Hessenberg factor from packed storage.
pub fn extract_h(packed: &Matrix) -> Matrix {
    let n = packed.rows();
    Matrix::from_fn(n, n, |i, j| if i <= j + 1 { packed[(i, j)] } else { 0.0 })
}

/// Forms the dense orthogonal factor `Q = H₀·H₁⋯H_{n−3}` from packed
/// reflectors (LAPACK `DORGHR`).
pub fn form_q(packed: &Matrix, tau: &[f64]) -> Matrix {
    let n = packed.rows();
    let mut q = Matrix::identity(n);
    if n < 3 {
        return q;
    }
    assert_eq!(
        tau.len(),
        n - 2,
        "form_q: tau length {} != {}",
        tau.len(),
        n - 2
    );
    let mut v = vec![0.0; n];
    // Apply reflectors in reverse: Q ← H_j·Q touches only the trailing
    // (n−j−1)² block (the leading rows/cols are still the identity's).
    for j in (0..n - 2).rev() {
        if tau[j] == 0.0 {
            continue;
        }
        let m = n - j - 1;
        v[0] = 1.0;
        for r in 1..m {
            v[r] = packed[(j + 1 + r, j)];
        }
        larf(
            ReflectSide::Left,
            &v[..m],
            tau[j],
            &mut q.view_mut(j + 1, j + 1, m, m),
        );
    }
    q
}

/// Blocked `Q` formation (the level-3 version of [`form_q`]): applies the
/// reflectors panel-by-panel in reverse through `larfb`, so the bulk of
/// the work is GEMM. Produces the same `Q` up to roundoff.
pub fn form_q_blocked(packed: &Matrix, tau: &[f64], nb: usize) -> Matrix {
    let n = packed.rows();
    let mut q = Matrix::identity(n);
    if n < 3 {
        return q;
    }
    assert_eq!(
        tau.len(),
        n - 2,
        "form_q_blocked: tau length {} != {}",
        tau.len(),
        n - 2
    );
    let nb = nb.max(1);
    let total = n - 2;
    // Panel start columns in reverse order.
    let mut starts: Vec<usize> = (0..total).step_by(nb).collect();
    starts.reverse();
    for &k in &starts {
        let ib = nb.min(total - k);
        let m = n - k - 1;
        // Rebuild the panel's explicit V (local rows = global rows k+1..n).
        let mut v = Matrix::zeros(m, ib);
        for j in 0..ib {
            v[(j, j)] = 1.0;
            for r in j + 1..m {
                v[(r, j)] = packed[(k + 1 + r, k + j)];
            }
        }
        let t = crate::wy::larft(&v.as_view(), &tau[k..k + ib]);
        // Q(k+1.., k+1..) ← (I − V·T·Vᵀ)·Q(k+1.., k+1..): the leading
        // rows/cols are still the identity's at this point.
        crate::wy::larfb(
            Side::Left,
            Trans::No,
            &v.as_view(),
            &t.as_view(),
            &mut q.view_mut(k + 1, k + 1, m, m),
        );
    }
    q
}

/// `‖A − Q·H·Qᵀ‖₁ / (N·‖A‖₁)` — the backward-error residual of Table II.
pub fn factorization_residual(a0: &Matrix, q: &Matrix, h: &Matrix) -> f64 {
    let n = a0.rows();
    let mut qh = Matrix::zeros(n, n);
    gemm(
        Trans::No,
        Trans::No,
        1.0,
        &q.as_view(),
        &h.as_view(),
        0.0,
        &mut qh.as_view_mut(),
    );
    let mut qhqt = a0.clone();
    gemm(
        Trans::No,
        Trans::Yes,
        -1.0,
        &qh.as_view(),
        &q.as_view(),
        1.0,
        &mut qhqt.as_view_mut(),
    );
    // qhqt now holds A − QHQᵀ ... with the sign flipped; norm is symmetric.
    qhqt.one_norm() / (n as f64 * a0.one_norm())
}

/// `‖Q·Qᵀ − I‖₁ / N` — the orthogonality residual of Table III.
pub fn orthogonality_residual(q: &Matrix) -> f64 {
    let n = q.rows();
    let mut qqt = Matrix::identity(n);
    gemm(
        Trans::No,
        Trans::Yes,
        1.0,
        &q.as_view(),
        &q.as_view(),
        -1.0,
        &mut qqt.as_view_mut(),
    );
    qqt.one_norm() / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gehd2::gehd2;
    use ft_matrix::assert_matrix_eq;

    fn check(a0: &Matrix, cfg: &GehrdConfig, tol: f64) {
        let mut a = a0.clone();
        let tau = gehrd(&mut a, cfg);
        let f = HessFactorization { packed: a, tau };
        let h = f.h();
        assert!(h.is_upper_hessenberg(), "not Hessenberg");
        let q = f.q();
        let r1 = factorization_residual(a0, &q, &h);
        let r2 = orthogonality_residual(&q);
        assert!(r1 < tol, "factorization residual {r1} >= {tol}");
        assert!(r2 < tol, "orthogonality residual {r2} >= {tol}");
    }

    #[test]
    fn blocked_matches_unblocked_exactly() {
        // Same reflector ordering ⇒ identical output up to roundoff.
        let n = 20;
        let a0 = ft_matrix::random::uniform(n, n, 31);
        let mut au = a0.clone();
        let tau_u = gehd2(&mut au);

        let mut ab = a0.clone();
        let tau_b = gehrd(
            &mut ab,
            &GehrdConfig {
                nb: 4,
                nx: 1,
                lookahead: false,
            },
        );

        for j in 0..n - 2 {
            assert!(
                (tau_u[j] - tau_b[j]).abs() < 1e-11,
                "tau[{j}]: {} vs {}",
                tau_u[j],
                tau_b[j]
            );
        }
        assert_matrix_eq(&ab, &au, 1e-10, "blocked vs unblocked packed output");
    }

    #[test]
    fn residuals_small_various_sizes_and_blocks() {
        for &(n, nb) in &[(16usize, 4usize), (33, 8), (64, 32), (100, 32), (57, 7)] {
            let a0 = ft_matrix::random::uniform(n, n, n as u64 * 7 + nb as u64);
            check(
                &a0,
                &GehrdConfig {
                    nb,
                    nx: 4,
                    lookahead: false,
                },
                1e-14,
            );
        }
    }

    #[test]
    fn default_config_works() {
        let a0 = ft_matrix::random::uniform(80, 80, 99);
        check(&a0, &GehrdConfig::default(), 1e-14);
    }

    #[test]
    fn nb_larger_than_matrix() {
        let a0 = ft_matrix::random::uniform(10, 10, 41);
        check(
            &a0,
            &GehrdConfig {
                nb: 64,
                nx: 1,
                lookahead: false,
            },
            1e-13,
        );
    }

    #[test]
    fn blocked_q_formation_matches_unblocked() {
        for &(n, nb) in &[(30usize, 8usize), (50, 16), (41, 7), (20, 64)] {
            let a0 = ft_matrix::random::uniform(n, n, (n + nb) as u64);
            let mut packed = a0.clone();
            let tau = gehrd(
                &mut packed,
                &GehrdConfig {
                    nb: 8,
                    nx: 2,
                    lookahead: false,
                },
            );
            let q1 = form_q(&packed, &tau);
            let q2 = form_q_blocked(&packed, &tau, nb);
            let diff = ft_matrix::max_abs_diff(&q1, &q2);
            assert!(diff < 1e-12, "n={n} nb={nb}: Q diff {diff}");
        }
    }

    #[test]
    fn tiny_matrices() {
        for n in 0..4 {
            let a0 = ft_matrix::random::uniform(n, n, 50 + n as u64);
            let mut a = a0.clone();
            let tau = gehrd(&mut a, &GehrdConfig::default());
            if n < 3 {
                assert!(tau.is_empty());
                assert_eq!(a, a0);
            }
        }
    }

    #[test]
    fn lookahead_bit_identical_to_sequential() {
        // The pipelined schedule must reproduce the sequential bits
        // exactly, including tail/partial-panel shapes.
        for &(n, nb, nx) in &[
            (64usize, 8usize, 4usize),
            (100, 32, 48),
            (57, 7, 4),
            (33, 8, 1),
            (24, 4, 12),
        ] {
            let a0 = ft_matrix::random::uniform(n, n, n as u64 * 13 + nb as u64);
            let mut a_seq = a0.clone();
            let mut a_la = a0.clone();
            let base = GehrdConfig {
                nb,
                nx,
                lookahead: false,
            };
            let tau_seq = gehrd(&mut a_seq, &base);
            let tau_la = gehrd(&mut a_la, &base.with_lookahead(true));
            assert_eq!(tau_seq, tau_la, "n={n} nb={nb} nx={nx}: tau differs");
            for j in 0..n {
                for i in 0..n {
                    assert_eq!(
                        a_seq[(i, j)].to_bits(),
                        a_la[(i, j)].to_bits(),
                        "n={n} nb={nb} nx={nx}: packed ({i},{j}) differs: {} vs {}",
                        a_seq[(i, j)],
                        a_la[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn symmetric_input_gives_tridiagonal_h() {
        // Hessenberg form of a symmetric matrix is symmetric tridiagonal.
        let a0 = ft_matrix::random::symmetric(24, 8);
        let mut a = a0.clone();
        let tau = gehrd(
            &mut a,
            &GehrdConfig {
                nb: 8,
                nx: 2,
                lookahead: false,
            },
        );
        let f = HessFactorization { packed: a, tau };
        let h = f.h();
        for j in 0..24 {
            for i in 0..24 {
                if i + 1 < j {
                    assert!(h[(i, j)].abs() < 1e-12, "H({i},{j}) = {}", h[(i, j)]);
                }
            }
        }
    }
}
