//! The rule suite: shared context, scope classification, and the
//! dispatcher that runs every rule over an analyzed file set.

pub mod hotpath;
pub mod knobs;
pub mod locks;
pub mod names_rule;
pub mod panics;
pub mod scan;
pub mod simd;

use crate::callgraph::{FileModel, Graph};
use crate::{Finding, Registry};

/// A declared lock rank from the lock-order registry
/// (`crates/serve/src/lock_order.rs`).
#[derive(Debug, Clone)]
pub struct LockRank {
    /// Repo-relative path of the file owning the lock (suffix match).
    pub path: String,
    /// Field/binding name of the `Mutex`.
    pub name: String,
    /// Position in the partial order: a lock may only be acquired while
    /// holding locks of strictly lower rank.
    pub rank: u32,
    /// 1-based line of the registry entry (for coverage findings).
    pub line: usize,
}

/// Everything the rules need beyond the file set itself: the parsed
/// registries and the scan mode.
#[derive(Default)]
pub struct Ctx {
    /// Metric-name registry from `crates/trace/src/names.rs`.
    pub registry: Registry,
    /// Repo-relative path of names.rs (FTC012 findings anchor here).
    pub names_rel: String,
    /// Declared env knobs `(name, 1-based line)` from the `KNOBS` table
    /// in `crates/trace/src/env_knob.rs`.
    pub knobs: Vec<(String, usize)>,
    /// Repo-relative path of env_knob.rs.
    pub knobs_rel: String,
    /// `FT_*` tokens found in README `(name, 1-based line)`; `None`
    /// skips the README directions of FTC010 (fixture mode).
    pub readme_knobs: Option<Vec<(String, usize)>>,
    /// Repo-relative path of the README.
    pub readme_rel: String,
    /// Declared lock ranks from `crates/serve/src/lock_order.rs`.
    pub lock_order: Vec<LockRank>,
    /// When `true` (`--tests`), test code loses its exemptions and the
    /// scoped rules apply everywhere — CI runs this warn-only.
    pub include_tests: bool,
}

/// Crates whose `src/` must stay wall-clock-free (bit-identical math).
pub const DETERMINISTIC_CRATES: [&str; 4] = [
    "crates/matrix/src/",
    "crates/blas/src/",
    "crates/lapack/src/",
    "crates/hessenberg/src/",
];

/// The one sanctioned `std::env::var` site.
pub const ENV_KNOB: &str = "crates/trace/src/env_knob.rs";

/// The one sanctioned thread-creation site.
pub const POOL: &str = "crates/blas/src/pool.rs";

/// Crate prefixes whose lock sites FTC009 covers.
pub const LOCK_SCOPE: [&str; 2] = ["crates/serve/src/", "crates/blas/src/"];

pub(crate) fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/") || rel.contains("/tests/")
}

pub(crate) fn is_library_path(rel: &str) -> bool {
    let in_src = rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/"));
    in_src && !rel.contains("/bin/") && !rel.ends_with("/main.rs") && !rel.ends_with("build.rs")
}

pub(crate) fn is_deterministic_math_path(rel: &str) -> bool {
    DETERMINISTIC_CRATES.iter().any(|p| rel.starts_with(p))
}

/// The analyzed workspace handed to each rule.
pub struct Analysis<'a> {
    /// All analyzed files.
    pub files: &'a [FileModel],
    /// The resolved call graph over them.
    pub graph: Graph<'a>,
    /// Registries and mode.
    pub ctx: &'a Ctx,
}

impl Analysis<'_> {
    /// `true` when token `tok_idx` of file `fi` is test-exempt.
    pub fn tok_in_test(&self, fi: usize, tok_idx: usize) -> bool {
        if self.ctx.include_tests {
            return false;
        }
        is_test_path(&self.files[fi].rel) || self.files[fi].items.tok_in_test(tok_idx)
    }

    /// `true` when fn `fn_idx` of file `fi` is test-exempt.
    pub fn fn_in_test(&self, fi: usize, fn_idx: usize) -> bool {
        if self.ctx.include_tests {
            return false;
        }
        is_test_path(&self.files[fi].rel) || self.files[fi].items.fns[fn_idx].in_test
    }

    /// Builds a finding from a 0-based token position.
    pub fn finding(
        &self,
        fi: usize,
        line: u32,
        col: u32,
        rule: &'static str,
        message: String,
        hint: &'static str,
    ) -> Finding {
        Finding {
            path: self.files[fi].rel.clone(),
            line: line as usize + 1,
            col: col as usize + 1,
            rule,
            message,
            hint,
        }
    }
}

/// Runs every rule over the analyzed file set.
pub fn run_all(files: &[FileModel], ctx: &Ctx) -> Vec<Finding> {
    let graph = Graph::build(files);
    let a = Analysis { files, graph, ctx };
    let mut findings = Vec::new();
    scan::run(&a, &mut findings);
    simd::run(&a, &mut findings);
    hotpath::run(&a, &mut findings);
    locks::run(&a, &mut findings);
    knobs::run(&a, &mut findings);
    panics::run(&a, &mut findings);
    names_rule::run(&a, &mut findings);
    findings
}
