//! The `check_allow.toml` machinery: parsing, suppression, the `max`
//! cap, and FTC000 staleness.

use ft_check::{apply_allowlist, parse_allowlist, Finding};

fn finding(path: &str, line: usize) -> Finding {
    Finding {
        path: path.to_string(),
        line,
        col: 1,
        rule: "FTC004",
        message: "test".to_string(),
        hint: "test",
    }
}

#[test]
fn parses_entries_with_caps() {
    let text = r#"
# comment
[[allow]]
rule = "FTC004"
path = "crates/x/src/lib.rs"
reason = "lock poisoning is unrecoverable"
max = 3
"#;
    let allow = parse_allowlist(text).expect("parse");
    assert_eq!(allow.len(), 1);
    assert_eq!(allow[0].rule, "FTC004");
    assert_eq!(allow[0].path, "crates/x/src/lib.rs");
    assert_eq!(allow[0].max, 3);
}

#[test]
fn rejects_entries_without_a_reason() {
    let text = "[[allow]]\nrule = \"FTC004\"\npath = \"a.rs\"\n";
    let err = parse_allowlist(text).expect_err("reason is the audit");
    assert!(err.contains("reason"), "unexpected error: {err}");
}

#[test]
fn suppresses_up_to_max_and_reports_the_excess() {
    let text = "[[allow]]\nrule = \"FTC004\"\npath = \"a.rs\"\nreason = \"ok\"\nmax = 2\n";
    let allow = parse_allowlist(text).expect("parse");
    let findings = vec![finding("a.rs", 1), finding("a.rs", 2), finding("a.rs", 3)];
    let left = apply_allowlist(findings, &allow);
    assert_eq!(
        left.len(),
        1,
        "two suppressed, the third reported: {left:#?}"
    );
    assert_eq!(left[0].line, 3);
}

#[test]
fn stale_entries_fail_as_ftc000() {
    let text = "[[allow]]\nrule = \"FTC002\"\npath = \"gone.rs\"\nreason = \"was audited\"\n";
    let allow = parse_allowlist(text).expect("parse");
    let left = apply_allowlist(Vec::new(), &allow);
    assert_eq!(left.len(), 1);
    assert_eq!(left[0].rule, "FTC000");
    assert!(left[0].message.contains("gone.rs"));
}

#[test]
fn entries_only_cover_their_own_rule_and_path() {
    let text = "[[allow]]\nrule = \"FTC004\"\npath = \"a.rs\"\nreason = \"ok\"\n";
    let allow = parse_allowlist(text).expect("parse");
    let left = apply_allowlist(vec![finding("b.rs", 1)], &allow);
    // b.rs stays reported, and the a.rs entry is now stale.
    assert_eq!(left.len(), 2, "{left:#?}");
    assert!(left.iter().any(|f| f.path == "b.rs" && f.rule == "FTC004"));
    assert!(left.iter().any(|f| f.rule == "FTC000"));
}
