//! A hand-rolled Rust lexer producing a real token stream with spans.
//!
//! This replaces the PR-5 line-oriented stripping scanner: instead of
//! blanking comments and literal contents in place, the lexer emits
//! typed tokens (identifiers, string/char/numeric literals, lifetimes,
//! punctuation) with `line:col` positions, and keeps comments in a side
//! list so rules that read annotations (`SAFETY`, `// ft-check: hot`)
//! still see them. Because a rule that looks for the identifier
//! `unwrap` only ever sees *identifier tokens*, the old false-positive
//! class — rule-shaped text inside doc comments and string literals —
//! is structurally impossible.
//!
//! Deliberately not a full parser and still dependency-free (no `syn`):
//! the token grammar below covers everything the workspace's rules need,
//! including nested block comments, raw strings (`r#"…"#`, `br"…"`),
//! byte strings, raw identifiers (`r#fn`), lifetimes vs char literals,
//! and numeric literals with underscores/exponents/suffixes. `::` is
//! merged into a single path-separator token; all other punctuation is
//! one token per character.

/// Token classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `unwrap`, …). Raw
    /// identifiers (`r#type`) lex as the bare name.
    Ident,
    /// Lifetime or loop label (`'a`, `'static`), without the quote.
    Lifetime,
    /// String literal; `text` is the inner content with escape
    /// sequences left as written (`\n` stays two chars).
    Str,
    /// Raw string literal (`r"…"`, `r#"…"#`, `br"…"`); inner content.
    RawStr,
    /// Byte-string literal (`b"…"`); inner content.
    ByteStr,
    /// Char or byte-char literal (`'x'`, `b'\n'`); inner content.
    Char,
    /// Numeric literal, suffix included (`1_000u64`, `0x1f`, `1e-3`).
    Num,
    /// Punctuation. One char per token, except `::` which is merged.
    Punct,
}

/// One token with its source position.
#[derive(Clone, Debug)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what each kind stores).
    pub text: String,
    /// 0-based source line of the token's first character.
    pub line: u32,
    /// 0-based column (in chars) of the token's first character. For
    /// string literals this is the opening quote (or the `r`/`b`
    /// prefix).
    pub col: u32,
}

impl Tok {
    /// `true` when this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// `true` when this is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// A comment, kept out of the token stream but retained for
/// annotation-reading rules.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text without the delimiters (`//`, `///`, `/* */`).
    pub text: String,
    /// 0-based line of the comment opener.
    pub line: u32,
    /// 0-based column of the comment opener.
    pub col: u32,
    /// Last 0-based line the comment spans (equals `line` for `//`).
    pub end_line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-trivia tokens, in source order.
    pub toks: Vec<Tok>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 0;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens and comments. Never fails: unexpected
/// bytes become single-char punctuation, unterminated literals run to
/// end of file — a linter must degrade, not crash, on odd input.
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor {
        chars: source.chars().collect(),
        i: 0,
        line: 0,
        col: 0,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            cur.bump();
            cur.bump();
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.comments.push(Comment {
                text,
                line,
                col,
                end_line: line,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1u32;
            let mut text = String::new();
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        text.push_str("/*");
                        cur.bump();
                        cur.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        if depth > 0 {
                            text.push_str("*/");
                        }
                        cur.bump();
                        cur.bump();
                    }
                    (Some(ch), _) => {
                        text.push(ch);
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            out.comments.push(Comment {
                text,
                line,
                col,
                end_line: cur.line,
            });
            continue;
        }
        // Raw strings and byte strings: r"…", r#"…"#, b"…", br#"…"#.
        if c == 'r' || c == 'b' {
            if let Some(tok) = try_prefixed_literal(&mut cur, line, col) {
                out.toks.push(tok);
                continue;
            }
        }
        // Identifiers and keywords (incl. raw idents).
        if is_ident_start(c) {
            // `r#ident` raw identifier: skip the prefix.
            if c == 'r' && cur.peek(1) == Some('#') && cur.peek(2).is_some_and(is_ident_start) {
                cur.bump();
                cur.bump();
            }
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if !is_ident_continue(ch) {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    text.push(ch);
                    cur.bump();
                    // Exponent sign: 1e-3, 2E+5.
                    if (ch == 'e' || ch == 'E')
                        && !text.starts_with("0x")
                        && matches!(cur.peek(0), Some('+') | Some('-'))
                        && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
                    {
                        text.push(cur.bump().unwrap_or('+'));
                    }
                } else if ch == '.'
                    && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
                    && !text.contains('.')
                {
                    // Fractional part — but not `1..2` or `1.method()`.
                    text.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text,
                line,
                col,
            });
            continue;
        }
        // Strings.
        if c == '"' {
            cur.bump();
            let text = cooked_string_body(&mut cur);
            out.toks.push(Tok {
                kind: TokKind::Str,
                text,
                line,
                col,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // Lifetime: 'ident not closed by a quote right after.
            let next = cur.peek(1);
            let is_lifetime =
                next.is_some_and(is_ident_start) && next != Some('\\') && cur.peek(2) != Some('\'');
            if is_lifetime {
                cur.bump(); // '
                let mut text = String::new();
                while let Some(ch) = cur.peek(0) {
                    if !is_ident_continue(ch) {
                        break;
                    }
                    text.push(ch);
                    cur.bump();
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                    col,
                });
            } else {
                cur.bump(); // '
                let mut text = String::new();
                while let Some(ch) = cur.peek(0) {
                    if ch == '\\' {
                        text.push(ch);
                        cur.bump();
                        if let Some(esc) = cur.bump() {
                            text.push(esc);
                        }
                        continue;
                    }
                    if ch == '\'' {
                        cur.bump();
                        break;
                    }
                    text.push(ch);
                    cur.bump();
                }
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text,
                    line,
                    col,
                });
            }
            continue;
        }
        // `::` path separator, merged.
        if c == ':' && cur.peek(1) == Some(':') {
            cur.bump();
            cur.bump();
            out.toks.push(Tok {
                kind: TokKind::Punct,
                text: "::".to_string(),
                line,
                col,
            });
            continue;
        }
        // Everything else: single-char punctuation.
        cur.bump();
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }
    out
}

/// Consumes the body of a cooked (escapable) string after its opening
/// quote, returning the inner text with escapes as written.
fn cooked_string_body(cur: &mut Cursor) -> String {
    let mut text = String::new();
    while let Some(ch) = cur.peek(0) {
        if ch == '\\' {
            text.push(ch);
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        if ch == '"' {
            cur.bump();
            break;
        }
        text.push(ch);
        cur.bump();
    }
    text
}

/// Tries to lex `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br"…"`, `br#"…"#`
/// at the cursor. Returns `None` (cursor untouched) when the prefix is
/// not actually a literal (e.g. the identifier `row`).
fn try_prefixed_literal(cur: &mut Cursor, line: u32, col: u32) -> Option<Tok> {
    let c0 = cur.peek(0)?;
    // Determine the candidate shape without consuming.
    let (raw, byte, mut ahead) = match (c0, cur.peek(1)) {
        ('r', Some('"')) | ('r', Some('#')) => (true, false, 1),
        ('b', Some('"')) => (false, true, 1),
        ('b', Some('\'')) => {
            // Byte char literal b'x'.
            cur.bump(); // b
            cur.bump(); // '
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\\' {
                    text.push(ch);
                    cur.bump();
                    if let Some(esc) = cur.bump() {
                        text.push(esc);
                    }
                    continue;
                }
                if ch == '\'' {
                    cur.bump();
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            return Some(Tok {
                kind: TokKind::Char,
                text,
                line,
                col,
            });
        }
        ('b', Some('r')) => (true, true, 2),
        _ => return None,
    };
    // Count hashes, expect a quote.
    let mut hashes = 0usize;
    while cur.peek(ahead) == Some('#') {
        hashes += 1;
        ahead += 1;
    }
    if cur.peek(ahead) != Some('"') {
        // `r#ident` (raw identifier) or plain ident starting with r/b.
        return None;
    }
    // Commit: consume prefix, hashes, quote.
    for _ in 0..=ahead {
        cur.bump();
    }
    let mut text = String::new();
    while let Some(ch) = cur.peek(0) {
        if ch == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if cur.peek(1 + k) != Some('#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                for _ in 0..=hashes {
                    cur.bump();
                }
                break;
            }
        }
        text.push(ch);
        cur.bump();
    }
    Some(Tok {
        kind: if raw {
            TokKind::RawStr
        } else if byte {
            TokKind::ByteStr
        } else {
            TokKind::Str
        },
        text,
        line,
        col,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_paths() {
        let t = kinds("std::env::var(name)");
        assert_eq!(
            t,
            vec![
                (TokKind::Ident, "std".into()),
                (TokKind::Punct, "::".into()),
                (TokKind::Ident, "env".into()),
                (TokKind::Punct, "::".into()),
                (TokKind::Ident, "var".into()),
                (TokKind::Punct, "(".into()),
                (TokKind::Ident, "name".into()),
                (TokKind::Punct, ")".into()),
            ]
        );
    }

    #[test]
    fn comments_are_trivia_not_tokens() {
        let lexed = lex("// counter(\"fake.name\").unwrap()\nlet x = 1; /* env::var */");
        assert!(lexed.toks.iter().all(|t| t.text != "unwrap"));
        assert!(lexed.toks.iter().all(|t| t.text != "env"));
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("fake.name"));
    }

    #[test]
    fn string_contents_are_not_idents() {
        let lexed = lex(r#"let s = "call .unwrap() and thread::spawn";"#);
        assert!(lexed.toks.iter().all(|t| t.text != "unwrap"));
        let strs: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("thread::spawn"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let lexed = lex(r##"let s = r#"a "quoted" x"#; let b = br"bytes";"##);
        let raws: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::RawStr)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(
            raws,
            vec!["a \"quoted\" x".to_string(), "bytes".to_string()]
        );
    }

    #[test]
    fn lifetimes_vs_chars() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(t.contains(&(TokKind::Lifetime, "a".into())));
        assert!(t.contains(&(TokKind::Char, "x".into())));
        assert!(t.contains(&(TokKind::Char, "\\n".into())));
    }

    #[test]
    fn numbers_with_suffixes_and_exponents() {
        let t = kinds("1_000u64 + 0x1f + 1e-3 + 2.5f64 + x.0");
        let nums: Vec<_> = t
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, s)| s.clone())
            .collect();
        assert_eq!(nums, vec!["1_000u64", "0x1f", "1e-3", "2.5f64", "0"]);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert!(lexed.toks[0].is_ident("fn"));
        assert_eq!(lexed.comments.len(), 1);
    }

    #[test]
    fn raw_ident_lexes_bare() {
        let t = kinds("let r#type = 1;");
        assert!(t.contains(&(TokKind::Ident, "type".into())));
    }

    #[test]
    fn spans_are_line_col() {
        let lexed = lex("fn a() {}\n  fn b() {}");
        let b = lexed.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!((b.line, b.col), (1, 5));
    }

    #[test]
    fn multiline_string_positions_keep_tracking() {
        let lexed = lex("let s = \"line one\nline two\";\nfn after() {}");
        let after = lexed.toks.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 2);
    }
}
