//! The process-wide counter / gauge registry.
//!
//! Counters are named `AtomicU64`s registered once and leaked (they live
//! for the process; the registry is append-only and tiny). Increments are
//! relaxed `fetch_add`s — exactly the cost the ad-hoc probes in
//! `ft-blas::pool` / `ft-blas::workspace` paid before they were promoted
//! here — so they stay on regardless of `FT_TRACE`: regression tests pin
//! exact counts without enabling span collection.
//!
//! Lookup by name takes a mutex and scans a vector, so hot call sites must
//! cache the returned `&'static` reference (a `OnceLock` at the call site
//! is the workspace idiom; the reference itself is then a plain pointer).

use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::sync::Mutex;

/// A monotonically increasing named counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The counter's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` (relaxed; compiled out with the `enabled` feature off).
    /// When the flight recorder is on, the delta is also retained as a
    /// counter event attributable to the ambient trace context.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        {
            self.value.fetch_add(n, Ordering::Relaxed);
            if crate::recorder::is_on() {
                crate::recorder::note_counter(self.name, n);
            }
        }
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A named gauge: a value that can be set or max-merged (used for
/// high-water marks like arena capacity).
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
}

impl Gauge {
    const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The gauge's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Sets the gauge (relaxed; no-op with the `enabled` feature off).
    #[inline]
    pub fn set(&self, v: u64) {
        #[cfg(feature = "enabled")]
        self.value.store(v, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Adds `n` to the gauge (relaxed; no-op with the `enabled` feature
    /// off). Pairs with [`Gauge::sub`] for in-flight style gauges.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        self.value.fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Subtracts `n` from the gauge, saturating at zero (relaxed; no-op
    /// with the `enabled` feature off).
    #[inline]
    pub fn sub(&self, n: u64) {
        #[cfg(feature = "enabled")]
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Raises the gauge to at least `v` (high-water-mark semantics).
    #[inline]
    pub fn record_max(&self, v: u64) {
        #[cfg(feature = "enabled")]
        self.value.fetch_max(v, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(feature = "enabled")]
static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());
#[cfg(feature = "enabled")]
static GAUGES: Mutex<Vec<&'static Gauge>> = Mutex::new(Vec::new());
#[cfg(feature = "enabled")]
static HISTOGRAMS: Mutex<Vec<&'static crate::hist::Histogram>> = Mutex::new(Vec::new());

#[cfg(not(feature = "enabled"))]
static DUMMY_COUNTER: Counter = Counter::new("disabled");
#[cfg(not(feature = "enabled"))]
static DUMMY_GAUGE: Gauge = Gauge::new("disabled");
#[cfg(not(feature = "enabled"))]
static DUMMY_HISTOGRAM: crate::hist::Histogram = crate::hist::Histogram::new("disabled");

/// Returns the process-wide counter named `name`, registering it on first
/// use. The reference is `'static` — cache it at hot call sites.
pub fn counter(name: &'static str) -> &'static Counter {
    #[cfg(feature = "enabled")]
    {
        let mut reg = COUNTERS.lock().unwrap();
        if let Some(c) = reg.iter().find(|c| c.name == name) {
            return c;
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::new(name)));
        reg.push(c);
        c
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        &DUMMY_COUNTER
    }
}

/// Returns the process-wide gauge named `name`, registering it on first
/// use.
pub fn gauge(name: &'static str) -> &'static Gauge {
    #[cfg(feature = "enabled")]
    {
        let mut reg = GAUGES.lock().unwrap();
        if let Some(g) = reg.iter().find(|g| g.name == name) {
            return g;
        }
        let g: &'static Gauge = Box::leak(Box::new(Gauge::new(name)));
        reg.push(g);
        g
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        &DUMMY_GAUGE
    }
}

/// Returns the process-wide histogram named `name`, registering it on
/// first use. The reference is `'static` — cache it at hot call sites.
pub fn histogram(name: &'static str) -> &'static crate::hist::Histogram {
    #[cfg(feature = "enabled")]
    {
        let mut reg = HISTOGRAMS.lock().unwrap();
        if let Some(h) = reg.iter().find(|h| h.name() == name) {
            return h;
        }
        let h: &'static crate::hist::Histogram =
            Box::leak(Box::new(crate::hist::Histogram::new(name)));
        reg.push(h);
        h
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        &DUMMY_HISTOGRAM
    }
}

/// Snapshot of every registered counter as `(name, value)`, registration
/// order.
pub fn counters() -> Vec<(&'static str, u64)> {
    #[cfg(feature = "enabled")]
    {
        COUNTERS
            .lock()
            .unwrap()
            .iter()
            .map(|c| (c.name, c.get()))
            .collect()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

/// Snapshot of every registered gauge as `(name, value)`.
pub fn gauges() -> Vec<(&'static str, u64)> {
    #[cfg(feature = "enabled")]
    {
        GAUGES
            .lock()
            .unwrap()
            .iter()
            .map(|g| (g.name, g.get()))
            .collect()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

/// Snapshot of every registered histogram as `(name, snapshot)`.
pub fn histograms() -> Vec<(&'static str, crate::hist::HistSnapshot)> {
    #[cfg(feature = "enabled")]
    {
        HISTOGRAMS
            .lock()
            .unwrap()
            .iter()
            .map(|h| (h.name(), h.snapshot()))
            .collect()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn counter_identity_and_accumulation() {
        let a = counter("test.registry.a");
        let a2 = counter("test.registry.a");
        assert!(std::ptr::eq(a, a2), "same name resolves to same counter");
        let before = a.get();
        a.incr();
        a.add(4);
        assert_eq!(a.get(), before + 5);
        assert!(counters().iter().any(|&(n, _)| n == "test.registry.a"));
    }

    #[test]
    fn gauge_set_and_max() {
        let g = gauge("test.registry.g");
        g.set(10);
        g.record_max(7);
        assert_eq!(g.get(), 10, "record_max must not lower");
        g.record_max(25);
        assert_eq!(g.get(), 25);
        assert!(gauges()
            .iter()
            .any(|&(n, v)| n == "test.registry.g" && v == 25));
    }
}
