//! Blocked QR factorization (LAPACK `DGEQRF`) and `Q` formation.
//!
//! Substrate routines: the paper's related-work baselines are FT-LU and
//! FT-QR, and the test suites here use QR to manufacture random orthogonal
//! matrices with a known factor structure.

use crate::householder::{larf, larfg, ReflectSide};
use crate::wy::{larfb, larft};
use ft_blas::{Side, Trans};
use ft_matrix::Matrix;

/// Unblocked QR factorization (LAPACK `DGEQR2`) of the `m × n` sub-block
/// of `a` starting at `(k, k)`... applied over columns `k..k+w`.
fn geqr2(a: &mut Matrix, col0: usize, width: usize, tau: &mut [f64]) {
    let m = a.rows();
    let mut v = vec![0.0; m];
    for j in 0..width {
        let c = col0 + j;
        let piv = c; // QR reflector pivots on the diagonal
        if piv >= m {
            break;
        }
        let alpha = a[(piv, c)];
        let mut tail: Vec<f64> = (piv + 1..m).map(|r| a[(r, c)]).collect();
        let refl = larfg(alpha, &mut tail);
        tau[j] = refl.tau;

        let h = m - piv;
        v[0] = 1.0;
        v[1..h].copy_from_slice(&tail);
        // Apply to the remaining columns *within the panel* only; the
        // trailing columns get the blocked update afterwards.
        let ncols = col0 + width - c - 1;
        if ncols > 0 {
            larf(
                ReflectSide::Left,
                &v[..h],
                refl.tau,
                &mut a.view_mut(piv, c + 1, h, ncols),
            );
        }
        a[(piv, c)] = refl.beta;
        for (off, &val) in tail.iter().enumerate() {
            a[(piv + 1 + off, c)] = val;
        }
    }
}

/// Blocked QR factorization in place; returns `tau` (length `min(m, n)`).
///
/// On return the upper triangle of `a` holds `R` and the columns below the
/// diagonal hold the reflector tails.
pub fn geqrf(a: &mut Matrix, nb: usize) -> Vec<f64> {
    let (m, n) = (a.rows(), a.cols());
    let kmax = m.min(n);
    let mut tau = vec![0.0; kmax];
    let nb = nb.max(1);

    let mut k = 0;
    while k < kmax {
        let ib = nb.min(kmax - k);
        // Factorize the panel columns k..k+ib.
        geqr2(a, k, ib, &mut tau[k..k + ib]);

        // Build explicit V for the block update.
        let h = m - k;
        let mut v = Matrix::zeros(h, ib);
        for j in 0..ib {
            v[(j, j)] = 1.0;
            for r in j + 1..h {
                v[(r, j)] = a[(k + r, k + j)];
            }
        }
        let t = larft(&v.as_view(), &tau[k..k + ib]);

        // Apply Hᵀ to the trailing columns.
        let ntrail = n - k - ib;
        if ntrail > 0 {
            larfb(
                Side::Left,
                Trans::Yes,
                &v.as_view(),
                &t.as_view(),
                &mut a.view_mut(k, k + ib, h, ntrail),
            );
        }
        k += ib;
    }
    tau
}

/// Forms the dense `m × m` orthogonal factor `Q` from a packed QR
/// factorization (LAPACK `DORGQR` with `k = min(m, n)` reflectors).
pub fn form_q_qr(packed: &Matrix, tau: &[f64]) -> Matrix {
    let m = packed.rows();
    let mut q = Matrix::identity(m);
    let mut v = vec![0.0; m];
    for j in (0..tau.len()).rev() {
        if tau[j] == 0.0 {
            continue;
        }
        let h = m - j;
        v[0] = 1.0;
        for r in 1..h {
            v[r] = packed[(j + r, j)];
        }
        larf(
            ReflectSide::Left,
            &v[..h],
            tau[j],
            &mut q.view_mut(j, j, h, m - j),
        );
    }
    q
}

/// A Haar-ish random orthogonal matrix: `Q` from the QR factorization of a
/// Gaussian matrix, with the sign convention fixed so the result is
/// deterministic in the seed.
pub fn random_orthogonal(n: usize, seed: u64) -> Matrix {
    let mut g = ft_matrix::random::gaussian(n, n, seed);
    let tau = geqrf(&mut g, 32);
    form_q_qr(&g, &tau)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_matrix::assert_matrix_eq;

    fn check_qr(a0: &Matrix, nb: usize) {
        let (m, n) = (a0.rows(), a0.cols());
        let mut a = a0.clone();
        let tau = geqrf(&mut a, nb);
        assert_eq!(tau.len(), m.min(n));

        // R upper triangular
        let r = Matrix::from_fn(m, n, |i, j| if i <= j { a[(i, j)] } else { 0.0 });
        let q = form_q_qr(&a, &tau);

        // Q orthogonal
        let mut qtq = Matrix::identity(m);
        ft_blas::gemm(
            Trans::Yes,
            Trans::No,
            1.0,
            &q.as_view(),
            &q.as_view(),
            -1.0,
            &mut qtq.as_view_mut(),
        );
        assert!(
            qtq.max_abs() < 1e-13 * m as f64,
            "QᵀQ − I = {}",
            qtq.max_abs()
        );

        // A = Q·R
        let mut qr = a0.clone();
        ft_blas::gemm(
            Trans::No,
            Trans::No,
            -1.0,
            &q.as_view(),
            &r.as_view(),
            1.0,
            &mut qr.as_view_mut(),
        );
        assert!(
            qr.max_abs() < 1e-12 * a0.max_abs().max(1.0),
            "A − QR = {}",
            qr.max_abs()
        );
    }

    #[test]
    fn qr_square_tall_wide() {
        check_qr(&ft_matrix::random::uniform(20, 20, 1), 5);
        check_qr(&ft_matrix::random::uniform(30, 12, 2), 5);
        check_qr(&ft_matrix::random::uniform(12, 30, 3), 4);
        check_qr(&ft_matrix::random::uniform(17, 17, 4), 32); // nb > n
        check_qr(&ft_matrix::random::uniform(16, 16, 5), 1); // fully unblocked
    }

    #[test]
    fn blocked_matches_unblocked() {
        let a0 = ft_matrix::random::uniform(18, 18, 6);
        let mut a1 = a0.clone();
        let tau1 = geqrf(&mut a1, 1);
        let mut a4 = a0.clone();
        let tau4 = geqrf(&mut a4, 4);
        assert_matrix_eq(&a1, &a4, 1e-11, "packed QR, nb=1 vs nb=4");
        for (x, y) in tau1.iter().zip(&tau4) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn random_orthogonal_is_orthogonal() {
        let q = random_orthogonal(25, 11);
        let mut qtq = Matrix::identity(25);
        ft_blas::gemm(
            Trans::Yes,
            Trans::No,
            1.0,
            &q.as_view(),
            &q.as_view(),
            -1.0,
            &mut qtq.as_view_mut(),
        );
        assert!(qtq.max_abs() < 1e-13);
        // deterministic
        let q2 = random_orthogonal(25, 11);
        assert_eq!(q, q2);
    }
}
