//! FTC010 clean fixture: the knob read here is declared by the driving
//! test's registry and mirrored in its README tokens, so all four
//! drift directions stay silent.

pub fn workers() -> Option<usize> {
    env_knob::usize_or("FT_FIXTURE_DECLARED_KNOB", 4).into()
}
