//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Detection threshold** — the paper prescribes "2–3 orders of
//!    magnitude above machine epsilon". Sweep the factor and measure
//!    false positives on clean runs and misses/damage for fault
//!    magnitudes spanning twelve decades.
//! 2. **Reverse computation vs re-encoding** — recovery could instead
//!    recompute the checksums from scratch every iteration (no reversal
//!    machinery). Compare the simulated cost of both policies.
//! 3. **Q-checksum placement** — the paper overlaps the Q-checksum GEMVs
//!    on the idle host; serializing them on the device stream shows what
//!    the overlap buys.

use ft_bench::{pct, sci, Args, Table};
use ft_fault::{Fault, FaultPlan};
use ft_hessenberg::verify::ResidualReport;
use ft_hessenberg::{ft_gehrd_hybrid, gehrd_hybrid, FtConfig, HybridConfig, ThresholdPolicy};
use ft_hybrid::{CostModel, ExecMode, HybridCtx, OpClass, Work};
use ft_matrix::Matrix;

fn full_ctx() -> HybridCtx {
    HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2)
}

fn timing_ctx() -> HybridCtx {
    HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::TimingOnly, 2)
}

fn threshold_ablation(args: &Args) {
    println!("Ablation 1 — detection threshold factor (n = 128, nb = 32)\n");
    let n = 128;
    let a = ft_matrix::random::uniform(n, n, args.seed);
    let magnitudes = [1e-12, 1e-8, 1e-4, 1.0];

    let mut t = Table::new(vec![
        "factor",
        "false positives (clean)",
        "eps=1e-12: det/resid",
        "eps=1e-8: det/resid",
        "eps=1e-4: det/resid",
        "eps=1: det/resid",
    ]);
    for factor in [1.0, 10.0, 100.0, 1e4, 1e6, 1e8] {
        let cfg = FtConfig {
            threshold: ThresholdPolicy::Scaled { factor },
            ..FtConfig::with_nb(32)
        };
        let clean = ft_gehrd_hybrid(&a, &cfg, &mut full_ctx(), &mut FaultPlan::none());
        let fp = clean.report.recoveries.len();

        let mut cells = vec![format!("{factor:.0e}"), fp.to_string()];
        for &mag in &magnitudes {
            let mut plan = FaultPlan::one(1, Fault::add(70, 90, mag));
            let out = ft_gehrd_hybrid(&a, &cfg, &mut full_ctx(), &mut plan);
            let detected = !out.report.recoveries.is_empty();
            let f = out.result.unwrap();
            let r = ResidualReport::compute(&a, &f.q(), &f.h());
            cells.push(format!(
                "{}/{}",
                if detected { "det" } else { "miss" },
                sci(r.factorization)
            ));
        }
        t.row(cells);
    }
    println!("{}", t.render());
    println!(
        "reading: factor 1 trips on roundoff (false positives); huge factors miss\n\
         real faults — but a missed fault below threshold also leaves no damage\n\
         (residual stays at the clean level). The paper's 1e2 sits in the safe band.\n"
    );
}

fn recovery_policy_ablation() {
    println!("Ablation 2 — reverse computation vs per-iteration re-encoding (nb = 32)\n");
    let mut t = Table::new(vec![
        "N",
        "baseline (s)",
        "FT + reverse, no fault (s)",
        "FT + reverse, 1 fault (s)",
        "FT + re-encode every iter (s)",
        "re-encode extra vs reverse",
    ]);
    for &n in &[1022usize, 4030, 10110] {
        let a = Matrix::zeros(n, n);
        let nb = 32;
        let iters = (n - 2).div_ceil(nb);

        let base = gehrd_hybrid(
            &a,
            &HybridConfig { nb },
            &mut timing_ctx(),
            &mut FaultPlan::none(),
        )
        .sim_seconds;
        let ft0 = ft_gehrd_hybrid(
            &a,
            &FtConfig::with_nb(nb),
            &mut timing_ctx(),
            &mut FaultPlan::none(),
        )
        .report
        .sim_seconds;
        let ft1 = {
            let mut plan = FaultPlan::one(iters / 2, Fault::add(n / 2, n / 2 + 1, 1.0));
            ft_gehrd_hybrid(&a, &FtConfig::with_nb(nb), &mut timing_ctx(), &mut plan)
                .report
                .sim_seconds
        };
        // Re-encode policy: the FT pipeline without reversal machinery
        // must rebuild both checksum vectors from the data every
        // iteration (two O(n²) device passes) to keep them localizable.
        let reencode_cost: f64 = (0..iters)
            .map(|_| {
                CostModel::k40c_sandy_bridge()
                    .seconds(OpClass::DeviceVector, Work::Flops(4.0 * (n * n) as f64))
            })
            .sum();
        let ft_reencode = ft0 + reencode_cost;

        t.row(vec![
            n.to_string(),
            format!("{base:.3}"),
            format!("{ft0:.3}"),
            format!("{ft1:.3}"),
            format!("{ft_reencode:.3}"),
            pct((ft_reencode - ft0) / base),
        ]);
    }
    println!("{}", t.render());
    println!(
        "reading: per-iteration re-encoding costs O(N²) × O(N/nb) iterations = O(N³/nb)\n\
         extra — a constant-factor tax that does NOT vanish with N, unlike the\n\
         reverse-computation design whose recovery cost is paid only when a fault\n\
         actually occurs.\n"
    );
}

fn q_placement_ablation() {
    println!("Ablation 3 — Q-checksum placement (host overlapped vs device serial)\n");
    let mut t = Table::new(vec![
        "N",
        "host overlapped (s)",
        "device serialized (s)",
        "penalty",
    ]);
    for &n in &[1022usize, 4030, 10110] {
        let a = Matrix::zeros(n, n);
        let host = ft_gehrd_hybrid(
            &a,
            &FtConfig::with_nb(32),
            &mut timing_ctx(),
            &mut FaultPlan::none(),
        )
        .report
        .sim_seconds;
        let cfg = FtConfig {
            q_checksums_on_host: false,
            ..FtConfig::with_nb(32)
        };
        let device = ft_gehrd_hybrid(&a, &cfg, &mut timing_ctx(), &mut FaultPlan::none())
            .report
            .sim_seconds;
        t.row(vec![
            n.to_string(),
            format!("{host:.4}"),
            format!("{device:.4}"),
            pct((device - host) / host),
        ]);
    }
    println!("{}", t.render());
    println!(
        "reading: the host-side GEMVs hide completely under device compute (the CPU\n\
         is otherwise idle during the trailing update — exactly the paper's §IV-E\n\
         argument); putting them on the device stream adds straight to the critical path.\n"
    );
}

fn checksum_precision_ablation(args: &Args) {
    println!("Ablation 4 — checksum accumulation scheme (paper reference 27)\n");
    println!("Residual |Sre − Sce| drift after a clean factorization: the noise floor");
    println!("the detection threshold must clear. Lower drift ⇒ smaller detectable ε.\n");
    let mut t = Table::new(vec![
        "N",
        "Naive drift",
        "Superblock drift",
        "Compensated drift",
    ]);
    for &n in &[128usize, 512, 1022] {
        let a = ft_matrix::random::uniform(n, n, args.seed + n as u64);
        let mut cells = vec![n.to_string()];
        for scheme in [
            ft_blas::SumScheme::Naive,
            ft_blas::SumScheme::Superblock,
            ft_blas::SumScheme::Compensated,
        ] {
            let cfg = FtConfig {
                checksum_scheme: scheme,
                ..FtConfig::with_nb(32)
            };
            let out = ft_gehrd_hybrid(&a, &cfg, &mut full_ctx(), &mut FaultPlan::none());
            // The mismatch the detector would have seen at the end.
            let drift = out
                .report
                .recoveries
                .first()
                .map(|r| r.mismatch)
                .unwrap_or(0.0);
            // Clean runs have no recovery events; recompute the final
            // aggregate drift directly from a fresh encode + compare:
            let _ = drift;
            let f = out.result.unwrap();
            // Proxy: re-encode the final H+Q storage and compare aggregates
            // (the drift of one full encode/sum pass under the scheme).
            let ax = ft_hessenberg::ExtMatrix::encode_with(&f.packed, scheme);
            cells.push(sci((ax.sre() - ax.sce()).abs()));
        }
        t.row(cells);
    }
    println!("{}", t.render());
    println!(
        "reading: the superblock family (reference 27) trims the aggregate noise\n\
         floor at streaming cost (the win grows with N); compensated summation\n\
         flattens it to O(eps) regardless of N — each step allows a\n\
         proportionally tighter detection threshold.\n"
    );
}

fn main() {
    let args = Args::from_env();
    threshold_ablation(&args);
    recovery_policy_ablation();
    q_placement_ablation();
    checksum_precision_ablation(&args);
}
