//! FTC012 clean fixture: every name the driving test declares is
//! emitted (one counter, one histogram), so the bidirectional registry
//! check stays silent.

pub fn tick(us: u64) {
    counter("fixture.used").incr();
    histogram("fixture.latency_us").record(us);
}
