//! FTC007 fixture: a `#[target_feature]` kernel with a scalar twin but
//! no runtime-dispatch site mentioning `Isa` or feature detection.

pub fn widen_scalar(x: &mut [f64]) {
    for v in x {
        *v *= 2.0;
    }
}

#[target_feature(enable = "avx2")]
// SAFETY: caller checked the avx2 feature.
pub unsafe fn widen_avx2(x: &mut [f64]) {
    widen_scalar(x);
}

pub fn caller(x: &mut [f64]) {
    // Calls the kernel but never consults the resolved ISA: an
    // unguarded entry onto a maybe-unsupported CPU.
    // SAFETY: (deliberately bogus fixture claim)
    unsafe { widen_avx2(x) };
}
