//! Machine-readable bench results: a dependency-free JSON writer that the
//! bench targets use to drop `BENCH_<stem>.json` files at the repo root
//! (CI uploads them as artifacts; the numbers back the threading claims
//! in DESIGN.md).
//!
//! The workspace deliberately carries no serde, so the emitter is a small
//! hand-rolled one: flat records of string/number/bool fields, which is
//! all a bench summary needs.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One value in a bench record.
#[derive(Clone, Debug)]
pub enum Value {
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// An unsigned integer, kept exact (no float rounding).
    Int(u64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

/// One flat JSON object, field order preserved.
#[derive(Clone, Debug, Default)]
pub struct Record {
    fields: Vec<(String, Value)>,
}

impl Record {
    /// Empty record.
    pub fn new() -> Self {
        Record::default()
    }

    /// Adds a numeric field (builder style).
    pub fn num(mut self, key: &str, v: f64) -> Self {
        self.fields.push((key.to_string(), Value::Num(v)));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, v: u64) -> Self {
        self.fields.push((key.to_string(), Value::Int(v)));
        self
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, v: &str) -> Self {
        self.fields
            .push((key.to_string(), Value::Str(v.to_string())));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, v: bool) -> Self {
        self.fields.push((key.to_string(), Value::Bool(v)));
        self
    }

    /// Looks up a field by key (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// The record's result class: `true` when it carries `"smoke": true`.
    /// Records without the field (e.g. hand-written seeds) count as full
    /// results, which the merge logic below protects from smoke runs.
    pub fn is_smoke(&self) -> bool {
        matches!(self.get("smoke"), Some(Value::Bool(true)))
    }

    /// The record's merge class: result class (smoke vs full) plus the
    /// machine tags (`isa`, `cores`). Untagged records — hand-written
    /// seeds, results from before the tags existed — key to `("", 0)`,
    /// so they form their own class and old files keep merging as they
    /// always did.
    pub fn merge_key(&self) -> (bool, &str, u64) {
        let isa = match self.get("isa") {
            Some(Value::Str(s)) => s.as_str(),
            _ => "",
        };
        let cores = match self.get("cores") {
            Some(Value::Int(c)) => *c,
            _ => 0,
        };
        (self.is_smoke(), isa, cores)
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn emit_value(v: &Value, out: &mut String) {
    match v {
        Value::Num(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        Value::Num(_) => out.push_str("null"),
        Value::Int(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Str(s) => escape(s, out),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

/// Serializes `records` as `{"bench": <stem>, "records": [...]}`.
pub fn to_json(stem: &str, records: &[Record]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": ");
    escape(stem, &mut out);
    out.push_str(",\n  \"records\": [\n");
    for (ri, rec) in records.iter().enumerate() {
        out.push_str("    {");
        for (fi, (key, value)) in rec.fields.iter().enumerate() {
            if fi > 0 {
                out.push_str(", ");
            }
            escape(key, &mut out);
            out.push_str(": ");
            emit_value(value, &mut out);
        }
        out.push('}');
        if ri + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Reading back what we wrote: a parser for exactly the JSON dialect the
// emitter above produces (one object, a string `bench` field, a flat
// `records` array of string/number/bool/null fields). The workspace
// carries no serde on purpose; this is the read half that makes bench
// files mergeable instead of last-writer-wins.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_string(&mut self) -> Option<String> {
        self.skip_ws();
        if !self.eat(b'"') {
            return None;
        }
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos)?;
            self.pos += 1;
            match b {
                b'"' => return Some(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos)?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4)?;
                            self.pos += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                // The emitter writes multi-byte UTF-8 verbatim; pass the
                // continuation bytes through unchanged.
                _ => {
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while self
                        .bytes
                        .get(end)
                        .is_some_and(|&c| c != b'"' && c != b'\\')
                    {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).ok()?);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_value(&mut self) -> Option<Value> {
        self.skip_ws();
        match *self.bytes.get(self.pos)? {
            b'"' => Some(Value::Str(self.parse_string()?)),
            b't' => self.keyword("true", Value::Bool(true)),
            b'f' => self.keyword("false", Value::Bool(false)),
            // `null` is how the emitter spells a non-finite number.
            b'n' => self.keyword("null", Value::Num(f64::NAN)),
            _ => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|&b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                let tok = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
                if !tok.contains(['.', 'e', 'E']) {
                    if let Ok(i) = tok.parse::<u64>() {
                        return Some(Value::Int(i));
                    }
                }
                tok.parse::<f64>().ok().map(Value::Num)
            }
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Option<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Some(v)
        } else {
            None
        }
    }

    fn parse_record(&mut self) -> Option<Record> {
        if !self.eat(b'{') {
            return None;
        }
        let mut rec = Record::new();
        if self.eat(b'}') {
            return Some(rec);
        }
        loop {
            let key = self.parse_string()?;
            if !self.eat(b':') {
                return None;
            }
            let value = self.parse_value()?;
            rec.fields.push((key, value));
            if self.eat(b'}') {
                return Some(rec);
            }
            if !self.eat(b',') {
                return None;
            }
        }
    }
}

/// Parses a `BENCH_<stem>.json` file produced by [`to_json`] back into
/// its records. `None` on anything malformed — callers treat that as "no
/// previous results" rather than guessing.
pub fn parse_bench_json(s: &str) -> Option<Vec<Record>> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    if !p.eat(b'{') {
        return None;
    }
    let mut records: Option<Vec<Record>> = None;
    if p.eat(b'}') {
        return records;
    }
    loop {
        let key = p.parse_string()?;
        if !p.eat(b':') {
            return None;
        }
        if key == "records" {
            if !p.eat(b'[') {
                return None;
            }
            let mut out = Vec::new();
            if !p.eat(b']') {
                loop {
                    out.push(p.parse_record()?);
                    if p.eat(b']') {
                        break;
                    }
                    if !p.eat(b',') {
                        return None;
                    }
                }
            }
            records = Some(out);
        } else {
            p.parse_value()?;
        }
        if p.eat(b'}') {
            return records;
        }
        if !p.eat(b',') {
            return None;
        }
    }
}

/// Merges `incoming` into `existing`, by [`Record::merge_key`]: an
/// incoming batch replaces the stored records *of its own classes only*
/// — same result class (smoke vs full) *and* same machine tags
/// (`isa`, `cores`) — and leaves every other class untouched. This is
/// what lets CI's fast `FT_BENCH_SMOKE=1` sweeps land alongside — never
/// over — the slow full-size results committed to the repo, and lets
/// results from different machines (an AVX-512 box and a NEON one, say)
/// coexist in the same file.
pub fn merge_records(existing: &[Record], incoming: &[Record]) -> Vec<Record> {
    let incoming_keys: Vec<_> = incoming.iter().map(Record::merge_key).collect();
    let mut out: Vec<Record> = existing
        .iter()
        .filter(|r| !incoming_keys.contains(&r.merge_key()))
        .cloned()
        .collect();
    out.extend(incoming.iter().cloned());
    // Full results first: they are the headline numbers readers look for.
    // (Stable sort: within a class, stored order is preserved.)
    out.sort_by_key(Record::is_smoke);
    out
}

/// Repo root (two levels up from this crate's manifest).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// Writes `BENCH_<stem>.json` at the repo root, merging with any previous
/// contents via [`merge_records`], and returns its path. Failures are
/// reported but non-fatal — a bench run must never die on a read-only
/// checkout.
pub fn write_bench_json(stem: &str, records: &[Record]) -> Option<PathBuf> {
    let path = repo_root().join(format!("BENCH_{stem}.json"));
    let merged = match std::fs::read_to_string(&path).ok().as_deref() {
        Some(prev) => match parse_bench_json(prev) {
            Some(existing) => merge_records(&existing, records),
            None => {
                eprintln!(
                    "BENCH_{stem}.json: existing file unparseable, overwriting instead of merging"
                );
                records.to_vec()
            }
        },
        None => records.to_vec(),
    };
    match std::fs::write(&path, to_json(stem, &merged)) {
        Ok(()) => {
            println!("wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("BENCH_{stem}.json not written: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_and_escaping() {
        let records = vec![
            Record::new()
                .str("kernel", "gemm \"n=128\"")
                .num("ms", 1.5)
                .int("dispatches", 3)
                .bool("smoke", true),
            Record::new().num("bad", f64::NAN),
        ];
        let s = to_json("demo", &records);
        assert!(s.contains("\"bench\": \"demo\""));
        assert!(s.contains("\"kernel\": \"gemm \\\"n=128\\\"\""));
        assert!(s.contains("\"ms\": 1.5"));
        assert!(s.contains("\"dispatches\": 3"));
        assert!(s.contains("\"smoke\": true"));
        assert!(s.contains("\"bad\": null"));
        // Balanced braces/brackets — cheap well-formedness check.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn parse_roundtrips_what_to_json_emits() {
        let records = vec![
            Record::new()
                .str("kernel", "gemm \"n=128\"\tπ")
                .num("ms", 1.5)
                .int("dispatches", 3)
                .bool("smoke", true),
            Record::new().num("bad", f64::NAN).bool("flag", false),
            Record::new(),
        ];
        let parsed = parse_bench_json(&to_json("demo", &records)).expect("must parse");
        assert_eq!(parsed.len(), 3);
        assert!(matches!(
            parsed[0].get("kernel"),
            Some(Value::Str(s)) if s == "gemm \"n=128\"\tπ"
        ));
        assert!(matches!(parsed[0].get("ms"), Some(Value::Num(x)) if *x == 1.5));
        assert!(matches!(parsed[0].get("dispatches"), Some(Value::Int(3))));
        assert!(parsed[0].is_smoke());
        assert!(matches!(parsed[1].get("bad"), Some(Value::Num(x)) if x.is_nan()));
        assert!(!parsed[1].is_smoke());
        assert!(parsed[2].get("anything").is_none());
        // Second roundtrip is byte-stable.
        let again = to_json("demo", &parsed);
        assert_eq!(again, to_json("demo", &parse_bench_json(&again).unwrap()));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_bench_json("").is_none());
        assert!(parse_bench_json("not json").is_none());
        assert!(parse_bench_json("{\"bench\": \"x\"}").is_none()); // no records
        assert!(parse_bench_json("{\"records\": [{]}").is_none());
    }

    #[test]
    fn smoke_runs_never_clobber_full_records() {
        let full = [
            Record::new()
                .str("kind", "backend")
                .int("n", 1024)
                .bool("smoke", false),
            Record::new()
                .str("kind", "overhead")
                .int("n", 512)
                .bool("smoke", false),
        ];
        let smoke_old = [Record::new()
            .str("kind", "backend")
            .int("n", 256)
            .bool("smoke", true)];
        let mut stored: Vec<Record> = full.iter().chain(&smoke_old).cloned().collect();

        // A new smoke batch replaces only the old smoke records.
        let smoke_new = [Record::new()
            .str("kind", "backend")
            .int("n", 128)
            .bool("smoke", true)];
        stored = merge_records(&stored, &smoke_new);
        assert_eq!(stored.len(), 3);
        assert_eq!(stored.iter().filter(|r| !r.is_smoke()).count(), 2);
        assert!(stored
            .iter()
            .any(|r| matches!(r.get("n"), Some(Value::Int(128)))));
        assert!(!stored
            .iter()
            .any(|r| matches!(r.get("n"), Some(Value::Int(256)))));

        // A new full batch replaces only the full records, keeping smoke.
        let full_new = [Record::new()
            .str("kind", "backend")
            .int("n", 2048)
            .bool("smoke", false)];
        stored = merge_records(&stored, &full_new);
        assert_eq!(stored.len(), 2);
        assert!(stored
            .iter()
            .any(|r| matches!(r.get("n"), Some(Value::Int(2048)))));
        assert!(stored
            .iter()
            .any(|r| matches!(r.get("n"), Some(Value::Int(128)))));
        // Full results sort ahead of smoke ones.
        assert!(!stored[0].is_smoke() && stored[1].is_smoke());

        // Records without a smoke field count as full and are protected
        // from smoke batches.
        let seed = [Record::new().str("kind", "hand_seed")];
        let merged = merge_records(&seed, &smoke_new);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn merge_key_separates_machines() {
        let avx = Record::new()
            .int("n", 1024)
            .bool("smoke", false)
            .str("isa", "avx2+fma")
            .int("cores", 16);
        let neon = Record::new()
            .int("n", 1024)
            .bool("smoke", false)
            .str("isa", "neon")
            .int("cores", 8);
        let untagged = Record::new().int("n", 512).bool("smoke", false);
        let stored = vec![avx.clone(), neon.clone(), untagged.clone()];

        // A fresh batch from the AVX box replaces only the AVX records;
        // the NEON and untagged legacy results survive.
        let avx_new = [Record::new()
            .int("n", 2048)
            .bool("smoke", false)
            .str("isa", "avx2+fma")
            .int("cores", 16)];
        let merged = merge_records(&stored, &avx_new);
        assert_eq!(merged.len(), 3);
        assert!(merged
            .iter()
            .any(|r| matches!(r.get("n"), Some(Value::Int(2048)))));
        assert!(!merged
            .iter()
            .any(|r| matches!(r.get("n"), Some(Value::Int(1024)))
                && matches!(r.get("isa"), Some(Value::Str(s)) if s == "avx2+fma")));
        assert!(merged
            .iter()
            .any(|r| matches!(r.get("isa"), Some(Value::Str(s)) if s == "neon")));

        // An untagged batch replaces only the untagged legacy class.
        let legacy_new = [Record::new().int("n", 768).bool("smoke", false)];
        let merged = merge_records(&merged, &legacy_new);
        assert_eq!(merged.len(), 3);
        assert!(merged
            .iter()
            .any(|r| matches!(r.get("n"), Some(Value::Int(768)))));
        assert!(!merged
            .iter()
            .any(|r| matches!(r.get("n"), Some(Value::Int(512)))));

        // Smoke and full of the same machine are distinct classes.
        let avx_smoke = [Record::new()
            .int("n", 64)
            .bool("smoke", true)
            .str("isa", "avx2+fma")
            .int("cores", 16)];
        let merged = merge_records(&merged, &avx_smoke);
        assert_eq!(merged.len(), 4);
        assert!(merged
            .iter()
            .any(|r| matches!(r.get("n"), Some(Value::Int(2048)))));
    }
}
