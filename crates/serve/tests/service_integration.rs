//! End-to-end service behavior: deadlines, FT-aware escalated retries,
//! priority scheduling, and both shutdown modes, all through the public
//! API with real FT reductions underneath.

use ft_fault::{Fault, FaultPlan};
use ft_hessenberg::{FailureReason, FtConfig};
use ft_hybrid::ExecMode;
use ft_serve::{
    FaultSpec, JobSpec, JobStatus, Priority, RetryPolicy, Service, ServiceConfig, Shutdown,
};
use std::time::Duration;

fn spec(n: usize, seed: u64) -> JobSpec {
    let mut s = JobSpec::new(ft_matrix::random::uniform(n, n, seed));
    s.cfg = FtConfig::with_nb(8);
    s
}

/// A job that deterministically comes back unrecoverable on its first
/// run: zero in-run recovery budget plus an injected fault means the
/// first detection exhausts recovery immediately.
fn weak_faulted_spec(n: usize, seed: u64) -> JobSpec {
    let mut s = spec(n, seed);
    s.cfg.max_recovery_attempts = 0;
    s.faults = FaultSpec::Plan(FaultPlan::one(1, Fault::add(n / 2, n / 2 + 1, 0.41)));
    s
}

fn small_service(workers: usize) -> Service {
    Service::start(ServiceConfig {
        workers,
        queue_capacity: 16,
        ..ServiceConfig::default()
    })
}

#[test]
fn escalated_retry_rescues_weak_faulted_job() {
    let svc = small_service(1);
    let r = svc.try_submit(weak_faulted_spec(48, 3)).unwrap().wait();
    assert_eq!(r.status, JobStatus::Completed, "{:?}", r.report);
    assert!(
        r.attempts >= 2,
        "first run must fail, escalation must rescue (attempts = {})",
        r.attempts
    );
    assert!(r.result.is_some());
    let stats = svc.shutdown(Shutdown::Drain);
    assert!(stats.retries >= 1, "retry counter must record the re-run");
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 0);
}

#[test]
fn retry_escalates_timing_only_to_full() {
    let svc = small_service(1);
    let mut s = weak_faulted_spec(48, 5);
    s.exec = ExecMode::TimingOnly;
    let r = svc.try_submit(s).unwrap().wait();
    // A timing-only run returns no factorization; the escalated retry
    // switches to Full, so a rescued job carries a real one.
    assert_eq!(r.status, JobStatus::Completed, "{:?}", r.report);
    assert!(r.attempts >= 2);
    assert!(
        r.result.is_some(),
        "escalation must upgrade TimingOnly to Full numerics"
    );
    svc.shutdown(Shutdown::Drain);
}

#[test]
fn exhausted_retries_fail_with_report() {
    let svc = Service::start(ServiceConfig {
        workers: 1,
        retry: RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        },
        ..ServiceConfig::default()
    });
    let r = svc.try_submit(weak_faulted_spec(48, 7)).unwrap().wait();
    match r.status {
        JobStatus::Failed(FailureReason::RecoveryExhausted { iteration }) => {
            assert!(iteration >= 1);
        }
        other => panic!("expected RecoveryExhausted, got {other:?}"),
    }
    assert_eq!(r.attempts, 1, "max_retries = 0 means exactly one run");
    assert!(
        r.report.is_some(),
        "failed jobs must carry their last report"
    );
    let stats = svc.shutdown(Shutdown::Drain);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.retries, 0);
}

#[test]
fn deadline_missed_while_queued() {
    // One worker pinned on a long job; a short-deadline job queued behind
    // it must resolve DeadlineMissed without ever running.
    let svc = small_service(1);
    let blocker = svc.try_submit(spec(96, 11)).unwrap();
    let mut hurried = spec(16, 13);
    hurried.deadline = Some(Duration::from_micros(1));
    let r = svc.try_submit(hurried).unwrap().wait();
    assert_eq!(r.status, JobStatus::DeadlineMissed);
    assert_eq!(r.attempts, 0, "expired jobs must not burn executor time");
    assert!(r.report.is_none());
    assert_eq!(blocker.wait().status, JobStatus::Completed);
    let stats = svc.shutdown(Shutdown::Drain);
    assert_eq!(stats.deadline_missed, 1);
}

#[test]
fn default_deadline_applies_to_specs_without_one() {
    let svc = Service::start(ServiceConfig {
        workers: 1,
        default_deadline: Some(Duration::from_micros(1)),
        ..ServiceConfig::default()
    });
    // Pin the worker so the defaulted job expires in the queue.
    let blocker = svc.try_submit(spec(64, 17)).unwrap();
    let r = svc.try_submit(spec(16, 19)).unwrap().wait();
    assert_eq!(r.status, JobStatus::DeadlineMissed);
    let _ = blocker.wait();
    svc.shutdown(Shutdown::Drain);
}

#[test]
fn high_priority_overtakes_queued_low_priority() {
    let svc = small_service(1);
    let blocker = svc.try_submit(spec(96, 23)).unwrap();
    let mut low = spec(16, 29);
    low.priority = Priority::Low;
    let low_h = svc.try_submit(low).unwrap();
    let mut high = spec(16, 31);
    high.priority = Priority::High;
    let high_h = svc.try_submit(high).unwrap();

    let _ = blocker.wait();
    let high_r = high_h.wait();
    let low_r = low_h.wait();
    assert_eq!(high_r.status, JobStatus::Completed);
    assert_eq!(low_r.status, JobStatus::Completed);
    assert!(
        high_r.total_us <= low_r.total_us,
        "high ({} us) was submitted before low finished queueing yet \
         completed after it ({} us)",
        high_r.total_us,
        low_r.total_us
    );
    svc.shutdown(Shutdown::Drain);
}

#[test]
fn drain_shutdown_runs_everything_queued() {
    let svc = small_service(2);
    let handles: Vec<_> = (0..6)
        .map(|i| svc.try_submit(spec(24, 100 + i)).unwrap())
        .collect();
    let stats = svc.shutdown(Shutdown::Drain);
    assert_eq!(stats.completed, 6, "drain must run every queued job");
    assert_eq!(stats.canceled, 0);
    for h in handles {
        assert_eq!(h.wait().status, JobStatus::Completed);
    }
}

#[test]
fn submitting_after_shutdown_is_rejected() {
    let svc = small_service(1);
    let inner_handle = svc.try_submit(spec(16, 41)).unwrap();
    let _ = inner_handle.wait();
    // Shutdown consumes the service; use a second one to observe Closed
    // through the blocking submit path racing a drain.
    let svc2 = small_service(1);
    let q_probe = {
        let q: &ft_serve::BoundedQueue<u32> = &ft_serve::BoundedQueue::new(1);
        q.close();
        q.try_push(ft_serve::Priority::Normal, 1).unwrap_err().0
    };
    assert_eq!(q_probe, ft_serve::SubmitError::Closed);
    svc.shutdown(Shutdown::Drain);
    svc2.shutdown(Shutdown::Abort);
}

#[test]
fn stats_conserve_jobs_under_mixed_outcomes() {
    let svc = small_service(2);
    let mut handles = Vec::new();
    handles.push(svc.try_submit(weak_faulted_spec(48, 43)).unwrap());
    for i in 0..4 {
        handles.push(svc.try_submit(spec(24, 200 + i)).unwrap());
    }
    let mut expired = spec(16, 47);
    expired.deadline = Some(Duration::ZERO);
    handles.push(svc.try_submit(expired).unwrap());

    for h in handles {
        let _ = h.wait();
    }
    let stats = svc.shutdown(Shutdown::Drain);
    assert_eq!(stats.submitted, 6);
    assert_eq!(
        stats.terminal(),
        6,
        "every admitted job must reach exactly one terminal state: {stats:?}"
    );
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.in_flight, 0);
}
