//! Job vocabulary: what callers submit and what they get back.

use crate::oneshot::OneShot;
use ft_fault::{CampaignConfig, FaultPlan, Moment, Region};
use ft_hessenberg::{FailureReason, FtConfig, FtReport, HessFactorization};
use ft_hybrid::ExecMode;
use ft_matrix::Matrix;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Priority class of a job. Scheduling is strict: a higher class is always
/// served before a lower one; FIFO order holds *within* a class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive jobs, served first.
    High,
    /// The default class.
    Normal,
    /// Batch/background work, served when nothing else is queued.
    Low,
}

impl Priority {
    /// All classes, highest first (the queue's lane order).
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// Lane index: 0 = high, 2 = low.
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// Where a job's injected faults come from.
#[derive(Clone, Debug, Default)]
pub enum FaultSpec {
    /// Fault-free execution.
    #[default]
    None,
    /// An explicit plan (tests, targeted experiments).
    Plan(FaultPlan),
    /// One cell of a seeded fault campaign: the plan is derived
    /// deterministically per job via [`CampaignConfig::trial`], so a job
    /// spec carries the (cheap, cloneable) campaign description instead of
    /// a materialized plan.
    Campaign {
        /// The campaign description (n/nb/seed/magnitude).
        config: CampaignConfig,
        /// Region to strike.
        region: Region,
        /// Moment to strike at.
        moment: Moment,
        /// Trial index within the cell.
        trial_index: usize,
    },
}

impl FaultSpec {
    /// Builds the per-run plan. Campaign cells that do not exist at the
    /// requested moment (e.g. Area 1 at the very beginning) degrade to a
    /// fault-free plan.
    pub fn materialize(&self) -> FaultPlan {
        match self {
            FaultSpec::None => FaultPlan::none(),
            FaultSpec::Plan(p) => p.clone(),
            FaultSpec::Campaign {
                config,
                region,
                moment,
                trial_index,
            } => config
                .trial(*region, *moment, *trial_index)
                .map(|t| t.plan)
                .unwrap_or_else(FaultPlan::none),
        }
    }
}

/// Everything needed to run one reduction job.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// The input matrix (square).
    pub matrix: Matrix,
    /// FT driver configuration. The `backend` field is overridden by the
    /// executor's per-worker backend; everything else is honored.
    pub cfg: FtConfig,
    /// Simulator execution mode. `TimingOnly` jobs cost almost nothing
    /// and return no factorization; retries escalate them to `Full`.
    pub exec: ExecMode,
    /// Fault injection for this job.
    pub faults: FaultSpec,
    /// Priority class.
    pub priority: Priority,
    /// Deadline relative to submission; `None` uses the service default.
    /// A job that is still queued (or between retry attempts) past its
    /// deadline completes with [`JobStatus::DeadlineMissed`].
    pub deadline: Option<Duration>,
}

impl JobSpec {
    /// A fault-free, normal-priority job with default FT configuration.
    pub fn new(matrix: Matrix) -> JobSpec {
        JobSpec {
            matrix,
            cfg: FtConfig::default(),
            exec: ExecMode::Full,
            faults: FaultSpec::None,
            priority: Priority::Normal,
            deadline: None,
        }
    }

    /// Admission-time validation: catches specs the FT driver would
    /// reject (panic) at run time, so a malformed submission costs the
    /// caller an error instead of a wedged executor worker.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.matrix.rows() != self.matrix.cols() {
            return Err("matrix must be square");
        }
        if self.matrix.rows() < 2 {
            return Err("matrix must be at least 2x2");
        }
        if self.cfg.nb == 0 {
            return Err("panel width nb must be >= 1");
        }
        Ok(())
    }
}

/// Unique job identifier (per service instance, submission order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// Terminal state of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// The run verified clean (possibly after recoveries and/or retries).
    Completed,
    /// Every attempt reported unrecoverable corruption; the last reason.
    Failed(FailureReason),
    /// The deadline passed before the job could run (or between retry
    /// attempts).
    DeadlineMissed,
    /// The service was shut down with [`crate::Shutdown::Abort`] while the
    /// job was still queued.
    Canceled,
}

impl JobStatus {
    /// `true` for [`JobStatus::Completed`].
    pub fn is_completed(self) -> bool {
        matches!(self, JobStatus::Completed)
    }
}

/// What the caller receives when a job reaches a terminal state.
#[derive(Debug)]
pub struct JobResult {
    /// The job's identifier.
    pub id: JobId,
    /// Priority class it ran under.
    pub priority: Priority,
    /// Terminal status.
    pub status: JobStatus,
    /// Number of executed runs (0 if the job never ran).
    pub attempts: u32,
    /// The last run's report (`None` if the job never ran). Failed jobs
    /// always carry their report — that is the service contract.
    pub report: Option<FtReport>,
    /// The factorization from the last successful run (`None` for
    /// timing-only jobs and non-completed statuses).
    pub result: Option<HessFactorization>,
    /// Time spent queued before the first run started, microseconds.
    pub queue_us: u64,
    /// Submit-to-completion latency, microseconds.
    pub total_us: u64,
}

/// Caller-side handle to an in-flight job.
#[derive(Clone)]
pub struct JobHandle {
    pub(crate) id: JobId,
    pub(crate) priority: Priority,
    pub(crate) slot: Arc<OneShot<JobResult>>,
}

impl JobHandle {
    /// The job's identifier.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The job's priority class.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// `true` once the result is available (without consuming it).
    pub fn is_done(&self) -> bool {
        self.slot.is_set()
    }

    /// Blocks until the job reaches a terminal state and returns its
    /// result. Panics if the result was already taken through a clone of
    /// this handle (one result per job).
    pub fn wait(self) -> JobResult {
        self.slot.take_blocking()
    }

    /// [`JobHandle::wait`] with a timeout; returns the handle back on
    /// timeout so the caller can keep waiting.
    pub fn wait_timeout(self, timeout: Duration) -> Result<JobResult, JobHandle> {
        if self.slot.wait_until_set(timeout) {
            Ok(self.slot.take_blocking())
        } else {
            Err(self)
        }
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("priority", &self.priority)
            .field("done", &self.is_done())
            .finish()
    }
}

/// A job as it sits in the queue: the spec plus service-side bookkeeping.
#[derive(Debug)]
pub(crate) struct QueuedJob {
    pub(crate) id: JobId,
    pub(crate) spec: JobSpec,
    pub(crate) slot: Arc<OneShot<JobResult>>,
    pub(crate) submitted: Instant,
    /// Absolute deadline resolved at submission time.
    pub(crate) deadline: Option<Instant>,
}
