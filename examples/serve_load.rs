//! Closed-loop load test of the reduction service — the end-to-end proof
//! that a stream of mixed-size, mixed-priority, fault-injected reduction
//! jobs flows through `ft-serve` with nothing lost: every weak job
//! (submitted with a zero in-run recovery budget plus an injected fault)
//! is rescued by the service's escalated retry, every failure carries its
//! detection report, and the run exits non-zero if any service-contract
//! invariant breaks. CI runs this under `FT_BLAS_BACKEND=threaded:4`.
//!
//! Knobs (all via the shared `env_knob` parsing — unset/empty = default):
//! `FT_SERVE_WORKERS`, `FT_SERVE_QUEUE_CAP`, `FT_SERVE_DEADLINE_MS`
//! configure the service; `SERVE_LOAD_JOBS` / `SERVE_LOAD_CLIENTS`
//! scale the mix.
//!
//! Run with: `cargo run --release --example serve_load`

use ft_hess_repro::serve::{loadgen, JobStatus, LoadgenConfig, Service, ServiceConfig, Shutdown};
use ft_hess_repro::trace::env_knob;
use std::time::Duration;

fn main() {
    let service_cfg = ServiceConfig::from_env();
    let service = Service::start(service_cfg);
    println!(
        "service: {} workers x {:?}, queue capacity {}",
        service.worker_count(),
        service.worker_backend(),
        service.queue_capacity()
    );

    let cfg = LoadgenConfig {
        clients: env_knob::usize_or("SERVE_LOAD_CLIENTS", 4).max(1),
        jobs: env_knob::usize_or("SERVE_LOAD_JOBS", 64).max(1),
        sizes: vec![24, 32, 48, 64],
        nb: 8,
        fault_fraction: 0.25,
        weak_fraction: 0.5,
        deadline: None,
        submit_timeout: Duration::from_secs(300),
        seed: 0x5EED,
    };
    println!(
        "load: {} clients, {} jobs, sizes {:?}, {:.0}% faulted ({:.0}% of those weak)\n",
        cfg.clients,
        cfg.jobs,
        cfg.sizes,
        cfg.fault_fraction * 100.0,
        cfg.weak_fraction * 100.0
    );

    let summary = loadgen::run(&service, &cfg);
    let stats = service.shutdown(Shutdown::Drain);

    let completed = summary.count(|o| o.status == JobStatus::Completed);
    let failed = summary.count(|o| matches!(o.status, JobStatus::Failed(_)));
    let missed = summary.count(|o| o.status == JobStatus::DeadlineMissed);
    let injected = summary.count(|o| o.injected);
    let weak = summary.count(|o| o.weak);
    let rescued = summary.count(|o| o.weak && o.status == JobStatus::Completed);
    let recovered_in_run = summary.count(|o| o.injected && !o.weak && o.recovered_in_run);

    println!("== outcome ==");
    println!("accepted             {}", summary.accepted);
    println!("completed            {completed}");
    println!("failed               {failed}");
    println!("deadline missed      {missed}");
    println!("lost                 {}", summary.lost);
    println!("injected-fault jobs  {injected}");
    println!("  recovered in-run   {recovered_in_run}");
    println!("  weak (retry path)  {weak}, rescued by escalation {rescued}");
    println!("service retries      {}", stats.retries);
    println!();
    println!("== latency (completed jobs, exact) ==");
    let l = &summary.latency_all;
    println!(
        "all: n={} mean={}us p50={}us p95={}us p99={}us max={}us",
        l.count, l.mean_us, l.p50_us, l.p95_us, l.p99_us, l.max_us
    );
    for p in ft_hess_repro::serve::Priority::ALL {
        let l = &summary.latency[p.index()];
        if l.count > 0 {
            println!(
                "{:>6}: n={} mean={}us p50={}us p95={}us p99={}us",
                p.name(),
                l.count,
                l.mean_us,
                l.p50_us,
                l.p95_us,
                l.p99_us
            );
        }
    }
    println!(
        "\nthroughput: {:.2} jobs/s over {:.2}s wall",
        summary.throughput_jobs_per_s,
        summary.wall.as_secs_f64()
    );

    // The hard checks CI keys off: the generic service contract, plus the
    // mix-specific guarantees of this load shape.
    let mut violations = summary.violations();
    if summary.accepted != cfg.jobs {
        violations.push(format!(
            "accepted {} of {} jobs (closed loop with generous timeout must admit all)",
            summary.accepted, cfg.jobs
        ));
    }
    if rescued != weak {
        violations.push(format!(
            "only {rescued} of {weak} weak jobs rescued by escalated retry"
        ));
    }
    if injected > 0 && completed + failed < injected {
        violations.push("some injected-fault jobs neither completed nor failed".to_string());
    }
    if !violations.is_empty() {
        eprintln!("\nSERVICE CONTRACT VIOLATIONS:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    println!("\nall service-contract invariants held");
}
