#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! FT-Hess: a reproduction of *"Hessenberg Reduction with Transient Error
//! Resilience on GPU-Based Hybrid Architectures"* (Jia, Luszczek,
//! Dongarra — IPDPS Workshops 2016) in pure Rust.
//!
//! This facade crate re-exports the workspace so examples and downstream
//! users can depend on one crate:
//!
//! * [`matrix`] — dense column-major matrices and views;
//! * [`blas`] — from-scratch level-1/2/3 kernels;
//! * [`lapack`] — Householder machinery, Hessenberg/QR factorizations and
//!   a Hessenberg eigensolver;
//! * [`hybrid`] — the simulated GPU+CPU platform (cost model + timelines);
//! * [`fault`] — the transient soft-error model and injection campaigns;
//! * [`hessenberg`] — the paper's contribution: checksum-encoded,
//!   self-detecting, self-correcting hybrid Hessenberg reduction;
//! * [`serve`] — a batched, backpressured multi-client reduction service
//!   (bounded priority queue, deadlines, FT-aware escalated retries) over
//!   the FT driver;
//! * [`trace`] — the `FT_TRACE`-gated span/counter observability layer
//!   threaded through all of the above.
//!
//! # Quick start
//!
//! ```
//! use ft_hess_repro::prelude::*;
//!
//! let a = ft_hess_repro::matrix::random::uniform(64, 64, 42);
//! let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
//! let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(16), &mut ctx, &mut FaultPlan::none());
//! let f = out.result.unwrap();
//! assert!(f.h().is_upper_hessenberg());
//! ```

pub mod driver;

pub use ft_blas as blas;
pub use ft_fault as fault;
pub use ft_hessenberg as hessenberg;
pub use ft_hybrid as hybrid;
pub use ft_lapack as lapack;
pub use ft_matrix as matrix;
pub use ft_serve as serve;
pub use ft_trace as trace;

/// The most commonly used items in one import.
pub mod prelude {
    pub use crate::driver::{eigen, eigen_with, eigenvalues, Eigen};
    pub use ft_fault::{Fault, FaultKind, FaultPlan, Moment, Phase, Region, ScheduledFault};
    pub use ft_hessenberg::{
        ft_gehrd_hybrid, gehrd_hybrid, FtConfig, FtOutcome, HybridConfig, ThresholdPolicy,
    };
    pub use ft_hybrid::{CostModel, ExecMode, HybridCtx};
    pub use ft_lapack::{eigenvalues_hessenberg, gehrd, GehrdConfig, HessFactorization};
    pub use ft_matrix::Matrix;
    pub use ft_serve::{JobSpec, JobStatus, Service, ServiceConfig, Shutdown};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_quickstart_compiles_and_runs() {
        let a = crate::matrix::random::uniform(32, 32, 1);
        let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
        let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(8), &mut ctx, &mut FaultPlan::none());
        assert!(out.result.unwrap().h().is_upper_hessenberg());
    }
}
