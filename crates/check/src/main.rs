//! `ft-check` binary: scans the workspace and exits non-zero on any
//! finding.
//!
//! Usage: `cargo run -p ft-check [--json] [--warn] [--tests] [root]`
//!
//! * `--json`  — emit the machine-readable report (schema in
//!   `ft_check::to_json`) on stdout instead of human diagnostics.
//! * `--warn`  — always exit 0 (CI's advisory lanes).
//! * `--tests` — drop the test-code exemptions and lint tests too.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut warn = false;
    let mut tests = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--warn" => warn = true,
            "--tests" => tests = true,
            "--help" | "-h" => {
                println!("usage: ft-check [--json] [--warn] [--tests] [workspace-root]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("ft-check: unknown flag `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
            path => root = Some(PathBuf::from(path)),
        }
    }
    let root = root.unwrap_or_else(default_root);
    let ok_code = ExitCode::SUCCESS;
    let fail_code = if warn {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    };
    match ft_check::scan_workspace_opts(&root, tests) {
        Ok(findings) => {
            let files = ft_check::count_scanned_files(&root);
            if json {
                println!("{}", ft_check::to_json(&findings, files));
            } else if findings.is_empty() {
                println!("ft-check: clean ({files} files scanned, rules FTC000-FTC012)");
            } else {
                for f in &findings {
                    eprintln!("{f}");
                }
                eprintln!("ft-check: {} finding(s)", findings.len());
            }
            if findings.is_empty() {
                ok_code
            } else {
                fail_code
            }
        }
        Err(e) => {
            eprintln!("ft-check: error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root relative to this crate's manifest (stable under
/// `cargo run` from any directory).
fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}
