//! FTC008 clean fixture: the hot fn and its whole call tree reuse
//! caller-provided buffers; an allocation elsewhere in the file is fine.

// ft-check: hot
pub fn hot_entry(x: &mut [f64], scratch: &mut [f64]) {
    helper(x, scratch);
}

fn helper(x: &mut [f64], scratch: &mut [f64]) {
    for (v, s) in x.iter_mut().zip(scratch) {
        *v += *s;
    }
}

pub fn cold_setup(n: usize) -> Vec<f64> {
    // Not reachable from the hot fn: allocations are fine here.
    vec![0.0; n]
}
