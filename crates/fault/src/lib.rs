#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Transient soft-error model for the FT-Hess reproduction.
//!
//! The paper's failure model (§IV-A): a soft error is a silent corruption
//! of one matrix element at a single point in time; the factorization is
//! oblivious and continues. Errors can strike host memory (the finished
//! `Q`/`H` panels) or device memory (the trailing matrix), and more than
//! one simultaneous error is considered as long as the error positions do
//! not form a rectangle.
//!
//! This crate provides:
//!
//! * [`bitflip`] — IEEE-754 single-bit flips (the physical mechanism the
//!   papers cited in §I measure) and additive/overwrite corruptions;
//! * [`region`] — the Area 1/2/3 partition of Figure 2(a), used to place
//!   faults and to interpret propagation patterns;
//! * [`injector`] — deterministic fault plans scheduled by iteration and
//!   phase, the hook the factorization drivers call at instrumentation
//!   points;
//! * [`campaign`] — seeded random campaigns sweeping areas × moments.

pub mod bitflip;
pub mod campaign;
pub mod injector;
pub mod region;

pub use bitflip::{flip_bit, flip_mantissa_bit};
pub use campaign::{Campaign, CampaignConfig};
pub use injector::{AppliedFault, Fault, FaultKind, FaultPlan, Phase, ScheduledFault};
pub use region::{classify, sample_in_region, Moment, Region};
