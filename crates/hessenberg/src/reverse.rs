//! Checksum-extended block updates and their exact reversals.
//!
//! Forward updates implement Algorithm 3 lines 8–11 on the extended
//! matrix; the reverse functions implement line 14 ("reverse the last left
//! update and right update") by *re-adding the retained intermediates* —
//! the diskless-checkpoint form of reverse computation: since `Y`, `Vx`,
//! `T` and the left-update inner product `W` are still live at detection
//! time, the reversal re-applies the identical products with the opposite
//! sign, restoring matrix and checksums to the previous iteration's state
//! up to one rounding of the add/subtract pair.

use crate::encode::ExtMatrix;
use ft_blas::{gemm, gemm_ft, trmm, AbftOptions, AbftReport, Diag, Side, Trans, Uplo};
use ft_matrix::Matrix;

/// Forward right update (Algorithm 3 lines 8 & 10, extended):
///
/// * trailing columns and the checksum column, all rows (including the
///   checksum row): `Ax(:, k+ib ..= n) −= Yx · Vx(ib−1.., :)ᵀ`;
/// * the rows above the panel, panel columns `k+1 ..= k+ib−1`:
///   `Ax(0..=k, ·) −= Yx(0..=k, :) · Vx(0..ib−1, :)ᵀ`
///   (the panel rows below were finished inside the panel factorization).
pub fn right_update_ext(ax: &mut ExtMatrix, k: usize, ib: usize, yx: &Matrix, vx: &Matrix) {
    apply_right(ax, k, ib, yx, vx, -1.0);
}

/// The trailing-columns half of [`right_update_ext`] alone (Algorithm 3
/// line 10 — the `G` update, including both checksum borders).
pub fn right_update_trailing(ax: &mut ExtMatrix, k: usize, ib: usize, yx: &Matrix, vx: &Matrix) {
    apply_right_trailing(ax, k, ib, yx, vx, -1.0);
}

/// [`right_update_trailing`] with the fused online-ABFT kernel
/// ([`ft_blas::gemm_ft`]): checksums of the trailing `G` update are
/// encoded during packing and verified in the epilogue, so a transient
/// strike *inside this gemm* is caught (and, when resolvable, corrected)
/// before the iteration-level `Sre`/`Sce` detector ever runs. Clean runs
/// are bit-identical to [`right_update_trailing`] — the fused path does
/// not perturb the iteration aggregates.
pub fn right_update_trailing_ft(
    ax: &mut ExtMatrix,
    k: usize,
    ib: usize,
    yx: &Matrix,
    vx: &Matrix,
    opts: AbftOptions,
) -> AbftReport {
    let n = ax.n();
    let m = n - k - 1;
    assert_eq!(yx.rows(), n + 1, "Yx must be (n+1) rows");
    assert_eq!(vx.rows(), m + 1, "Vx must be (m+1) rows");
    assert_eq!(yx.cols(), ib);
    assert_eq!(vx.cols(), ib);
    let jcount = m - ib + 2; // trailing real columns + checksum column
    let data = ax.raw_mut();
    gemm_ft(
        Trans::No,
        Trans::Yes,
        -1.0,
        &yx.as_view(),
        &vx.view(ib - 1, 0, jcount, ib),
        1.0,
        &mut data.view_mut(0, k + ib, n + 1, jcount),
        opts,
    )
}

/// Dispatches [`right_update_trailing`] asynchronously onto pool workers,
/// chunked by column. `trail` must be the extended-storage columns
/// `k+ib ..= n` (all `n + 1` rows) — exactly the region the synchronous
/// call writes. Bit-identical to the synchronous call: the GEMM's
/// k-dimension (`ib ≤ nb`) fits one `KC` block, so every output element's
/// reduction chain is independent of the column partition. The returned
/// token must resolve before anything reads or writes the far region —
/// the driver waits before the left update (which consumes the
/// right-updated trailing columns) and hence before detection.
pub(crate) fn dispatch_right_update_trailing<'s>(
    trail: ft_matrix::MatViewMut<'s>,
    ib: usize,
    yx: &'s Matrix,
    vx: &'s Matrix,
    workers: usize,
) -> ft_blas::AsyncHandle<'s> {
    ft_blas::spawn_col_chunks(trail, workers, move |j0, mut chunk| {
        let w = chunk.cols();
        gemm(
            Trans::No,
            Trans::Yes,
            -1.0,
            &yx.as_view(),
            &vx.view(ib - 1 + j0, 0, w, ib),
            1.0,
            &mut chunk,
        );
    })
}

/// The panel-columns half of [`right_update_ext`] alone (Algorithm 3
/// line 8 — the `M` update restricted to the rows above the panel).
pub fn right_update_panel_top(ax: &mut ExtMatrix, k: usize, ib: usize, yx: &Matrix, vx: &Matrix) {
    if ib > 1 {
        let data = ax.raw_mut();
        gemm(
            Trans::No,
            Trans::Yes,
            -1.0,
            &yx.view(0, 0, k + 1, ib),
            &vx.view(0, 0, ib - 1, ib),
            1.0,
            &mut data.view_mut(0, k + 1, k + 1, ib - 1),
        );
    }
}

/// Exact reversal of [`right_update_ext`] **excluding** the panel-column
/// part (the panel is restored from its checkpoint instead).
pub fn reverse_right_update_ext(ax: &mut ExtMatrix, k: usize, ib: usize, yx: &Matrix, vx: &Matrix) {
    apply_right_trailing(ax, k, ib, yx, vx, 1.0);
}

fn apply_right(ax: &mut ExtMatrix, k: usize, ib: usize, yx: &Matrix, vx: &Matrix, sign: f64) {
    apply_right_trailing(ax, k, ib, yx, vx, sign);
    // Panel columns k+1 ..= k+ib−1, rows above the panel.
    if ib > 1 {
        let data = ax.raw_mut();
        gemm(
            Trans::No,
            Trans::Yes,
            sign,
            &yx.view(0, 0, k + 1, ib),
            &vx.view(0, 0, ib - 1, ib),
            1.0,
            &mut data.view_mut(0, k + 1, k + 1, ib - 1),
        );
    }
}

fn apply_right_trailing(
    ax: &mut ExtMatrix,
    k: usize,
    ib: usize,
    yx: &Matrix,
    vx: &Matrix,
    sign: f64,
) {
    let n = ax.n();
    let m = n - k - 1;
    assert_eq!(yx.rows(), n + 1, "Yx must be (n+1) rows");
    assert_eq!(vx.rows(), m + 1, "Vx must be (m+1) rows");
    assert_eq!(yx.cols(), ib);
    assert_eq!(vx.cols(), ib);
    let jcount = m - ib + 2; // trailing real columns + checksum column
    let data = ax.raw_mut();
    gemm(
        Trans::No,
        Trans::Yes,
        sign,
        &yx.as_view(),
        &vx.view(ib - 1, 0, jcount, ib),
        1.0,
        &mut data.view_mut(0, k + ib, n + 1, jcount),
    );
}

/// Forward left update (Algorithm 3 line 11, extended):
/// `Ax(k+1..=n, k+ib..=n) −= Vx · Tᵀ · (Vᵀ · Ax(k+1..n, k+ib..=n))`,
/// where `V` is the real part of `Vx` (rows `0..m`) and the target rows
/// include the checksum row via `Vx`'s extension row.
///
/// Returns the inner product `W = Vᵀ·Ax(...)` — the retained intermediate
/// that makes the reversal exact. `W` is `ib × (m−ib+2)`.
pub fn left_update_ext(ax: &mut ExtMatrix, k: usize, ib: usize, vx: &Matrix, t: &Matrix) -> Matrix {
    let n = ax.n();
    let m = n - k - 1;
    let jcount = m - ib + 2;
    let mut w = Matrix::zeros(ib, jcount);
    {
        let data = ax.raw();
        gemm(
            Trans::Yes,
            Trans::No,
            1.0,
            &vx.view(0, 0, m, ib),
            &data.view(k + 1, k + ib, m, jcount),
            0.0,
            &mut w.as_view_mut(),
        );
    }
    apply_left(ax, k, ib, vx, t, &w, -1.0);
    w
}

/// [`left_update_ext`] with the fused online-ABFT kernel protecting the
/// `Ax`-writing gemm. The inner product `W = Vᵀ·Ax(...)` stays on the
/// plain kernel: it writes scratch, not the protected matrix, and a
/// strike there surfaces through the protected update it feeds (or the
/// iteration-level aggregate test). Clean runs are bit-identical to
/// [`left_update_ext`].
pub fn left_update_ext_ft(
    ax: &mut ExtMatrix,
    k: usize,
    ib: usize,
    vx: &Matrix,
    t: &Matrix,
    opts: AbftOptions,
) -> (Matrix, AbftReport) {
    let n = ax.n();
    let m = n - k - 1;
    let jcount = m - ib + 2;
    let mut w = Matrix::zeros(ib, jcount);
    {
        let data = ax.raw();
        gemm(
            Trans::Yes,
            Trans::No,
            1.0,
            &vx.view(0, 0, m, ib),
            &data.view(k + 1, k + ib, m, jcount),
            0.0,
            &mut w.as_view_mut(),
        );
    }
    // W2 = Tᵀ·W, identical to apply_left's forward computation.
    let mut w2 = w.clone();
    trmm(
        Side::Left,
        Uplo::Upper,
        Trans::Yes,
        Diag::NonUnit,
        1.0,
        &t.as_view(),
        &mut w2.as_view_mut(),
    );
    let data = ax.raw_mut();
    let report = gemm_ft(
        Trans::No,
        Trans::No,
        -1.0,
        &vx.as_view(),
        &w2.as_view(),
        1.0,
        &mut data.view_mut(k + 1, k + ib, m + 1, jcount),
        opts,
    );
    (w, report)
}

/// Exact reversal of [`left_update_ext`] using the retained `W`.
pub fn reverse_left_update_ext(
    ax: &mut ExtMatrix,
    k: usize,
    ib: usize,
    vx: &Matrix,
    t: &Matrix,
    w: &Matrix,
) {
    apply_left(ax, k, ib, vx, t, w, 1.0);
}

fn apply_left(
    ax: &mut ExtMatrix,
    k: usize,
    ib: usize,
    vx: &Matrix,
    t: &Matrix,
    w: &Matrix,
    sign: f64,
) {
    let n = ax.n();
    let m = n - k - 1;
    let jcount = m - ib + 2;
    assert_eq!(w.rows(), ib);
    assert_eq!(w.cols(), jcount);
    // W2 = Tᵀ·W (recomputed identically in forward and reverse).
    let mut w2 = w.clone();
    trmm(
        Side::Left,
        Uplo::Upper,
        Trans::Yes,
        Diag::NonUnit,
        1.0,
        &t.as_view(),
        &mut w2.as_view_mut(),
    );
    let data = ax.raw_mut();
    gemm(
        Trans::No,
        Trans::No,
        sign,
        &vx.as_view(),
        &w2.as_view(),
        1.0,
        &mut data.view_mut(k + 1, k + ib, m + 1, jcount),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{extend_v, extend_y, ExtMatrix};
    use ft_lapack::lahr2;

    /// Builds a mid-factorization scenario: run `lahr2` on a copy to get
    /// genuine (V, T, Y), extend them, and return everything needed to
    /// exercise the extended updates at panel `k`.
    fn scenario(n: usize, k: usize, ib: usize, seed: u64) -> (ExtMatrix, Matrix, Matrix, Matrix) {
        let a = ft_matrix::random::uniform(n, n, seed);
        let ax = ExtMatrix::encode(&a);
        let mut work = a.clone();
        let panel = lahr2(&mut work, k, ib);
        let chk_seg: Vec<f64> = (k + 1..n).map(|j| a.col(j).iter().sum()).collect();
        let yx = extend_y(&panel.y, &chk_seg, &panel.v, &panel.t);
        let vx = extend_v(&panel.v);
        (ax, yx, vx, panel.t)
    }

    #[test]
    fn right_then_reverse_roundtrips_trailing() {
        let (ax0, yx, vx, _t) = scenario(12, 2, 3, 5);
        let mut ax = ax0.clone();
        right_update_ext(&mut ax, 2, 3, &yx, &vx);
        assert!(
            ft_matrix::max_abs_diff(ax.raw(), ax0.raw()) > 1e-6,
            "update must change the matrix"
        );
        reverse_right_update_ext(&mut ax, 2, 3, &yx, &vx);
        // Trailing + checksum region restored; panel columns k+1..k+ib-1
        // (rows 0..=k) are *not* reversed — they are checkpoint territory.
        let n = 12;
        for j in (2 + 3)..=n {
            for i in 0..=n {
                let d = (ax.raw()[(i, j)] - ax0.raw()[(i, j)]).abs();
                assert!(d < 1e-12, "({i},{j}) differs by {d}");
            }
        }
    }

    #[test]
    fn left_then_reverse_roundtrips() {
        let (ax0, _yx, vx, t) = scenario(12, 2, 3, 6);
        let mut ax = ax0.clone();
        let w = left_update_ext(&mut ax, 2, 3, &vx, &t);
        assert!(ft_matrix::max_abs_diff(ax.raw(), ax0.raw()) > 1e-9);
        reverse_left_update_ext(&mut ax, 2, 3, &vx, &t, &w);
        assert!(
            ft_matrix::max_abs_diff(ax.raw(), ax0.raw()) < 1e-12,
            "left reversal must restore everything it touched"
        );
    }

    #[test]
    fn reversal_restores_injected_error_state() {
        // Reversal must restore the *erroneous* previous state exactly —
        // that is the point: checksums and data become consistent modulo
        // the single wrong element, which locate() then finds.
        let (mut ax0, yx, vx, t) = scenario(10, 1, 3, 7);
        ax0.raw_mut()[(5, 7)] += 0.123; // corrupt before the updates
        let mut ax = ax0.clone();
        right_update_ext(&mut ax, 1, 3, &yx, &vx);
        let w = left_update_ext(&mut ax, 1, 3, &vx, &t);
        reverse_left_update_ext(&mut ax, 1, 3, &vx, &t, &w);
        reverse_right_update_ext(&mut ax, 1, 3, &yx, &vx);
        for j in 4..=10 {
            for i in 0..=10 {
                let d = (ax.raw()[(i, j)] - ax0.raw()[(i, j)]).abs();
                assert!(d < 1e-12, "({i},{j}) differs by {d}");
            }
        }
    }

    #[test]
    fn ft_variants_bit_identical_to_plain_on_clean_runs() {
        // The fused online-ABFT kernels must not perturb the update by a
        // single ulp: the driver's Sre/Sce aggregates and the exactness of
        // the reversal both depend on it.
        let (ax0, yx, vx, t) = scenario(24, 3, 5, 9);
        let mut plain = ax0.clone();
        right_update_trailing(&mut plain, 3, 5, &yx, &vx);
        let w_plain = left_update_ext(&mut plain, 3, 5, &vx, &t);
        let mut ft = ax0.clone();
        let r1 = right_update_trailing_ft(&mut ft, 3, 5, &yx, &vx, AbftOptions::default());
        let (w_ft, r2) = left_update_ext_ft(&mut ft, 3, 5, &vx, &t, AbftOptions::default());
        assert_eq!(r1.detected, 0, "clean right update flagged: {r1:?}");
        assert_eq!(r2.detected, 0, "clean left update flagged: {r2:?}");
        for j in 0..=24usize {
            for i in 0..=24usize {
                assert_eq!(
                    plain.raw()[(i, j)].to_bits(),
                    ft.raw()[(i, j)].to_bits(),
                    "Ax differs at ({i},{j})"
                );
            }
        }
        for j in 0..w_plain.cols() {
            for i in 0..w_plain.rows() {
                assert_eq!(
                    w_plain[(i, j)].to_bits(),
                    w_ft[(i, j)].to_bits(),
                    "W differs at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn w_has_expected_shape() {
        let (mut ax, _yx, vx, t) = scenario(14, 3, 4, 8);
        let w = left_update_ext(&mut ax, 3, 4, &vx, &t);
        let m = 14 - 3 - 1;
        assert_eq!(w.rows(), 4);
        assert_eq!(w.cols(), m - 4 + 2);
    }
}
